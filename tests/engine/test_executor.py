"""Executor: ordering, worker counts, and the platform cache."""

import numpy as np

from repro.engine import MatcherSpec, PlatformSpec, RunSpec, run_many
from repro.engine.executor import execute_spec, warm_platform_cache
from repro.simulation import SyntheticConfig

TINY = SyntheticConfig(num_brokers=20, num_requests=80, num_days=2, imbalance=0.1, seed=11)
OTHER = SyntheticConfig(num_brokers=25, num_requests=100, num_days=2, imbalance=0.1, seed=12)


def _grid():
    return [
        RunSpec(platform=PlatformSpec.synthetic(config), matcher=MatcherSpec(name, seed=1))
        for config in (TINY, OTHER)
        for name in ("Top-1", "Top-3", "KM")
    ]


def test_results_come_back_in_spec_order():
    specs = _grid()
    runs = run_many(specs, jobs=3)
    assert [run.algorithm for run in runs] == [spec.matcher.name for spec in specs]
    # The two instances differ, so identical algorithms must differ across
    # the grid — proof the ordering is by spec, not by completion time.
    assert runs[0].total_realized_utility != runs[3].total_realized_utility


def test_parallel_equals_serial_on_mixed_grid():
    specs = _grid()
    serial = run_many(specs, jobs=1)
    parallel = run_many(specs, jobs=2)
    for a, b in zip(serial, parallel):
        assert a.total_realized_utility == b.total_realized_utility
        np.testing.assert_array_equal(a.broker_workload, b.broker_workload)


def test_jobs_zero_means_all_cpus():
    specs = _grid()[:2]
    runs = run_many(specs, jobs=0)
    assert len(runs) == 2
    assert runs[0].algorithm == "Top-1"


def test_empty_and_single_spec_lists():
    assert run_many([], jobs=4) == []
    (only,) = run_many(_grid()[:1], jobs=4)
    assert only.algorithm == "Top-1"


def test_warm_platform_cache_reuses_donated_platform(monkeypatch):
    platform_spec = PlatformSpec.synthetic(TINY)
    platform = platform_spec.build()
    warm_platform_cache(platform_spec, platform)
    builds = []
    original_build = PlatformSpec.build

    def counting_build(self):
        builds.append(self.cache_key())
        return original_build(self)

    monkeypatch.setattr(PlatformSpec, "build", counting_build)
    spec = RunSpec(platform=platform_spec, matcher=MatcherSpec("Top-1", seed=1))
    result = execute_spec(spec)
    assert builds == []  # the donated platform was used, nothing rebuilt
    assert result.num_assigned == TINY.num_requests
    # A different platform spec evicts the slot and triggers a real build.
    other = RunSpec(platform=PlatformSpec.synthetic(OTHER), matcher=MatcherSpec("Top-1", seed=1))
    execute_spec(other)
    assert len(builds) == 1
