"""Executor: ordering, worker counts, the platform cache, telemetry merge."""

import numpy as np
import pytest

from repro.engine import MatcherSpec, PlatformSpec, RunSpec, run_many
from repro.engine.executor import execute_spec, warm_platform_cache
from repro.obs import telemetry as obs
from repro.obs.telemetry import Telemetry
from repro.simulation import SyntheticConfig

TINY = SyntheticConfig(num_brokers=20, num_requests=80, num_days=2, imbalance=0.1, seed=11)
OTHER = SyntheticConfig(num_brokers=25, num_requests=100, num_days=2, imbalance=0.1, seed=12)


def _grid():
    return [
        RunSpec(platform=PlatformSpec.synthetic(config), matcher=MatcherSpec(name, seed=1))
        for config in (TINY, OTHER)
        for name in ("Top-1", "Top-3", "KM")
    ]


def test_results_come_back_in_spec_order():
    specs = _grid()
    runs = run_many(specs, jobs=3)
    assert [run.algorithm for run in runs] == [spec.matcher.name for spec in specs]
    # The two instances differ, so identical algorithms must differ across
    # the grid — proof the ordering is by spec, not by completion time.
    assert runs[0].total_realized_utility != runs[3].total_realized_utility


def test_parallel_equals_serial_on_mixed_grid():
    specs = _grid()
    serial = run_many(specs, jobs=1)
    parallel = run_many(specs, jobs=2)
    for a, b in zip(serial, parallel):
        assert a.total_realized_utility == b.total_realized_utility
        np.testing.assert_array_equal(a.broker_workload, b.broker_workload)


def test_jobs_zero_means_all_cpus():
    specs = _grid()[:2]
    runs = run_many(specs, jobs=0)
    assert len(runs) == 2
    assert runs[0].algorithm == "Top-1"


def test_empty_and_single_spec_lists():
    assert run_many([], jobs=4) == []
    (only,) = run_many(_grid()[:1], jobs=4)
    assert only.algorithm == "Top-1"


def _telemetry_grid():
    # LACB-Opt exercises the full instrumentation surface (CBS pruning,
    # KM solve, TD updates, bandit train); Top-3 adds a second label.
    return [
        RunSpec(platform=PlatformSpec.synthetic(TINY), matcher=MatcherSpec(name, seed=1))
        for name in ("LACB-Opt", "Top-3")
    ]


def _comparable_metrics(telemetry):
    """Counters and histograms (the exactly-mergeable kinds) as plain data."""
    return [
        entry
        for entry in telemetry.registry.to_dict()["metrics"]
        if entry["kind"] in ("counter", "histogram")
    ]


def test_parallel_telemetry_merge_is_bit_identical_to_serial():
    """jobs must be a pure wall-clock knob for hook-observed state too.

    Regression test: with jobs>1 the runs execute in worker processes, so
    any telemetry accumulated there is lost unless ``execute_spec`` ships
    it back and the parent merges it.  Counters and histograms merge
    exactly, so the jobs=2 registry must equal the jobs=1 registry
    bit-for-bit.
    """
    serial, parallel = Telemetry(), Telemetry()
    run_many(_telemetry_grid(), jobs=1, telemetry=serial)
    run_many(_telemetry_grid(), jobs=2, telemetry=parallel)

    serial_metrics = _comparable_metrics(serial)
    assert serial_metrics, "the serial run must have observed something"
    assert serial_metrics == _comparable_metrics(parallel)
    # The observed runs really went through the instrumented paths.
    names = {entry["name"] for entry in serial_metrics}
    assert "engine.runs" in names
    assert "vfga.td_updates" in names


def test_parallel_percentiles_bit_identical_to_serial():
    """p50/p95/p99 must not depend on the jobs knob, bit for bit.

    Histogram sketches merge as integer bucket counts in spec order, so
    the merged quantiles of a jobs=2 run equal the serial run exactly —
    not approximately.  ``engine.batch_requests`` is deterministic (batch
    sizes are seeded), making the comparison meaningful.
    """
    serial, parallel = Telemetry(), Telemetry()
    run_many(_telemetry_grid(), jobs=1, telemetry=serial)
    run_many(_telemetry_grid(), jobs=2, telemetry=parallel)
    from repro.obs.metrics import COUNT_BOUNDARIES

    for algorithm in ("LACB-Opt", "Top-3"):
        a = serial.registry.histogram(
            "engine.batch_requests", boundaries=COUNT_BOUNDARIES, algorithm=algorithm
        )
        b = parallel.registry.histogram(
            "engine.batch_requests", boundaries=COUNT_BOUNDARIES, algorithm=algorithm
        )
        assert a.sketch.count > 0
        assert a.sketch.state() == b.sketch.state()
        assert a.sketch.quantiles() == b.sketch.quantiles()
        for q in (0.5, 0.95, 0.99):
            assert a.quantile(q) == b.quantile(q)  # exact equality, no approx


def test_run_many_uses_active_telemetry_by_default():
    telemetry = Telemetry()
    with obs.use(telemetry):
        run_many(_telemetry_grid()[:1], jobs=1)
    assert telemetry.registry.counter("engine.runs", algorithm="LACB-Opt").value == 1
    # Worker spans were merged into the parent tracer.
    assert len(telemetry.tracer.records) > 0


def test_run_many_without_telemetry_collects_nothing():
    obs.disable()
    results = run_many(_telemetry_grid()[:1], jobs=1)
    assert len(results) == 1
    assert obs.current() is None


def test_parallel_results_unchanged_by_telemetry_collection():
    plain = run_many(_telemetry_grid(), jobs=1)
    observed = run_many(_telemetry_grid(), jobs=2, telemetry=Telemetry())
    for a, b in zip(plain, observed):
        assert a.total_realized_utility == pytest.approx(b.total_realized_utility)
        np.testing.assert_array_equal(a.broker_workload, b.broker_workload)


def test_warm_platform_cache_reuses_donated_platform(monkeypatch):
    platform_spec = PlatformSpec.synthetic(TINY)
    platform = platform_spec.build()
    warm_platform_cache(platform_spec, platform)
    builds = []
    original_build = PlatformSpec.build

    def counting_build(self):
        builds.append(self.cache_key())
        return original_build(self)

    monkeypatch.setattr(PlatformSpec, "build", counting_build)
    spec = RunSpec(platform=platform_spec, matcher=MatcherSpec("Top-1", seed=1))
    result = execute_spec(spec)
    assert builds == []  # the donated platform was used, nothing rebuilt
    assert result.num_assigned == TINY.num_requests
    # A different platform spec evicts the slot and triggers a real build.
    other = RunSpec(platform=PlatformSpec.synthetic(OTHER), matcher=MatcherSpec("Top-1", seed=1))
    execute_spec(other)
    assert len(builds) == 1
