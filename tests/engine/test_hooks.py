"""Built-in hooks: timing seam, metrics, assignment logging, progress lines."""

import io
import time

import numpy as np
import pytest

from repro.algorithms import make_matcher
from repro.engine import (
    AssignmentLogger,
    DayLoopEngine,
    DecisionTimer,
    MetricsCollector,
    ProgressReporter,
)
from repro.simulation import SyntheticConfig, generate_city


def _tiny_platform():
    return generate_city(
        SyntheticConfig(num_brokers=20, num_requests=80, num_days=2, imbalance=0.1, seed=11)
    )


def test_decision_timer_excludes_environment_time():
    """Matcher time must not be charged for ``predicted_utilities`` calls."""
    platform = _tiny_platform()
    sleep_per_batch = 0.01
    original = platform.predicted_utilities
    calls = []

    def slow_predictions(request_ids):
        time.sleep(sleep_per_batch)
        calls.append(request_ids.size)
        return original(request_ids)

    platform.predicted_utilities = slow_predictions
    try:
        timer = DecisionTimer()
        DayLoopEngine().run(platform, make_matcher("Top-1", platform, seed=1), hooks=[timer])
    finally:
        del platform.predicted_utilities
    environment_seconds = sleep_per_batch * len(calls)
    assert len(calls) > 0
    # The matcher itself is near-instant; if environment time leaked into
    # the decision clock, the total would be >= the injected sleeps.
    assert timer.total_seconds < 0.5 * environment_seconds
    assert timer.daily_seconds.shape == (platform.num_days,)
    assert np.all(timer.daily_seconds >= 0.0)


def test_metrics_collector_timer_is_single_source_of_truth():
    platform = _tiny_platform()
    collector = MetricsCollector()
    standalone = DecisionTimer()
    DayLoopEngine().run(
        platform, make_matcher("Top-1", platform, seed=1), hooks=[collector, standalone]
    )
    result = collector.result
    # The result's timing fields are exactly the internal timer's arrays.
    assert result.daily_decision_time is collector.timer.daily_seconds
    assert result.decision_time == collector.timer.total_seconds
    # Any DecisionTimer observing the same run sees the same event stream.
    np.testing.assert_array_equal(result.daily_decision_time, standalone.daily_seconds)


def test_metrics_collector_requires_finished_run():
    with pytest.raises(RuntimeError, match="has not completed"):
        MetricsCollector().result


def test_metrics_collector_is_reusable_across_runs():
    platform = _tiny_platform()
    collector = MetricsCollector()
    engine = DayLoopEngine()
    engine.run(platform, make_matcher("Top-1", platform, seed=1), hooks=[collector])
    first = collector.result.total_realized_utility
    engine.run(platform, make_matcher("Top-1", platform, seed=1), hooks=[collector])
    assert collector.result.total_realized_utility == first


def test_assignment_logger_streams_all_batches():
    platform = _tiny_platform()
    logger = AssignmentLogger(store_outcomes=True)
    collector = MetricsCollector(store_assignments=True)
    DayLoopEngine().run(
        platform, make_matcher("Top-3", platform, seed=1), hooks=[logger, collector]
    )
    assert logger.assignments == collector.result.assignments
    assert len(logger.outcomes) == platform.num_days
    assert sum(len(assignment) for assignment in logger.assignments) == (
        collector.result.num_assigned
    )


def test_progress_reporter_lines():
    platform = _tiny_platform()
    stream = io.StringIO()
    DayLoopEngine().run(
        platform,
        make_matcher("Top-1", platform, seed=1),
        hooks=[ProgressReporter(every=1, stream=stream)],
    )
    lines = stream.getvalue().strip().splitlines()
    assert len(lines) == platform.num_days
    assert lines[0].startswith("[Top-1] day 1/2 ")
    assert "utility=" in lines[-1] and "matcher=" in lines[-1]


def test_progress_reporter_rejects_bad_interval():
    with pytest.raises(ValueError):
        ProgressReporter(every=0)


def test_progress_reporter_exact_line_format():
    """One deterministic-format line per day: [name] day D/N utility= matcher=."""
    platform = _tiny_platform()
    stream = io.StringIO()
    DayLoopEngine().run(
        platform,
        make_matcher("Top-3", platform, seed=1),
        hooks=[ProgressReporter(every=1, stream=stream)],
    )
    import re

    pattern = re.compile(
        r"^\[Top-3\] day (\d+)/2 utility=\d+\.\d{2} matcher=\d+\.\d{3}s$"
    )
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    for expected_day, line in enumerate(lines, start=1):
        match = pattern.match(line)
        assert match, f"malformed progress line: {line!r}"
        assert int(match.group(1)) == expected_day


def test_progress_reporter_every_skips_but_always_reports_final_day():
    platform = generate_city(
        SyntheticConfig(num_brokers=20, num_requests=150, num_days=5, imbalance=0.1, seed=11)
    )
    stream = io.StringIO()
    DayLoopEngine().run(
        platform,
        make_matcher("Top-1", platform, seed=1),
        hooks=[ProgressReporter(every=2, stream=stream)],
    )
    lines = stream.getvalue().splitlines()
    # Days 2 and 4 hit the interval; day 5 is the forced final report.
    assert [line.split()[2] for line in lines] == ["2/5", "4/5", "5/5"]


def test_progress_reporter_matcher_seconds_accumulate_within_run():
    platform = _tiny_platform()
    stream = io.StringIO()
    reporter = ProgressReporter(every=1, stream=stream)
    DayLoopEngine().run(platform, make_matcher("Top-1", platform, seed=1), hooks=[reporter])
    seconds = [
        float(line.rsplit("matcher=", 1)[1].rstrip("s"))
        for line in stream.getvalue().splitlines()
    ]
    # The reported matcher time is cumulative, so it never decreases.
    assert seconds == sorted(seconds)
