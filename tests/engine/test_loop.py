"""Engine lifecycle: event ordering, payloads and the injectable clock."""

import numpy as np

from repro.algorithms import make_matcher
from repro.engine import DayLoopEngine, RunHook
from repro.simulation import SyntheticConfig, generate_city


class RecordingHook(RunHook):
    """Appends (event name, coordinates) tuples in notification order."""

    def __init__(self):
        self.events = []

    def on_run_start(self, context):
        self.events.append(("run_start", context.num_days))

    def on_day_start(self, event):
        self.events.append(("day_start", event.day))

    def on_batch_assigned(self, event):
        self.events.append(("batch", event.day, event.batch))

    def on_day_end(self, event):
        self.events.append(("day_end", event.day))

    def on_run_end(self, context):
        self.events.append(("run_end", context.num_days))


def _tiny_platform():
    return generate_city(
        SyntheticConfig(num_brokers=20, num_requests=80, num_days=2, imbalance=0.1, seed=11)
    )


def test_lifecycle_event_order():
    platform = _tiny_platform()
    hook = RecordingHook()
    context = DayLoopEngine().run(platform, make_matcher("Top-1", platform, seed=1), hooks=[hook])

    assert hook.events[0] == ("run_start", platform.num_days)
    assert hook.events[-1] == ("run_end", platform.num_days)
    assert context.num_brokers == platform.num_brokers
    # Per day: one day_start, then that day's batches, then one day_end.
    cursor = 1
    for day in range(platform.num_days):
        assert hook.events[cursor] == ("day_start", day)
        cursor += 1
        while hook.events[cursor][0] == "batch":
            assert hook.events[cursor][1] == day
            cursor += 1
        assert hook.events[cursor] == ("day_end", day)
        cursor += 1
    assert cursor == len(hook.events) - 1
    batch_events = [event for event in hook.events if event[0] == "batch"]
    assert len(batch_events) > 0
    # Batches within a day are visited in order.
    for earlier, later in zip(batch_events, batch_events[1:]):
        if earlier[1] == later[1]:
            assert earlier[2] < later[2]


def test_batch_event_payload_consistency():
    platform = _tiny_platform()

    class PayloadHook(RunHook):
        def on_batch_assigned(self, event):
            assert event.utilities.shape == (event.request_ids.size, platform.num_brokers)
            assert len(event.assignment) <= event.request_ids.size
            assert event.matcher_seconds >= 0.0

        def on_day_end(self, event):
            assert event.outcome.day == event.day
            assert event.contexts.shape[0] == platform.num_brokers

    DayLoopEngine().run(platform, make_matcher("Top-3", platform, seed=1), hooks=[PayloadHook()])


def test_injectable_clock_yields_deterministic_seconds():
    platform = _tiny_platform()
    ticks = iter(np.arange(0.0, 10_000.0, 1.0))
    engine = DayLoopEngine(clock=lambda: float(next(ticks)))

    seconds = []

    class ClockHook(RunHook):
        def on_day_start(self, event):
            seconds.append(event.matcher_seconds)

        def on_batch_assigned(self, event):
            seconds.append(event.matcher_seconds)

        def on_day_end(self, event):
            seconds.append(event.matcher_seconds)

    engine.run(platform, make_matcher("Top-1", platform, seed=1), hooks=[ClockHook()])
    # Every timed section spans exactly one fake tick.
    assert seconds and all(value == 1.0 for value in seconds)


def test_multiple_hooks_notified_in_order():
    platform = _tiny_platform()
    first, second = RecordingHook(), RecordingHook()
    DayLoopEngine().run(platform, make_matcher("Top-1", platform, seed=1), hooks=[first, second])
    assert first.events == second.events
