"""Run specs: validation, picklability, and seed-faithful reconstruction."""

import pickle

import numpy as np
import pytest

from repro.engine import MatcherSpec, PlatformSpec, RunSpec
from repro.simulation import SyntheticConfig, real_like_city

TINY = SyntheticConfig(num_brokers=20, num_requests=80, num_days=2, imbalance=0.1, seed=11)


def test_platform_spec_validation():
    with pytest.raises(ValueError, match="unknown platform kind"):
        PlatformSpec(kind="cloud")
    with pytest.raises(ValueError, match="SyntheticConfig"):
        PlatformSpec(kind="synthetic")
    with pytest.raises(ValueError, match="city"):
        PlatformSpec(kind="real_city", city="Z")


def test_run_spec_round_trips_through_pickle():
    spec = RunSpec(
        platform=PlatformSpec.synthetic(TINY),
        matcher=MatcherSpec("LACB-Opt", seed=3, backend="scipy"),
        store_assignments=True,
        tag="num_brokers=20",
    )
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.platform.config.num_brokers == 20
    assert clone.matcher.name == "LACB-Opt"
    assert clone.tag == "num_brokers=20"


def test_synthetic_build_is_deterministic():
    spec = PlatformSpec.synthetic(TINY)
    first, second = spec.build(), spec.build()
    assert first.num_days == second.num_days == TINY.num_days
    first.reset()
    second.reset()
    first.start_day(0)
    second.start_day(0)
    first_ids = first.batch_requests(0, 0)
    second_ids = second.batch_requests(0, 0)
    np.testing.assert_array_equal(first_ids, second_ids)
    np.testing.assert_array_equal(
        first.predicted_utilities(first_ids), second.predicted_utilities(second_ids)
    )


def test_real_city_spec_matches_real_like_city():
    reference, city_spec, config = real_like_city("C", scale=0.008, seed=7)
    rebuilt = PlatformSpec.real_city("C", scale=0.008, seed=7).build()
    assert rebuilt.num_brokers == reference.num_brokers == max(20, round(city_spec.brokers * 0.008))
    assert rebuilt.num_days == config.num_days
    np.testing.assert_array_equal(rebuilt.latent_capacities, reference.latent_capacities)


def test_cache_key_distinguishes_configs():
    base = PlatformSpec.synthetic(TINY)
    same = PlatformSpec.synthetic(
        SyntheticConfig(num_brokers=20, num_requests=80, num_days=2, imbalance=0.1, seed=11)
    )
    other = PlatformSpec.synthetic(
        SyntheticConfig(num_brokers=20, num_requests=80, num_days=2, imbalance=0.1, seed=12)
    )
    assert base.cache_key() == same.cache_key()
    assert base.cache_key() != other.cache_key()
    assert base.cache_key() != PlatformSpec.real_city("A").cache_key()
    assert hash(base.cache_key())  # usable as a dict key


def test_matcher_spec_builds_registry_matchers():
    platform = PlatformSpec.synthetic(TINY).build()
    matcher = MatcherSpec("CTop-3", seed=5, empirical_capacity=12.0).build(platform)
    assert matcher.name == "CTop-3"
    with pytest.raises(KeyError):
        MatcherSpec("NoSuch").build(platform)


def test_run_spec_executes_standalone():
    result = RunSpec(
        platform=PlatformSpec.synthetic(TINY),
        matcher=MatcherSpec("Top-3", seed=1),
        store_outcomes=True,
    ).run()
    assert result.algorithm == "Top-3"
    assert result.num_assigned == TINY.num_requests
    assert len(result.outcomes) == TINY.num_days
