"""Golden equivalence: the engine reproduces the pre-refactor runner bit-for-bit."""

import time

import numpy as np
import pytest

from repro.algorithms import make_matcher
from repro.engine import MatcherSpec, PlatformSpec, RunSpec, run_many
from repro.experiments import run_algorithm
from repro.simulation import SyntheticConfig, generate_city

#: Fixed-seed city shared by every equivalence check in this module.
GOLDEN_CONFIG = SyntheticConfig(
    num_brokers=30, num_requests=300, num_days=2, imbalance=0.05, seed=42
)


def _legacy_run_algorithm(platform, matcher, store_outcomes=False, store_assignments=False):
    """Verbatim copy of the seed repo's monolithic ``run_algorithm`` loop.

    Kept as the golden reference: the engine-driven shim must reproduce its
    accounting exactly (decision times excepted — wall clocks differ run
    to run — where only shapes are compared).
    """
    platform.reset()
    num_days = platform.num_days
    num_brokers = platform.num_brokers
    daily_utility = np.zeros(num_days)
    daily_time = np.zeros(num_days)
    broker_utility = np.zeros(num_brokers)
    workload_sum = np.zeros(num_brokers)
    workload_peak = np.zeros(num_brokers)
    signup_sum = np.zeros(num_brokers)
    signup_days = np.zeros(num_brokers)
    predicted_total = 0.0
    num_assigned = 0
    outcomes = []
    assignments = []

    for day in range(num_days):
        contexts = platform.start_day(day)
        tick = time.perf_counter()
        matcher.begin_day(day, contexts)
        daily_time[day] += time.perf_counter() - tick
        for batch in range(platform.batches_per_day):
            request_ids = platform.batch_requests(day, batch)
            if request_ids.size == 0:
                continue
            utilities = platform.predicted_utilities(request_ids)
            tick = time.perf_counter()
            assignment = matcher.assign_batch(day, batch, request_ids, utilities)
            daily_time[day] += time.perf_counter() - tick
            platform.submit_assignment(assignment)
            predicted_total += assignment.predicted_utility
            num_assigned += len(assignment)
            if store_assignments:
                assignments.append(assignment)
        outcome = platform.finish_day()
        tick = time.perf_counter()
        matcher.end_day(day, outcome, contexts)
        daily_time[day] += time.perf_counter() - tick

        daily_utility[day] = outcome.total_realized_utility
        broker_utility += outcome.realized_utility
        workload_sum += outcome.workloads
        workload_peak = np.maximum(workload_peak, outcome.workloads)
        served = outcome.workloads > 0
        signup_sum[served] += outcome.signup_rates[served]
        signup_days += served
        if store_outcomes:
            outcomes.append(outcome)

    with np.errstate(invalid="ignore"):
        broker_signup = np.where(signup_days > 0, signup_sum / np.maximum(signup_days, 1), 0.0)

    return dict(
        algorithm=matcher.name,
        total_realized_utility=float(daily_utility.sum()),
        total_predicted_utility=float(predicted_total),
        daily_utility=daily_utility,
        broker_utility=broker_utility,
        broker_workload=workload_sum / num_days,
        broker_peak_workload=workload_peak,
        broker_signup=broker_signup,
        daily_time_shape=daily_time.shape,
        num_assigned=num_assigned,
        outcomes=outcomes,
        assignments=assignments,
    )


def assert_results_identical(engine_result, legacy) -> None:
    """Field-by-field bit-identity (decision times compared by shape only)."""
    assert engine_result.algorithm == legacy["algorithm"]
    assert engine_result.total_realized_utility == legacy["total_realized_utility"]
    assert engine_result.total_predicted_utility == legacy["total_predicted_utility"]
    np.testing.assert_array_equal(engine_result.daily_utility, legacy["daily_utility"])
    np.testing.assert_array_equal(engine_result.broker_utility, legacy["broker_utility"])
    np.testing.assert_array_equal(engine_result.broker_workload, legacy["broker_workload"])
    np.testing.assert_array_equal(
        engine_result.broker_peak_workload, legacy["broker_peak_workload"]
    )
    np.testing.assert_array_equal(engine_result.broker_signup, legacy["broker_signup"])
    assert engine_result.daily_decision_time.shape == legacy["daily_time_shape"]
    assert engine_result.decision_time == pytest.approx(
        float(engine_result.daily_decision_time.sum())
    )
    assert engine_result.num_assigned == legacy["num_assigned"]


@pytest.mark.parametrize("name", ["KM", "LACB", "LACB-Opt"])
def test_engine_matches_legacy_runner(name):
    platform = generate_city(GOLDEN_CONFIG)
    legacy = _legacy_run_algorithm(platform, make_matcher(name, platform, seed=7))
    engine_result = run_algorithm(platform, make_matcher(name, platform, seed=7))
    assert_results_identical(engine_result, legacy)


def test_engine_matches_legacy_stored_logs():
    platform = generate_city(GOLDEN_CONFIG)
    legacy = _legacy_run_algorithm(
        platform,
        make_matcher("Top-3", platform, seed=7),
        store_outcomes=True,
        store_assignments=True,
    )
    engine_result = run_algorithm(
        platform,
        make_matcher("Top-3", platform, seed=7),
        store_outcomes=True,
        store_assignments=True,
    )
    assert_results_identical(engine_result, legacy)
    assert len(engine_result.outcomes) == len(legacy["outcomes"])
    assert len(engine_result.assignments) == len(legacy["assignments"])
    for ours, theirs in zip(engine_result.assignments, legacy["assignments"]):
        assert ours.pairs == theirs.pairs


def test_run_many_parallel_matches_serial():
    platform_spec = PlatformSpec.synthetic(GOLDEN_CONFIG)
    specs = [
        RunSpec(platform=platform_spec, matcher=MatcherSpec(name, seed=7))
        for name in ("Top-3", "KM", "LACB")
    ]
    serial = run_many(specs, jobs=1)
    parallel = run_many(specs, jobs=2)
    assert [run.algorithm for run in parallel] == [run.algorithm for run in serial]
    for a, b in zip(serial, parallel):
        assert a.total_realized_utility == b.total_realized_utility
        assert a.total_predicted_utility == b.total_predicted_utility
        assert a.num_assigned == b.num_assigned
        np.testing.assert_array_equal(a.daily_utility, b.daily_utility)
        np.testing.assert_array_equal(a.broker_utility, b.broker_utility)
        np.testing.assert_array_equal(a.broker_workload, b.broker_workload)
        np.testing.assert_array_equal(a.broker_signup, b.broker_signup)


# ----------------------------------------------------------------------
# Fast vs reference kernels: seeded runs are bit-identical in either mode
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["LACB", "LACB-Opt"])
def test_fast_and_reference_kernels_bit_identical(algorithm):
    """The vectorized hot paths (batched NN-UCB scoring, argpartition CBS)
    must reproduce the retained reference kernels bit-for-bit: CBS returns
    exactly the same candidate sets without touching the engine's RNG, and
    arm decisions plus the covariance update are unchanged."""
    from repro import perf
    from repro.engine.executor import execute_spec

    def run():
        spec = RunSpec(
            platform=PlatformSpec.synthetic(GOLDEN_CONFIG),
            matcher=MatcherSpec(algorithm, seed=7),
        )
        return execute_spec(spec)

    with perf.use_fast_kernels(True):
        fast = run()
    with perf.use_fast_kernels(False):
        reference = run()
    assert fast.total_realized_utility == reference.total_realized_utility
    assert fast.total_predicted_utility == reference.total_predicted_utility
    assert fast.num_assigned == reference.num_assigned
    np.testing.assert_array_equal(fast.daily_utility, reference.daily_utility)
    np.testing.assert_array_equal(fast.broker_utility, reference.broker_utility)
    np.testing.assert_array_equal(fast.broker_workload, reference.broker_workload)
    np.testing.assert_array_equal(
        fast.broker_peak_workload, reference.broker_peak_workload
    )
