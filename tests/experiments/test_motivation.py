"""Motivation-study reproduction: Figs. 2-4 shapes on the tiny city."""

import numpy as np

from repro.experiments import signup_vs_workload, top_broker_curves, workload_concentration


def test_signup_vs_workload_structure(small_platform):
    study = signup_vs_workload(small_platform, seed=1, overload_threshold=25.0)
    assert study.bin_centers.size >= 2
    assert study.mean_signup.shape == study.bin_centers.shape
    assert study.count.sum() > 0
    assert 0 <= study.mean_signup.min() and study.mean_signup.max() <= 1.0


def test_overloaded_brokers_convert_worse(small_platform):
    """Fig. 2's core claim: rates drop past the overload threshold."""
    study = signup_vs_workload(small_platform, seed=1, overload_threshold=25.0)
    if study.high_band != (0.0, 0.0):  # overload observed on this instance
        assert np.mean(study.high_band) < np.mean(study.low_band)
        assert study.welch_p_value < 0.05


def test_broker_curves_shapes(small_platform):
    curves = top_broker_curves(small_platform, seed=1, top_n=5)
    assert len(curves) == 5
    for curve in curves:
        assert curve.workload_grid.shape == curve.expected_signup.shape
        assert curve.observed_workloads.size > 0
        # Unimodal ground truth: the peak is interior, not at the grid edge.
        assert 1 < curve.accustomed_workload < 80
    # Broker-specific: the peaks differ across the top brokers.
    peaks = {curve.accustomed_workload for curve in curves}
    assert len(peaks) > 1


def test_workload_concentration(small_platform):
    concentration = workload_concentration(small_platform, seed=1, top_n=20)
    assert concentration.top_workloads.size == 20
    assert np.all(np.diff(concentration.top_workloads) <= 1e-12)
    # Fig. 4's message: the top broker carries a multiple of the average.
    assert concentration.top1_ratio > 2.0
    assert concentration.city_average > 0
