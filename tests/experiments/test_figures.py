"""ASCII figure rendering."""

import pytest

from repro.experiments.figures import ascii_chart, ascii_histogram


def test_chart_contains_axes_legend_and_glyphs():
    text = ascii_chart(
        [1, 2, 3],
        {"LACB": [1.0, 2.0, 3.0], "Top-3": [3.0, 2.0, 1.0]},
        title="Utility",
    )
    lines = text.splitlines()
    assert lines[0] == "Utility"
    assert "o=LACB" in text and "x=Top-3" in text
    assert "o" in text and "x" in text
    assert any("+" in line and "-" in line for line in lines)  # x axis


def test_chart_value_extents_labelled():
    text = ascii_chart([0, 1], {"s": [5.0, 25.0]})
    assert "25" in text
    assert "5" in text


def test_chart_log_scale():
    text = ascii_chart([1, 2, 3], {"t": [1.0, 100.0, 10000.0]}, log_y=True)
    assert "1.0e+04" in text or "10000" in text
    with pytest.raises(ValueError):
        ascii_chart([1, 2], {"t": [0.0, 1.0]}, log_y=True)


def test_chart_validation():
    with pytest.raises(ValueError):
        ascii_chart([1], {"s": [1.0]})
    with pytest.raises(ValueError):
        ascii_chart([1, 2], {})
    with pytest.raises(ValueError):
        ascii_chart([1, 2], {"s": [1.0, 2.0, 3.0]})
    with pytest.raises(ValueError):
        ascii_chart([1, 2], {"s": [1.0, 2.0]}, width=4)


def test_chart_constant_series():
    text = ascii_chart([1, 2, 3], {"flat": [2.0, 2.0, 2.0]})
    assert "o" in text


def test_histogram_bars_scale():
    text = ascii_histogram(["a", "bb"], [2.0, 4.0], width=10)
    lines = text.splitlines()
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10


def test_histogram_validation():
    with pytest.raises(ValueError):
        ascii_histogram(["a"], [1.0, 2.0])
    with pytest.raises(ValueError):
        ascii_histogram([], [])
    with pytest.raises(ValueError):
        ascii_histogram(["a"], [-1.0])


def test_histogram_zero_values():
    text = ascii_histogram(["a", "b"], [0.0, 0.0])
    assert "a" in text and "b" in text
