"""Text reporting helpers."""

import pytest

from repro.experiments import format_series, format_table


def test_format_table_alignment():
    text = format_table(
        ["algorithm", "utility"],
        [("Top-3", 12.3456), ("LACB", 45.6)],
        title="Results",
    )
    lines = text.splitlines()
    assert lines[0] == "Results"
    assert "algorithm" in lines[1]
    assert "12.35" in text
    assert "LACB" in text


def test_format_table_row_width_mismatch():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [("only-one",)])


def test_float_rendering():
    text = format_table(["x"], [(0.00001,), (123456.0,), (0.0,)])
    assert "1.000e-05" in text
    assert "1.235e+05" in text


def test_format_series():
    text = format_series(
        "|B|",
        [100, 200],
        {"LACB": [1.0, 2.0], "KM": [0.5, 0.7]},
        title="Utility",
    )
    assert text.splitlines()[0] == "Utility"
    assert "|B|" in text
    assert "LACB" in text and "KM" in text
