"""Result persistence: JSON round-trips."""

import numpy as np

from repro.algorithms import make_matcher
from repro.experiments import run_algorithm
from repro.experiments.io import (
    load_run_result,
    load_sweep_result,
    save_run_result,
    save_sweep_result,
)
from repro.experiments.sweeps import SweepResult


def test_run_result_roundtrip(tiny_platform, tmp_path):
    result = run_algorithm(tiny_platform, make_matcher("Top-1", tiny_platform, seed=1))
    path = tmp_path / "run.json"
    save_run_result(result, path)
    loaded = load_run_result(path)
    assert loaded.algorithm == result.algorithm
    assert loaded.total_realized_utility == result.total_realized_utility
    assert loaded.num_assigned == result.num_assigned
    np.testing.assert_allclose(loaded.broker_utility, result.broker_utility)
    np.testing.assert_allclose(loaded.daily_decision_time, result.daily_decision_time)


def test_sweep_result_roundtrip(tmp_path):
    sweep = SweepResult(
        factor="num_brokers",
        values=[10.0, 20.0],
        utilities={"LACB": [1.0, 2.0]},
        times={"LACB": [0.1, 0.2]},
    )
    path = tmp_path / "sweep.json"
    save_sweep_result(sweep, path)
    loaded = load_sweep_result(path)
    assert loaded.factor == "num_brokers"
    assert loaded.values == [10.0, 20.0]
    assert loaded.utilities == {"LACB": [1.0, 2.0]}
    assert loaded.times == {"LACB": [0.1, 0.2]}
