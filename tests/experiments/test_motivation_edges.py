"""Motivation-study edge cases."""

import numpy as np

from repro.experiments import signup_vs_workload, top_broker_curves, workload_concentration
from repro.simulation import SyntheticConfig, generate_city


def _tiny():
    return generate_city(
        SyntheticConfig(num_brokers=15, num_requests=150, num_days=2, imbalance=0.2, seed=12)
    )


def test_no_overload_observed_yields_nan_pvalue():
    platform = _tiny()
    # Threshold far above anything reachable: the above-group is empty.
    study = signup_vs_workload(platform, seed=1, overload_threshold=10_000.0)
    assert np.isnan(study.welch_p_value)
    assert study.high_band == (0.0, 0.0)


def test_bin_width_controls_resolution():
    platform = _tiny()
    coarse = signup_vs_workload(platform, seed=1, bin_width=20)
    fine = signup_vs_workload(platform, seed=1, bin_width=2)
    assert fine.bin_centers.size >= coarse.bin_centers.size


def test_concentration_top_n_clamped():
    platform = _tiny()
    concentration = workload_concentration(platform, seed=1, top_n=500)
    assert concentration.top_workloads.size <= platform.num_brokers


def test_curves_top_n_clamped():
    platform = _tiny()
    curves = top_broker_curves(platform, seed=1, top_n=500)
    assert len(curves) == platform.num_brokers
