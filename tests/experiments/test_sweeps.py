"""Sweeps: structure of Fig. 8 columns and the matching-time profile."""

import pytest

from repro.experiments import matching_time_profile, sweep
from repro.simulation import SyntheticConfig


def test_sweep_rejects_unknown_factor():
    with pytest.raises(ValueError):
        sweep("num_cities", [1], SyntheticConfig())


def test_sweep_structure():
    base = SyntheticConfig(num_brokers=30, num_requests=240, num_days=2, imbalance=0.1, seed=2)
    result = sweep(
        "num_brokers", [20, 40], base, algorithms=("Top-1", "CTop-3"), seed=1
    )
    assert result.factor == "num_brokers"
    assert result.values == [20.0, 40.0]
    assert set(result.utilities) == {"Top-1", "CTop-3"}
    assert len(result.utilities["Top-1"]) == 2
    assert all(t >= 0 for t in result.times["CTop-3"])


def test_utility_grows_with_requests():
    base = SyntheticConfig(num_brokers=30, num_requests=240, num_days=2, imbalance=0.1, seed=2)
    result = sweep("num_requests", [200, 800], base, algorithms=("CTop-3",), seed=1)
    utilities = result.utilities["CTop-3"]
    assert utilities[1] > utilities[0]


def test_matching_time_profile_speedup():
    profile = matching_time_profile(num_brokers=300, batch_size=6, repeats=2)
    assert profile.km_square_seconds > 0
    assert profile.cbs_km_seconds > 0
    # The whole point of CBS (Sec. VI-C): pruning beats the square solve.
    assert profile.speedup > 2.0


def test_speedup_grows_with_imbalance():
    """Fig. 8 column 4: smaller sigma (more brokers per request) => bigger speedup."""
    balanced = matching_time_profile(num_brokers=150, batch_size=12, repeats=2)
    imbalanced = matching_time_profile(num_brokers=450, batch_size=4, repeats=2)
    assert imbalanced.speedup > balanced.speedup
