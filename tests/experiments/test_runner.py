"""Experiment runner: accounting invariants across full runs."""

import numpy as np
import pytest

from repro.algorithms import make_matcher
from repro.experiments import compare_algorithms, run_algorithm


def test_run_result_accounting(tiny_platform):
    result = run_algorithm(tiny_platform, make_matcher("Top-3", tiny_platform, seed=1))
    assert result.algorithm == "Top-3"
    assert result.num_assigned == len(tiny_platform.stream)
    assert result.daily_utility.shape == (tiny_platform.num_days,)
    assert result.total_realized_utility == pytest.approx(result.daily_utility.sum())
    assert result.broker_utility.shape == (tiny_platform.num_brokers,)
    assert result.total_realized_utility == pytest.approx(result.broker_utility.sum())
    # Mean daily workloads sum to requests/day on average.
    assert result.broker_workload.sum() * tiny_platform.num_days == pytest.approx(
        len(tiny_platform.stream)
    )
    assert result.decision_time > 0
    assert result.daily_decision_time.shape == (tiny_platform.num_days,)
    assert np.all(result.broker_peak_workload >= result.broker_workload - 1e-9)


def test_runs_are_reproducible(tiny_platform):
    a = run_algorithm(tiny_platform, make_matcher("KM", tiny_platform, seed=1))
    b = run_algorithm(tiny_platform, make_matcher("KM", tiny_platform, seed=1))
    assert a.total_realized_utility == pytest.approx(b.total_realized_utility)
    np.testing.assert_allclose(a.broker_utility, b.broker_utility)


def test_store_outcomes(tiny_platform):
    result = run_algorithm(
        tiny_platform, make_matcher("Top-1", tiny_platform, seed=1), store_outcomes=True
    )
    assert len(result.outcomes) == tiny_platform.num_days
    lean = run_algorithm(tiny_platform, make_matcher("Top-1", tiny_platform, seed=1))
    assert lean.outcomes == []


def test_compare_algorithms_passes_through_stored_logs(tiny_platform):
    results = compare_algorithms(
        tiny_platform,
        [make_matcher("Top-1", tiny_platform, seed=1), make_matcher("KM", tiny_platform, seed=1)],
        store_outcomes=True,
        store_assignments=True,
    )
    for result in results.values():
        assert len(result.outcomes) == tiny_platform.num_days
        assert result.assignments, result.algorithm
        assert sum(len(a) for a in result.assignments) == result.num_assigned
    lean = compare_algorithms(
        tiny_platform, [make_matcher("Top-1", tiny_platform, seed=1)]
    )
    assert lean["Top-1"].assignments == []
    assert lean["Top-1"].outcomes == []


def test_compare_runs_on_identical_instance(tiny_platform):
    results = compare_algorithms(
        tiny_platform,
        [make_matcher("Top-1", tiny_platform, seed=1), make_matcher("RR", tiny_platform, seed=1)],
    )
    assert set(results) == {"Top-1", "RR"}
    # Both served the full stream: the instance was reset between runs.
    assert results["Top-1"].num_assigned == results["RR"].num_assigned
