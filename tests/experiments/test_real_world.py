"""Real-like city evaluation: structure and headline statistics."""

import numpy as np
import pytest

from repro.experiments import evaluate_city

ALGORITHMS = ("Top-3", "RR", "CTop-3", "LACB")


@pytest.fixture(scope="module")
def city_a():
    # Scale 0.03 is the smallest at which City A's demand concentration
    # makes capacities bind (below it CTop-K degenerates to Top-K).
    return evaluate_city("A", scale=0.03, seed=3, algorithms=ALGORITHMS)


def test_all_algorithms_ran(city_a):
    assert set(city_a.results) == set(ALGORITHMS)
    for run in city_a.results.values():
        assert run.total_realized_utility > 0


def test_capacity_awareness_beats_topk(city_a):
    assert (
        city_a.results["CTop-3"].total_realized_utility
        > city_a.results["Top-3"].total_realized_utility
    )
    assert (
        city_a.results["LACB"].total_realized_utility
        > city_a.results["Top-3"].total_realized_utility
    )


def test_improvement_fractions_recorded(city_a):
    assert "LACB" in city_a.improved_vs_top3
    assert 0.0 <= city_a.improved_vs_top3["LACB"] <= 1.0
    assert 0.0 <= city_a.rr_degraded_vs_top3 <= 1.0
    # Fig. 9: most brokers gain under LACB, and RR hurts a visible minority.
    assert city_a.improved_vs_top3["LACB"] > 0.5


def test_series_accessors(city_a):
    utility_series = city_a.top_utility_series(top_n=10)
    workload_series = city_a.top_workload_series(top_n=10)
    for name in ALGORITHMS:
        assert utility_series[name].shape == (10,)
        assert np.all(np.diff(workload_series[name]) <= 1e-12)


def test_utility_table_rows(city_a):
    rows = city_a.utility_table()
    assert len(rows) == len(ALGORITHMS)
    names = [row[0] for row in rows]
    assert names == list(ALGORITHMS)
