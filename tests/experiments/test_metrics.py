"""Metrics: distributions, improvement fractions, Gini, speedups."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.experiments import (
    fraction_degraded,
    fraction_improved,
    gini,
    overload_rate,
    speedup,
    top_broker_load_ratio,
    utility_distribution,
    workload_distribution,
)
from repro.experiments.metrics import jain_index, overload_severity
from repro.experiments.runner import RunResult


def _result(broker_utility, broker_workload=None, peak=None, time=1.0):
    broker_utility = np.asarray(broker_utility, dtype=float)
    n = broker_utility.size
    workload = np.asarray(
        broker_workload if broker_workload is not None else np.ones(n), dtype=float
    )
    return RunResult(
        algorithm="X",
        total_realized_utility=float(broker_utility.sum()),
        total_predicted_utility=0.0,
        daily_utility=np.array([broker_utility.sum()]),
        broker_utility=broker_utility,
        broker_workload=workload,
        broker_peak_workload=np.asarray(peak if peak is not None else workload, dtype=float),
        broker_signup=np.zeros(n),
        decision_time=time,
        daily_decision_time=np.array([time]),
        num_assigned=0,
    )


def test_distributions_sorted_descending():
    result = _result([1.0, 3.0, 2.0])
    np.testing.assert_array_equal(utility_distribution(result), [3.0, 2.0, 1.0])
    np.testing.assert_array_equal(utility_distribution(result, top_n=2), [3.0, 2.0])
    result2 = _result([0, 0, 0], broker_workload=[5, 1, 9])
    np.testing.assert_array_equal(workload_distribution(result2, top_n=2), [9, 5])


def test_fraction_improved_and_degraded():
    ours = _result([2.0, 1.0, 0.0, 0.0])
    base = _result([1.0, 2.0, 0.0, 0.0])
    assert fraction_improved(ours, base) == pytest.approx(0.5)
    assert fraction_degraded(ours, base) == pytest.approx(0.5)
    # Inactive-in-both brokers are excluded from the denominator.
    ours2 = _result([2.0, 0.0])
    base2 = _result([1.0, 0.0])
    assert fraction_improved(ours2, base2) == pytest.approx(1.0)


def test_overload_rate():
    result = _result([0, 0, 0], peak=[10, 30, 50])
    capacities = np.array([20.0, 20.0, 20.0])
    assert overload_rate(result, capacities) == pytest.approx(2 / 3)
    with pytest.raises(ValueError):
        overload_rate(result, np.ones(2))


def test_overload_severity_distinguishes_regimes():
    capacities = np.array([20.0, 20.0, 20.0, 20.0])
    # One star far past capacity (the Top-K regime)...
    concentrated = _result([0, 0, 0, 0], peak=[80, 5, 5, 5])
    # ...vs everyone slightly at/over capacity (the LACB regime).
    near_capacity = _result([0, 0, 0, 0], peak=[22, 21, 22, 21])
    assert overload_severity(concentrated, capacities) > overload_severity(
        near_capacity, capacities
    )
    # The plain rate metric sees the opposite — that is why severity exists.
    assert overload_rate(concentrated, capacities) < overload_rate(
        near_capacity, capacities
    )
    with pytest.raises(ValueError):
        overload_severity(concentrated, np.ones(2))


def test_top_broker_load_ratio():
    result = _result([0, 0, 0, 0], broker_workload=[12, 2, 2, 0])
    # Average over active brokers = (12 + 2 + 2) / 3.
    assert top_broker_load_ratio(result) == pytest.approx(12 / (16 / 3))


def test_gini_extremes():
    assert gini(np.array([1.0, 1.0, 1.0])) == pytest.approx(0.0, abs=1e-9)
    concentrated = np.zeros(100)
    concentrated[0] = 10.0
    assert gini(concentrated) > 0.95
    assert gini(np.zeros(5)) == 0.0
    with pytest.raises(ValueError):
        gini(np.array([-1.0, 2.0]))
    with pytest.raises(ValueError):
        gini(np.array([]))


@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.integers(1, 30), elements=st.floats(0, 100)))
def test_gini_bounded(values):
    coefficient = gini(values)
    assert -1e-9 <= coefficient < 1.0


def test_jain_index_extremes():
    assert jain_index(np.array([3.0, 3.0, 3.0])) == pytest.approx(1.0)
    concentrated = np.zeros(10)
    concentrated[0] = 5.0
    assert jain_index(concentrated) == pytest.approx(0.1)
    assert jain_index(np.zeros(4)) == 1.0
    with pytest.raises(ValueError):
        jain_index(np.array([]))
    with pytest.raises(ValueError):
        jain_index(np.array([-1.0]))


@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.integers(1, 30), elements=st.floats(0, 100)))
def test_jain_index_bounded(values):
    index = jain_index(values)
    assert 1.0 / values.size - 1e-9 <= index <= 1.0 + 1e-9


@settings(max_examples=40, deadline=None)
@given(arrays(np.float64, st.integers(2, 20), elements=st.floats(0.01, 100)))
def test_gini_and_jain_agree_on_ordering(values):
    """More concentrated (one value doubled) => lower Jain, higher Gini."""
    boosted = values.copy()
    boosted[0] = values.sum() * 2  # force concentration
    assert jain_index(boosted) <= jain_index(np.full_like(values, values.mean())) + 1e-9
    assert gini(boosted) >= gini(np.full_like(values, values.mean())) - 1e-9


def test_speedup():
    fast = _result([1.0], time=0.5)
    slow = _result([1.0], time=5.0)
    assert speedup(fast, slow) == pytest.approx(10.0)
    zero = _result([1.0], time=0.0)
    assert speedup(zero, slow) == float("inf")
