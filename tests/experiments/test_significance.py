"""Multi-seed significance utilities."""

import numpy as np
import pytest

from repro.experiments.significance import (
    Comparison,
    SeededUtilities,
    compare,
    seeded_utilities,
)


def test_seeded_stats():
    sample = SeededUtilities("X", (10.0, 12.0, 14.0))
    assert sample.mean == pytest.approx(12.0)
    assert sample.std == pytest.approx(2.0)
    single = SeededUtilities("X", (10.0,))
    assert single.std == 0.0


def test_compare_detects_clear_gap():
    strong = SeededUtilities("A", (100.0, 101.0, 99.0))
    weak = SeededUtilities("B", (50.0, 52.0, 48.0))
    result = compare(strong, weak)
    assert result.difference == pytest.approx(50.0)
    assert result.significant()


def test_compare_overlapping_samples_not_significant():
    a = SeededUtilities("A", (100.0, 90.0, 110.0))
    b = SeededUtilities("B", (98.0, 108.0, 92.0))
    result = compare(a, b)
    assert not result.significant(level=0.01)


def test_compare_single_seed_nan():
    result = compare(SeededUtilities("A", (1.0,)), SeededUtilities("B", (2.0,)))
    assert np.isnan(result.p_value)
    assert not result.significant()


def test_seeded_utilities_runs(tiny_platform):
    sample = seeded_utilities(tiny_platform, "Top-1", seeds=(1, 2))
    assert sample.algorithm == "Top-1"
    assert len(sample.utilities) == 2
    assert all(u > 0 for u in sample.utilities)


def test_seeded_utilities_requires_seeds(tiny_platform):
    with pytest.raises(ValueError):
        seeded_utilities(tiny_platform, "Top-1", seeds=())
