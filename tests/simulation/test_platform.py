"""Platform environment: day protocol, realization, appeals, fatigue."""

import numpy as np
import pytest

from repro.core.types import AssignedPair, Assignment
from repro.simulation import RealEstatePlatform, SyntheticConfig, generate_city


def _drive_day(platform, day, broker_for_all=None):
    """Assign every request of a day (to one broker, or each row's argmax)."""
    platform.start_day(day)
    for batch in range(platform.batches_per_day):
        requests = platform.batch_requests(day, batch)
        utilities = platform.predicted_utilities(requests)
        pairs = []
        for row, request_id in enumerate(requests):
            broker = broker_for_all if broker_for_all is not None else int(np.argmax(utilities[row]))
            pairs.append(AssignedPair(int(request_id), broker, float(utilities[row, broker])))
        platform.submit_assignment(Assignment(day, batch, pairs))
    return platform.finish_day()


def test_day_protocol_enforced(tiny_platform):
    platform = tiny_platform
    platform.reset()
    with pytest.raises(RuntimeError):
        platform.batch_requests(0, 0)  # day not opened
    platform.start_day(0)
    with pytest.raises(RuntimeError):
        platform.start_day(1)  # previous day still open
    platform.finish_day()
    with pytest.raises(RuntimeError):
        platform.start_day(0)  # days must advance in order
    with pytest.raises(RuntimeError):
        platform.finish_day()  # nothing open


def test_contexts_shape_and_finite(tiny_platform):
    platform = tiny_platform
    platform.reset()
    contexts = platform.start_day(0)
    assert contexts.shape == (platform.num_brokers, platform.context_dim)
    assert np.all(np.isfinite(contexts))
    platform.finish_day()


def test_outcome_accounts_served_requests(tiny_platform):
    platform = tiny_platform
    platform.reset()
    outcome = _drive_day(platform, 0)
    total_requests = sum(
        platform.stream.batch_indices(0, b).size for b in range(platform.batches_per_day)
    )
    assert outcome.workloads.sum() == total_requests
    assert outcome.total_realized_utility > 0
    served = outcome.workloads > 0
    assert np.all(outcome.signup_rates[~served] == 0.0)
    assert np.all(outcome.signup_rates <= 1.0)


def test_overloading_degrades_utility(tiny_platform):
    """Dumping every request on one broker realizes less than spreading."""
    platform = tiny_platform
    platform.reset()
    spread = _drive_day(platform, 0)
    platform.reset()
    concentrated = _drive_day(platform, 0, broker_for_all=int(platform.latent_capacities.argmax()))
    assert concentrated.total_realized_utility < spread.total_realized_utility


def test_fatigue_shrinks_effective_capacity(tiny_platform):
    platform = tiny_platform
    platform.reset()
    target = int(platform.latent_capacities.argmax())
    base_capacity = platform.effective_capacity(0)[target]
    _drive_day(platform, 0, broker_for_all=target)
    # Overloaded yesterday -> fatigued today -> lower effective capacity
    # (compare at equal seasonality by probing the same weekday next week).
    fatigued = platform.effective_capacity(7)[target]
    assert fatigued < base_capacity


def test_reset_restores_clean_state(tiny_platform):
    platform = tiny_platform
    platform.reset()
    first = _drive_day(platform, 0)
    platform.reset()
    second = _drive_day(platform, 0)
    np.testing.assert_array_equal(first.workloads, second.workloads)
    np.testing.assert_allclose(first.realized_utility, second.realized_utility)


def test_appeals_requeue_and_block():
    config = SyntheticConfig(
        num_brokers=20, num_requests=300, num_days=2, imbalance=0.1, seed=4, appeal_rate=0.6
    )
    platform = generate_city(config)
    platform.start_day(0)
    appealed: set[int] = set()
    worst = -1
    for batch in range(10):
        requests = platform.batch_requests(0, batch)
        base = set(platform.stream.batch_indices(0, batch).tolist())
        appealed.update(set(requests.tolist()) - base)
        utilities = platform.predicted_utilities(requests)
        worst = int(np.argmin(utilities.mean(axis=0)))
        pairs = [
            AssignedPair(int(r), worst, float(utilities[i, worst]))
            for i, r in enumerate(requests)
        ]
        platform.submit_assignment(Assignment(0, batch, pairs))
    # With a 0.6 appeal scale and deliberately poor matches, some of the
    # first ten batches re-queue requests into later intervals.
    assert appealed
    blocked_utilities = platform.predicted_utilities(np.array(sorted(appealed)))
    blocked_any = (blocked_utilities == 0.0).any(axis=1)
    assert blocked_any.all()


def test_signup_rate_curve_probe(tiny_platform):
    platform = tiny_platform
    grid = np.arange(1, 60)
    curve = platform.signup_rate_curve(0, grid)
    assert curve.shape == grid.shape
    assert curve.max() <= platform.population.base_quality[0] + 1e-12
    peak = grid[int(np.argmax(curve))]
    assert abs(peak - platform.population.latent_capacity[0]) <= 2.0


def test_invalid_appeal_rate(tiny_platform):
    with pytest.raises(ValueError):
        RealEstatePlatform(tiny_platform.population, tiny_platform.stream, appeal_rate=1.5)
