"""Ground-truth affinity and the deployed utility predictor."""

import numpy as np

from repro.simulation.utility import (
    ground_truth_affinity,
    match_score,
    predicted_utility,
)


def test_match_score_in_unit_interval(tiny_platform):
    scores = match_score(tiny_platform.population, tiny_platform.stream, np.arange(20))
    assert scores.shape == (20, tiny_platform.num_brokers)
    assert scores.min() >= 0.0
    assert scores.max() <= 1.0 + 1e-9


def test_affinity_bounded_by_quality(tiny_platform):
    affinity = ground_truth_affinity(tiny_platform.population, tiny_platform.stream, np.arange(20))
    quality = tiny_platform.population.base_quality[None, :]
    multiplier = tiny_platform.stream.value_multiplier[np.arange(20)][:, None]
    assert np.all(affinity <= quality * multiplier + 1e-12)
    assert np.all(affinity > 0)


def test_prediction_close_to_affinity(tiny_platform):
    indices = np.arange(30)
    affinity = ground_truth_affinity(tiny_platform.population, tiny_platform.stream, indices)
    predicted = predicted_utility(tiny_platform.population, tiny_platform.stream, indices)
    relative_error = np.abs(predicted - affinity) / affinity
    assert np.median(relative_error) < 0.15
    correlation = np.corrcoef(predicted.ravel(), affinity.ravel())[0, 1]
    assert correlation > 0.9


def test_prediction_deterministic(tiny_platform):
    indices = np.arange(10)
    a = predicted_utility(tiny_platform.population, tiny_platform.stream, indices)
    b = predicted_utility(tiny_platform.population, tiny_platform.stream, indices)
    np.testing.assert_array_equal(a, b)


def test_prediction_clipped(tiny_platform):
    predicted = predicted_utility(tiny_platform.population, tiny_platform.stream, np.arange(50))
    assert predicted.min() >= 1e-6
    assert predicted.max() <= 1.0


def test_better_district_fit_higher_affinity(tiny_platform):
    """A broker scores highest on requests from its favourite district."""
    population = tiny_platform.population
    stream = tiny_platform.stream
    broker = 0
    favourite = int(np.argmax(population.district_pref[broker]))
    indices = np.arange(len(stream))
    affinity = ground_truth_affinity(population, stream, indices)[:, broker]
    # Compare raw (value-multiplier-free) affinity across district groups.
    raw = affinity / stream.value_multiplier[indices]
    in_favourite = raw[stream.district[indices] == favourite]
    elsewhere = raw[stream.district[indices] != favourite]
    if in_favourite.size and elsewhere.size:
        assert in_favourite.mean() > elsewhere.mean()
