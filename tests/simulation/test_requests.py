"""Request streams: batching structure, district skew, value profile."""

import numpy as np
import pytest

from repro.simulation.requests import generate_stream


def _stream(**overrides):
    defaults = dict(
        num_requests=500,
        num_days=4,
        batches_per_day=5,
        num_districts=6,
        rng=np.random.default_rng(2),
    )
    defaults.update(overrides)
    return generate_stream(**defaults)


def test_parameter_validation():
    with pytest.raises(ValueError):
        _stream(num_requests=0)
    with pytest.raises(ValueError):
        _stream(intraday_value_amplitude=2.5)


def test_batches_partition_the_stream():
    stream = _stream()
    seen = []
    for day in range(stream.num_days):
        for batch in range(stream.batches_per_day):
            seen.extend(stream.batch_indices(day, batch).tolist())
    assert sorted(seen) == list(range(len(stream)))


def test_batch_sizes_near_even():
    stream = _stream(num_requests=503)
    sizes = [
        stream.batch_indices(day, batch).size
        for day in range(stream.num_days)
        for batch in range(stream.batches_per_day)
    ]
    assert max(sizes) - min(sizes) <= 1
    assert sum(sizes) == 503


def test_day_indices_concatenate_batches():
    stream = _stream()
    day1 = stream.day_indices(1)
    manual = np.concatenate([stream.batch_indices(1, b) for b in range(stream.batches_per_day)])
    np.testing.assert_array_equal(day1, manual)


def test_out_of_range_lookup():
    stream = _stream()
    with pytest.raises(IndexError):
        stream.batch_indices(99, 0)
    with pytest.raises(IndexError):
        stream.day_indices(-1)


def test_feature_matrix_shape_and_onehots():
    stream = _stream()
    indices = np.arange(10)
    features = stream.feature_matrix(indices)
    assert features.shape == (10, stream.num_districts + 3 + 3)
    district_block = features[:, : stream.num_districts]
    np.testing.assert_allclose(district_block.sum(axis=1), 1.0)


def test_district_popularity_skewed():
    stream = _stream(num_requests=5000)
    counts = np.bincount(stream.district, minlength=stream.num_districts)
    assert counts[0] > 2 * counts[-1]  # Zipf-like head


def test_value_multiplier_ramps_within_day():
    stream = _stream(intraday_value_amplitude=0.6)
    first = stream.batch_indices(0, 0)
    last = stream.batch_indices(0, stream.batches_per_day - 1)
    assert stream.value_multiplier[first].mean() == pytest.approx(0.7)
    assert stream.value_multiplier[last].mean() == pytest.approx(1.3)


def test_zero_amplitude_flat_profile():
    stream = _stream(intraday_value_amplitude=0.0)
    np.testing.assert_allclose(stream.value_multiplier, 1.0)
