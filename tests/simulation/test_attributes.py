"""Broker profiles (Table II): generation ranges and vectorization."""

import numpy as np
import pytest

from repro.simulation import generate_profile
from repro.simulation.attributes import EDUCATION_LEVELS, JOB_TITLES, RECENCY_WINDOWS


def test_skill_validation(rng):
    with pytest.raises(ValueError):
        generate_profile(rng, 1.5)


def test_profile_fields_in_range(rng):
    profile = generate_profile(rng, 0.5)
    assert 20 <= profile.age <= 60
    assert 0.5 <= profile.working_years <= 25
    assert profile.education in EDUCATION_LEVELS
    assert profile.title in JOB_TITLES
    assert 0 < profile.response_rate <= 1.0
    assert len(profile.dialogue_rounds) == len(RECENCY_WINDOWS)
    assert len(profile.served_clients) == len(RECENCY_WINDOWS)
    assert abs(sum(profile.district_preference) - 1.0) < 1e-9
    assert abs(sum(profile.type_preference) - 1.0) < 1e-9


def test_windowed_statistics_grow_with_window(rng):
    profile = generate_profile(rng, 0.6)
    # 90-day totals exceed 7-day totals for all windowed attributes.
    for stats in (profile.dialogue_rounds, profile.phone_consultations, profile.transactions):
        assert stats[-1] > stats[0]


def test_vector_is_finite_and_stable(rng):
    profile = generate_profile(rng, 0.4)
    vector = profile.to_vector()
    assert np.all(np.isfinite(vector))
    np.testing.assert_array_equal(vector, profile.to_vector())


def test_vector_dimension_consistent(rng):
    dims = {generate_profile(rng, s).to_vector().size for s in (0.0, 0.5, 1.0)}
    assert len(dims) == 1


def test_skilled_brokers_busier_on_average():
    rng_low = np.random.default_rng(0)
    rng_high = np.random.default_rng(0)
    low = np.mean([generate_profile(rng_low, 0.1).served_clients[0] for _ in range(30)])
    high = np.mean([generate_profile(rng_high, 0.9).served_clients[0] for _ in range(30)])
    assert high > low
