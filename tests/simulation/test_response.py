"""Response curves: unimodality, overload decay, skill scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import ResponseCurve
from repro.simulation.response import sample_response_curve


def test_parameter_validation():
    with pytest.raises(ValueError):
        ResponseCurve(capacity=0.0, ramp=0.2, decay=1.0, sharpness=2.0)
    with pytest.raises(ValueError):
        ResponseCurve(capacity=10.0, ramp=1.0, decay=1.0, sharpness=2.0)
    with pytest.raises(ValueError):
        ResponseCurve(capacity=10.0, ramp=0.2, decay=-1.0, sharpness=2.0)


def test_peak_at_capacity():
    curve = ResponseCurve(capacity=20.0, ramp=0.4, decay=2.0, sharpness=2.0)
    grid = np.arange(1, 80)
    quality = curve.quality(grid)
    assert grid[int(np.argmax(quality))] == 20
    assert quality.max() == pytest.approx(1.0)


def test_ramp_penalizes_underutilization():
    curve = ResponseCurve(capacity=20.0, ramp=0.5, decay=2.0, sharpness=2.0)
    assert curve.quality(1.0) < curve.quality(10.0) < curve.quality(20.0)
    assert curve.quality(0.0) == pytest.approx(0.5)


def test_decay_penalizes_overload():
    curve = ResponseCurve(capacity=20.0, ramp=0.3, decay=3.0, sharpness=2.0)
    assert curve.quality(60.0) < curve.quality(30.0) < curve.quality(20.0)
    assert curve.quality(200.0) < 0.05


def test_capacity_override():
    curve = ResponseCurve(capacity=20.0, ramp=0.3, decay=3.0, sharpness=2.0)
    # Same workload, shrunk effective capacity -> worse quality.
    assert curve.quality(25.0, capacity=15.0) < curve.quality(25.0)


@settings(max_examples=50, deadline=None)
@given(st.floats(0.0, 1.0), st.floats(0.0, 120.0))
def test_quality_in_unit_interval(skill, workload):
    rng = np.random.default_rng(11)
    curve = sample_response_curve(rng, skill)
    value = float(np.asarray(curve.quality(workload)))
    assert 0.0 < value <= 1.0


def test_capacity_grows_with_skill():
    rng = np.random.default_rng(0)
    low = np.mean([sample_response_curve(np.random.default_rng(i), 0.1).capacity for i in range(50)])
    high = np.mean([sample_response_curve(np.random.default_rng(i), 0.9).capacity for i in range(50)])
    assert high > 2 * low


def test_capacity_scale_multiplier():
    base = sample_response_curve(np.random.default_rng(3), 0.5, capacity_scale=1.0)
    scaled = sample_response_curve(np.random.default_rng(3), 0.5, capacity_scale=1.5)
    assert scaled.capacity == pytest.approx(1.5 * base.capacity)
