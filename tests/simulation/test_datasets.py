"""Dataset factories: Table III configs and Table IV-like cities."""

import pytest

from repro.simulation import REAL_CITY_SPECS, SyntheticConfig, generate_city, real_like_city


def test_default_config_matches_table3():
    config = SyntheticConfig()
    assert config.num_brokers == 2000
    assert config.num_requests == 50_000
    assert config.num_days == 14
    assert config.imbalance == pytest.approx(0.015)
    assert config.batch_size == 30  # 0.015 * 2000


def test_config_validation():
    with pytest.raises(ValueError):
        SyntheticConfig(num_brokers=0)
    with pytest.raises(ValueError):
        SyntheticConfig(imbalance=0.0)


def test_batches_cover_requests():
    config = SyntheticConfig(num_brokers=100, num_requests=999, num_days=3, imbalance=0.02)
    total_slots = config.num_days * config.batches_per_day * config.batch_size
    assert total_slots >= config.num_requests


def test_generate_city_dimensions():
    config = SyntheticConfig(num_brokers=25, num_requests=200, num_days=2, imbalance=0.08, seed=1)
    platform = generate_city(config)
    assert platform.num_brokers == 25
    assert platform.num_days == 2
    assert len(platform.stream) == 200


def test_generation_deterministic():
    config = SyntheticConfig(num_brokers=25, num_requests=200, num_days=2, seed=9)
    a = generate_city(config)
    b = generate_city(config)
    assert (a.population.latent_capacity == b.population.latent_capacity).all()
    assert (a.stream.district == b.stream.district).all()


def test_real_city_specs_match_table4():
    assert REAL_CITY_SPECS["A"].brokers == 5515
    assert REAL_CITY_SPECS["A"].requests == 103_106
    assert REAL_CITY_SPECS["B"].brokers == 8155
    assert REAL_CITY_SPECS["B"].requests == 387_339
    assert REAL_CITY_SPECS["C"].brokers == 3689
    assert REAL_CITY_SPECS["C"].requests == 74_831
    # CTop-K empirical capacities of Sec. VII-A.
    assert [REAL_CITY_SPECS[c].empirical_capacity for c in "ABC"] == [45, 55, 40]
    assert all(spec.days == 21 for spec in REAL_CITY_SPECS.values())


def test_real_like_city_scaling():
    platform, spec, config = real_like_city("A", scale=0.02)
    assert platform.num_brokers == round(5515 * 0.02)
    assert config.num_requests == round(103_106 * 0.02)
    assert platform.num_days == 21
    assert spec.name == "A"


def test_real_like_city_validation():
    with pytest.raises(KeyError):
        real_like_city("D")
    with pytest.raises(ValueError):
        real_like_city("A", scale=0.0)


def test_cities_differ():
    a, _, _ = real_like_city("A", scale=0.01)
    c, _, _ = real_like_city("C", scale=0.01)
    assert a.num_brokers != c.num_brokers
