"""Broker populations: arrays, skill correlation, determinism."""

import numpy as np
import pytest

from repro.simulation.brokers import generate_population


def test_validation(rng):
    with pytest.raises(ValueError):
        generate_population(0, 5, rng)


def test_array_shapes(rng):
    population = generate_population(30, 6, rng)
    assert len(population) == 30
    assert population.num_brokers == 30
    assert population.static_context.shape[0] == 30
    assert population.district_pref.shape == (30, 6)
    assert population.type_pref.shape == (30, 3)
    assert population.latent_capacity.shape == (30,)
    assert population.base_quality.shape == (30,)
    assert np.all(np.isfinite(population.static_context))


def test_quality_mean_matches_fig2_band(rng):
    population = generate_population(500, 6, rng)
    # The city-level plateau of Fig. 2 sits around 14-27%.
    assert 0.1 < population.base_quality.mean() < 0.3


def test_capacity_correlates_with_skill(rng):
    population = generate_population(300, 6, rng)
    correlation = np.corrcoef(population.skill, population.latent_capacity)[0, 1]
    assert correlation > 0.8


def test_quality_correlates_with_skill(rng):
    population = generate_population(300, 6, rng)
    correlation = np.corrcoef(population.skill, population.base_quality)[0, 1]
    assert correlation > 0.8


def test_skill_long_tailed(rng):
    population = generate_population(1000, 6, rng)
    assert np.median(population.skill) < population.skill.mean() + 0.05
    assert (population.skill > 0.6).mean() < 0.2  # thin top tail


def test_deterministic_given_seed():
    a = generate_population(20, 4, np.random.default_rng(9))
    b = generate_population(20, 4, np.random.default_rng(9))
    np.testing.assert_array_equal(a.static_context, b.static_context)
    np.testing.assert_array_equal(a.latent_capacity, b.latent_capacity)
