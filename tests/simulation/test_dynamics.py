"""Learning-by-doing dynamics (the Matthew-effect mechanism)."""

import numpy as np
import pytest

from repro.core.types import AssignedPair, Assignment
from repro.simulation import RealEstatePlatform, SyntheticConfig, generate_city


def _platform(skill_growth):
    config = SyntheticConfig(
        num_brokers=30,
        num_requests=600,
        num_days=4,
        imbalance=0.1,
        skill_growth=skill_growth,
        seed=6,
    )
    return generate_city(config)


def _serve_broker(platform, day, broker):
    platform.start_day(day)
    for batch in range(platform.batches_per_day):
        requests = platform.batch_requests(day, batch)
        utilities = platform.predicted_utilities(requests)
        pairs = [
            AssignedPair(int(r), broker, float(utilities[i, broker]))
            for i, r in enumerate(requests)
        ]
        platform.submit_assignment(Assignment(day, batch, pairs))
    return platform.finish_day()


def test_validation(tiny_platform):
    with pytest.raises(ValueError):
        RealEstatePlatform(tiny_platform.population, tiny_platform.stream, skill_growth=-0.1)


def test_rookies_start_below_potential():
    platform = _platform(0.0)
    population = platform.population
    assert np.all(population.base_quality <= population.potential_quality + 1e-12)
    rookies = population.experience < 0.4
    if rookies.any():
        gap = population.potential_quality[rookies] - population.base_quality[rookies]
        assert gap.min() > 0


def test_no_growth_when_disabled():
    platform = _platform(0.0)
    before = platform.population.base_quality.copy()
    _serve_broker(platform, 0, broker=3)
    np.testing.assert_array_equal(platform.population.base_quality, before)


def test_serving_grows_quality_toward_potential():
    platform = _platform(0.05)
    broker = int(np.argmax(platform.population.potential_quality - platform.population.base_quality))
    before = platform.population.base_quality[broker]
    _serve_broker(platform, 0, broker=broker)
    after = platform.population.base_quality[broker]
    assert after > before
    assert after <= platform.population.potential_quality[broker] + 1e-12


def test_idle_brokers_do_not_grow():
    platform = _platform(0.05)
    idle = 7
    served = 3
    before = platform.population.base_quality[idle]
    _serve_broker(platform, 0, broker=served)
    assert platform.population.base_quality[idle] == before


def test_reset_restores_quality():
    platform = _platform(0.05)
    original = platform.population.base_quality.copy()
    _serve_broker(platform, 0, broker=3)
    assert not np.array_equal(platform.population.base_quality, original)
    platform.reset()
    np.testing.assert_array_equal(platform.population.base_quality, original)


def test_growth_raises_future_utilities():
    platform = _platform(0.08)
    broker = int(
        np.argmax(platform.population.potential_quality - platform.population.base_quality)
    )
    probe = platform.stream.batch_indices(1, 0)
    before = platform.predicted_utilities(probe)[:, broker].mean()
    _serve_broker(platform, 0, broker=broker)
    after = platform.predicted_utilities(probe)[:, broker].mean()
    assert after > before
