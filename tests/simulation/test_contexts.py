"""Working-status contexts: dynamic features track assignment history."""

import numpy as np

from repro.core.types import AssignedPair, Assignment
from repro.simulation import SyntheticConfig, generate_city
from repro.simulation.platform import DYNAMIC_CONTEXT_DIM, WORKLOAD_NORM


def _platform():
    return generate_city(
        SyntheticConfig(num_brokers=20, num_requests=400, num_days=3, imbalance=0.1, seed=8)
    )


def _serve(platform, day, broker):
    served = 0
    for batch in range(platform.batches_per_day):
        requests = platform.batch_requests(day, batch)
        utilities = platform.predicted_utilities(requests)
        pairs = [
            AssignedPair(int(r), broker, float(utilities[i, broker]))
            for i, r in enumerate(requests)
        ]
        platform.submit_assignment(Assignment(day, batch, pairs))
        served += len(pairs)
    return served


def test_context_layout():
    platform = _platform()
    contexts = platform.start_day(0)
    static_dim = platform.population.context_dim
    assert contexts.shape[1] == static_dim + DYNAMIC_CONTEXT_DIM
    np.testing.assert_array_equal(contexts[:, :static_dim], platform.population.static_context)
    platform.finish_day()


def test_yesterday_workload_enters_context():
    platform = _platform()
    platform.start_day(0)
    served = _serve(platform, 0, broker=5)
    platform.finish_day()
    contexts = platform.start_day(1)
    static_dim = platform.population.context_dim
    yesterday_feature = contexts[:, static_dim + 3]  # yesterday workload / norm
    assert yesterday_feature[5] == served / WORKLOAD_NORM
    assert yesterday_feature[6] == 0.0
    platform.finish_day()


def test_signup_feedback_enters_context():
    platform = _platform()
    platform.start_day(0)
    _serve(platform, 0, broker=5)
    outcome = platform.finish_day()
    contexts = platform.start_day(1)
    static_dim = platform.population.context_dim
    last_signup_feature = contexts[:, static_dim + 5]
    assert last_signup_feature[5] == outcome.signup_rates[5]
    platform.finish_day()


def test_seasonality_is_weekly():
    platform = _platform()
    base = platform.effective_capacity(0)
    one_week_later = platform.effective_capacity(7)
    np.testing.assert_allclose(base, one_week_later)
    midweek = platform.effective_capacity(2)
    assert not np.allclose(base, midweek)


def test_day_zero_dynamic_features_clean():
    platform = _platform()
    contexts = platform.start_day(0)
    static_dim = platform.population.context_dim
    # fatigue, yesterday workload, mean-7, last signup, total served all zero
    for offset in (0, 3, 4, 5, 6):
        assert np.all(contexts[:, static_dim + offset] == 0.0)
    platform.finish_day()
