"""CSV trace export/import round-trips."""

import csv

import numpy as np
import pytest

from repro.algorithms import make_matcher
from repro.experiments import run_algorithm
from repro.simulation.export import (
    ASSIGNMENT_COLUMNS,
    export_assignments,
    export_city,
    load_assignments,
)


def test_export_city_tables(tiny_platform, tmp_path):
    paths = export_city(tiny_platform, tmp_path)
    with paths["brokers"].open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == tiny_platform.num_brokers
    assert rows[0]["education"] in ("high_school", "undergraduate", "master")
    with paths["requests"].open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == len(tiny_platform.stream)
    assert {row["day"] for row in rows} == {
        str(d) for d in range(tiny_platform.num_days)
    }


def test_city_export_hides_ground_truth(tiny_platform, tmp_path):
    paths = export_city(tiny_platform, tmp_path)
    header = paths["brokers"].read_text().splitlines()[0]
    for secret in ("capacity", "quality", "skill", "potential"):
        assert secret not in header


def test_assignment_roundtrip(tiny_platform, tmp_path):
    result = run_algorithm(
        tiny_platform,
        make_matcher("Top-1", tiny_platform, seed=1),
        store_assignments=True,
    )
    assert result.assignments  # per-pair log was kept
    path = export_assignments(result.assignments, tmp_path / "assignments.csv")
    requests, brokers, utilities = load_assignments(path)
    assert requests.size == result.num_assigned
    assert brokers.min() >= 0 and brokers.max() < tiny_platform.num_brokers
    assert np.all(utilities > 0)


def test_load_rejects_malformed(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("request_id,broker_id\n1,2\n")
    with pytest.raises(ValueError):
        load_assignments(path)


def test_runner_skips_log_by_default(tiny_platform):
    result = run_algorithm(tiny_platform, make_matcher("Top-1", tiny_platform, seed=1))
    assert result.assignments == []
