"""Environment calibration against the paper's Sec. II statistics."""

import pytest

from repro.simulation import SyntheticConfig
from repro.simulation.calibration import (
    CalibrationTargets,
    CityStatistics,
    calibrate_capacity_scale,
    calibration_error,
    measure_city,
)

CONFIG = SyntheticConfig(
    num_brokers=80, num_requests=2400, num_days=4, imbalance=0.03, seed=2
)


def test_measure_city_statistics():
    statistics = measure_city(CONFIG, seed=3)
    assert 0.0 < statistics.plateau_low <= statistics.plateau_high <= 1.0
    assert statistics.top1_ratio > 1.0
    assert statistics.knee > 0


def test_error_zero_at_targets():
    targets = CalibrationTargets()
    perfect = CityStatistics(
        plateau_low=targets.plateau_low,
        plateau_high=targets.plateau_high,
        top1_ratio=targets.top1_ratio,
        knee=targets.overload_knee,
    )
    assert calibration_error(perfect, targets) == pytest.approx(0.0)


def test_error_grows_with_mismatch():
    targets = CalibrationTargets()
    near = CityStatistics(0.15, 0.26, 11.0, 38.0)
    far = CityStatistics(0.01, 0.9, 2.0, 100.0)
    assert calibration_error(near, targets) < calibration_error(far, targets)


def test_calibrate_capacity_scale_picks_minimum():
    best, errors = calibrate_capacity_scale(
        CONFIG, candidates=(0.8, 1.2), seed=3
    )
    assert best in errors
    assert errors[best] == min(errors.values())
    assert len(errors) == 2


def test_calibrate_requires_candidates():
    with pytest.raises(ValueError):
        calibrate_capacity_scale(CONFIG, candidates=())
