"""LACB matcher: wiring of estimation, assignment and feedback."""

import numpy as np

from repro.algorithms import LACBMatcher
from repro.bandits import NNUCBBandit, PersonalizedCapacityEstimator
from repro.core.config import AssignmentConfig, BanditConfig, LACBConfig
from repro.core.types import DayOutcome


def _config(**assignment_overrides):
    return LACBConfig(
        bandit=BanditConfig(
            candidate_capacities=np.array([5.0, 10.0, 20.0]),
            hidden_sizes=(8,),
            min_arm_pulls=1,
        ),
        assignment=AssignmentConfig(**assignment_overrides),
        warmup_days=1,
    )


def test_name_reflects_cbs(rng):
    plain = LACBMatcher(4, 6, rng, _config(use_cbs=False))
    opt = LACBMatcher(4, 6, np.random.default_rng(0), _config(use_cbs=True))
    assert plain.name == "LACB"
    assert opt.name == "LACB-Opt"


def test_personalization_toggle(rng):
    personalized = LACBMatcher(4, 6, rng, _config())
    assert isinstance(personalized.estimator, PersonalizedCapacityEstimator)
    config = _config()
    config.personalize = False
    generic = LACBMatcher(4, 6, np.random.default_rng(0), config)
    assert isinstance(generic.estimator, NNUCBBandit)


def test_day_cycle_updates_state(rng):
    matcher = LACBMatcher(4, 6, rng, _config(), batches_per_day=3)
    contexts = rng.normal(size=(6, 4))
    matcher.begin_day(0, contexts)
    assert matcher.estimated_capacities.shape == (6,)
    utilities = rng.uniform(0.1, 1.0, size=(2, 6))
    assignment = matcher.assign_batch(0, 0, np.array([0, 1]), utilities)
    assert len(assignment) == 2
    outcome = DayOutcome(
        day=0,
        workloads=np.array([1, 1, 0, 0, 0, 0]),
        signup_rates=np.array([0.2, 0.1, 0, 0, 0, 0]),
        realized_utility=np.array([0.3, 0.2, 0, 0, 0, 0]),
    )
    base = matcher.estimator.base
    before = base.num_updates
    matcher.end_day(0, outcome, contexts)
    assert base.num_updates == before + 2


def test_personalization_waits_for_warmup(rng):
    matcher = LACBMatcher(4, 6, rng, _config(), batches_per_day=3)
    contexts = rng.normal(size=(6, 4))
    outcome = DayOutcome(
        day=0,
        workloads=np.array([2, 0, 0, 0, 0, 0]),
        signup_rates=np.array([0.2, 0, 0, 0, 0, 0]),
        realized_utility=np.array([0.4, 0, 0, 0, 0, 0]),
    )
    matcher.begin_day(0, contexts)
    matcher.end_day(0, outcome, contexts)  # day 0 < warmup_days=1
    assert not matcher.estimator._history
    matcher.begin_day(1, contexts)
    outcome1 = DayOutcome(
        day=1,
        workloads=outcome.workloads,
        signup_rates=outcome.signup_rates,
        realized_utility=outcome.realized_utility,
    )
    matcher.end_day(1, outcome1, contexts)
    assert 0 in matcher.estimator._history


def test_bandit_reward_is_signup_rate(rng):
    matcher = LACBMatcher(4, 2, rng, _config(), batches_per_day=2)
    contexts = rng.normal(size=(2, 4))
    matcher.begin_day(0, contexts)
    outcome = DayOutcome(
        day=0,
        workloads=np.array([4, 0]),
        signup_rates=np.array([0.37, 0.0]),
        realized_utility=np.array([1.5, 0.0]),
    )
    matcher.end_day(0, outcome, contexts)
    stored = matcher.estimator.base._buffer[-1]
    assert stored.reward == 0.37
