"""Top-K recommendation: client choice, concentration behaviour."""

import numpy as np
import pytest

from repro.algorithms import TopKRecommender


def test_k_validation(rng):
    with pytest.raises(ValueError):
        TopKRecommender(0, rng)


def test_top1_picks_argmax(rng):
    matcher = TopKRecommender(1, rng)
    utilities = np.array([[0.1, 0.9, 0.3], [0.5, 0.2, 0.6]])
    assignment = matcher.assign_batch(0, 0, np.array([7, 8]), utilities)
    assert [pair.broker_id for pair in assignment.pairs] == [1, 2]
    assert [pair.request_id for pair in assignment.pairs] == [7, 8]


def test_every_request_served(rng):
    matcher = TopKRecommender(3, rng)
    utilities = rng.uniform(size=(10, 6))
    assignment = matcher.assign_batch(0, 0, np.arange(10), utilities)
    assert len(assignment) == 10


def test_choice_within_recommended_set(rng):
    matcher = TopKRecommender(3, rng)
    utilities = rng.uniform(size=(50, 8))
    assignment = matcher.assign_batch(0, 0, np.arange(50), utilities)
    for row, pair in enumerate(assignment.pairs):
        top3 = set(np.argsort(utilities[row])[-3:])
        assert pair.broker_id in top3


def test_greedy_client_picks_best_of_k(rng):
    matcher = TopKRecommender(3, rng, greedy_client=True)
    utilities = rng.uniform(size=(20, 5))
    assignment = matcher.assign_batch(0, 0, np.arange(20), utilities)
    for row, pair in enumerate(assignment.pairs):
        assert pair.broker_id == int(np.argmax(utilities[row]))


def test_k_larger_than_pool(rng):
    matcher = TopKRecommender(10, rng)
    utilities = rng.uniform(size=(4, 3))
    assignment = matcher.assign_batch(0, 0, np.arange(4), utilities)
    assert len(assignment) == 4


def test_concentrates_on_top_brokers(rng):
    """The overloaded phenomenon: one hot broker absorbs the demand."""
    matcher = TopKRecommender(1, rng)
    utilities = np.tile(np.linspace(0.1, 0.9, 10), (40, 1))
    assignment = matcher.assign_batch(0, 0, np.arange(40), utilities)
    assert assignment.broker_load() == {9: 40}


def test_empty_batch(rng):
    matcher = TopKRecommender(3, rng)
    assignment = matcher.assign_batch(0, 0, np.array([], dtype=int), np.zeros((0, 4)))
    assert len(assignment) == 0
