"""Algorithm registry: every name builds, configuration plumbs through."""

import pytest

from repro.algorithms import ALGORITHM_NAMES, make_matcher
from repro.algorithms.ctopk import ConstrainedTopKRecommender
from repro.algorithms.lacb import LACBMatcher


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_every_name_builds(name, tiny_platform):
    matcher = make_matcher(name, tiny_platform, seed=3)
    assert matcher.name == name


def test_unknown_name(tiny_platform):
    with pytest.raises(KeyError):
        make_matcher("GPT", tiny_platform)


def test_empirical_capacity_reaches_ctopk(tiny_platform):
    matcher = make_matcher("CTop-3", tiny_platform, empirical_capacity=55.0)
    assert isinstance(matcher, ConstrainedTopKRecommender)
    assert matcher.capacity == 55.0


def test_lacb_opt_enables_cbs(tiny_platform):
    matcher = make_matcher("LACB-Opt", tiny_platform)
    assert isinstance(matcher, LACBMatcher)
    assert matcher.config.assignment.use_cbs is True
    plain = make_matcher("LACB", tiny_platform)
    assert plain.config.assignment.use_cbs is False


def test_batches_per_day_plumbed(tiny_platform):
    matcher = make_matcher("LACB", tiny_platform)
    assert matcher.assigner.batches_per_day == tiny_platform.batches_per_day
