"""Per-batch KM: optimality within a batch, capacity obliviousness."""

import numpy as np
import pytest

from repro.algorithms import BatchKMMatcher
from repro.matching import solve_assignment


def test_batch_is_optimal(rng):
    matcher = BatchKMMatcher()
    utilities = rng.uniform(0.05, 1.0, size=(5, 12))
    assignment = matcher.assign_batch(0, 0, np.arange(5), utilities)
    optimal = solve_assignment(utilities)
    assert assignment.predicted_utility == pytest.approx(optimal.total_weight)


def test_one_request_per_broker_within_batch(rng):
    matcher = BatchKMMatcher()
    utilities = rng.uniform(0.05, 1.0, size=(6, 10))
    assignment = matcher.assign_batch(0, 0, np.arange(6), utilities)
    brokers = [pair.broker_id for pair in assignment.pairs]
    assert len(brokers) == len(set(brokers))


def test_no_memory_across_batches(rng):
    """KM is capacity-oblivious: the same broker can win every batch."""
    matcher = BatchKMMatcher()
    utilities = np.zeros((1, 4))
    utilities[0, 2] = 0.9
    matcher.begin_day(0, np.zeros((4, 2)))
    winners = []
    for batch in range(5):
        assignment = matcher.assign_batch(0, batch, np.array([batch]), utilities)
        winners.append(assignment.pairs[0].broker_id)
    assert winners == [2] * 5


def test_pad_square_same_result(rng):
    utilities = rng.uniform(0.05, 1.0, size=(3, 15))
    fast = BatchKMMatcher().assign_batch(0, 0, np.arange(3), utilities)
    square = BatchKMMatcher(pad_square=True).assign_batch(0, 0, np.arange(3), utilities)
    assert fast.predicted_utility == pytest.approx(square.predicted_utility)


def test_empty_batch():
    matcher = BatchKMMatcher()
    assignment = matcher.assign_batch(0, 0, np.array([], dtype=int), np.zeros((0, 4)))
    assert len(assignment) == 0
