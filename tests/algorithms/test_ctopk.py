"""CTop-K: the empirical capacity cap on top of Top-K."""

import numpy as np
import pytest

from repro.algorithms import ConstrainedTopKRecommender


def _matcher(rng, k=1, num_brokers=5, capacity=3.0, **kwargs):
    return ConstrainedTopKRecommender(k, num_brokers, capacity, rng, **kwargs)


def test_validation(rng):
    with pytest.raises(ValueError):
        _matcher(rng, k=0)
    with pytest.raises(ValueError):
        _matcher(rng, capacity=0.0)


def test_capacity_cap_diverts_demand(rng):
    matcher = _matcher(rng, k=1, capacity=2.0)
    matcher.begin_day(0, np.zeros((5, 2)))
    # Broker 4 dominates; after 2 requests it is capped and broker 3 takes over.
    utilities = np.tile(np.linspace(0.1, 0.9, 5), (6, 1))
    assignment = matcher.assign_batch(0, 0, np.arange(6), utilities)
    load = assignment.broker_load()
    assert load[4] == 2
    assert load[3] == 2
    assert load[2] == 2


def test_workload_resets_each_day(rng):
    matcher = _matcher(rng, k=1, num_brokers=2, capacity=1.0)
    utilities = np.array([[0.1, 0.9]])
    matcher.begin_day(0, np.zeros((2, 2)))
    first = matcher.assign_batch(0, 0, np.array([0]), utilities)
    assert first.pairs[0].broker_id == 1
    matcher.begin_day(1, np.zeros((2, 2)))
    second = matcher.assign_batch(1, 0, np.array([1]), utilities)
    assert second.pairs[0].broker_id == 1  # cap cleared overnight


def test_all_capped_stops_serving(rng):
    matcher = _matcher(rng, k=1, num_brokers=2, capacity=1.0)
    matcher.begin_day(0, np.zeros((2, 2)))
    utilities = np.tile([[0.5, 0.6]], (5, 1))
    assignment = matcher.assign_batch(0, 0, np.arange(5), utilities)
    assert len(assignment) == 2  # one per broker, then everyone capped


def test_choice_within_open_topk(rng):
    matcher = _matcher(rng, k=3, num_brokers=10, capacity=100.0)
    matcher.begin_day(0, np.zeros((10, 2)))
    utilities = rng.uniform(size=(30, 10))
    assignment = matcher.assign_batch(0, 0, np.arange(30), utilities)
    for row, pair in enumerate(assignment.pairs):
        top3 = set(np.argsort(utilities[row])[-3:])
        assert pair.broker_id in top3
