"""Greedy batch matcher: approximation behaviour within batches."""

import numpy as np

from repro.algorithms import BatchKMMatcher, GreedyBatchMatcher


def test_half_approximation_of_km(rng):
    greedy = GreedyBatchMatcher()
    km = BatchKMMatcher()
    for _ in range(10):
        utilities = rng.uniform(0.05, 1.0, size=(5, 12))
        greedy_value = greedy.assign_batch(0, 0, np.arange(5), utilities).predicted_utility
        km_value = km.assign_batch(0, 0, np.arange(5), utilities).predicted_utility
        assert greedy_value >= 0.5 * km_value - 1e-9
        assert greedy_value <= km_value + 1e-9


def test_one_request_per_broker(rng):
    matcher = GreedyBatchMatcher()
    utilities = rng.uniform(0.05, 1.0, size=(6, 10))
    assignment = matcher.assign_batch(0, 0, np.arange(6), utilities)
    brokers = [pair.broker_id for pair in assignment.pairs]
    assert len(brokers) == len(set(brokers))
    assert len(assignment) == 6


def test_empty_batch():
    matcher = GreedyBatchMatcher()
    assignment = matcher.assign_batch(0, 0, np.array([], dtype=int), np.zeros((0, 3)))
    assert len(assignment) == 0


def test_registry_builds_greedy(tiny_platform):
    from repro.algorithms import make_matcher

    matcher = make_matcher("Greedy", tiny_platform, seed=1)
    assert matcher.name == "Greedy"
