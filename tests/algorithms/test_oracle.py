"""Oracle-capacity matcher: the diagnostic skyline."""

import numpy as np

from repro.algorithms import make_matcher
from repro.algorithms.oracle import OracleCapacityMatcher
from repro.experiments import run_algorithm


def test_oracle_uses_effective_capacities(tiny_platform, rng):
    matcher = OracleCapacityMatcher(tiny_platform, rng)
    tiny_platform.reset()
    contexts = tiny_platform.start_day(0)
    matcher.begin_day(0, contexts)
    np.testing.assert_allclose(
        matcher.assigner.capacities, tiny_platform.effective_capacity(0)
    )
    tiny_platform.finish_day()


def test_oracle_not_in_registry(tiny_platform):
    import pytest

    with pytest.raises(KeyError):
        make_matcher("Oracle", tiny_platform)


def test_oracle_dominates_fixed_caps(small_platform, rng):
    """The skyline beats the capacity-unaware and fixed-capacity baselines."""
    oracle = run_algorithm(small_platform, OracleCapacityMatcher(small_platform, rng))
    topk = run_algorithm(small_platform, make_matcher("Top-3", small_platform, seed=3))
    ctopk = run_algorithm(small_platform, make_matcher("CTop-3", small_platform, seed=3))
    assert oracle.total_realized_utility > topk.total_realized_utility
    assert oracle.total_realized_utility > ctopk.total_realized_utility
