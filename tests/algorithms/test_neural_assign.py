"""AN baseline: bandit-driven capacities + capacity-capped KM."""

import numpy as np

from repro.algorithms import NeuralUCBAssignment
from repro.core.config import BanditConfig
from repro.core.types import DayOutcome


def _matcher(rng, num_brokers=6, context_dim=4):
    config = BanditConfig(
        candidate_capacities=np.array([5.0, 10.0, 20.0]),
        hidden_sizes=(8,),
        min_arm_pulls=1,
    )
    return NeuralUCBAssignment(context_dim, num_brokers, rng, bandit_config=config)


def test_begin_day_installs_capacities(rng):
    matcher = _matcher(rng)
    matcher.begin_day(0, rng.normal(size=(6, 4)))
    capacities = matcher.assigner.capacities
    assert capacities.shape == (6,)
    assert all(c in matcher.bandit.capacities for c in capacities)


def test_assignment_respects_estimated_capacity(rng):
    matcher = _matcher(rng)
    matcher.begin_day(0, rng.normal(size=(6, 4)))
    utilities = rng.uniform(0.1, 1.0, size=(3, 6))
    for batch in range(30):
        matcher.assign_batch(0, batch, np.arange(3) + 3 * batch, utilities)
    assert np.all(matcher.assigner.workloads <= matcher.assigner.capacities)


def test_no_value_function_or_cbs(rng):
    matcher = _matcher(rng)
    assert matcher.assigner.config.use_value_function is False
    assert matcher.assigner.config.use_cbs is False


def test_end_day_feeds_bandit(rng):
    matcher = _matcher(rng)
    contexts = rng.normal(size=(6, 4))
    matcher.begin_day(0, contexts)
    outcome = DayOutcome(
        day=0,
        workloads=np.array([3, 0, 1, 0, 0, 2]),
        signup_rates=np.array([0.2, 0.0, 0.1, 0.0, 0.0, 0.3]),
        realized_utility=np.array([0.5, 0.0, 0.1, 0.0, 0.0, 0.6]),
    )
    before = matcher.bandit.num_updates
    matcher.end_day(0, outcome, contexts)
    assert matcher.bandit.num_updates == before + 3  # served brokers only
