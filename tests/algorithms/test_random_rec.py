"""Randomized Recommendation: quality-weighted sampling, feedback."""

import numpy as np
import pytest

from repro.algorithms import RandomizedRecommender
from repro.core.types import DayOutcome


def test_validation(rng):
    with pytest.raises(ValueError):
        RandomizedRecommender(0, rng)


def test_serves_every_request(rng):
    matcher = RandomizedRecommender(8, rng)
    matcher.begin_day(0, np.zeros((8, 2)))
    utilities = rng.uniform(size=(15, 8))
    assignment = matcher.assign_batch(0, 0, np.arange(15), utilities)
    assert len(assignment) == 15
    assert all(0 <= pair.broker_id < 8 for pair in assignment.pairs)


def test_uniform_before_feedback(rng):
    matcher = RandomizedRecommender(4, rng)
    matcher.begin_day(0, np.zeros((4, 2)))
    np.testing.assert_allclose(matcher._day_weights, 0.25)


def test_feedback_shifts_weights(rng):
    matcher = RandomizedRecommender(3, rng)
    outcome = DayOutcome(
        day=0,
        workloads=np.array([5, 5, 0]),
        signup_rates=np.array([0.5, 0.05, 0.0]),
        realized_utility=np.array([1.0, 0.1, 0.0]),
    )
    matcher.end_day(0, outcome, np.zeros((3, 2)))
    matcher.begin_day(1, np.zeros((3, 2)))
    weights = matcher._day_weights
    assert weights[0] > weights[1]
    assert weights.sum() == pytest.approx(1.0)


def test_spreads_load_vs_topk(rng):
    """RR's purpose: avoid concentration even with skewed utilities."""
    matcher = RandomizedRecommender(10, rng)
    matcher.begin_day(0, np.zeros((10, 2)))
    utilities = np.tile(np.linspace(0.1, 0.9, 10), (200, 1))
    assignment = matcher.assign_batch(0, 0, np.arange(200), utilities)
    load = assignment.broker_load()
    assert len(load) >= 8  # nearly every broker gets something
    assert max(load.values()) < 60
