"""Incremental-matching knobs wired through the matchers.

``AssignmentConfig(incremental=True, utility_cache=True)`` (and the
matching ``BatchKMMatcher`` flags) must never change results — only the
route by which repeated solves are computed.
"""

import numpy as np
import pytest

from repro import perf
from repro.algorithms import BatchKMMatcher
from repro.core.config import AssignmentConfig, BanditConfig, LACBConfig
from repro.engine import MatcherSpec, PlatformSpec, RunSpec
from repro.engine.executor import execute_spec
from repro.simulation import SyntheticConfig


def _pairs(assignment):
    return [(pair.request_id, pair.broker_id, pair.utility) for pair in assignment.pairs]


def _batch_stream(rng, steps=12, shape=(6, 14)):
    current = rng.uniform(0.05, 1.0, size=shape)
    stream = [current]
    for step in range(steps - 1):
        if step % 4 == 3:
            current = rng.uniform(0.05, 1.0, size=shape)
        else:
            current = current.copy()
            current[shape[0] - 1] = rng.uniform(0.05, 1.0, size=shape[1])
        stream.append(current)
    return stream


def test_km_incremental_matches_cold_over_batches(rng):
    warm = BatchKMMatcher(incremental=True)
    cold = BatchKMMatcher()
    with perf.use_fast_kernels(True):
        for batch, utilities in enumerate(_batch_stream(rng)):
            ids = np.arange(utilities.shape[0])
            assert _pairs(warm.assign_batch(0, batch, ids, utilities)) == _pairs(
                cold.assign_batch(0, batch, ids, utilities)
            )
    assert warm._incremental_solver is not None
    assert warm._incremental_solver.stats["warm"] > 0


def test_km_incremental_inert_under_reference_kernels(rng):
    matcher = BatchKMMatcher(incremental=True)
    utilities = rng.uniform(0.05, 1.0, size=(4, 9))
    with perf.use_fast_kernels(False):
        matcher.assign_batch(0, 0, np.arange(4), utilities)
    assert matcher._incremental_solver is None


def test_km_incremental_inert_for_other_backends(rng):
    matcher = BatchKMMatcher(backend="scipy", incremental=True)
    utilities = rng.uniform(0.05, 1.0, size=(4, 9))
    with perf.use_fast_kernels(True):
        matcher.assign_batch(0, 0, np.arange(4), utilities)
    assert matcher._incremental_solver is None


def _lacb_spec(incremental, utility_cache, use_cbs=True, seed=11):
    return MatcherSpec(
        "LACB-Opt" if use_cbs else "LACB",
        seed=seed,
        lacb_config=LACBConfig(
            bandit=BanditConfig(),
            assignment=AssignmentConfig(
                use_cbs=use_cbs,
                incremental=incremental,
                utility_cache=utility_cache,
            ),
        ),
    )


@pytest.fixture(scope="module")
def platform_spec():
    return PlatformSpec.synthetic(
        SyntheticConfig(num_brokers=12, num_requests=90, num_days=3, seed=3)
    )


@pytest.mark.parametrize("use_cbs", [False, True])
def test_lacb_run_unchanged_by_the_knobs(platform_spec, use_cbs):
    with perf.use_fast_kernels(True):
        plain = execute_spec(
            RunSpec(platform=platform_spec, matcher=_lacb_spec(False, False, use_cbs))
        )
        tuned = execute_spec(
            RunSpec(platform=platform_spec, matcher=_lacb_spec(True, True, use_cbs))
        )
    assert tuned.total_realized_utility == plain.total_realized_utility
    assert tuned.total_predicted_utility == plain.total_predicted_utility
    assert tuned.num_assigned == plain.num_assigned
    np.testing.assert_array_equal(tuned.daily_utility, plain.daily_utility)
    np.testing.assert_array_equal(tuned.broker_utility, plain.broker_utility)


def test_lacb_incremental_checkpoint_resume_round_trip(tmp_path, platform_spec):
    root = str(tmp_path)
    with perf.use_fast_kernels(True):
        straight = execute_spec(
            RunSpec(
                platform=platform_spec,
                matcher=_lacb_spec(True, True),
                checkpoint_dir=root,
            )
        )
        resumed = execute_spec(
            RunSpec(
                platform=platform_spec,
                matcher=_lacb_spec(True, True),
                resume_from=root,
            )
        )
    assert resumed.total_realized_utility == straight.total_realized_utility
    np.testing.assert_array_equal(resumed.daily_utility, straight.daily_utility)
