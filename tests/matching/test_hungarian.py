"""Hungarian solver: optimality vs independent oracles, padding modes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.matching import (
    assert_valid_matching,
    greedy_assignment,
    hungarian,
    min_cost_flow_assignment,
    solve_assignment,
)


def test_square_minimization_matches_scipy(rng):
    for _ in range(20):
        n = int(rng.integers(1, 10))
        cost = rng.normal(size=(n, n))
        col_of_row = hungarian(cost)
        ours = cost[np.arange(n), col_of_row].sum()
        rows, cols = linear_sum_assignment(cost)
        assert ours == pytest.approx(cost[rows, cols].sum())


def test_rectangular_requires_rows_leq_cols(rng):
    with pytest.raises(ValueError):
        hungarian(rng.normal(size=(5, 3)))


def test_rejects_non_finite():
    with pytest.raises(ValueError):
        hungarian(np.array([[1.0, np.inf], [0.0, 1.0]]))


def test_empty_matrix():
    assert hungarian(np.zeros((0, 0))).size == 0
    result = solve_assignment(np.zeros((0, 5)))
    assert result.pairs == [] and result.total_weight == 0.0


def test_known_instance():
    # Classic 3x3 assignment with a unique optimum.
    weights = np.array(
        [
            [0.9, 0.1, 0.1],
            [0.1, 0.8, 0.2],
            [0.2, 0.3, 0.7],
        ]
    )
    result = solve_assignment(weights)
    assert result.pairs == [(0, 0), (1, 1), (2, 2)]
    assert result.total_weight == pytest.approx(2.4)


def test_unmatched_preferred_over_negative_edge():
    weights = np.array([[-1.0, -2.0], [0.5, -3.0]])
    result = solve_assignment(weights)
    assert result.pairs == [(1, 0)]
    assert result.total_weight == pytest.approx(0.5)


def test_transposed_orientation(rng):
    weights = rng.uniform(0, 1, size=(8, 3))
    result = solve_assignment(weights)
    assert_valid_matching(result, weights)
    flipped = solve_assignment(weights.T)
    assert result.total_weight == pytest.approx(flipped.total_weight)


def test_minimize_rectangular_rejected(rng):
    with pytest.raises(ValueError):
        solve_assignment(rng.uniform(size=(2, 5)), maximize=False)


def test_unknown_backend(rng):
    with pytest.raises(ValueError):
        solve_assignment(rng.uniform(size=(2, 2)), backend="torch")


@pytest.mark.parametrize("backend", ["repro", "scipy"])
def test_backends_agree(rng, backend):
    for _ in range(15):
        r, c = int(rng.integers(1, 12)), int(rng.integers(1, 12))
        weights = rng.uniform(0, 1, size=(r, c))
        reference = solve_assignment(weights, backend="scipy")
        result = solve_assignment(weights, backend=backend)
        assert result.total_weight == pytest.approx(reference.total_weight)
        assert_valid_matching(result, weights)


def test_pad_square_equivalent(rng):
    for shape in [(3, 20), (10, 10), (7, 40)]:
        weights = rng.uniform(0, 1, size=shape)
        rect = solve_assignment(weights)
        square = solve_assignment(weights, pad_square=True)
        assert square.total_weight == pytest.approx(rect.total_weight)
        assert_valid_matching(square, weights)


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 7), st.integers(1, 7), st.integers(0, 10_000))
def test_optimality_against_min_cost_flow(n_rows, n_cols, seed):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.0, 1.0, size=(n_rows, n_cols))
    ours = solve_assignment(weights)
    flow = min_cost_flow_assignment(weights)
    assert ours.total_weight == pytest.approx(flow.total_weight)
    assert_valid_matching(ours, weights)
    greedy = greedy_assignment(weights)
    assert greedy.total_weight <= ours.total_weight + 1e-9


# ----------------------------------------------------------------------
# Regression: zero-weight matched pairs must not be dropped
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["repro", "scipy"])
def test_zero_weight_pair_is_reported(backend):
    """A genuine zero-utility edge the solver selects is a real match.

    The dummy-padding filter used to discard any pair with weight 0, which
    silently unmatched requests whose best broker had exactly zero utility.
    Dummy columns are now recognised by column index, not by weight.
    """
    result = solve_assignment(np.array([[0.0]]), backend=backend)
    assert result.pairs == [(0, 0)]
    assert result.total_weight == 0.0


@pytest.mark.parametrize("backend", ["repro", "scipy"])
def test_zero_weight_pair_survives_alongside_negative_column(backend):
    # The optimum matches row 0 to the zero column (0.0 > -2.0); that pair
    # must be reported even though its weight equals the dummy padding value.
    result = solve_assignment(np.array([[0.0, -2.0]]), backend=backend)
    assert result.pairs == [(0, 0)]
    assert result.total_weight == 0.0


def test_zero_weight_pair_reported_with_pad_square():
    result = solve_assignment(np.array([[0.0]]), pad_square=True)
    assert result.pairs == [(0, 0)]
