"""Incremental KM solver: bit-identity with the cold reference in every mode."""

import numpy as np
import pytest

from repro.matching import IncrementalKMSolver, solve_assignment
from repro.matching.validation import assert_valid_matching
from repro.state.protocol import StateError


def cold(weights):
    return solve_assignment(weights, maximize=True, backend="repro")


def assert_bit_identical(warm, weights):
    reference = cold(weights)
    assert warm.pairs == reference.pairs
    assert warm.total_weight == reference.total_weight  # bitwise, not approx
    assert_valid_matching(warm, weights)


def test_first_solve_is_cold_and_exact():
    rng = np.random.default_rng(0)
    weights = rng.uniform(0.0, 5.0, size=(6, 10))
    solver = IncrementalKMSolver()
    assert_bit_identical(solver.solve(weights), weights)
    assert solver.stats["cold"] == 1
    assert solver.stats["hit"] == solver.stats["warm"] == 0


def test_identical_resolve_is_a_hit():
    rng = np.random.default_rng(1)
    weights = rng.uniform(0.0, 5.0, size=(5, 8))
    solver = IncrementalKMSolver()
    first = solver.solve(weights)
    second = solver.solve(weights.copy())
    assert solver.stats["hit"] == 1
    assert second.pairs == first.pairs
    assert second.total_weight == first.total_weight
    # The hit returns a fresh result object, not an alias into the solver.
    second.pairs.append((99, 99))
    assert solver.solve(weights).pairs == first.pairs


def test_tail_row_delta_reinserts_only_the_tail():
    rng = np.random.default_rng(2)
    weights = rng.uniform(0.0, 5.0, size=(8, 12))
    solver = IncrementalKMSolver()
    solver.solve(weights)
    perturbed = weights.copy()
    perturbed[6:] = rng.uniform(0.0, 5.0, size=(2, 12))
    before = solver.stats["rows_reinserted"]
    assert_bit_identical(solver.solve(perturbed), perturbed)
    assert solver.stats["warm"] == 1
    assert solver.stats["rows_reinserted"] - before == 2


def test_interior_delta_can_fast_forward():
    rng = np.random.default_rng(3)
    weights = rng.uniform(0.0, 5.0, size=(10, 30))
    solver = IncrementalKMSolver()
    solver.solve(weights)
    perturbed = weights.copy()
    # Make row 2's change value-irrelevant-looking but still a new value:
    # the solver must re-insert from row 3 (1-based) and may reconverge.
    perturbed[2] = rng.uniform(0.0, 5.0, size=30)
    assert_bit_identical(solver.solve(perturbed), perturbed)
    assert solver.stats["warm"] == 1
    # Fast-forward is opportunistic; when it fires, rows are skipped but
    # the result above already proved bit-identity either way.
    if solver.stats["fast_forward"]:
        assert solver.stats["rows_skipped"] > 0


def test_full_redraw_falls_back_to_cold():
    rng = np.random.default_rng(4)
    solver = IncrementalKMSolver()
    solver.solve(rng.uniform(0.0, 5.0, size=(6, 9)))
    redrawn = rng.uniform(0.0, 5.0, size=(6, 9))
    assert_bit_identical(solver.solve(redrawn), redrawn)
    assert solver.stats["cold"] == 2


def test_shape_change_falls_back_to_cold():
    rng = np.random.default_rng(5)
    solver = IncrementalKMSolver()
    solver.solve(rng.uniform(0.0, 5.0, size=(6, 9)))
    grown = rng.uniform(0.0, 5.0, size=(7, 11))
    assert_bit_identical(solver.solve(grown), grown)
    assert solver.stats["cold"] == 2


def test_tie_storm_matches_reference_tie_resolution():
    solver = IncrementalKMSolver()
    weights = np.full((5, 7), 2.0)
    assert_bit_identical(solver.solve(weights), weights)
    weights2 = weights.copy()
    weights2[4] = 1.0  # tail delta over a fully tied prefix
    assert_bit_identical(solver.solve(weights2), weights2)
    assert solver.stats["warm"] == 1


def test_transposed_orientation_with_broker_side_delta():
    # Tall matrix (requests > brokers): the oriented working matrix is the
    # transpose, so perturbing trailing *columns* (brokers) of the original
    # is the warm case, while perturbing trailing requests touches every
    # oriented row and goes cold.  Both must stay bit-identical.
    rng = np.random.default_rng(6)
    weights = rng.uniform(0.0, 5.0, size=(9, 4))
    solver = IncrementalKMSolver()
    assert_bit_identical(solver.solve(weights), weights)
    broker_delta = weights.copy()
    broker_delta[:, 3] = rng.uniform(0.0, 5.0, size=9)
    assert_bit_identical(solver.solve(broker_delta), broker_delta)
    assert solver.stats["warm"] == 1
    request_delta = broker_delta.copy()
    request_delta[8] = rng.uniform(0.0, 5.0, size=4)
    assert_bit_identical(solver.solve(request_delta), request_delta)
    assert solver.stats["cold"] == 2


def test_column_ids_change_forces_cold_solve():
    rng = np.random.default_rng(7)
    weights = rng.uniform(0.0, 5.0, size=(4, 6))
    solver = IncrementalKMSolver()
    solver.solve(weights, column_ids=np.array([1, 2, 3, 5, 8, 13]))
    # Same values, different column identities: no reuse.
    assert_bit_identical(
        solver.solve(weights, column_ids=np.array([1, 2, 3, 5, 8, 21])), weights
    )
    assert solver.stats["cold"] == 2
    # Same identities again: full hit.
    solver.solve(weights, column_ids=np.array([1, 2, 3, 5, 8, 21]))
    assert solver.stats["hit"] == 1


def test_degenerate_shapes():
    solver = IncrementalKMSolver()
    assert solver.solve(np.zeros((0, 5))).pairs == []
    assert solver.solve(np.zeros((3, 0))).pairs == []
    single = np.array([[4.0]])
    assert_bit_identical(solver.solve(single), single)


def test_input_validation():
    solver = IncrementalKMSolver()
    with pytest.raises(ValueError):
        solver.solve(np.ones((2, 2)), maximize=False)
    with pytest.raises(ValueError):
        solver.solve(np.ones(3))
    with pytest.raises(ValueError):
        solver.solve(np.array([[1.0, np.nan]]))


def test_reset_forgets_the_trajectory():
    rng = np.random.default_rng(8)
    weights = rng.uniform(0.0, 5.0, size=(4, 6))
    solver = IncrementalKMSolver()
    solver.solve(weights)
    solver.reset()
    assert_bit_identical(solver.solve(weights), weights)
    assert solver.stats["cold"] == 2
    assert solver.stats["hit"] == 0


def test_snapshot_roundtrip_preserves_warm_behavior():
    rng = np.random.default_rng(9)
    weights = rng.uniform(0.0, 5.0, size=(6, 9))
    solver = IncrementalKMSolver()
    solver.solve(weights)
    snap = solver.snapshot()

    twin = IncrementalKMSolver()
    twin.restore(snap)
    assert twin.stats == solver.stats

    perturbed = weights.copy()
    perturbed[5] = rng.uniform(0.0, 5.0, size=9)
    from_twin = twin.solve(perturbed)
    from_original = solver.solve(perturbed)
    assert from_twin.pairs == from_original.pairs
    assert from_twin.total_weight == from_original.total_weight
    assert twin.stats == solver.stats
    assert twin.stats["warm"] == 1


def test_snapshot_before_any_solve_roundtrips():
    solver = IncrementalKMSolver()
    twin = IncrementalKMSolver()
    twin.restore(solver.snapshot())
    rng = np.random.default_rng(10)
    weights = rng.uniform(0.0, 5.0, size=(3, 5))
    assert_bit_identical(twin.solve(weights), weights)


def test_restore_rejects_inconsistent_snapshot():
    rng = np.random.default_rng(11)
    solver = IncrementalKMSolver()
    solver.solve(rng.uniform(0.0, 5.0, size=(3, 5)))
    snap = solver.snapshot()
    snap["payload"]["pairs"] = None  # trajectory present, result missing
    with pytest.raises(StateError):
        IncrementalKMSolver().restore(snap)


def test_long_mixed_sequence_stays_exact():
    rng = np.random.default_rng(12)
    solver = IncrementalKMSolver()
    current = rng.uniform(0.0, 5.0, size=(7, 11))
    for step in range(40):
        draw = step % 5
        if draw == 0:
            current = current.copy()
        elif draw == 4:
            current = rng.uniform(0.0, 5.0, size=(7, 11))
        else:
            current = current.copy()
            k = int(rng.integers(1, 4))
            current[7 - k:] = rng.uniform(0.0, 5.0, size=(k, 11))
        assert_bit_identical(solver.solve(current), current)
    assert solver.stats["hit"] > 0
    assert solver.stats["warm"] > 0
    assert solver.stats["cold"] > 0
