"""Auction solver: exactness vs Hungarian, validation, backend plumbing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import (
    assert_valid_matching,
    auction_assignment,
    solve_assignment,
)


def test_parameter_validation(rng):
    with pytest.raises(ValueError):
        auction_assignment(np.zeros(3))
    with pytest.raises(ValueError):
        auction_assignment(np.array([[1.0, -0.2]]))
    with pytest.raises(ValueError):
        auction_assignment(np.ones((2, 2)), scaling_factor=1.0)


def test_empty_and_zero():
    assert auction_assignment(np.zeros((0, 3))).pairs == []
    result = auction_assignment(np.zeros((3, 3)))
    assert result.pairs == [] and result.total_weight == 0.0


def test_known_instance():
    weights = np.array(
        [
            [0.9, 0.1, 0.1],
            [0.1, 0.8, 0.2],
            [0.2, 0.3, 0.7],
        ]
    )
    result = auction_assignment(weights)
    assert result.pairs == [(0, 0), (1, 1), (2, 2)]
    assert result.total_weight == pytest.approx(2.4)


def test_tall_matrix(rng):
    weights = rng.uniform(0.05, 1.0, size=(9, 4))
    result = auction_assignment(weights)
    assert_valid_matching(result, weights)
    reference = solve_assignment(weights)
    assert result.total_weight == pytest.approx(reference.total_weight, abs=1e-6)


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 10), st.integers(1, 10), st.integers(0, 10_000))
def test_matches_hungarian_property(n_rows, n_cols, seed):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.0, 1.0, size=(n_rows, n_cols))
    result = auction_assignment(weights)
    reference = solve_assignment(weights)
    assert_valid_matching(result, weights)
    assert result.total_weight == pytest.approx(reference.total_weight, abs=1e-6)


def test_available_as_backend(rng):
    weights = rng.uniform(0.05, 1.0, size=(4, 20))
    via_backend = solve_assignment(weights, backend="auction")
    direct = auction_assignment(weights)
    assert via_backend.total_weight == pytest.approx(direct.total_weight)


def test_backend_rejects_minimization(rng):
    with pytest.raises(ValueError):
        solve_assignment(rng.uniform(size=(3, 3)), maximize=False, backend="auction")
