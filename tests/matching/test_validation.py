"""Matching validation helpers."""

import pytest

from repro.matching import MatchResult, assert_valid_matching, is_valid_matching


def test_valid_partial_matching():
    result = MatchResult(pairs=[(0, 1), (2, 0)], total_weight=1.0)
    assert is_valid_matching(result, n_rows=3, n_cols=2)


def test_duplicate_row_invalid():
    result = MatchResult(pairs=[(0, 1), (0, 0)], total_weight=1.0)
    assert not is_valid_matching(result, 3, 2)


def test_duplicate_col_invalid():
    result = MatchResult(pairs=[(0, 1), (2, 1)], total_weight=1.0)
    assert not is_valid_matching(result, 3, 2)


def test_out_of_range_invalid():
    assert not is_valid_matching(MatchResult(pairs=[(5, 0)], total_weight=0.0), 3, 2)
    assert not is_valid_matching(MatchResult(pairs=[(0, -1)], total_weight=0.0), 3, 2)


def test_non_finite_weight_invalid():
    result = MatchResult(pairs=[(0, 0)], total_weight=float("nan"))
    assert not is_valid_matching(result, 1, 1)


def test_assert_valid_checks_total(rng):
    weights = rng.uniform(size=(2, 2))
    good = MatchResult(pairs=[(0, 0)], total_weight=float(weights[0, 0]))
    assert_valid_matching(good, weights)
    bad = MatchResult(pairs=[(0, 0)], total_weight=float(weights[0, 0]) + 1.0)
    with pytest.raises(AssertionError):
        assert_valid_matching(bad, weights)


def test_assert_valid_rejects_structure(rng):
    weights = rng.uniform(size=(2, 2))
    broken = MatchResult(pairs=[(0, 0), (1, 0)], total_weight=0.0)
    with pytest.raises(AssertionError):
        assert_valid_matching(broken, weights)
