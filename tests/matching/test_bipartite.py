"""Bipartite helpers: padding, match-result accessors, submatrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import MatchResult, pad_to_square
from repro.matching.bipartite import utility_submatrix


def test_pad_wider(rng):
    weights = rng.uniform(size=(2, 5))
    padded = pad_to_square(weights)
    assert padded.shape == (5, 5)
    np.testing.assert_array_equal(padded[:2, :], weights)
    assert np.all(padded[2:, :] == 0.0)


def test_pad_taller_with_fill(rng):
    weights = rng.uniform(size=(4, 2))
    padded = pad_to_square(weights, fill=-1.0)
    assert padded.shape == (4, 4)
    np.testing.assert_array_equal(padded[:, :2], weights)
    assert np.all(padded[:, 2:] == -1.0)


def test_pad_square_returns_copy(rng):
    weights = rng.uniform(size=(3, 3))
    padded = pad_to_square(weights)
    padded[0, 0] += 1.0
    assert weights[0, 0] != padded[0, 0]


def test_pad_rejects_non_matrix():
    with pytest.raises(ValueError):
        pad_to_square(np.zeros(3))


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 8), st.integers(1, 8))
def test_pad_shape_property(rows, cols):
    padded = pad_to_square(np.ones((rows, cols)))
    side = max(rows, cols)
    assert padded.shape == (side, side)
    assert padded.sum() == rows * cols  # fill contributes nothing


def test_match_result_accessors():
    result = MatchResult(pairs=[(0, 3), (2, 1)], total_weight=1.5)
    assert len(result) == 2
    assert result.row_to_col() == {0: 3, 2: 1}
    assert result.col_to_row() == {3: 0, 1: 2}


def test_utility_submatrix(rng):
    utilities = rng.uniform(size=(5, 7))
    sub = utility_submatrix(utilities, [1, 3], [0, 2, 6])
    assert sub.shape == (2, 3)
    assert sub[1, 2] == utilities[3, 6]
