"""Greedy matcher: validity, approximation guarantee, edge filtering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import assert_valid_matching, greedy_assignment, solve_assignment


def test_takes_heaviest_edges_first():
    weights = np.array([[0.9, 0.5], [0.8, 0.1]])
    result = greedy_assignment(weights)
    # 0.9 first, blocking (1, 0); then (1, 1) at 0.1.
    assert dict(result.pairs) == {0: 0, 1: 1}
    assert result.total_weight == pytest.approx(1.0)


def test_min_weight_filters_edges():
    weights = np.array([[0.9, 0.5], [0.8, 0.1]])
    result = greedy_assignment(weights, min_weight=0.2)
    assert dict(result.pairs) == {0: 0}


def test_skips_nonpositive_edges():
    weights = np.array([[0.0, -0.5]])
    assert greedy_assignment(weights).pairs == []


def test_rejects_non_matrix():
    with pytest.raises(ValueError):
        greedy_assignment(np.zeros(4))


def test_ties_resolve_to_smallest_row_col():
    # Regression: reversing an ascending argsort resolved equal weights to
    # the *largest* flat index, so an all-tie row matched its last column.
    result = greedy_assignment(np.array([[0.5, 0.5, 0.5]]))
    assert result.pairs == [(0, 0)]
    # Ties across rows likewise fill in ascending (row, col) order.
    square = greedy_assignment(np.full((2, 2), 0.7))
    assert square.pairs == [(0, 0), (1, 1)]


def test_tie_order_matches_exact_backends_on_uniform_matrix():
    weights = np.full((3, 5), 0.3)
    greedy = greedy_assignment(weights)
    exact = solve_assignment(weights, backend="repro")
    assert greedy.pairs == exact.pairs


def test_negative_min_weight_is_rejected():
    # Regression: a negative floor used to be silently overridden by the
    # nonpositive-edge cutoff; the contract is now pinned as an error.
    with pytest.raises(ValueError, match="min_weight"):
        greedy_assignment(np.array([[0.5, -0.2]]), min_weight=-1.0)


def test_zero_min_weight_still_skips_nonpositive_edges():
    result = greedy_assignment(np.array([[0.0, -0.5, 0.4]]), min_weight=0.0)
    assert result.pairs == [(0, 2)]


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 10_000))
def test_half_approximation_property(rows, cols, seed):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.01, 1.0, size=(rows, cols))
    greedy = greedy_assignment(weights)
    optimal = solve_assignment(weights)
    assert_valid_matching(greedy, weights)
    assert greedy.total_weight >= 0.5 * optimal.total_weight - 1e-9
    assert greedy.total_weight <= optimal.total_weight + 1e-9
