"""Min-cost-flow assignment: validity, optimality vs scipy, networkx check."""

import networkx as nx
import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.matching import assert_valid_matching, min_cost_flow_assignment


def test_simple_instance():
    weights = np.array([[0.9, 0.1], [0.2, 0.8]])
    result = min_cost_flow_assignment(weights)
    assert dict(result.pairs) == {0: 0, 1: 1}
    assert result.total_weight == pytest.approx(1.7)


def test_rejects_negative_weights():
    with pytest.raises(ValueError):
        min_cost_flow_assignment(np.array([[1.0, -0.1]]))


def test_rejects_non_matrix():
    with pytest.raises(ValueError):
        min_cost_flow_assignment(np.zeros(3))


def test_empty():
    result = min_cost_flow_assignment(np.zeros((0, 4)))
    assert result.pairs == [] and result.total_weight == 0.0


def test_optimal_vs_scipy(rng):
    for _ in range(25):
        r, c = int(rng.integers(1, 9)), int(rng.integers(1, 9))
        weights = rng.uniform(0.05, 1.0, size=(r, c))
        result = min_cost_flow_assignment(weights)
        assert_valid_matching(result, weights)
        rows, cols = linear_sum_assignment(-weights)
        assert result.total_weight == pytest.approx(weights[rows, cols].sum())


def test_agrees_with_networkx_matching(rng):
    weights = rng.uniform(0.05, 1.0, size=(6, 6))
    result = min_cost_flow_assignment(weights)
    graph = nx.Graph()
    for row in range(6):
        for col in range(6):
            graph.add_edge(("r", row), ("c", col), weight=weights[row, col])
    matching = nx.max_weight_matching(graph, maxcardinality=False)
    nx_total = sum(graph.edges[edge]["weight"] for edge in matching)
    assert result.total_weight == pytest.approx(nx_total)
