"""Baseline tracking: extraction, windows, noise bands, regressions."""

import json

import pytest

from repro.obs.baseline import (
    TRAJECTORY_SCHEMA,
    append_entry,
    baseline_value,
    compare_artifact,
    default_artifacts,
    extract_entry,
    load_trajectory,
    run_baseline,
)

HOTPATH = {
    "bench": "hotpath",
    "smoke": False,
    "repeats": 5,
    "scoring": {"speedup": 4.5, "vectorized_seconds": 0.01},
    "cbs": {"speedup": 2.1},
}
OVERHEAD = {"bench": "obs_overhead", "smoke": True, "overhead_ratio": 1.02}


def test_extract_entry_keeps_only_tracked_ratios():
    entry = extract_entry(HOTPATH, recorded="2026-08-08T00:00:00Z")
    assert entry["bench"] == "hotpath"
    assert entry["smoke"] is False
    assert entry["metrics"] == {"scoring.speedup": 4.5, "cbs.speedup": 2.1}
    # Absolute seconds never enter the trajectory: machine-dependent.
    assert "scoring.vectorized_seconds" not in entry["metrics"]


def test_extract_entry_rejects_untagged_and_unknown():
    with pytest.raises(ValueError, match="bench"):
        extract_entry({"overhead_ratio": 1.0})
    with pytest.raises(ValueError, match="no tracked metrics"):
        extract_entry({"bench": "mystery"})
    with pytest.raises(ValueError, match="none of the tracked"):
        extract_entry({"bench": "hotpath"})


def test_append_and_load_roundtrip(tmp_path):
    path = tmp_path / "BENCH_trajectory.json"
    append_entry(path, HOTPATH, recorded="2026-08-08T00:00:00Z")
    append_entry(path, OVERHEAD, recorded="2026-08-08T00:01:00Z")
    trajectory = load_trajectory(path)
    assert trajectory["schema"] == TRAJECTORY_SCHEMA
    assert [e["bench"] for e in trajectory["entries"]] == ["hotpath", "obs_overhead"]
    with pytest.raises(ValueError, match="schema"):
        (tmp_path / "bad.json").write_text('{"schema": "nope"}')
        load_trajectory(tmp_path / "bad.json")


def _trajectory(values, bench="hotpath", smoke=False, metric="scoring.speedup"):
    return {
        "schema": TRAJECTORY_SCHEMA,
        "entries": [
            {"bench": bench, "smoke": smoke, "metrics": {metric: value}}
            for value in values
        ],
    }


def test_baseline_is_median_of_trailing_window():
    trajectory = _trajectory([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 100.0])
    value, samples = baseline_value(trajectory, "hotpath", False, "scoring.speedup", window=5)
    assert samples == 5
    assert value == 5.0  # median of [3, 4, 5, 6, 100] — robust to the spike
    value, _ = baseline_value(trajectory, "hotpath", False, "scoring.speedup", window=4)
    assert value == 5.5  # even window: mean of the middle pair


def test_smoke_entries_never_mix_with_full_entries():
    trajectory = _trajectory([10.0], smoke=True)
    assert baseline_value(trajectory, "hotpath", False, "scoring.speedup") == (None, 0)
    value, samples = baseline_value(trajectory, "hotpath", True, "scoring.speedup")
    assert (value, samples) == (10.0, 1)


def test_compare_flags_regressions_beyond_band_only():
    trajectory = _trajectory([4.0, 4.0, 4.0])
    # Within the 30% relative band of a 4.0 baseline: ok.
    ok = compare_artifact(dict(HOTPATH, scoring={"speedup": 3.0}), trajectory)
    by_metric = {c.metric: c for c in ok}
    assert by_metric["scoring.speedup"].status == "ok"
    assert by_metric["scoring.speedup"].band == pytest.approx(1.2)
    # Beyond the band: regression (higher_is_better, so a drop fails).
    bad = compare_artifact(dict(HOTPATH, scoring={"speedup": 2.7}), trajectory)
    assert {c.metric: c.status for c in bad}["scoring.speedup"] == "regression"
    # cbs.speedup has no history: informational, never a failure.
    assert by_metric["cbs.speedup"].status == "no-baseline"


def test_overhead_regression_direction_is_inverted():
    trajectory = _trajectory([1.02], bench="obs_overhead", smoke=True, metric="overhead_ratio")
    faster = compare_artifact(dict(OVERHEAD, overhead_ratio=0.99), trajectory)
    assert faster[0].status == "ok"
    slower = compare_artifact(dict(OVERHEAD, overhead_ratio=1.10), trajectory)
    assert slower[0].status == "regression"
    assert slower[0].band == pytest.approx(0.05)  # abs_tol floor


def test_run_baseline_compares_before_appending(tmp_path):
    artifact = tmp_path / "BENCH_obs_overhead.json"
    artifact.write_text(json.dumps(OVERHEAD))
    trajectory_path = tmp_path / "BENCH_trajectory.json"

    first, appended = run_baseline([str(artifact)], str(trajectory_path), append=True)
    assert first[0].status == "no-baseline"
    assert len(appended) == 1

    # Second run: judged against history (the just-appended entry), and the
    # fresh numbers are never compared against themselves.
    second, _ = run_baseline([str(artifact)], str(trajectory_path), append=True)
    assert second[0].status == "ok"
    assert second[0].baseline == pytest.approx(1.02)
    assert len(load_trajectory(trajectory_path)["entries"]) == 2


def test_default_artifacts_excludes_trajectory(tmp_path):
    (tmp_path / "BENCH_hotpath.json").write_text("{}")
    (tmp_path / "BENCH_trajectory.json").write_text("{}")
    (tmp_path / "notes.json").write_text("{}")
    paths = default_artifacts(tmp_path)
    assert [p.rsplit("/", 1)[1] for p in paths] == ["BENCH_hotpath.json"]
