"""Live streaming telemetry: crash-safety, reader merge, partial views."""

import json
import os

import pytest

from repro.engine import MatcherSpec, PlatformSpec, RunSpec, run_many
from repro.engine.loop import DayLoopEngine
from repro.obs.stream import (
    STREAM_SCHEMA,
    TelemetryStreamWriter,
    read_segment,
    read_stream,
    segment_name,
    stream_dir_for,
)
from repro.obs.telemetry import Telemetry, use as use_telemetry
from repro.simulation import SyntheticConfig, generate_city
from repro.state.hook import RunInterrupted, StopAfterDay

TINY = SyntheticConfig(num_brokers=15, num_requests=60, num_days=3, imbalance=0.1, seed=5)


def _specs(names=("Top-3", "LACB-Opt")):
    return [
        RunSpec(platform=PlatformSpec.synthetic(TINY), matcher=MatcherSpec(name, seed=1))
        for name in names
    ]


def _comparable(registry):
    return [
        entry
        for entry in registry.to_dict()["metrics"]
        if entry["kind"] in ("counter", "histogram")
    ]


def test_writer_appends_sequenced_records(tmp_path):
    telemetry = Telemetry()
    writer = TelemetryStreamWriter(tmp_path, segment="run")
    telemetry.registry.counter("events").inc()
    writer.flush(telemetry, day=0)
    telemetry.registry.counter("events").inc()
    writer.flush(telemetry, day=1, final=True)

    segment = read_segment(tmp_path / "run.jsonl")
    assert segment.seq == 1
    assert segment.flushes == 2
    assert segment.day == 1
    assert segment.final
    # Registry snapshots are cumulative: the last one holds both events.
    assert segment.registry_state["metrics"][0]["state"]["value"] == 2.0


def test_reader_tolerates_torn_tail(tmp_path):
    telemetry = Telemetry()
    writer = TelemetryStreamWriter(tmp_path, segment="run")
    telemetry.registry.counter("events").inc()
    writer.flush(telemetry, day=0)
    writer.flush(telemetry, day=1)
    path = tmp_path / "run.jsonl"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"schema": "' + STREAM_SCHEMA + '", "seq": 2, "day": 2, "tru')

    segment = read_segment(path)
    # The torn record is dropped; the last complete flush wins.
    assert segment.seq == 1
    assert segment.day == 1
    assert not segment.final


def test_reader_rejects_corrupt_sequence(tmp_path):
    path = tmp_path / "run.jsonl"
    for seq in (0, 0):
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"schema": STREAM_SCHEMA, "seq": seq}) + "\n")
    with pytest.raises(ValueError, match="seq"):
        read_segment(path)


def test_empty_or_missing_stream_dir_yields_empty_view(tmp_path):
    assert read_stream(tmp_path / "nope").segments == []
    view = read_stream(tmp_path)
    assert view.segments == []
    assert not view.complete


def test_run_many_segments_merge_bit_identical_to_parent(tmp_path):
    telemetry = Telemetry()
    telemetry.stream_dir = str(tmp_path)
    run_many(_specs(), jobs=2, telemetry=telemetry)

    view = read_stream(tmp_path)
    assert len(view.segments) == 2
    assert view.complete
    # Segment names are index-prefixed, so reader order is spec order and
    # the reconstructed registry equals the parent's merge bit for bit —
    # quantile sketches included (they ride in histogram state).
    assert [s.segment for s in view.segments] == [
        segment_name(i, spec.run_id()) for i, spec in enumerate(_specs())
    ]
    assert _comparable(view.merged_registry()) == _comparable(telemetry.registry)
    assert view.spans(), "span deltas must ride along"


def test_spans_merge_returns_copies_not_aliases(tmp_path):
    """Regression: StreamView.spans() used to rewrite `span.pid = lane` on
    the shared SegmentView records, so reading per-segment spans after a
    merged view saw the merged lanes instead of the recorded pids."""
    for name in ("a", "b"):
        telemetry = Telemetry()
        with telemetry.tracer.span("phase"):
            pass
        writer = TelemetryStreamWriter(tmp_path, segment=name)
        writer.flush(telemetry, day=0, final=True)

    view = read_stream(tmp_path)
    before = [[span.pid for span in segment.spans] for segment in view.segments]
    merged = view.spans()
    assert [span.pid for span in merged] == [0, 1]  # one lane per segment
    after = [[span.pid for span in segment.spans] for segment in view.segments]
    assert after == before == [[0], [0]]
    # And the copies really are copies — mutating one never leaks back.
    merged[0].pid = 99
    assert view.segments[0].spans[0].pid == 0


def test_merged_registry_percentiles_survive_prior_spans_calls(tmp_path):
    """Round-trip: quantile queries on the merged registry are identical
    whether or not spans() was called (and called repeatedly) first."""
    telemetry = Telemetry()
    telemetry.stream_dir = str(tmp_path)
    run_many(_specs(), jobs=2, telemetry=telemetry)

    view = read_stream(tmp_path)
    untouched = read_stream(tmp_path)
    view.spans()
    view.spans()  # repeated merges must be idempotent too
    for registry in (view.merged_registry(), untouched.merged_registry()):
        timer = registry.timer("engine.assign_batch", algorithm="Top-3")
        assert timer.count > 0
    assert _comparable(view.merged_registry()) == _comparable(untouched.merged_registry())


def test_segment_name_pad_width_scales_with_total():
    """Regression: a fixed 4-digit pad breaks 'lexicographic order = spec
    order' at >= 10000 specs (\"10000-\" sorts before \"2-\")."""
    assert segment_name(2, "r") == "0002-r"
    assert segment_name(2, "r", total=12000) == "00002-r"
    names = [segment_name(i, "r", total=12000) for i in (0, 2, 9999, 10000, 11999)]
    assert names == sorted(names)
    with pytest.raises(ValueError, match="pad"):
        segment_name(10000, "r")  # the 4-digit default cannot hold it
    with pytest.raises(ValueError, match="pad"):
        segment_name(10**7, "r", total=10**7)  # index beyond total still caught


def test_progress_records_carry_live_quality_and_latency(tmp_path):
    telemetry = Telemetry()
    telemetry.stream_dir = str(tmp_path)
    run_many(_specs(("Top-3",)), jobs=1, telemetry=telemetry)
    (segment,) = read_stream(tmp_path).segments
    progress = segment.progress
    assert progress["algorithm"] == "Top-3"
    assert progress["day"] == TINY.num_days - 1
    assert progress["requests"] == TINY.num_requests
    assert progress["assign_p99"] >= progress["assign_p50"] > 0
    assert 0.0 <= progress["utilization"] <= 1.0
    assert progress["requests_per_second"] > 0


def test_kill_mid_run_leaves_recoverable_partial_stream(tmp_path):
    """A hard kill between day boundaries loses at most the current day.

    StopAfterDay raises from on_day_end *before* the auto-attached
    telemetry hook flushes that day — the realistic crash ordering — so
    the stream must hold every day strictly before the kill day, marked
    non-final, and the reader must reconstruct a valid registry from it.
    """
    telemetry = Telemetry()
    telemetry.stream = TelemetryStreamWriter(stream_dir_for(tmp_path), segment="main")
    platform = generate_city(TINY)
    matcher = MatcherSpec("Top-3", seed=1).build(platform)
    with use_telemetry(telemetry):
        with pytest.raises(RunInterrupted):
            DayLoopEngine().run(platform, matcher, hooks=(StopAfterDay(1),))

    view = read_stream(stream_dir_for(tmp_path))
    (segment,) = view.segments
    assert not segment.final
    assert not view.complete
    assert segment.day == 0  # day 1's flush died with the run
    registry = view.merged_registry()
    assert registry.counter("engine.days", algorithm="Top-3").value == 1
    # The partial registry's sketches answer quantile queries sanely.
    timer = registry.timer("engine.assign_batch", algorithm="Top-3")
    assert timer.count > 0
    assert timer.quantile(0.99) >= timer.quantile(0.5)


def test_report_falls_back_to_stream_for_crashed_run(tmp_path):
    from repro.obs.report import load_telemetry_dir, render_report

    telemetry = Telemetry()
    telemetry.stream_dir = stream_dir_for(tmp_path)
    run_many(_specs(("Top-3",)), jobs=1, telemetry=telemetry)
    # Simulate a crash before export: no metrics.json was ever written.
    assert not os.path.exists(tmp_path / "metrics.json")

    manifest, registry = load_telemetry_dir(tmp_path)
    assert manifest is None
    assert registry.counter("engine.runs", algorithm="Top-3").value == 1
    text = render_report(tmp_path)
    assert "metrics.json missing" in text
    assert "engine.assign_batch" in text


def test_report_on_manifest_only_directory_never_raises(tmp_path):
    from repro.obs.report import render_report
    from repro.state.io import atomic_write_json

    atomic_write_json(tmp_path / "manifest.json", {"command": "compare"})
    text = render_report(tmp_path)
    assert "died before its first day boundary" in text


def test_watch_renders_partial_and_complete_states(tmp_path):
    from repro.obs.report import render_watch

    text, complete = render_watch(tmp_path)
    assert not complete
    assert "waiting" in text

    telemetry = Telemetry()
    telemetry.stream_dir = stream_dir_for(tmp_path)
    run_many(_specs(("Top-3",)), jobs=1, telemetry=telemetry)
    text, complete = render_watch(tmp_path)
    assert complete
    assert "Top-3" in text
    assert "run complete" in text


def test_interval_throttles_day_flushes(tmp_path):
    clock_value = [0.0]
    writer = TelemetryStreamWriter(
        tmp_path, segment="run", interval=10.0, clock=lambda: clock_value[0]
    )
    telemetry = Telemetry()
    assert writer.maybe_flush(telemetry, day=0)  # first flush always lands
    clock_value[0] = 5.0
    assert not writer.maybe_flush(telemetry, day=1)  # inside the interval
    clock_value[0] = 15.0
    assert writer.maybe_flush(telemetry, day=2)
    segment = read_segment(tmp_path / "run.jsonl")
    assert segment.flushes == 2
    assert segment.day == 2


def test_fresh_writer_replaces_stale_segment(tmp_path):
    """Re-running into the same telemetry dir must not append to the old
    segment (two seq-0 records would read as corruption) — the new run's
    writer takes ownership of the segment file."""
    telemetry = Telemetry()
    telemetry.registry.counter("events").inc()
    first = TelemetryStreamWriter(tmp_path, segment="run")
    first.flush(telemetry, day=0)
    first.flush(telemetry, day=1, final=True)

    second = TelemetryStreamWriter(tmp_path, segment="run")
    second.flush(telemetry, day=0)
    segment = read_segment(tmp_path / "run.jsonl")
    assert segment.flushes == 1
    assert segment.day == 0
    assert not segment.final
