"""Report rendering: per-phase breakdown from an exported telemetry dir."""

import pytest

from repro.obs.report import (
    decision_time_by_algorithm,
    load_telemetry_dir,
    phase_rows,
    render_report,
)
from repro.obs.telemetry import Telemetry


def _fake_run_telemetry() -> Telemetry:
    """A telemetry object shaped like a real two-phase LACB-Opt run."""
    telemetry = Telemetry()
    telemetry.set_run_label("LACB-Opt")
    label = telemetry.labels()
    telemetry.registry.timer("engine.begin_day", **label).observe(0.2)
    telemetry.registry.timer("engine.assign_batch", **label).observe(0.7)
    telemetry.registry.timer("engine.end_day", **label).observe(0.1)
    telemetry.registry.timer("span.matching.solve", **label).observe(0.5)
    telemetry.registry.timer("span.engine.begin_day", **label).observe(0.2)
    telemetry.add("engine.runs")
    return telemetry


def test_decision_time_sums_engine_phases():
    totals = decision_time_by_algorithm(_fake_run_telemetry().registry)
    assert totals == {"LACB-Opt": pytest.approx(1.0)}


def test_phase_rows_engine_first_and_no_synthesized_duplicates():
    rows = phase_rows(_fake_run_telemetry().registry)
    phases = [row[1] for row in rows]
    # Engine phases lead, by descending total; the synthesized
    # span.engine.* twins are suppressed, interior spans follow.
    assert phases == [
        "engine.assign_batch", "engine.begin_day", "engine.end_day", "matching.solve"
    ]
    solve = rows[-1]
    assert solve[0] == "LACB-Opt"
    assert solve[2] == 1  # calls
    assert solve[5].strip() == "50.0%"  # share of the 1.0s decision time


def test_render_report_roundtrip_from_export(tmp_path):
    telemetry = _fake_run_telemetry()
    telemetry.export(tmp_path, manifest={"command": "compare", "wall_seconds": 2.0})
    manifest, registry = load_telemetry_dir(tmp_path)
    assert manifest["command"] == "compare"
    assert decision_time_by_algorithm(registry)["LACB-Opt"] == pytest.approx(1.0)

    report = render_report(tmp_path)
    assert "compare" in report
    assert "engine.assign_batch" in report
    assert "matching.solve" in report
    assert "engine.runs" in report


def test_missing_directory_gives_actionable_error(tmp_path):
    with pytest.raises(FileNotFoundError, match="telemetry directory"):
        render_report(tmp_path / "nope")


def test_phase_rows_percentiles_come_from_the_sketch():
    telemetry = Telemetry()
    label = telemetry.labels()
    telemetry.set_run_label("LACB-Opt")
    label = telemetry.labels()
    timer = telemetry.registry.timer("engine.assign_batch", **label)
    for ms in range(1, 101):  # 1..100 ms ramp
        timer.observe(ms / 1000.0)
    (row,) = phase_rows(telemetry.registry)
    p50, p95, p99 = row[6], row[7], row[8]
    # Milliseconds, monotone, and within the sketch's accuracy bound.
    assert 0.9 <= p50 <= p95 <= p99 <= 101.0
    assert p50 == pytest.approx(50.0, rel=0.05)
    assert p99 == pytest.approx(99.0, rel=0.05)


def test_phase_rows_zero_count_timer_reports_zero_percentiles():
    telemetry = Telemetry()
    telemetry.registry.timer("engine.assign_batch", algorithm="KM")
    (row,) = phase_rows(telemetry.registry)
    assert (row[6], row[7], row[8]) == (0.0, 0.0, 0.0)


def test_render_report_surfaces_percentile_columns(tmp_path):
    telemetry = _fake_run_telemetry()
    telemetry.export(tmp_path, manifest={"command": "compare"})
    report = render_report(tmp_path)
    for header in ("p50 ms", "p95 ms", "p99 ms"):
        assert header in report


def test_report_without_spans_still_renders_phase_tables(tmp_path):
    """Graceful degradation: metrics without spans.jsonl (partial export)."""
    import os

    telemetry = _fake_run_telemetry()
    telemetry.export(tmp_path, manifest={"command": "compare"})
    os.remove(tmp_path / "spans.jsonl")
    report = render_report(tmp_path)
    assert "engine.assign_batch" in report
    assert "Hotspots" not in report  # section dropped, not crashed


# ----------------------------------------------------------------------
# Optional-field rendering, quality tables, alert tables
# ----------------------------------------------------------------------
def test_fmt_opt_distinguishes_absent_from_zero():
    from repro.obs.report import _fmt_opt

    # A measured zero renders as a number; a field the stream never carried
    # renders as "-" (the old code printed 0.00 for both).
    assert _fmt_opt({"workload_dispersion": 0.0}, "workload_dispersion", "{:.2f}") == "0.00"
    assert _fmt_opt({}, "workload_dispersion", "{:.2f}") == "-"
    assert _fmt_opt({"utilization": None}, "utilization", "{:.1%}") == "-"


def test_watch_renders_dash_for_progress_predating_quality_fields(tmp_path):
    """Regression: progress records from before the dispersion/quality fields
    existed must render "-" in watch, not a fake 0.00."""
    from repro.obs.report import render_watch
    from repro.obs.stream import TelemetryStreamWriter, stream_dir_for
    from repro.obs.telemetry import Telemetry

    writer = TelemetryStreamWriter(stream_dir_for(tmp_path), segment="old")
    writer.flush(
        Telemetry(),
        day=0,
        progress={
            "algorithm": "LACB-Opt", "num_days": 3, "assignments": 10,
            "requests_per_second": 5.0, "total_utility": 1.0,
            "assign_p50": 0.001, "assign_p95": 0.002, "assign_p99": 0.003,
            # no utilization / workload_dispersion / quality fields at all
        },
        final=True,
    )
    text, complete = render_watch(tmp_path)
    assert complete
    (latency_line,) = [ln for ln in text.splitlines() if "LACB-Opt" in ln and "1.00" in ln]
    # utilization, dispersion, overload, cap MAE and regret all absent.
    assert latency_line.split().count("-") == 5


def test_watch_renders_measured_zero_dispersion_as_number(tmp_path):
    from repro.obs.report import render_watch
    from repro.obs.stream import TelemetryStreamWriter, stream_dir_for
    from repro.obs.telemetry import Telemetry

    writer = TelemetryStreamWriter(stream_dir_for(tmp_path), segment="new")
    writer.flush(
        Telemetry(),
        day=0,
        progress={
            "algorithm": "KM", "num_days": 1, "assignments": 4,
            "requests_per_second": 2.0, "total_utility": 0.5,
            "assign_p50": 0.001, "assign_p95": 0.002, "assign_p99": 0.003,
            "workload_dispersion": 0.0, "utilization": 0.0,
        },
        final=True,
    )
    text, _complete = render_watch(tmp_path)
    (latency_line,) = [ln for ln in text.splitlines() if ln.lstrip().startswith("KM")]
    assert "0.00" in latency_line  # a real measured zero stays a zero
    assert "0.0%" in latency_line


def test_quality_rows_render_dash_for_missing_gauges():
    from repro.obs.report import QUALITY_HEADERS, quality_rows

    telemetry = Telemetry()
    telemetry.set_run_label("LACB-Opt")
    label = telemetry.labels()
    telemetry.registry.gauge("quality.capacity_mae", **label).set(2.5)
    telemetry.registry.gauge("quality.workload_gini", **label).set(0.4)
    telemetry.registry.counter("quality.regret_batches", **label).inc(6)
    telemetry.set_run_label("Top-3")
    ranker = telemetry.labels()
    telemetry.registry.gauge("quality.workload_gini", **ranker).set(0.6)

    rows = quality_rows(telemetry.registry)
    assert [row[0] for row in rows] == ["LACB-Opt", "Top-3"]
    by_name = {row[0]: row for row in rows}
    mae_col = QUALITY_HEADERS.index("cap MAE")
    gini_col = QUALITY_HEADERS.index("gini")
    assert by_name["LACB-Opt"][mae_col] == "2.50"
    assert by_name["Top-3"][mae_col] == "-"  # no capacity model: dash, not 0
    assert by_name["Top-3"][gini_col] == "0.600"
    assert by_name["LACB-Opt"][-1] == 6 and by_name["Top-3"][-1] == 0


def test_quality_rows_empty_registry_yields_no_table():
    from repro.obs.report import quality_rows

    assert quality_rows(Telemetry().registry) == []


def test_alert_rows_format_streamed_alerts():
    from repro.obs.alerts import Alert
    from repro.obs.report import alert_rows

    alert = Alert(
        day=4, metric="overload_rate", detector="zscore", value=0.4,
        score=5.25, threshold=4.0, baseline=0.1, algorithm="LACB-Opt",
    )
    (row,) = alert_rows([alert.to_dict()])
    assert row[0] == 4
    assert row[1] == "LACB-Opt"
    assert row[2:4] == ("overload_rate", "zscore")
    assert row[6] == "5.25 >= 4.00"
    # Alerts without an algorithm label (old streams) render "-".
    (bare,) = alert_rows([dict(alert.to_dict(), algorithm=None)])
    assert bare[1] == "-"


def test_render_report_includes_quality_table_when_gauged(tmp_path):
    telemetry = _fake_run_telemetry()
    label = telemetry.labels()
    telemetry.registry.gauge("quality.workload_gini", **label).set(0.42)
    telemetry.registry.gauge("quality.overload_rate", **label).set(0.05)
    telemetry.export(tmp_path, manifest={"command": "compare"})
    report = render_report(tmp_path)
    assert "Assignment quality" in report
    assert "0.420" in report
    # Gauges this run never produced render as dashes, not zeros.
    quality_line = [ln for ln in report.splitlines() if "0.420" in ln][0]
    assert " - " in quality_line
