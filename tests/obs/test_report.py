"""Report rendering: per-phase breakdown from an exported telemetry dir."""

import pytest

from repro.obs.report import (
    decision_time_by_algorithm,
    load_telemetry_dir,
    phase_rows,
    render_report,
)
from repro.obs.telemetry import Telemetry


def _fake_run_telemetry() -> Telemetry:
    """A telemetry object shaped like a real two-phase LACB-Opt run."""
    telemetry = Telemetry()
    telemetry.set_run_label("LACB-Opt")
    label = telemetry.labels()
    telemetry.registry.timer("engine.begin_day", **label).observe(0.2)
    telemetry.registry.timer("engine.assign_batch", **label).observe(0.7)
    telemetry.registry.timer("engine.end_day", **label).observe(0.1)
    telemetry.registry.timer("span.matching.solve", **label).observe(0.5)
    telemetry.registry.timer("span.engine.begin_day", **label).observe(0.2)
    telemetry.add("engine.runs")
    return telemetry


def test_decision_time_sums_engine_phases():
    totals = decision_time_by_algorithm(_fake_run_telemetry().registry)
    assert totals == {"LACB-Opt": pytest.approx(1.0)}


def test_phase_rows_engine_first_and_no_synthesized_duplicates():
    rows = phase_rows(_fake_run_telemetry().registry)
    phases = [row[1] for row in rows]
    # Engine phases lead, by descending total; the synthesized
    # span.engine.* twins are suppressed, interior spans follow.
    assert phases == [
        "engine.assign_batch", "engine.begin_day", "engine.end_day", "matching.solve"
    ]
    solve = rows[-1]
    assert solve[0] == "LACB-Opt"
    assert solve[2] == 1  # calls
    assert solve[5].strip() == "50.0%"  # share of the 1.0s decision time


def test_render_report_roundtrip_from_export(tmp_path):
    telemetry = _fake_run_telemetry()
    telemetry.export(tmp_path, manifest={"command": "compare", "wall_seconds": 2.0})
    manifest, registry = load_telemetry_dir(tmp_path)
    assert manifest["command"] == "compare"
    assert decision_time_by_algorithm(registry)["LACB-Opt"] == pytest.approx(1.0)

    report = render_report(tmp_path)
    assert "compare" in report
    assert "engine.assign_batch" in report
    assert "matching.solve" in report
    assert "engine.runs" in report


def test_missing_directory_gives_actionable_error(tmp_path):
    with pytest.raises(FileNotFoundError, match="telemetry directory"):
        render_report(tmp_path / "nope")


def test_phase_rows_percentiles_come_from_the_sketch():
    telemetry = Telemetry()
    label = telemetry.labels()
    telemetry.set_run_label("LACB-Opt")
    label = telemetry.labels()
    timer = telemetry.registry.timer("engine.assign_batch", **label)
    for ms in range(1, 101):  # 1..100 ms ramp
        timer.observe(ms / 1000.0)
    (row,) = phase_rows(telemetry.registry)
    p50, p95, p99 = row[6], row[7], row[8]
    # Milliseconds, monotone, and within the sketch's accuracy bound.
    assert 0.9 <= p50 <= p95 <= p99 <= 101.0
    assert p50 == pytest.approx(50.0, rel=0.05)
    assert p99 == pytest.approx(99.0, rel=0.05)


def test_phase_rows_zero_count_timer_reports_zero_percentiles():
    telemetry = Telemetry()
    telemetry.registry.timer("engine.assign_batch", algorithm="KM")
    (row,) = phase_rows(telemetry.registry)
    assert (row[6], row[7], row[8]) == (0.0, 0.0, 0.0)


def test_render_report_surfaces_percentile_columns(tmp_path):
    telemetry = _fake_run_telemetry()
    telemetry.export(tmp_path, manifest={"command": "compare"})
    report = render_report(tmp_path)
    for header in ("p50 ms", "p95 ms", "p99 ms"):
        assert header in report


def test_report_without_spans_still_renders_phase_tables(tmp_path):
    """Graceful degradation: metrics without spans.jsonl (partial export)."""
    import os

    telemetry = _fake_run_telemetry()
    telemetry.export(tmp_path, manifest={"command": "compare"})
    os.remove(tmp_path / "spans.jsonl")
    report = render_report(tmp_path)
    assert "engine.assign_batch" in report
    assert "Hotspots" not in report  # section dropped, not crashed
