"""QuantileSketch: accuracy bound, exact merge, codec, edge values."""

import json
import math
import random

import pytest

from repro.obs.quantiles import (
    MAX_TRACKABLE,
    REPORT_QUANTILES,
    QuantileSketch,
)


def _exact_quantile(values, q):
    ordered = sorted(values)
    rank = q * (len(ordered) - 1)
    return ordered[int(rank)]


def test_relative_error_bound_on_lognormal_sample():
    rng = random.Random(7)
    sketch = QuantileSketch(alpha=0.01)
    values = [math.exp(rng.gauss(0.0, 2.0)) for _ in range(5000)]
    for value in values:
        sketch.observe(value)
    for q in (0.1, 0.5, 0.9, 0.95, 0.99):
        exact = _exact_quantile(values, q)
        estimate = sketch.quantile(q)
        # alpha bounds the value-space error; the rank interpolation adds
        # at most one bucket, so 2*alpha is a safe end-to-end bound.
        assert abs(estimate - exact) <= 2 * 0.01 * exact + 1e-12


def test_quantiles_clamped_to_observed_range():
    sketch = QuantileSketch()
    for value in (1.0, 2.0, 3.0):
        sketch.observe(value)
    assert sketch.quantile(0.0) >= 1.0
    assert sketch.quantile(1.0) <= 3.0


def test_empty_sketch_returns_nan_and_rejects_bad_q():
    sketch = QuantileSketch()
    assert math.isnan(sketch.quantile(0.5))
    with pytest.raises(ValueError, match="quantile"):
        sketch.quantile(1.5)


def test_nan_counted_but_never_poisons_quantiles():
    sketch = QuantileSketch()
    sketch.observe(1.0)
    sketch.observe(math.nan)
    sketch.observe(2.0)
    assert sketch.count == 3
    assert sketch.nan == 1
    assert not math.isnan(sketch.quantile(0.5))


def test_zero_negative_and_infinite_values():
    sketch = QuantileSketch()
    for value in (-5.0, -1e-15, 0.0, 3.0, math.inf):
        sketch.observe(value)
    assert sketch.zero == 2  # 0 and the sub-MIN_TRACKABLE magnitude
    assert sketch.min == -5.0
    assert sketch.max == math.inf
    # Median of [-5, ~0, 0, 3, inf] is the zero bucket.
    assert sketch.quantile(0.5) == pytest.approx(0.0, abs=1e-9)
    assert sketch.quantile(0.0) == pytest.approx(-5.0, rel=0.03)
    # The +inf observation clamps to the outermost bucket but max is true.
    assert sketch.quantile(1.0) == math.inf


def test_huge_magnitudes_clamp_to_trackable_range():
    sketch = QuantileSketch()
    sketch.observe(MAX_TRACKABLE * 10)
    assert sketch.count == 1
    assert len(sketch.pos) == 1


def test_merge_is_exact_and_order_independent():
    rng = random.Random(3)
    values = [rng.expovariate(5.0) for _ in range(900)]
    chunks = [values[0:300], values[300:600], values[600:900]]
    whole = QuantileSketch()
    for value in values:
        whole.observe(value)

    parts = []
    for chunk in chunks:
        sketch = QuantileSketch()
        for value in chunk:
            sketch.observe(value)
        parts.append(sketch)

    merged = QuantileSketch()
    for part in parts:
        merged.merge(part)
    reversed_merge = QuantileSketch()
    for part in reversed(parts):
        reversed_merge.merge(part)

    # Bucket counts are integers: merge order cannot change any quantile.
    assert merged.quantiles(REPORT_QUANTILES) == reversed_merge.quantiles(REPORT_QUANTILES)
    assert merged.pos == whole.pos
    assert merged.zero == whole.zero
    assert merged.count == whole.count
    assert merged.quantiles(REPORT_QUANTILES) == whole.quantiles(REPORT_QUANTILES)


def test_merge_rejects_alpha_mismatch():
    with pytest.raises(ValueError, match="alpha"):
        QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.02))


def test_state_roundtrip_through_json_is_bit_identical():
    sketch = QuantileSketch()
    rng = random.Random(11)
    for _ in range(500):
        sketch.observe(rng.gauss(0.0, 1.0))
    sketch.observe(0.0)
    sketch.observe(math.nan)
    payload = json.loads(json.dumps(sketch.state()))
    restored = QuantileSketch.from_state(payload)
    assert restored.state() == sketch.state()
    for q in REPORT_QUANTILES:
        assert restored.quantile(q) == sketch.quantile(q)


def test_quantile_is_pure_function_of_state():
    first = QuantileSketch()
    second = QuantileSketch()
    for value in (0.1, 0.2, 0.2, 0.4, 1.0, 5.0):
        first.observe(value)
    # Same multiset, different arrival order.
    for value in (5.0, 0.2, 1.0, 0.1, 0.4, 0.2):
        second.observe(value)
    assert first.quantiles() == second.quantiles()
