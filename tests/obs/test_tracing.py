"""Tracer: nesting, synthesized spans, worker lanes, JSONL and Chrome export."""

import json

from repro.obs.tracing import SpanRecord, Tracer


class FakeClock:
    """Deterministic monotonic clock advancing only when told to."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_nested_spans_record_depth_and_duration():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("outer"):
        clock.advance(0.5)
        with tracer.span("inner", algorithm="LACB"):
            clock.advance(0.25)
        clock.advance(0.25)
    # Children finish (and are recorded) before their parents.
    inner, outer = tracer.records
    assert (inner.name, inner.depth) == ("inner", 1)
    assert (outer.name, outer.depth) == ("outer", 0)
    assert inner.duration == 0.25
    assert outer.duration == 1.0
    assert inner.attrs == {"algorithm": "LACB"}
    assert inner.start == 0.5  # relative to the tracer epoch
    assert tracer.depth == 0


def test_record_span_books_an_external_duration_ending_now():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    clock.advance(2.0)
    record = tracer.record_span("engine.begin_day", 0.5, day="3")
    assert record.duration == 0.5
    assert record.start == 1.5  # [now - duration, now]
    assert record.attrs == {"day": "3"}


def test_on_finish_callback_sees_every_record():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    seen = []
    tracer.on_finish = seen.append
    with tracer.span("a"):
        clock.advance(0.1)
    tracer.record_span("b", 0.2)
    assert [record.name for record in seen] == ["a", "b"]


def test_extend_assigns_worker_lane_pids():
    parent, worker = Tracer(clock=FakeClock()), Tracer(clock=FakeClock())
    with worker.span("w"):
        pass
    parent.record_span("p", 0.1)
    assert parent.next_pid == 1
    parent.extend(worker.to_payload(), pid=parent.next_pid)
    assert {record.pid for record in parent.records} == {0, 1}
    assert parent.next_pid == 2


def test_export_jsonl_roundtrip(tmp_path):
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("outer"):
        clock.advance(0.5)
    path = tmp_path / "spans.jsonl"
    tracer.export_jsonl(path)
    lines = path.read_text().strip().splitlines()
    records = [SpanRecord.from_dict(json.loads(line)) for line in lines]
    assert records == tracer.records


def test_chrome_trace_schema_is_perfetto_loadable(tmp_path):
    """The exported trace must be a valid Chrome trace_event JSON object."""
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("matching.solve", backend="repro"):
        clock.advance(0.001)
    tracer.record_span("engine.begin_day", 0.5)

    path = tmp_path / "trace.json"
    tracer.export_chrome_trace(path)
    trace = json.loads(path.read_text())

    assert isinstance(trace["traceEvents"], list)
    assert trace["displayTimeUnit"] == "ms"
    assert len(trace["traceEvents"]) == 2
    for event in trace["traceEvents"]:
        assert event["ph"] == "X"  # complete events
        assert isinstance(event["name"], str) and event["name"]
        assert isinstance(event["cat"], str)
        assert isinstance(event["ts"], (int, float))
        assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert isinstance(event["args"], dict)
    solve = next(e for e in trace["traceEvents"] if e["name"] == "matching.solve")
    assert solve["cat"] == "matching"
    assert solve["dur"] == 1000.0  # 1 ms in microseconds
    assert solve["args"] == {"backend": "repro"}
