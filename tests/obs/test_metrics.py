"""Metrics primitives: counters, gauges, histograms, timers, registry merge."""

import pytest

from repro.obs.metrics import (
    COUNT_BOUNDARIES,
    DURATION_BOUNDARIES,
    RATIO_BOUNDARIES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)


# ----------------------------------------------------------------------
# Counter / Gauge / Timer
# ----------------------------------------------------------------------
def test_counter_accumulates_and_rejects_negative():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_gauge_merge_is_last_write_wins():
    a, b = Gauge(), Gauge()
    a.set(1.0)
    b.set(7.0)
    a.merge(b)
    assert a.value == 7.0
    # An untouched gauge must not clobber a written one.
    a.merge(Gauge())
    assert a.value == 7.0


def test_timer_tracks_count_total_min_max_mean():
    timer = Timer()
    for value in (0.2, 0.1, 0.4):
        timer.observe(value)
    assert timer.count == 3
    assert timer.total == pytest.approx(0.7)
    assert timer.min == pytest.approx(0.1)
    assert timer.max == pytest.approx(0.4)
    assert timer.mean == pytest.approx(0.7 / 3)
    assert Timer().mean == 0.0


# ----------------------------------------------------------------------
# Histogram buckets
# ----------------------------------------------------------------------
def test_histogram_value_exactly_on_boundary_lands_in_that_bucket():
    """Prometheus ``le`` semantics: buckets are inclusive upper bounds."""
    histogram = Histogram(boundaries=(1.0, 2.0, 5.0))
    histogram.observe(2.0)
    assert histogram.counts == [0, 1, 0, 0]
    histogram.observe(1.0)
    assert histogram.counts == [1, 1, 0, 0]
    # Strictly above the last boundary goes to the overflow slot.
    histogram.observe(5.000001)
    assert histogram.counts == [1, 1, 0, 1]


def test_histogram_below_first_boundary_and_overflow():
    histogram = Histogram(boundaries=(1.0, 2.0))
    histogram.observe(0.0)
    histogram.observe(100.0)
    assert histogram.counts == [1, 0, 1]
    assert histogram.count == 2
    assert histogram.sum == pytest.approx(100.0)


def test_histogram_merge_of_empty_histograms():
    a = Histogram(boundaries=(1.0, 2.0))
    b = Histogram(boundaries=(1.0, 2.0))
    a.merge(b)
    assert a.count == 0
    assert a.sum == 0.0
    assert a.counts == [0, 0, 0]
    # Empty-into-populated leaves the populated side unchanged.
    b.observe(1.5)
    b.merge(Histogram(boundaries=(1.0, 2.0)))
    assert b.counts == [0, 1, 0]


def test_histogram_merge_requires_identical_boundaries():
    a = Histogram(boundaries=(1.0, 2.0))
    b = Histogram(boundaries=(1.0, 3.0))
    with pytest.raises(ValueError):
        a.merge(b)


def test_histogram_rejects_non_increasing_boundaries():
    with pytest.raises(ValueError):
        Histogram(boundaries=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(boundaries=())


def test_shared_boundary_presets_are_strictly_increasing():
    for preset in (DURATION_BOUNDARIES, COUNT_BOUNDARIES, RATIO_BOUNDARIES):
        assert all(a < b for a, b in zip(preset, preset[1:]))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_get_or_create_is_idempotent_per_label_set():
    registry = MetricsRegistry()
    a = registry.counter("requests", algorithm="LACB")
    b = registry.counter("requests", algorithm="LACB")
    c = registry.counter("requests", algorithm="AN")
    assert a is b
    assert a is not c


def test_registry_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("x")


def test_registry_histogram_boundary_conflict_raises():
    registry = MetricsRegistry()
    registry.histogram("h", boundaries=(1.0, 2.0))
    with pytest.raises(ValueError):
        registry.histogram("h", boundaries=(1.0, 3.0))


def test_registry_roundtrip_through_dict():
    registry = MetricsRegistry()
    registry.counter("runs", algorithm="AN").inc(3)
    registry.gauge("ratio").set(0.25)
    registry.histogram("sizes", boundaries=(1.0, 2.0)).observe(1.5)
    registry.timer("solve").observe(0.01)

    clone = MetricsRegistry.from_dict(registry.to_dict())
    assert clone.to_dict() == registry.to_dict()


def test_registry_merge_is_exact_and_order_independent_for_counters():
    def build(values):
        registry = MetricsRegistry()
        for value in values:
            registry.counter("n").inc(value)
            registry.histogram("h", boundaries=(1.0, 2.0)).observe(value)
        return registry

    merged_ab = build([1.0, 2.0])
    merged_ab.merge(build([0.5]))
    merged_ba = build([0.5])
    merged_ba.merge(build([1.0, 2.0]))
    assert merged_ab.counter("n").value == merged_ba.counter("n").value == 3.5
    assert merged_ab.histogram("h", boundaries=(1.0, 2.0)).counts == (
        merged_ba.histogram("h", boundaries=(1.0, 2.0)).counts
    )


def test_registry_merge_accepts_serialized_payload():
    a = MetricsRegistry()
    a.counter("n").inc()
    b = MetricsRegistry()
    b.counter("n").inc(2)
    b.counter("only_b", algorithm="AN").inc(5)
    a.merge(b.to_dict())
    assert a.counter("n").value == 3.0
    assert a.counter("only_b", algorithm="AN").value == 5.0


def test_prometheus_text_exposition():
    registry = MetricsRegistry()
    registry.counter("engine.runs", algorithm="LACB-Opt").inc(2)
    registry.histogram("batch.sizes", boundaries=(1.0, 2.0)).observe(1.5)
    text = registry.prometheus_text(prefix="repro")
    assert 'repro_engine_runs{algorithm="LACB-Opt"} 2' in text
    assert "# TYPE repro_engine_runs counter" in text
    assert 'repro_batch_sizes_bucket{le="2"} 1' in text
    assert 'repro_batch_sizes_bucket{le="+Inf"} 1' in text
    assert "repro_batch_sizes_count 1" in text
