"""Drift detectors: deterministic alert days, zero false alarms when stationary."""

import math

import numpy as np
import pytest

from repro.obs.alerts import DEFAULT_MONITORS, Alert, AlertMonitor, DriftDetector


def _feed(detector, series, start_day=0):
    raised = []
    for offset, value in enumerate(series):
        raised.extend(detector.observe(start_day + offset, value))
    return raised


def _seasonal_series(days, base=100.0, amplitude=3.0, noise=0.5, seed=0):
    """A stationary day-utility-like series with weekly seasonality."""
    rng = np.random.default_rng(seed)
    return [
        base
        + amplitude * math.sin(2 * math.pi * day / 7)
        + noise * float(rng.standard_normal())
        for day in range(days)
    ]


def test_stationary_series_never_alerts():
    for seed in range(5):
        detector = DriftDetector("day_utility")
        assert _feed(detector, _seasonal_series(60, seed=seed)) == []


def test_constant_series_never_alerts():
    detector = DriftDetector("overload_rate", min_std=0.02)
    assert _feed(detector, [0.05] * 40) == []


def test_step_change_alerts_on_the_shift_day_deterministically():
    series = [10.0, 10.1, 9.9, 10.0, 10.05, 9.95, 10.0, 25.0, 25.1, 24.9]
    days = []
    for _ in range(3):  # pure function of the series: same alert every time
        detector = DriftDetector("day_utility")
        raised = _feed(detector, series)
        assert len(raised) == 1
        alert = raised[0]
        assert alert.detector == "zscore"
        assert alert.metric == "day_utility"
        assert abs(alert.score) >= alert.threshold
        days.append(alert.day)
    assert days == [7, 7, 7]


def test_rebaseline_gives_one_alert_per_regime_shift():
    quiet = [10.0, 10.1, 9.9, 10.0, 10.05, 9.95, 10.0]
    shifted = [25.0, 25.1, 24.9, 25.0, 25.05, 24.95, 25.0, 25.1]
    detector = DriftDetector("day_utility")
    raised = _feed(detector, quiet + shifted)
    assert len(raised) == 1  # the new regime becomes the new normal
    # A second genuine shift alerts again.
    raised_again = _feed(detector, [50.0], start_day=len(quiet + shifted))
    assert len(raised_again) == 1


def test_slow_drift_trips_cusum_not_zscore():
    # A slow ramp: each single day is unremarkable against the rolling
    # window (z disabled here to isolate the path), but deviations from
    # the frozen reference accumulate until CUSUM trips.
    series = [100.0 + 0.02 * np.sin(d) for d in range(8)]
    series += [series[-1] + 0.2 * step for step in range(1, 40)]
    detector = DriftDetector("day_utility", rel_floor=0.001, z_threshold=50.0)
    raised = _feed(detector, series)
    assert raised, "slow drift must eventually alert"
    assert raised[0].detector == "cusum"
    assert raised[0].score >= raised[0].threshold


def test_relative_floor_suppresses_proportionally_tiny_wiggles():
    # 0.1% wiggles on a large-scale metric: the 2% relative floor keeps
    # z-scores small even though the series is almost perfectly flat.
    series = [1000.0, 1000.1, 999.9, 1000.0, 1000.1, 999.9, 1001.0, 999.0, 1000.5]
    detector = DriftDetector("day_utility")
    assert _feed(detector, series) == []


def test_monitor_skips_absent_fields_and_collects_alerts():
    monitor = AlertMonitor()
    assert {metric for metric, _ in DEFAULT_MONITORS} == {
        "day_utility", "overload_rate", "workload_gini", "capacity_mae",
    }
    quiet = {"day_utility": 10.0, "overload_rate": 0.05}
    for day in range(7):
        assert monitor.observe_day(day, quiet, algorithm="LACB") == []
    # capacity_mae never appeared — its detector must still be unarmed.
    shock = dict(quiet, day_utility=40.0)
    raised = monitor.observe_day(7, shock, algorithm="LACB")
    assert [a.metric for a in raised] == ["day_utility"]
    assert monitor.alerts == raised
    assert raised[0].algorithm == "LACB"


def test_alert_roundtrip_and_describe():
    alert = Alert(
        day=4, metric="overload_rate", detector="zscore", value=0.4,
        score=5.2, threshold=4.0, baseline=0.1, algorithm="LACB-Opt",
    )
    assert Alert.from_dict(alert.to_dict()) == alert
    text = alert.describe()
    assert "day 4" in text and "overload_rate" in text and "step change" in text


def test_min_history_larger_than_window_still_arms():
    """Regression: observe() used to trim history to `window` entries, so a
    detector configured with min_history > window could never satisfy the
    `len(history) >= min_history` arming check — both detectors stayed
    silently disabled forever."""
    detector = DriftDetector("day_utility", window=3, min_history=10)
    quiet = [10.0 + 0.01 * (i % 3) for i in range(10)]
    raised = _feed(detector, quiet + [40.0])
    assert len(raised) == 1
    assert raised[0].detector == "zscore"
    assert raised[0].day == 10


@pytest.mark.parametrize(
    "window, min_history",
    [(2, 2), (3, 7), (7, 3), (7, 7), (2, 12), (12, 2), (5, 30)],
)
def test_detector_config_matrix_arms_and_alerts(window, min_history):
    """Every window/min_history combination arms after max(window,
    min_history) quiet days and alerts on an unmistakable step change."""
    detector = DriftDetector("day_utility", window=window, min_history=min_history)
    arm_day = max(window, min_history)
    quiet = [10.0 + 0.01 * (i % 2) for i in range(arm_day)]
    raised = _feed(detector, quiet + [40.0])
    assert len(raised) == 1
    assert raised[0].day == arm_day
    assert raised[0].detector == "zscore"
    # The history buffer stays bounded: re-feeding quiet days after the
    # post-alert re-baseline never grows it past max(window, min_history).
    _feed(detector, [40.0 + 0.01 * (i % 2) for i in range(3 * arm_day)],
          start_day=arm_day + 1)
    assert len(detector._history) <= max(window, min_history)


def test_detector_rejects_degenerate_windows():
    with pytest.raises(ValueError):
        DriftDetector("x", window=1)
    with pytest.raises(ValueError):
        DriftDetector("x", min_history=1)


def test_alerts_ride_the_stream_as_deltas(tmp_path):
    from repro.obs.stream import TelemetryStreamWriter, read_stream
    from repro.obs.telemetry import Telemetry

    telemetry = Telemetry()
    writer = TelemetryStreamWriter(tmp_path, segment="main")
    first = Alert(
        day=3, metric="day_utility", detector="zscore", value=1.0,
        score=5.0, threshold=4.0, baseline=2.0,
    )
    second = Alert(
        day=6, metric="overload_rate", detector="cusum", value=0.3,
        score=6.5, threshold=6.0, baseline=0.1,
    )
    writer.flush(telemetry, day=3, alerts=[first.to_dict()])
    writer.flush(telemetry, day=6, alerts=[second.to_dict()])
    writer.flush(telemetry, day=7, final=True)  # no-alert flush adds nothing

    view = read_stream(tmp_path)
    merged = [Alert.from_dict(entry) for entry in view.alerts()]
    assert merged == [first, second]


def test_engine_run_with_forced_shock_raises_streamed_alert(tmp_path, monkeypatch):
    """End-to-end: a demand shock mid-run lands a deterministic alert in the
    stream.  User hooks run before the auto-attached telemetry hook, so a
    hook that scales the outcome's realized utility *is* the shock as far
    as the quality series is concerned.
    """
    from repro.engine import MatcherSpec
    from repro.engine.hooks import RunHook
    from repro.engine.loop import DayLoopEngine
    from repro.obs import hook as hook_mod
    from repro.obs.stream import TelemetryStreamWriter, read_stream
    from repro.obs.telemetry import Telemetry, use as use_telemetry
    from repro.simulation import SyntheticConfig, generate_city

    # Arm fast and trip easily so a 10-day tiny run can alert at all.
    monkeypatch.setattr(
        hook_mod,
        "AlertMonitor",
        lambda: AlertMonitor(
            monitors=(("day_utility", {}),),
            min_history=2,
            z_threshold=3.0,
            rel_floor=0.0,
            min_std=1e-9,
        ),
    )

    class ShockHook(RunHook):
        """Scale day 6+ utility tenfold by editing the outcome in place."""

        def on_day_end(self, event):
            if event.day >= 6:
                event.outcome.realized_utility *= 10.0

    config = SyntheticConfig(
        num_brokers=15, num_requests=200, num_days=10, imbalance=0.1, seed=5
    )
    alert_days = []
    for _ in range(2):
        telemetry = Telemetry()
        telemetry.stream = TelemetryStreamWriter(tmp_path / "s", segment="main")
        platform = generate_city(config)
        matcher = MatcherSpec("Top-3", seed=1).build(platform)
        with use_telemetry(telemetry):
            DayLoopEngine().run(platform, matcher, hooks=(ShockHook(),))
        streamed = read_stream(tmp_path / "s").alerts()
        assert streamed, "the shock must raise a streamed alert"
        assert all(entry["metric"] == "day_utility" for entry in streamed)
        assert streamed[0]["algorithm"] == "Top-3"
        alert_days.append([entry["day"] for entry in streamed])
    assert alert_days[0] == alert_days[1]  # deterministic under the seed
