"""Decision provenance: record capture, crash-safety, merge determinism."""

import os

import pytest

from repro.engine import MatcherSpec, PlatformSpec, RunSpec, run_many
from repro.engine.loop import DayLoopEngine
from repro.obs.audit import (
    AUDIT_SCHEMA,
    AuditConfig,
    AuditWriter,
    DecisionAudit,
    audit_dir_for,
    read_audit,
    read_audit_segment,
)
from repro.obs.report import render_explain
from repro.obs.telemetry import Telemetry, use as use_telemetry
from repro.simulation import SyntheticConfig, generate_city
from repro.state.hook import RunInterrupted, StopAfterDay

TINY = SyntheticConfig(num_brokers=15, num_requests=60, num_days=3, imbalance=0.1, seed=5)


def _specs(names=("LACB-Opt",)):
    return [
        RunSpec(platform=PlatformSpec.synthetic(TINY), matcher=MatcherSpec(name, seed=1))
        for name in names
    ]


def _audited_run(directory, jobs=1, names=("LACB-Opt",), sample_every=1):
    telemetry = Telemetry()
    telemetry.audit = AuditConfig(sample_every=sample_every)
    telemetry.audit_dir = str(directory)
    results = run_many(_specs(names), jobs=jobs, telemetry=telemetry)
    return results, read_audit(directory)


def test_config_validation():
    with pytest.raises(ValueError):
        AuditConfig(sample_every=0)
    with pytest.raises(ValueError):
        AuditConfig(top_alternatives=-1)


def test_index_based_sampling_is_deterministic():
    audit = DecisionAudit(AuditConfig(sample_every=3), batches_per_day=10, algorithm="X")
    sampled = [
        (day, batch)
        for day in range(2)
        for batch in range(10)
        if audit.begin_batch(day, batch) is not None
    ]
    # Global index day*10+batch multiples of 3 — resume-stable, no RNG.
    assert sampled == [(0, 0), (0, 3), (0, 6), (0, 9), (1, 2), (1, 5), (1, 8)]


def test_day_record_packages_and_clears():
    audit = DecisionAudit(AuditConfig(), batches_per_day=5, algorithm="LACB")
    audit.note_capacity(3, 25.0, "ucb", mean=0.5, bonus=0.1)
    trail = audit.begin_batch(0, 0)
    trail.requests = 2
    trail.add_decision(7, 3, 0.5, 0.6, 4.0, 25.0, 1, [(2, 0.55, 0.45)])
    audit.commit_batch(trail)

    record = audit.day_record(0)
    assert record["capacity"]["broker"] == [3]
    assert record["capacity"]["rule"] == ["ucb"]
    (batch,) = record["batches"]
    (decision,) = batch["decisions"]
    assert decision["request"] == 7
    assert decision["delta"] == pytest.approx(0.1)
    assert decision["alternatives"] == [[2, 0.55, 0.45]]
    # The buffers cleared: an empty day yields no record at all.
    assert audit.day_record(1) is None


def test_writer_reader_roundtrip_and_torn_tail(tmp_path):
    writer = AuditWriter(tmp_path, segment="run")
    writer.append({"day": 0, "batches": []})
    writer.append({"day": 1, "batches": []})
    path = tmp_path / "run.jsonl"
    segment = read_audit_segment(path)
    assert [r["day"] for r in segment.records] == [0, 1]
    assert all(r["schema"] == AUDIT_SCHEMA for r in segment.records)

    # A torn final line (killed mid-append) is silently dropped.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"schema": "' + AUDIT_SCHEMA + '", "seq": 2, "day":')
    segment = read_audit_segment(path)
    assert [r["day"] for r in segment.records] == [0, 1]


def test_reader_rejects_non_increasing_seq(tmp_path):
    path = tmp_path / "bad.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f'{{"schema": "{AUDIT_SCHEMA}", "seq": 1, "day": 0}}\n')
        handle.write(f'{{"schema": "{AUDIT_SCHEMA}", "seq": 1, "day": 1}}\n')
    with pytest.raises(ValueError, match="non-increasing"):
        read_audit_segment(path)


def test_fresh_writer_replaces_stale_segment(tmp_path):
    stale = AuditWriter(tmp_path, segment="run")
    stale.append({"day": 9, "batches": []})
    fresh = AuditWriter(tmp_path, segment="run")
    fresh.append({"day": 0, "batches": []})
    segment = read_audit_segment(tmp_path / "run.jsonl")
    assert [r["day"] for r in segment.records] == [0]


def test_missing_audit_dir_yields_empty_view(tmp_path):
    view = read_audit(tmp_path / "nope")
    assert view.records() == []
    assert "no audit records" in render_explain(view)


def test_audited_run_records_full_decision_paths(tmp_path):
    _results, view = _audited_run(tmp_path / "audit")
    records = view.records()
    assert [r["day"] for r in records] == list(range(TINY.num_days))
    # Every day: capacity notes for the bandit side, with known rules.
    for record in records:
        assert record["algorithm"] == "LACB-Opt"
        rules = set(record["capacity"]["rule"])
        assert rules <= {"coverage", "epsilon", "ucb", "personal-explore", "personal-ucb"}
    # Every assignment of the run shows up as a decision with provenance.
    decisions = list(view.decisions())
    assert len(decisions) == TINY.num_requests
    record, batch, decision = decisions[0]
    assert decision["residual"] <= decision["capacity"]
    assert decision["delta"] == pytest.approx(
        decision["refined"] - decision["raw"], abs=1e-3
    )
    assert batch["requests"] >= 1


def test_sampling_bounds_record_volume(tmp_path):
    _results, dense = _audited_run(tmp_path / "dense", sample_every=1)
    _results, sparse = _audited_run(tmp_path / "sparse", sample_every=4)
    dense_batches = sum(len(r["batches"]) for r in dense.records())
    sparse_batches = sum(len(r["batches"]) for r in sparse.records())
    assert 0 < sparse_batches < dense_batches
    # Capacity notes are day-level — sampling only thins the batch trails.
    assert all("capacity" in r for r in sparse.records())


def test_jobs_parallel_audit_files_bit_identical(tmp_path):
    names = ("LACB-Opt", "AN")
    _results, serial = _audited_run(tmp_path / "serial", jobs=1, names=names)
    _results, pooled = _audited_run(tmp_path / "pooled", jobs=2, names=names)
    assert [s.segment for s in serial.segments] == [s.segment for s in pooled.segments]
    for left, right in zip(serial.segments, pooled.segments):
        with open(left.path, "rb") as a, open(right.path, "rb") as b:
            assert a.read() == b.read()


def test_audited_results_equal_unaudited(tmp_path):
    plain = run_many(_specs(("LACB-Opt",)))
    audited, _view = _audited_run(tmp_path / "audit")
    assert audited[0].total_realized_utility == plain[0].total_realized_utility
    assert audited[0].broker_workload.tolist() == plain[0].broker_workload.tolist()


def test_kill_mid_run_keeps_completed_days(tmp_path):
    """StopAfterDay raises before the hook flushes the kill day: the audit
    file durably holds every day strictly before it."""
    telemetry = Telemetry()
    telemetry.audit = AuditConfig()
    telemetry.audit_dir = str(tmp_path / "audit")
    telemetry.audit_segment = "main"
    platform = generate_city(TINY)
    matcher = MatcherSpec("LACB-Opt", seed=1).build(platform)
    with use_telemetry(telemetry):
        with pytest.raises(RunInterrupted):
            DayLoopEngine().run(platform, matcher, hooks=(StopAfterDay(1),))
    view = read_audit(tmp_path / "audit")
    assert [r["day"] for r in view.records()] == [0]
    # The interrupted session does not leak into later runs.
    assert telemetry.audit_session is not None  # still parked on telemetry…
    fresh = Telemetry()
    with use_telemetry(fresh):
        assert fresh.audit_session is None  # …but invisible to a new run


def test_explain_renders_filtered_decision_path(tmp_path):
    _results, view = _audited_run(tmp_path / "audit")
    record, batch, decision = next(view.decisions())
    text = render_explain(view, request=decision["request"])
    assert f"request {decision['request']} -> broker {decision['broker']}" in text
    assert "Eq. 15 delta" in text
    assert "bandit: capacity arm" in text
    assert "|B+|" in text
    # Day filter that matches nothing still renders, with zero matches.
    nothing = render_explain(view, day=99)
    assert "0 matching" in nothing


def test_cli_explain_smoke(tmp_path, capsys):
    from repro.cli import main

    directory = tmp_path / "tel"
    main(
        [
            "compare", "--brokers", "15", "--requests", "60", "--days", "2",
            "--imbalance", "0.1", "--algorithms", "LACB-Opt",
            "--telemetry", str(directory), "--audit", "--audit-sample", "2",
        ]
    )
    capsys.readouterr()
    assert os.path.isdir(audit_dir_for(directory))
    main(["explain", str(directory), "--limit", "3"])
    out = capsys.readouterr().out
    assert "decision audit:" in out
    assert "-> broker" in out


def test_cli_audit_requires_telemetry():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["compare", "--audit"])
