"""TelemetryHook end-to-end: engine events land in metrics; spans cover
the decision time they claim to break down."""

import json

import pytest

from repro.algorithms import make_matcher
from repro.engine import DayLoopEngine, MetricsCollector
from repro.obs import telemetry as obs
from repro.obs.hook import TelemetryHook
from repro.obs.report import ENGINE_PHASES
from repro.obs.telemetry import Telemetry
from repro.simulation import SyntheticConfig, generate_city


@pytest.fixture(autouse=True)
def _telemetry_off():
    obs.disable()
    yield
    obs.disable()


def _run_with_telemetry(name="LACB-Opt", brokers=30, requests=600, days=4):
    platform = generate_city(
        SyntheticConfig(
            num_brokers=brokers, num_requests=requests, num_days=days,
            imbalance=0.05, seed=3,
        )
    )
    telemetry = Telemetry()
    collector = MetricsCollector()
    with obs.use(telemetry):
        # No TelemetryHook passed: the engine must auto-attach one.
        DayLoopEngine().run(platform, make_matcher(name, platform, seed=1), hooks=[collector])
    return telemetry, collector.result


def test_engine_phase_timers_sum_exactly_to_decision_time():
    telemetry, result = _run_with_telemetry()
    label = {"algorithm": "LACB-Opt"}
    phase_total = sum(
        telemetry.registry.timer(phase, **label).total for phase in ENGINE_PHASES
    )
    # Both sides add the same engine-measured floats in the same order.
    assert phase_total == pytest.approx(result.decision_time, rel=1e-12)


def test_engine_counters_and_distributions():
    telemetry, result = _run_with_telemetry(days=3)
    label = {"algorithm": "LACB-Opt"}
    registry = telemetry.registry
    assert registry.counter("engine.runs", **label).value == 1
    assert registry.counter("engine.days", **label).value == 3
    assert registry.counter("engine.assignments", **label).value == result.num_assigned
    workload_histogram = registry.find("engine.broker_workload")[0][1]
    assert workload_histogram.count == 30 * 3  # every broker, every day


def test_instrumented_spans_cover_decision_time_within_10_percent():
    """The report's phase breakdown must account for >= 90% of decision time.

    The top-level instrumented spans (bandit predict/update, VFGA batch
    assignment and day settlement) live strictly inside the engine-timed
    matcher calls, so their total is bounded above by decision time and the
    uninstrumented remainder must stay under 10%.
    """
    telemetry, result = _run_with_telemetry()
    label = {"algorithm": "LACB-Opt"}
    top_level = ("bandit.predict", "vfga.assign_batch", "vfga.end_day", "bandit.update")
    covered = sum(
        telemetry.registry.timer(f"span.{name}", **label).total for name in top_level
    )
    assert covered <= result.decision_time * 1.02
    assert covered >= result.decision_time * 0.90
    # The interior spans the paper's timing story is about all fired.
    for interior in ("matching.solve", "matching.cbs_prune", "vfga.td_update"):
        assert telemetry.registry.timer(f"span.{interior}", **label).count > 0
    ratio_gauge = telemetry.registry.gauge("cbs.pruned_broker_ratio", **label)
    assert ratio_gauge.updates > 0
    assert 0.0 <= ratio_gauge.value <= 1.0


def test_explicit_hook_is_not_attached_twice():
    platform = generate_city(
        SyntheticConfig(num_brokers=20, num_requests=80, num_days=2, imbalance=0.1, seed=11)
    )
    telemetry = Telemetry()
    with obs.use(telemetry):
        DayLoopEngine().run(
            platform,
            make_matcher("Top-1", platform, seed=1),
            hooks=[TelemetryHook(telemetry)],
        )
    assert telemetry.registry.counter("engine.runs", algorithm="Top-1").value == 1


def test_run_label_restored_after_run():
    telemetry, _result = _run_with_telemetry(name="Top-3", days=2, requests=80)
    assert telemetry.run_label is None


def test_full_run_chrome_trace_is_valid(tmp_path):
    telemetry, _result = _run_with_telemetry(name="Top-3", days=2, requests=80)
    paths = telemetry.export(tmp_path)
    trace = json.loads((tmp_path / "trace.json").read_text())
    assert trace["traceEvents"], "a run must produce spans"
    assert {event["ph"] for event in trace["traceEvents"]} == {"X"}
    names = {event["name"] for event in trace["traceEvents"]}
    assert set(ENGINE_PHASES) <= names
    assert paths["trace_json"] == str(tmp_path / "trace.json")
