"""Prometheus text exposition: edge cases a scraper must survive.

The exporter output is consumed verbatim by Prometheus' text parser, so
these tests pin the format corners: empty registries, label values with
quotes/backslashes/newlines, non-finite observations, zero-count
histograms and timer summary quantiles.
"""

import math

from repro.obs.metrics import COUNT_BOUNDARIES, MetricsRegistry
from repro.obs.quantiles import REPORT_QUANTILES


def test_empty_registry_renders_empty_string():
    assert MetricsRegistry().prometheus_text() == ""


def test_label_values_escaped():
    registry = MetricsRegistry()
    registry.counter(
        "events", path='C:\\runs\\x', note='say "hi"\nbye'
    ).inc()
    text = registry.prometheus_text()
    assert r'path="C:\\runs\\x"' in text
    assert r'note="say \"hi\"\nbye"' in text
    # The escaped line must stay a single physical line.
    [line] = [l for l in text.splitlines() if l.startswith("repro_events{")]
    assert line.endswith(" 1")


def test_non_finite_values_render_prometheus_spellings():
    registry = MetricsRegistry()
    registry.gauge("pos").set(math.inf)
    registry.gauge("neg").set(-math.inf)
    registry.gauge("nan").set(math.nan)
    text = registry.prometheus_text()
    assert "repro_pos +Inf" in text
    assert "repro_neg -Inf" in text
    assert "repro_nan NaN" in text


def test_zero_count_histogram_exports_complete_series():
    registry = MetricsRegistry()
    registry.histogram("empty", boundaries=COUNT_BOUNDARIES)
    text = registry.prometheus_text()
    # All cumulative buckets present and zero, +Inf bucket, sum and count.
    assert text.count("repro_empty_bucket") == len(COUNT_BOUNDARIES) + 1
    assert 'le="+Inf"} 0' in text
    assert "repro_empty_sum 0" in text
    assert "repro_empty_count 0" in text


def test_zero_count_timer_has_no_quantile_lines():
    registry = MetricsRegistry()
    registry.timer("idle")
    text = registry.prometheus_text()
    assert "quantile=" not in text
    assert "repro_idle_seconds_count 0" in text


def test_timer_summary_quantiles_present_and_ordered():
    registry = MetricsRegistry()
    timer = registry.timer("solve", algorithm="LACB-Opt")
    for value in (0.001, 0.002, 0.010, 0.100):
        timer.observe(value)
    text = registry.prometheus_text()
    for q in REPORT_QUANTILES:
        assert f'quantile="{q}"' in text
    # Quantile values are monotone in q for this sample.
    values = []
    for line in text.splitlines():
        if "quantile=" in line:
            values.append(float(line.rsplit(" ", 1)[1]))
    assert values == sorted(values)


def test_non_finite_histogram_observation_keeps_export_parseable():
    registry = MetricsRegistry()
    histogram = registry.histogram("weird", boundaries=(1.0, 10.0))
    histogram.observe(math.inf)
    histogram.observe(math.nan)
    text = registry.prometheus_text()
    # Sum is NaN (inf + nan); every line still renders and count is exact.
    assert "repro_weird_sum NaN" in text
    assert "repro_weird_count 2" in text
