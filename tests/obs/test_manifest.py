"""Run manifests: schema, provenance fields, spec descriptions."""

import json

from repro.engine import MatcherSpec, PlatformSpec, RunSpec
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    git_sha,
    repro_version,
    write_manifest,
)
from repro.simulation import SyntheticConfig


def test_build_manifest_records_provenance():
    manifest = build_manifest(
        command="compare",
        args={"brokers": 200, "algorithms": ["LACB-Opt"], "func": print},
        wall_seconds=1.5,
    )
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["repro_version"] == repro_version()
    assert manifest["command"] == "compare"
    assert manifest["args"]["brokers"] == 200
    assert manifest["args"]["algorithms"] == ["LACB-Opt"]
    # Non-JSON values are rendered, not dropped or crashed on.
    assert isinstance(manifest["args"]["func"], str)
    assert manifest["wall_seconds"] == 1.5
    assert manifest["python"].count(".") == 2
    assert "T" in manifest["created_utc"]


def test_git_sha_resolves_inside_this_checkout():
    sha = git_sha()
    assert sha is not None
    assert len(sha) == 40
    assert set(sha) <= set("0123456789abcdef")


def test_manifest_describes_run_specs():
    spec = RunSpec(
        platform=PlatformSpec.synthetic(
            SyntheticConfig(num_brokers=20, num_requests=80, num_days=2, imbalance=0.1, seed=1)
        ),
        matcher=MatcherSpec("LACB-Opt", seed=7),
    )
    manifest = build_manifest(specs=[spec])
    (run,) = manifest["runs"]
    assert run["algorithm"] == "LACB-Opt"
    assert run["matcher_seed"] == 7


def test_write_manifest_is_json_on_disk(tmp_path):
    path = write_manifest(tmp_path / "out", build_manifest(command="sweep"))
    loaded = json.loads(open(path).read())
    assert loaded["schema"] == MANIFEST_SCHEMA
    assert loaded["command"] == "sweep"
