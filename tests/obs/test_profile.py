"""Phase profiler: tree reconstruction, day attribution, stacks, hotspots."""

import math

from repro.engine import MatcherSpec, PlatformSpec, RunSpec, run_many
from repro.obs.profile import (
    build_forest,
    collapsed_stacks,
    day_rows,
    hotspots,
    phase_stats,
    write_collapsed,
)
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import SpanRecord
from repro.simulation import SyntheticConfig

TINY = SyntheticConfig(num_brokers=15, num_requests=60, num_days=2, imbalance=0.1, seed=5)


def _span(name, start, duration, depth=0, day=-1, cpu=-1.0, pid=0):
    return SpanRecord(name, start, duration, depth, pid, day, cpu)


def _synthetic_day():
    """The append order the hook actually produces for one day.

    Live spans close first (post-order), then the telemetry hook books the
    synthesized engine-phase span at the same depth — which must adopt the
    live roots recorded since the previous engine phase.
    """
    return [
        _span("matching.solve", 0.01, 0.02, depth=1, day=0),
        _span("vfga.assign_batch", 0.00, 0.04, depth=0, day=0),
        _span("engine.assign_batch", 0.00, 0.05, depth=0, day=0, cpu=0.03),
        _span("matching.solve", 0.06, 0.01, depth=1, day=0),
        _span("vfga.assign_batch", 0.06, 0.02, depth=0, day=0),
        _span("engine.assign_batch", 0.06, 0.03, depth=0, day=0, cpu=0.01),
        _span("engine.end_day", 0.09, 0.01, depth=0, day=0, cpu=0.005),
    ]


def test_engine_phases_adopt_live_roots_not_each_other():
    forest = build_forest(_synthetic_day())
    names = [node.record.name for node in forest]
    # All three engine phases are roots — siblings, never nested.
    assert names == ["engine.assign_batch", "engine.assign_batch", "engine.end_day"]
    first, second, end_day = forest
    assert [c.record.name for c in first.children] == ["vfga.assign_batch"]
    assert [c.record.name for c in first.children[0].children] == ["matching.solve"]
    assert [c.record.name for c in second.children] == ["vfga.assign_batch"]
    assert end_day.children == []


def test_self_time_subtracts_children_and_clamps():
    forest = build_forest(_synthetic_day())
    first = forest[0]
    assert first.self_seconds == max(0.0, 0.05 - 0.04)
    matcher = first.children[0]
    assert math.isclose(matcher.self_seconds, 0.04 - 0.02)
    # A child longer than its adoptive parent clamps to zero, not negative.
    clamped = build_forest(
        [
            _span("state.checkpoint", 0.0, 0.20, depth=0, day=0),
            _span("engine.end_day", 0.1, 0.01, depth=0, day=0),
        ]
    )
    assert clamped[0].record.name == "engine.end_day"
    assert clamped[0].self_seconds == 0.0


def test_lanes_are_independent_trees():
    records = _synthetic_day() + [
        _span("vfga.assign_batch", 0.0, 0.04, depth=0, day=0, pid=1),
        _span("engine.assign_batch", 0.0, 0.05, depth=0, day=0, pid=1),
    ]
    forest = build_forest(records)
    assert len(forest) == 4  # three lane-0 roots + one lane-1 root
    lane1 = [n for n in forest if n.record.pid == 1]
    assert len(lane1) == 1
    assert [c.record.name for c in lane1[0].children] == ["vfga.assign_batch"]


def test_phase_stats_day_filter_and_unknown_cpu():
    records = _synthetic_day() + [_span("engine.begin_day", 0.2, 0.01, day=1)]
    rows = phase_stats(records, day=0)
    by_name = {name: (calls, wall, cpu) for name, calls, wall, cpu in rows}
    assert by_name["engine.assign_batch"][0] == 2
    assert math.isclose(by_name["engine.assign_batch"][2], 0.04)  # cpu sum
    # Live spans carry no CPU measurement: reported as unknown, not zero.
    assert by_name["matching.solve"][2] == -1.0
    assert "engine.begin_day" not in by_name  # day 1 filtered out
    # Rows are wall-descending.
    assert [row[2] for row in rows] == sorted((row[2] for row in rows), reverse=True)


def test_day_rows_order_days_ascending_with_daylless_last():
    records = [
        _span("export", 1.0, 0.1, day=-1),
        _span("engine.begin_day", 0.5, 0.1, day=1),
        _span("engine.begin_day", 0.0, 0.1, day=0),
    ]
    rows = day_rows(records)
    assert [row[0] for row in rows] == [0, 1, -1]
    only_engine = day_rows(records, phases=("engine.begin_day",))
    assert all(row[1] == "engine.begin_day" for row in only_engine)
    assert len(only_engine) == 2


def test_hotspots_rank_by_self_time():
    rows = hotspots(_synthetic_day(), top=2)
    assert len(rows) == 2
    # vfga self (0.04-0.02 + 0.02-0.01) and matching self (0.02 + 0.01)
    # tie at 0.03 and beat both engine wrappers (0.01 + 0.01 self).
    assert {rows[0][0], rows[1][0]} == {"vfga.assign_batch", "matching.solve"}
    assert math.isclose(rows[0][3], 0.03)
    assert math.isclose(rows[1][3], 0.03)
    assert [row[3] for row in rows] == sorted((row[3] for row in rows), reverse=True)


def test_collapsed_stacks_paths_and_weights():
    weights = collapsed_stacks(_synthetic_day())
    assert "engine.assign_batch;vfga.assign_batch;matching.solve" in weights
    # Self-time microseconds, summed across the two batches.
    assert weights["engine.assign_batch;vfga.assign_batch"] == 30000
    assert weights["engine.assign_batch;vfga.assign_batch;matching.solve"] == 30000
    # No engine phase ever appears below another engine phase.
    for stack in weights:
        frames = stack.split(";")
        engine_frames = [f for f in frames if f.startswith("engine.")]
        assert len(engine_frames) <= 1
        if engine_frames:
            assert frames[0] == engine_frames[0]


def test_write_collapsed_is_deterministic(tmp_path):
    first = tmp_path / "a.txt"
    second = tmp_path / "b.txt"
    write_collapsed(first, _synthetic_day())
    write_collapsed(second, _synthetic_day())
    assert first.read_text() == second.read_text()
    lines = first.read_text().splitlines()
    assert lines == sorted(lines)
    assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)


def test_real_run_profiles_cleanly():
    """End to end: a real engine run yields sane trees and stacks."""
    telemetry = Telemetry()
    # LACB-Opt opens interior spans (vfga.assign_batch, matching.solve),
    # so the reconstructed stacks actually nest.
    spec = RunSpec(platform=PlatformSpec.synthetic(TINY), matcher=MatcherSpec("LACB-Opt", seed=1))
    run_many([spec], jobs=1, telemetry=telemetry)
    records = telemetry.tracer.records
    rows = day_rows(records, phases=("engine.assign_batch",))
    assert [row[0] for row in rows] == list(range(TINY.num_days))
    stacks = collapsed_stacks(records)
    assert any(stack.startswith("engine.assign_batch;") for stack in stacks)
    for stack in stacks:
        assert stack.count("engine.assign_batch") <= 1, stack
    # Matcher CPU was measured on the engine phases.
    by_name = {name: cpu for name, _, _, cpu in phase_stats(records)}
    assert by_name["engine.assign_batch"] >= 0.0
