"""Quality telemetry: pure measures, gauges, regret, cross-process merge."""

import numpy as np
import pytest

from repro.engine import MatcherSpec, PlatformSpec, RunSpec, run_many
from repro.obs.quality import (
    batch_regret,
    capacity_bias,
    capacity_mae,
    estimated_capacities_of,
    gini,
    overload_rate,
)
from repro.obs.telemetry import Telemetry
from repro.simulation import SyntheticConfig

TINY = SyntheticConfig(num_brokers=15, num_requests=60, num_days=3, imbalance=0.1, seed=5)

QUALITY_GAUGE_NAMES = (
    "quality.workload_gini",
    "quality.overload_rate",
    "quality.capacity_mae",
    "quality.capacity_bias",
    "quality.regret_ratio",
)


def _specs(names):
    return [
        RunSpec(platform=PlatformSpec.synthetic(TINY), matcher=MatcherSpec(name, seed=1))
        for name in names
    ]


def _gauge(registry, name, algorithm):
    found = [m for labels, m in registry.find(name) if labels.get("algorithm") == algorithm]
    return found[0].value if found else None


# ----------------------------------------------------------------------
# Pure measures
# ----------------------------------------------------------------------
def test_gini_matches_experiments_estimator():
    from repro.experiments.metrics import gini as reference

    rng = np.random.default_rng(0)
    for values in ([], [5.0], [1, 1, 1, 1], rng.integers(0, 20, size=30)):
        values = np.asarray(values, dtype=float)
        expected = reference(values) if values.size else 0.0
        assert gini(values) == pytest.approx(expected)
    assert gini([0.0, 0.0]) == 0.0  # degenerate all-zero day
    assert gini([0, 0, 0, 10]) == pytest.approx(0.75)


def test_capacity_error_measures():
    estimated = np.array([10.0, 20.0, 30.0])
    true = np.array([12.0, 20.0, 24.0])
    assert capacity_mae(estimated, true) == pytest.approx(8 / 3)
    assert capacity_bias(estimated, true) == pytest.approx(4 / 3)
    assert capacity_mae(np.array([]), np.array([])) == 0.0


def test_overload_rate_counts_strict_excess():
    workloads = np.array([5, 10, 11, 0])
    capacities = np.array([5, 9, 12, 1])
    assert overload_rate(workloads, capacities) == pytest.approx(0.25)


def test_batch_regret_against_known_optimum():
    from repro.core.types import AssignedPair, Assignment

    utilities = np.array([[1.0, 0.0], [0.0, 2.0]])
    assignment = Assignment(day=0, batch=0)
    assignment.pairs.append(AssignedPair(0, 1, 0.0))  # deliberately bad match
    matched, oracle = batch_regret(utilities, assignment)
    assert matched == 0.0
    assert oracle == pytest.approx(3.0)


def test_estimated_capacities_duck_typing():
    class WithProperty:
        estimated_capacities = np.array([1.0, 2.0])

    class WithAssigner:
        class assigner:
            capacities = np.array([3.0])

    class Ranker:
        pass

    assert estimated_capacities_of(WithProperty()).tolist() == [1.0, 2.0]
    assert estimated_capacities_of(WithAssigner()).tolist() == [3.0]
    assert estimated_capacities_of(Ranker()) is None


# ----------------------------------------------------------------------
# End-to-end gauges
# ----------------------------------------------------------------------
def test_run_books_quality_gauges_per_algorithm():
    telemetry = Telemetry()
    run_many(_specs(("LACB-Opt", "Top-3")), telemetry=telemetry)
    registry = telemetry.registry

    for name in QUALITY_GAUGE_NAMES:
        value = _gauge(registry, name, "LACB-Opt")
        assert value is not None, name
    assert 0.0 <= _gauge(registry, "quality.workload_gini", "LACB-Opt") <= 1.0
    assert 0.0 <= _gauge(registry, "quality.overload_rate", "LACB-Opt") <= 1.0
    assert 0.0 <= _gauge(registry, "quality.regret_ratio", "LACB-Opt") <= 1.0
    assert _gauge(registry, "quality.capacity_mae", "LACB-Opt") >= 0.0

    # Top-3 has no capacity model: its error gauges must be *absent*, not 0.
    assert _gauge(registry, "quality.capacity_mae", "Top-3") is None
    assert _gauge(registry, "quality.capacity_bias", "Top-3") is None
    assert _gauge(registry, "quality.workload_gini", "Top-3") is not None

    # Day-level distributions land in mergeable histograms.
    (gini_hist,) = [
        m for labels, m in registry.find("quality.workload_gini_days")
        if labels.get("algorithm") == "LACB-Opt"
    ]
    assert gini_hist.count == TINY.num_days


def test_regret_counters_merge_bit_identical_across_jobs():
    serial, pooled = Telemetry(), Telemetry()
    run_many(_specs(("LACB-Opt", "AN")), jobs=1, telemetry=serial)
    run_many(_specs(("LACB-Opt", "AN")), jobs=2, telemetry=pooled)
    for name in (
        "quality.regret_matched_utility",
        "quality.regret_oracle_utility",
        "quality.regret_batches",
    ):
        left = {tuple(sorted(labels.items())): m.value for labels, m in serial.registry.find(name)}
        right = {tuple(sorted(labels.items())): m.value for labels, m in pooled.registry.find(name)}
        assert left == right, name
        assert left, name  # the counters exist and carry data


def test_quality_metrics_reach_prometheus_export():
    telemetry = Telemetry()
    run_many(_specs(("LACB-Opt",)), telemetry=telemetry)
    text = telemetry.registry.prometheus_text()
    assert "quality_workload_gini" in text
    assert "quality_overload_rate" in text
    assert "quality_capacity_mae" in text
    assert "quality_regret_ratio" in text


def test_progress_stream_carries_quality_fields(tmp_path):
    from repro.obs.stream import read_stream

    telemetry = Telemetry()
    telemetry.stream_dir = str(tmp_path)
    run_many(_specs(("LACB-Opt",)), telemetry=telemetry)
    (segment,) = read_stream(tmp_path).segments
    progress = segment.progress
    assert "workload_gini" in progress
    assert "overload_rate" in progress
    assert "capacity_mae" in progress
    assert "regret_ratio" in progress


def test_ranker_progress_omits_capacity_fields(tmp_path):
    from repro.obs.stream import read_stream

    telemetry = Telemetry()
    telemetry.stream_dir = str(tmp_path)
    run_many(_specs(("Top-3",)), telemetry=telemetry)
    (segment,) = read_stream(tmp_path).segments
    # Absent, never zero-filled — report renders these as "-".
    assert "capacity_mae" not in segment.progress
    assert "workload_gini" in segment.progress
