"""The telemetry switchboard: enable/disable, no-op fast path, payload merge."""

import pytest

from repro.obs import telemetry as obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    METRICS_JSON,
    METRICS_PROM,
    SPANS_JSONL,
    TRACE_JSON,
    Telemetry,
)


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with telemetry disabled."""
    obs.disable()
    yield
    obs.disable()


def test_disabled_helpers_are_no_ops():
    assert not obs.enabled()
    assert obs.current() is None
    with obs.span("anything", algorithm="X"):
        obs.add("counter")
        obs.set_gauge("gauge", 1.0)
        obs.observe("histogram", 2.0)
    # Nothing was recorded anywhere: no active telemetry exists to hold it.
    assert obs.current() is None


def test_enable_installs_and_disable_removes():
    telemetry = obs.enable()
    assert obs.enabled()
    assert obs.current() is telemetry
    obs.add("n")
    assert telemetry.registry.counter("n").value == 1.0
    obs.disable()
    assert not obs.enabled()


def test_use_restores_previous_telemetry_on_exit():
    outer = obs.enable()
    inner = Telemetry()
    with obs.use(inner):
        assert obs.current() is inner
        obs.add("n")
    assert obs.current() is outer
    assert inner.registry.counter("n").value == 1.0
    assert len(outer.registry) == 0


def test_run_label_stamps_spans_and_metrics():
    telemetry = Telemetry()
    telemetry.set_run_label("LACB-Opt")
    with telemetry.span("phase"):
        pass
    telemetry.add("n")
    (record,) = telemetry.tracer.records
    assert record.attrs["algorithm"] == "LACB-Opt"
    assert telemetry.registry.counter("n", algorithm="LACB-Opt").value == 1.0
    # Spans double-book into span.<name> timers carrying the same label.
    timer = telemetry.registry.timer("span.phase", algorithm="LACB-Opt")
    assert timer.count == 1


def test_span_timer_cache_respects_label_changes():
    telemetry = Telemetry()
    telemetry.set_run_label("A")
    with telemetry.span("phase"):
        pass
    telemetry.set_run_label("B")
    with telemetry.span("phase"):
        pass
    assert telemetry.registry.timer("span.phase", algorithm="A").count == 1
    assert telemetry.registry.timer("span.phase", algorithm="B").count == 1


def test_payload_merge_is_exact():
    worker = Telemetry()
    worker.set_run_label("AN")
    worker.add("engine.runs")
    with worker.span("phase"):
        pass

    parent = Telemetry()
    parent.merge_payload(worker.payload())
    assert parent.registry.counter("engine.runs", algorithm="AN").value == 1.0
    # Worker spans land in their own Chrome-trace lane.
    assert all(record.pid == 1 for record in parent.tracer.records)
    assert len(parent.tracer.records) == 1


def test_export_writes_all_artifacts(tmp_path):
    telemetry = Telemetry()
    telemetry.add("n")
    with telemetry.span("phase"):
        pass
    paths = telemetry.export(tmp_path, manifest={"schema": "x"})
    for name in (METRICS_JSON, METRICS_PROM, SPANS_JSONL, TRACE_JSON, "manifest.json"):
        assert (tmp_path / name).exists(), name
    assert set(paths) == {
        "metrics_json", "metrics_prom", "spans_jsonl", "trace_json", "manifest_json"
    }
    # The metrics dump reloads into an equivalent registry.
    import json

    reloaded = MetricsRegistry.from_dict(json.loads((tmp_path / METRICS_JSON).read_text()))
    assert reloaded.to_dict() == telemetry.registry.to_dict()
