"""Public API surface: exports resolve and carry documentation."""

import inspect

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_public_items_documented():
    for name in repro.__all__:
        item = getattr(repro, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            assert item.__doc__, f"{name} lacks a docstring"


def test_subpackages_documented():
    import repro.algorithms
    import repro.bandits
    import repro.boosting
    import repro.core
    import repro.experiments
    import repro.matching
    import repro.nn
    import repro.simulation

    for module in (
        repro,
        repro.algorithms,
        repro.bandits,
        repro.boosting,
        repro.core,
        repro.experiments,
        repro.matching,
        repro.nn,
        repro.simulation,
    ):
        assert module.__doc__ and len(module.__doc__) > 40, module.__name__


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_readme_quickstart_runs():
    """The README's quickstart snippet is executable as written."""
    from repro import SyntheticConfig, generate_city, make_matcher, run_algorithm

    platform = generate_city(
        SyntheticConfig(num_brokers=30, num_requests=300, num_days=2, seed=42)
    )
    top3 = run_algorithm(platform, make_matcher("Top-3", platform, seed=7))
    lacb = run_algorithm(platform, make_matcher("LACB-Opt", platform, seed=7))
    assert top3.total_realized_utility > 0
    assert lacb.total_realized_utility > 0
