"""Learned utility model: features, fit on history, matrix prediction."""

import numpy as np
import pytest

from repro.boosting import UtilityModel, pair_features
from repro.simulation.utility import ground_truth_affinity


def _history(platform, rng, num_pairs=800):
    """Sample served pairs with realized conversion outcomes."""
    stream = platform.stream
    population = platform.population
    requests = rng.integers(0, len(stream), size=num_pairs)
    brokers = rng.integers(0, len(population), size=num_pairs)
    affinity = ground_truth_affinity(population, stream, requests)
    outcomes = affinity[np.arange(num_pairs), brokers]
    outcomes = np.clip(outcomes + rng.normal(0, 0.02, size=num_pairs), 0, 1)
    return requests, brokers, outcomes


def test_pair_features_shape(tiny_platform, rng):
    requests = rng.integers(0, len(tiny_platform.stream), size=10)
    brokers = rng.integers(0, tiny_platform.num_brokers, size=10)
    features = pair_features(tiny_platform.population, tiny_platform.stream, requests, brokers)
    assert features.shape == (10, 8)
    assert np.all(np.isfinite(features))


def test_pair_features_length_mismatch(tiny_platform):
    with pytest.raises(ValueError):
        pair_features(tiny_platform.population, tiny_platform.stream, [0, 1], [0])


def test_predict_before_fit(tiny_platform):
    with pytest.raises(RuntimeError):
        UtilityModel().predict_matrix(tiny_platform.population, tiny_platform.stream, [0])


def test_learned_utilities_correlate_with_ground_truth(tiny_platform, rng):
    requests, brokers, outcomes = _history(tiny_platform, rng)
    model = UtilityModel(num_rounds=40, rng=rng).fit_from_history(
        tiny_platform.population, tiny_platform.stream, requests, brokers, outcomes
    )
    probe = np.arange(20)
    predicted = model.predict_matrix(tiny_platform.population, tiny_platform.stream, probe)
    truth = ground_truth_affinity(tiny_platform.population, tiny_platform.stream, probe)
    assert predicted.shape == truth.shape
    correlation = np.corrcoef(predicted.ravel(), truth.ravel())[0, 1]
    assert correlation > 0.7


def test_predictions_clipped_to_unit_interval(tiny_platform, rng):
    requests, brokers, outcomes = _history(tiny_platform, rng, num_pairs=300)
    model = UtilityModel(num_rounds=10).fit_from_history(
        tiny_platform.population, tiny_platform.stream, requests, brokers, outcomes
    )
    matrix = model.predict_matrix(tiny_platform.population, tiny_platform.stream, np.arange(5))
    assert matrix.min() >= 1e-6
    assert matrix.max() <= 1.0
