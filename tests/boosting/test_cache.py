"""Utility-prediction cache: bit-identical rows, LRU bounds, invalidation."""

import numpy as np
import pytest

from repro.boosting import CachedUtilityModel, UtilityModel, UtilityPredictionCache
from repro.boosting.cache import request_feature_digest
from repro.simulation import SyntheticConfig, generate_city

CITY = SyntheticConfig(num_brokers=12, num_requests=60, num_days=1, seed=3)


@pytest.fixture(scope="module")
def fitted():
    platform = generate_city(CITY)
    rng = np.random.default_rng(0)
    n = 120
    model = UtilityModel(num_rounds=8, rng=np.random.default_rng(1))
    model.fit_from_history(
        platform.population,
        platform.stream,
        rng.integers(0, CITY.num_requests, size=n),
        rng.integers(0, CITY.num_brokers, size=n),
        rng.uniform(0.0, 1.0, size=n),
    )
    return platform, model


def test_cached_rows_are_bit_identical(fitted):
    platform, model = fitted
    cached = CachedUtilityModel(model)
    batch = np.array([0, 5, 9, 5, 17])
    expected = model.predict_matrix(platform.population, platform.stream, batch)
    # Cold pass (all misses), then warm pass (all hits): both exact.
    np.testing.assert_array_equal(
        cached.predict_matrix(platform.population, platform.stream, batch), expected
    )
    np.testing.assert_array_equal(
        cached.predict_matrix(platform.population, platform.stream, batch), expected
    )
    assert cached.cache.stats["hits"] > 0


def test_misses_are_batched_into_one_model_call(fitted):
    platform, model = fitted
    calls = []
    real = model.predict_matrix

    class Counting:
        def __getattr__(self, name):
            return getattr(model, name)

        def predict_matrix(self, population, stream, request_indices):
            calls.append(np.asarray(request_indices).size)
            return real(population, stream, request_indices)

    cached = CachedUtilityModel(Counting())
    cached.predict_matrix(platform.population, platform.stream, np.array([1, 2, 3]))
    cached.predict_matrix(platform.population, platform.stream, np.array([2, 3, 4]))
    # First call misses all 3; second call misses only request 4.
    assert calls == [3, 1]


def test_duplicate_requests_share_rows_across_batches(fitted):
    platform, model = fitted
    cached = CachedUtilityModel(model)
    batch = np.array([7, 7, 7])
    out = cached.predict_matrix(platform.population, platform.stream, batch)
    np.testing.assert_array_equal(out[0], out[1])
    np.testing.assert_array_equal(out[0], out[2])
    # Within one batch the duplicates miss together (they are computed in
    # the single batched model call); one row is stored, and the next
    # batch answers every duplicate from it.
    assert len(cached.cache) == 1
    cached.predict_matrix(platform.population, platform.stream, batch)
    assert cached.cache.stats["hits"] == 3


def test_refit_invalidates(fitted):
    platform, model = fitted
    cached = CachedUtilityModel(model)
    cached.predict_matrix(platform.population, platform.stream, np.array([0, 1]))
    assert len(cached.cache) == 2
    generation = cached.cache.generation
    rng = np.random.default_rng(2)
    n = 80
    cached.fit_from_history(
        platform.population,
        platform.stream,
        rng.integers(0, CITY.num_requests, size=n),
        rng.integers(0, CITY.num_brokers, size=n),
        rng.uniform(0.0, 1.0, size=n),
    )
    assert len(cached.cache) == 0
    assert cached.cache.generation == generation + 1
    # Post-refit predictions are the refitted model's, not stale rows.
    batch = np.array([0, 1])
    np.testing.assert_array_equal(
        cached.predict_matrix(platform.population, platform.stream, batch),
        model.predict_matrix(platform.population, platform.stream, batch),
    )


def test_notify_learning_update_clears_rows():
    cache = UtilityPredictionCache()
    cache.store("a", np.ones(4))
    cache.notify_learning_update()
    assert len(cache) == 0
    assert cache.stats["invalidations"] == 1
    assert cache.lookup("a") is None


def test_lru_eviction_bounds_the_store():
    cache = UtilityPredictionCache(max_rows=2)
    cache.store("a", np.zeros(3))
    cache.store("b", np.ones(3))
    cache.lookup("a")  # refresh "a" — "b" becomes LRU
    cache.store("c", np.full(3, 2.0))
    assert cache.lookup("b") is None
    assert cache.lookup("a") is not None
    assert cache.lookup("c") is not None
    assert cache.stats["evictions"] == 1


def test_stored_rows_are_copies():
    cache = UtilityPredictionCache()
    row = np.ones(3)
    cache.store("a", row)
    row[0] = 99.0
    assert cache.lookup("a")[0] == 1.0


def test_max_rows_must_be_positive():
    with pytest.raises(ValueError):
        UtilityPredictionCache(max_rows=0)


def test_digest_depends_on_broker_pool_size(fitted):
    platform, _ = fitted
    assert request_feature_digest(platform.stream, 0, 10) != request_feature_digest(
        platform.stream, 0, 11
    )
    assert request_feature_digest(platform.stream, 0, 10) == request_feature_digest(
        platform.stream, 0, 10
    )


def test_empty_batch(fitted):
    platform, model = fitted
    cached = CachedUtilityModel(model)
    out = cached.predict_matrix(platform.population, platform.stream, np.array([], dtype=int))
    assert out.shape == (0, CITY.num_brokers)


def test_cache_snapshot_roundtrip():
    cache = UtilityPredictionCache(max_rows=3)
    cache.store("a", np.arange(4.0))
    cache.store("b", np.arange(4.0) * 2)
    cache.lookup("a")
    cache.invalidate()
    cache.store("c", np.arange(4.0) * 3)
    snap = cache.snapshot()

    twin = UtilityPredictionCache()
    twin.restore(snap)
    assert twin.generation == cache.generation
    assert twin.stats == cache.stats
    assert len(twin) == 1
    np.testing.assert_array_equal(twin.lookup("c"), cache.lookup("c"))


def test_cached_model_snapshot_roundtrip(fitted):
    platform, model = fitted
    cached = CachedUtilityModel(model)
    batch = np.array([3, 4, 5])
    expected = cached.predict_matrix(platform.population, platform.stream, batch)
    snap = cached.snapshot()

    twin = CachedUtilityModel(UtilityModel())
    twin.restore(snap)
    hits_before = twin.cache.stats["hits"]
    np.testing.assert_array_equal(
        twin.predict_matrix(platform.population, platform.stream, batch), expected
    )
    # The restored store answers the whole batch without a model call.
    assert twin.cache.stats["hits"] == hits_before + batch.size
