"""Regression trees: fitting behaviour, constraints, prediction routing."""

import numpy as np
import pytest

from repro.boosting import RegressionTree


def test_depth_zero_forbidden():
    with pytest.raises(ValueError):
        RegressionTree(max_depth=0)


def test_fit_requires_samples():
    with pytest.raises(ValueError):
        RegressionTree().fit(np.zeros((0, 2)), np.zeros(0))


def test_fit_shape_mismatch():
    with pytest.raises(ValueError):
        RegressionTree().fit(np.zeros((3, 2)), np.zeros(4))


def test_predict_before_fit():
    with pytest.raises(RuntimeError):
        RegressionTree().predict(np.zeros((1, 2)))


def test_constant_target_single_leaf():
    x = np.linspace(0, 1, 20).reshape(-1, 1)
    y = np.full(20, 3.0)
    tree = RegressionTree().fit(x, y)
    assert tree.num_nodes == 1
    np.testing.assert_allclose(tree.predict(x), 3.0)


def test_step_function_recovered():
    x = np.linspace(0, 1, 200).reshape(-1, 1)
    y = np.where(x[:, 0] < 0.5, 1.0, 5.0)
    tree = RegressionTree(max_depth=2).fit(x, y)
    pred = tree.predict(x)
    np.testing.assert_allclose(pred, y, atol=0.01)


def test_depth_limits_splits(rng):
    x = rng.uniform(size=(300, 3))
    y = np.sin(6 * x[:, 0]) + x[:, 1]
    shallow = RegressionTree(max_depth=1).fit(x, y)
    deep = RegressionTree(max_depth=5).fit(x, y)
    shallow_mse = np.mean((shallow.predict(x) - y) ** 2)
    deep_mse = np.mean((deep.predict(x) - y) ** 2)
    assert deep_mse < shallow_mse
    assert shallow.num_nodes <= 3


def test_min_samples_leaf_respected(rng):
    x = rng.uniform(size=(20, 1))
    y = rng.normal(size=20)
    tree = RegressionTree(max_depth=10, min_samples_leaf=10).fit(x, y)
    # With 20 samples and min leaf 10, at most one split is possible.
    assert tree.num_nodes <= 3


def test_prediction_is_leaf_mean(rng):
    x = rng.uniform(size=(100, 2))
    y = rng.normal(size=100)
    tree = RegressionTree(max_depth=3).fit(x, y)
    pred = tree.predict(x)
    # Predictions take finitely many values (leaf means) and are bounded by y.
    assert np.unique(pred).size <= 2**3
    assert pred.min() >= y.min() - 1e-12
    assert pred.max() <= y.max() + 1e-12
