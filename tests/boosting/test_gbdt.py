"""Gradient boosting: monotone training loss, accuracy, validation."""

import numpy as np
import pytest

from repro.boosting import GradientBoostedTrees


def test_parameter_validation():
    with pytest.raises(ValueError):
        GradientBoostedTrees(num_rounds=0)
    with pytest.raises(ValueError):
        GradientBoostedTrees(learning_rate=0.0)
    with pytest.raises(ValueError):
        GradientBoostedTrees(subsample=0.0)
    with pytest.raises(ValueError):
        GradientBoostedTrees(subsample=0.5)  # needs rng


def test_predict_before_fit():
    with pytest.raises(RuntimeError):
        GradientBoostedTrees().predict(np.zeros((1, 2)))


def test_fit_shape_mismatch():
    with pytest.raises(ValueError):
        GradientBoostedTrees().fit(np.zeros((3, 2)), np.zeros(4))


def test_training_loss_decreases(rng):
    x = rng.uniform(-1, 1, size=(300, 3))
    y = np.sin(3 * x[:, 0]) + 0.5 * x[:, 1]
    model = GradientBoostedTrees(num_rounds=40).fit(x, y)
    losses = model.train_losses
    assert len(losses) == 40
    assert losses[-1] < 0.2 * losses[0]
    # Full-sample squared-loss boosting is monotone non-increasing.
    assert all(b <= a + 1e-12 for a, b in zip(losses, losses[1:]))


def test_beats_constant_predictor(rng):
    x = rng.uniform(-1, 1, size=(400, 4))
    y = x[:, 0] ** 2 + x[:, 1]
    model = GradientBoostedTrees(num_rounds=50).fit(x, y)
    mse = np.mean((model.predict(x) - y) ** 2)
    assert mse < 0.1 * y.var()


def test_subsampling_still_learns(rng):
    x = rng.uniform(-1, 1, size=(400, 3))
    y = 2 * x[:, 0]
    model = GradientBoostedTrees(num_rounds=50, subsample=0.7, rng=rng).fit(x, y)
    mse = np.mean((model.predict(x) - y) ** 2)
    assert mse < 0.1 * y.var()


def test_generalization_on_holdout(rng):
    x = rng.uniform(-1, 1, size=(600, 2))
    y = np.where(x[:, 0] > 0, 1.0, 0.0) + 0.05 * rng.normal(size=600)
    model = GradientBoostedTrees(num_rounds=30).fit(x[:400], y[:400])
    holdout_mse = np.mean((model.predict(x[400:]) - y[400:]) ** 2)
    assert holdout_mse < 0.05


def test_num_trees(rng):
    x = rng.uniform(size=(50, 2))
    y = rng.normal(size=50)
    model = GradientBoostedTrees(num_rounds=7).fit(x, y)
    assert model.num_trees == 7
