"""MLP: exact gradients, parameter vector round-trips, freezing, training."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import MLP, SGD, Adam


def _numerical_gradient(net: MLP, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    theta = net.param_vector()
    grad = np.zeros_like(theta)
    for index in range(theta.size):
        up = theta.copy()
        up[index] += eps
        net.set_param_vector(up)
        f_up = net.predict(x[None])[0]
        down = theta.copy()
        down[index] -= eps
        net.set_param_vector(down)
        f_down = net.predict(x[None])[0]
        grad[index] = (f_up - f_down) / (2 * eps)
    net.set_param_vector(theta)
    return grad


def test_param_gradient_matches_numerical(rng):
    net = MLP([4, 6, 1], rng)
    x = rng.normal(size=4)
    analytic = net.param_gradient(x)
    numeric = _numerical_gradient(net, x)
    np.testing.assert_allclose(analytic, numeric, atol=1e-7)


def test_param_gradient_preserves_training_grads(rng):
    net = MLP([3, 4, 1], rng)
    x = rng.normal(size=(5, 3))
    net.forward(x)
    net.backward(np.ones((5, 1)))
    saved = net.grad_vector()
    net.param_gradient(rng.normal(size=3))
    np.testing.assert_array_equal(net.grad_vector(), saved)


def test_param_vector_roundtrip(rng):
    net = MLP([3, 5, 2], rng)
    theta = net.param_vector()
    assert theta.shape == (net.num_params,)
    other = MLP([3, 5, 2], rng)
    other.set_param_vector(theta)
    x = rng.normal(size=(4, 3))
    np.testing.assert_allclose(net.forward(x), other.forward(x))


def test_set_param_vector_rejects_wrong_size(rng):
    net = MLP([3, 5, 2], rng)
    with pytest.raises(ValueError):
        net.set_param_vector(np.zeros(net.num_params + 1))


def test_needs_two_sizes(rng):
    with pytest.raises(ValueError):
        MLP([4], rng)


def test_param_gradient_requires_scalar_output(rng):
    net = MLP([3, 4, 2], rng)
    with pytest.raises(ValueError):
        net.param_gradient(np.zeros(3))


def test_training_reduces_loss(rng):
    net = MLP([2, 16, 1], rng)
    x = rng.uniform(-1, 1, size=(128, 2))
    y = x[:, 0] * x[:, 1]
    optimizer = Adam(0.01)
    first = net.train_step(x, y, optimizer)
    for _ in range(300):
        last = net.train_step(x, y, optimizer)
    assert last < first * 0.2


def test_l2_regularization_shrinks_weights(rng):
    net = MLP([2, 8, 1], rng)
    x = np.zeros((4, 2))
    y = np.zeros(4)
    norm_before = np.linalg.norm(net.param_vector())
    for _ in range(50):
        net.train_step(x, y, SGD(0.05), lam=0.1)
    assert np.linalg.norm(net.param_vector()) < norm_before


def test_freeze_all_but_last(rng):
    net = MLP([3, 4, 4, 1], rng)
    net.freeze_all_but_last()
    frozen = [layer.trainable for layer in net.layers]
    assert frozen == [False, False, True]
    trunk_before = net.layers[0].weight.copy()
    head_before = net.layers[-1].weight.copy()
    x = rng.normal(size=(8, 3))
    y = rng.normal(size=8)
    for _ in range(5):
        net.train_step(x, y, SGD(0.05))
    np.testing.assert_array_equal(net.layers[0].weight, trunk_before)
    assert not np.array_equal(net.layers[-1].weight, head_before)


def test_clone_is_deep_and_equal(rng):
    net = MLP([3, 4, 1], rng)
    twin = net.clone()
    x = rng.normal(size=(5, 3))
    np.testing.assert_allclose(net.predict(x), twin.predict(x))
    twin.layers[0].weight += 1.0
    assert not np.allclose(net.predict(x), twin.predict(x))


def test_hidden_features_match_manual_forward(rng):
    net = MLP([3, 4, 1], rng)
    x = rng.normal(size=(6, 3))
    hidden = net.hidden_features(x)
    pre = x @ net.layers[0].weight.T + net.layers[0].bias
    np.testing.assert_allclose(hidden, np.maximum(pre, 0.0))
    # head applied to hidden features reproduces the full forward pass
    full = hidden @ net.layers[-1].weight.T + net.layers[-1].bias
    np.testing.assert_allclose(full[:, 0], net.predict(x))


def test_max_singular_value_positive(rng):
    net = MLP([3, 4, 1], rng)
    xi = net.max_singular_value()
    assert xi > 0
    assert xi >= np.linalg.norm(net.layers[-1].weight, 2) - 1e-12


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 4), st.integers(1, 6))
def test_forward_shapes_property(batch, hidden):
    rng = np.random.default_rng(0)
    net = MLP([3, hidden, 1], rng)
    x = rng.normal(size=(batch, 3))
    assert net.forward(x).shape == (batch, 1)
    assert net.predict(x).shape == (batch,)


# ----------------------------------------------------------------------
# Batched per-sample gradients (the fast UCB-scoring kernel)
# ----------------------------------------------------------------------
def test_param_gradients_matches_per_sample_loop(rng):
    from repro.nn import MLP

    network = MLP([7, 16, 8, 1], rng)
    inputs = rng.normal(size=(9, 7))
    batched = network.param_gradients(inputs)
    reference = np.stack([network.param_gradient(row) for row in inputs])
    assert batched.shape == (9, network.num_params)
    np.testing.assert_allclose(batched, reference, rtol=1e-9, atol=1e-12)


def test_param_gradients_single_row_is_exact(rng):
    from repro.nn import MLP

    network = MLP([5, 12, 1], rng)
    row = rng.normal(size=5)
    np.testing.assert_array_equal(
        network.param_gradients(row[None, :])[0], network.param_gradient(row)
    )


def test_param_gradients_requires_scalar_output(rng):
    from repro.nn import MLP

    network = MLP([4, 6, 2], rng)
    with pytest.raises(ValueError, match="scalar"):
        network.param_gradients(rng.normal(size=(3, 4)))


def test_param_gradients_rejects_wrong_width(rng):
    from repro.nn import MLP

    network = MLP([4, 6, 1], rng)
    with pytest.raises(ValueError, match="shape"):
        network.param_gradients(rng.normal(size=(3, 5)))


def test_param_gradients_preserves_training_state(rng):
    """The batched pass must not clobber accumulated gradients or the
    forward caches a pending backward() depends on."""
    from repro.nn import MLP

    network = MLP([4, 6, 1], rng)
    batch = rng.normal(size=(5, 4))
    network.zero_grad()
    network.forward(batch)  # training forward whose caches must survive
    network.layers[0].grad_weight += 3.0
    accumulated = [layer.grad_weight.copy() for layer in network.layers]
    network.param_gradients(rng.normal(size=(7, 4)))
    for layer, before in zip(network.layers, accumulated):
        np.testing.assert_array_equal(layer.grad_weight, before)
    # backward() must still consume the training forward's caches.
    network.backward(np.ones((5, 1)))
