"""Optimizers: parameter validation, descent behaviour, freezing."""

import numpy as np
import pytest

from repro.nn import MLP, SGD, Adam


@pytest.mark.parametrize("factory", [SGD, Adam])
def test_rejects_nonpositive_learning_rate(factory):
    with pytest.raises(ValueError):
        factory(learning_rate=0.0)


def test_sgd_rejects_bad_momentum():
    with pytest.raises(ValueError):
        SGD(0.1, momentum=1.0)


def _quadratic_progress(optimizer, rng, steps=200):
    net = MLP([2, 8, 1], rng)
    x = rng.uniform(-1, 1, size=(64, 2))
    y = 2.0 * x[:, 0] - x[:, 1]
    losses = [net.train_step(x, y, optimizer) for _ in range(steps)]
    return losses


def test_sgd_descends(rng):
    losses = _quadratic_progress(SGD(0.001), rng)
    assert losses[-1] < losses[0]


def test_sgd_momentum_descends(rng):
    losses = _quadratic_progress(SGD(0.001, momentum=0.9), rng)
    assert losses[-1] < losses[0]


def test_adam_descends_faster_than_one_step(rng):
    losses = _quadratic_progress(Adam(0.01), rng)
    assert losses[-1] < 0.1 * losses[0]


def test_optimizers_respect_frozen_layers(rng):
    for optimizer in (SGD(0.01), Adam(0.01)):
        net = MLP([2, 4, 1], rng)
        net.layers[0].trainable = False
        frozen_weight = net.layers[0].weight.copy()
        x = rng.normal(size=(8, 2))
        y = rng.normal(size=8)
        for _ in range(3):
            net.train_step(x, y, optimizer)
        np.testing.assert_array_equal(net.layers[0].weight, frozen_weight)
