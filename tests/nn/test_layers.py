"""Dense layer: shapes, gradient accumulation, freezing."""

import numpy as np
import pytest

from repro.nn import Dense


def test_forward_shape_and_affine(rng):
    layer = Dense(4, 3, rng)
    x = rng.normal(size=(5, 4))
    out = layer.forward(x)
    assert out.shape == (5, 3)
    expected = x @ layer.weight.T + layer.bias
    np.testing.assert_allclose(out, expected)


def test_forward_rejects_wrong_width(rng):
    layer = Dense(4, 3, rng)
    with pytest.raises(ValueError):
        layer.forward(rng.normal(size=(5, 6)))


def test_backward_before_forward_raises(rng):
    layer = Dense(4, 3, rng)
    with pytest.raises(RuntimeError):
        layer.backward(np.ones((2, 3)))


def test_backward_gradients_match_manual(rng):
    layer = Dense(3, 2, rng)
    x = rng.normal(size=(7, 3))
    layer.forward(x)
    grad_out = rng.normal(size=(7, 2))
    grad_in = layer.backward(grad_out)
    np.testing.assert_allclose(layer.grad_weight, grad_out.T @ x)
    np.testing.assert_allclose(layer.grad_bias, grad_out.sum(axis=0))
    np.testing.assert_allclose(grad_in, grad_out @ layer.weight)


def test_backward_accumulates(rng):
    layer = Dense(3, 2, rng)
    x = rng.normal(size=(4, 3))
    grad_out = rng.normal(size=(4, 2))
    layer.forward(x)
    layer.backward(grad_out)
    first = layer.grad_weight.copy()
    layer.forward(x)
    layer.backward(grad_out)
    np.testing.assert_allclose(layer.grad_weight, 2 * first)
    layer.zero_grad()
    assert np.all(layer.grad_weight == 0)
    assert np.all(layer.grad_bias == 0)


def test_copy_from_transfers_parameters(rng):
    src = Dense(3, 2, rng)
    dst = Dense(3, 2, rng)
    dst.copy_from(src)
    np.testing.assert_array_equal(dst.weight, src.weight)
    np.testing.assert_array_equal(dst.bias, src.bias)
    # copies, not views
    src.weight[0, 0] += 1.0
    assert dst.weight[0, 0] != src.weight[0, 0]


def test_copy_from_shape_mismatch(rng):
    with pytest.raises(ValueError):
        Dense(3, 2, rng).copy_from(Dense(2, 3, rng))


def test_num_params(rng):
    layer = Dense(5, 4, rng)
    assert layer.num_params == 5 * 4 + 4
    assert layer.fan_in == 5
    assert layer.fan_out == 4
