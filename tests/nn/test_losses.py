"""Loss functions: values, gradients, validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import l2_penalty, mse_loss


def test_mse_value_and_gradient():
    pred = np.array([1.0, 2.0, 3.0])
    target = np.array([0.0, 2.0, 5.0])
    loss, grad = mse_loss(pred, target)
    assert loss == pytest.approx(1.0 + 0.0 + 4.0)
    np.testing.assert_allclose(grad, [2.0, 0.0, -4.0])


def test_mse_shape_mismatch():
    with pytest.raises(ValueError):
        mse_loss(np.zeros(3), np.zeros(4))


def test_l2_penalty_value_and_gradient():
    theta = np.array([1.0, -2.0])
    loss, grad = l2_penalty(theta, 0.5)
    assert loss == pytest.approx(0.5 * 5.0)
    np.testing.assert_allclose(grad, [1.0, -2.0])


def test_l2_rejects_negative_lambda():
    with pytest.raises(ValueError):
        l2_penalty(np.ones(2), -0.1)


@settings(max_examples=50, deadline=None)
@given(
    arrays(np.float64, st.integers(1, 10), elements=st.floats(-10, 10)),
)
def test_mse_zero_at_target(values):
    loss, grad = mse_loss(values, values)
    assert loss == 0.0
    assert np.all(grad == 0.0)


@settings(max_examples=50, deadline=None)
@given(
    arrays(np.float64, st.integers(1, 10), elements=st.floats(-10, 10)),
    arrays(np.float64, st.integers(1, 10), elements=st.floats(-10, 10)),
)
def test_mse_nonnegative(pred, target):
    if pred.shape != target.shape:
        return
    loss, _ = mse_loss(pred, target)
    assert loss >= 0.0
