"""Gaussian initialization: shapes, scale, validation."""

import numpy as np
import pytest

from repro.nn import gaussian_init


def test_shape(rng):
    weights = gaussian_init(10, 7, rng)
    assert weights.shape == (7, 10)


def test_he_scale(rng):
    fan_in = 400
    weights = gaussian_init(fan_in, 200, rng)
    expected_std = np.sqrt(2.0 / fan_in)
    assert weights.std() == pytest.approx(expected_std, rel=0.1)


def test_explicit_scale(rng):
    weights = gaussian_init(100, 100, rng, scale=0.5)
    assert weights.std() == pytest.approx(0.5, rel=0.1)


def test_rejects_bad_dimensions(rng):
    with pytest.raises(ValueError):
        gaussian_init(0, 3, rng)
    with pytest.raises(ValueError):
        gaussian_init(3, -1, rng)


def test_deterministic_given_seed():
    a = gaussian_init(4, 4, np.random.default_rng(1))
    b = gaussian_init(4, 4, np.random.default_rng(1))
    np.testing.assert_array_equal(a, b)
