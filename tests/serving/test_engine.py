"""ServingEngine: boundary degeneracy, latency accounting and telemetry."""

import numpy as np
import pytest

from repro.algorithms import make_matcher
from repro.engine import DayLoopEngine
from repro.engine.hooks import MetricsCollector
from repro.obs import telemetry as obs
from repro.serving import (
    WAIT_BOUNDARIES,
    MicroBatchPolicy,
    ServingEngine,
    derive_arrivals,
)
from repro.simulation import SyntheticConfig, generate_city

CONFIG = SyntheticConfig(num_brokers=20, num_requests=100, num_days=2, imbalance=0.1, seed=11)


def _platform():
    return generate_city(CONFIG)


def _serve(algorithm, policy, profile="uniform", hooks=None, platform=None):
    platform = platform or _platform()
    matcher = make_matcher(algorithm, platform, seed=1)
    collector = MetricsCollector()
    engine = ServingEngine(policy=policy, profile=profile)
    report = engine.run(platform, matcher, hooks=[collector, *(hooks or [])])
    return collector.result, report


@pytest.mark.parametrize("algorithm", ["Top-1", "KM", "LACB", "AN", "LACB-Opt"])
def test_boundary_policy_reproduces_batch_day_loop(algorithm):
    platform = _platform()
    collector = MetricsCollector()
    DayLoopEngine().run(platform, make_matcher(algorithm, platform, seed=1), hooks=[collector])
    batch_result = collector.result

    serving_result, report = _serve(algorithm, MicroBatchPolicy.boundary(60.0))
    assert np.array_equal(
        np.asarray(batch_result.daily_utility), np.asarray(serving_result.daily_utility)
    )
    assert batch_result.assignments == serving_result.assignments
    assert np.array_equal(
        np.asarray(batch_result.outcomes), np.asarray(serving_result.outcomes)
    )
    # Exactly one micro-batch per non-empty window, all boundary-closed.
    assert report.flush_reasons["boundary"] == report.micro_batches
    assert report.requests == platform.stream.num_requests


def test_adaptive_policy_serves_every_request_once():
    _, report = _serve("LACB", MicroBatchPolicy(max_wait=5.0, max_size=8), profile="bursty")
    platform = _platform()
    assert report.requests >= platform.stream.num_requests  # appeals re-enter
    assert report.batch_sizes.sum() == report.requests
    assert report.micro_batches == len(report.batch_sizes)
    assert sum(report.flush_reasons.values()) == report.micro_batches
    assert np.all(report.batch_sizes <= 8)


def test_adaptive_policy_cuts_tail_queue_wait_on_bursty_profile():
    _, fixed = _serve("Top-1", MicroBatchPolicy.boundary(60.0), profile="bursty")
    _, adaptive = _serve("Top-1", MicroBatchPolicy(max_wait=5.0, max_size=16), profile="bursty")
    assert adaptive.wait_quantiles()[2] < fixed.wait_quantiles()[2]
    # Queue waits are virtual-time and therefore exactly bounded.
    assert adaptive.queue_waits.max() <= 5.0 + 1e-9
    assert fixed.queue_waits.max() <= 60.0 + 1e-9


def test_latencies_carry_service_time_on_top_of_waits():
    _, report = _serve("KM", MicroBatchPolicy(max_wait=5.0))
    assert np.all(report.latencies >= report.queue_waits)
    assert report.makespan > 0.0
    assert report.throughput_rps > 0.0
    assert report.service_seconds.shape == (report.micro_batches,)


def test_deterministic_schedule_and_waits_across_runs():
    _, first = _serve("Top-3", MicroBatchPolicy(max_wait=3.0, max_size=12), profile="bursty")
    _, second = _serve("Top-3", MicroBatchPolicy(max_wait=3.0, max_size=12), profile="bursty")
    assert np.array_equal(first.queue_waits, second.queue_waits)
    assert np.array_equal(first.batch_sizes, second.batch_sizes)
    assert first.flush_reasons == second.flush_reasons


def test_geometry_mismatch_is_rejected():
    platform = _platform()
    other = generate_city(
        SyntheticConfig(num_brokers=20, num_requests=100, num_days=3, imbalance=0.1, seed=11)
    )
    schedule = derive_arrivals(other.stream)
    engine = ServingEngine(policy=MicroBatchPolicy.boundary(60.0), schedule=schedule)
    with pytest.raises(ValueError, match="geometry"):
        engine.run(platform, make_matcher("Top-1", platform, seed=1))


def test_serving_metrics_land_in_telemetry_sketches():
    telemetry = obs.Telemetry()
    with obs.use(telemetry):
        _, report = _serve("Top-1", MicroBatchPolicy(max_wait=5.0, max_size=8))
    metrics = telemetry.payload()["registry"]["metrics"]
    names = {entry["name"] for entry in metrics}
    assert {"serving.queue_wait", "serving.latency", "serving.microbatch_size"} <= names
    wait = next(e for e in metrics if e["name"] == "serving.queue_wait")
    assert sum(wait["state"]["counts"]) == report.requests
    flushes = [e for e in metrics if e["name"] == "serving.flushes"]
    assert sum(int(e["state"]["value"]) for e in flushes) == report.micro_batches
    # The embedded sketch answers the serving-latency quantiles.
    hist = telemetry.registry.histogram(
        "serving.queue_wait", boundaries=WAIT_BOUNDARIES, algorithm="Top-1"
    )
    p50, p95, p99 = hist.sketch.quantiles((0.5, 0.95, 0.99))
    assert 0.0 <= p50 <= p95 <= p99
