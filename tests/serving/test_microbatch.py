"""Micro-batch policy splitting and the load-leveling queue."""

import numpy as np
import pytest

from repro.serving import FLUSH_REASONS, LoadLevelingQueue, MicroBatchPolicy


def _coverage(batches, n):
    """Batches must tile [0, n) contiguously with non-decreasing closes."""
    assert batches[0].start == 0
    assert batches[-1].stop == n
    for earlier, later in zip(batches, batches[1:]):
        assert earlier.stop == later.start
        assert earlier.close_time <= later.close_time
    assert all(b.size >= 1 for b in batches)
    assert all(b.reason in FLUSH_REASONS for b in batches)


def test_boundary_policy_is_one_batch_per_window():
    arrivals = np.sort(np.random.default_rng(0).random(25)) * 60.0
    batches = MicroBatchPolicy.boundary(60.0).split(arrivals, window_end=60.0)
    assert len(batches) == 1
    assert (batches[0].start, batches[0].stop) == (0, 25)
    assert batches[0].close_time == 60.0
    assert batches[0].reason == "boundary"


def test_max_wait_closes_on_first_arrival_deadline():
    arrivals = np.array([0.0, 1.0, 2.0, 30.0, 31.0])
    batches = MicroBatchPolicy(max_wait=5.0).split(arrivals, window_end=60.0)
    _coverage(batches, 5)
    assert [b.size for b in batches] == [3, 2]
    assert batches[0].close_time == 5.0
    assert batches[0].reason == "max_wait"
    assert batches[1].close_time == 35.0


def test_max_size_closes_the_instant_the_batch_fills():
    arrivals = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
    batches = MicroBatchPolicy(max_wait=60.0, max_size=2).split(arrivals, window_end=60.0)
    _coverage(batches, 5)
    assert [b.size for b in batches] == [2, 2, 1]
    assert batches[0].close_time == 1.0
    assert batches[0].reason == "max_size"
    # The straggler waits out the window, not the max_wait (which spans it).
    assert batches[2].reason == "boundary"


def test_last_batch_never_outlives_the_window():
    arrivals = np.array([58.0, 59.0])
    batches = MicroBatchPolicy(max_wait=10.0).split(arrivals, window_end=60.0)
    assert len(batches) == 1
    assert batches[0].close_time == 60.0
    assert batches[0].reason == "boundary"


def test_split_of_empty_window_is_empty():
    assert MicroBatchPolicy(max_wait=5.0).split(np.zeros(0), window_end=60.0) == []


def test_policy_validation():
    with pytest.raises(ValueError, match="max_wait"):
        MicroBatchPolicy(max_wait=0.0)
    with pytest.raises(ValueError, match="max_size"):
        MicroBatchPolicy(max_wait=1.0, max_size=0)


def test_load_leveling_queue_backlogs_under_saturation():
    queue = LoadLevelingQueue()
    start, done = queue.admit(ready_time=0.0, service_seconds=10.0)
    assert (start, done) == (0.0, 10.0)
    # Second batch is ready at t=1 but the server is busy until t=10.
    start, done = queue.admit(ready_time=1.0, service_seconds=10.0)
    assert (start, done) == (10.0, 20.0)
    # A batch arriving after the backlog drains starts immediately.
    start, done = queue.admit(ready_time=50.0, service_seconds=1.0)
    assert (start, done) == (50.0, 51.0)
    assert queue.busy_seconds == 21.0
    assert queue.last_completion == 51.0
    with pytest.raises(ValueError, match="service_seconds"):
        queue.admit(0.0, -1.0)
