"""The serving tentpole acceptance: batch day loop ≡ boundary-flush serving."""

from __future__ import annotations

import pytest

from repro.check.serving import SUITE_ALGORITHMS, check_serving_equivalence, run_serving_suite


@pytest.mark.parametrize("algorithm", SUITE_ALGORITHMS)
def test_serving_equivalence_per_algorithm(algorithm):
    assert check_serving_equivalence(algorithm=algorithm, num_days=4) == []


def test_serving_equivalence_holds_on_bursty_arrivals():
    # Boundary flushing erases intra-window timing, so the profile must
    # not matter — if it does, arrivals leaked into batch composition.
    assert check_serving_equivalence(algorithm="LACB", profile="bursty", num_days=3) == []


def test_serving_suite_covers_algorithm_profile_grid():
    cases, violations = run_serving_suite(
        algorithms=("LACB", "Top-3"), profiles=("uniform", "bursty"), num_days=3
    )
    assert cases == 4
    assert violations == []


def test_lazy_exports_resolve():
    import repro.check as check

    assert check.check_serving_equivalence is check_serving_equivalence
    assert check.run_serving_suite is run_serving_suite
