"""Arrival schedules: determinism, ordering and the rate profiles."""

import numpy as np
import pytest

from repro.serving import PROFILES, derive_arrivals
from repro.simulation import SyntheticConfig, generate_city


def _stream():
    platform = generate_city(
        SyntheticConfig(num_brokers=15, num_requests=120, num_days=3, imbalance=0.1, seed=5)
    )
    return platform.stream


def test_same_seed_same_schedule():
    stream = _stream()
    a = derive_arrivals(stream, seed=3)
    b = derive_arrivals(stream, seed=3)
    assert np.array_equal(a.offsets, b.offsets)
    c = derive_arrivals(stream, seed=4)
    assert not np.array_equal(a.offsets, c.offsets)


@pytest.mark.parametrize("profile", PROFILES)
def test_offsets_sorted_within_every_window(profile):
    stream = _stream()
    schedule = derive_arrivals(stream, profile=profile, seed=1)
    for day in range(stream.num_days):
        for batch in range(stream.batches_per_day):
            times = schedule.arrival_times(day, batch)
            assert np.all(np.diff(times) >= 0.0)
            assert np.all(times >= schedule.window_start(day, batch))
            assert np.all(times <= schedule.window_end(day, batch))


def test_window_geometry_is_contiguous():
    schedule = derive_arrivals(_stream(), window_seconds=30.0)
    assert schedule.window_start(0, 0) == 0.0
    assert schedule.window_end(0, 0) == schedule.window_start(0, 1)
    last = schedule.batches_per_day - 1
    assert schedule.window_end(0, last) == schedule.window_start(1, 0)


def test_bursty_skews_density_but_not_count():
    stream = _stream()
    uniform = derive_arrivals(stream, profile="uniform", seed=2)
    bursty = derive_arrivals(stream, profile="bursty", seed=2, burst_amplitude=1.5)
    assert uniform.offsets.shape == bursty.offsets.shape
    assert not np.array_equal(uniform.offsets, bursty.offsets)
    # Amplitude 0 degenerates the ramp exponent to 1: exactly uniform.
    flat = derive_arrivals(stream, profile="bursty", seed=2, burst_amplitude=0.0)
    assert np.array_equal(uniform.offsets, flat.offsets)


def test_bursty_first_window_leans_late_last_leans_early():
    stream = _stream()
    if stream.batches_per_day < 2:
        pytest.skip("needs multiple windows per day")
    schedule = derive_arrivals(stream, profile="bursty", seed=0, burst_amplitude=1.5)
    # shape < 1 in the first window of each day pushes draws toward the
    # window end, shape > 1 in the last window toward the window open;
    # aggregate over all days so small windows do not dominate.
    last_batch = stream.batches_per_day - 1
    first = np.concatenate(
        [
            schedule.arrival_times(day, 0) - schedule.window_start(day, 0)
            for day in range(stream.num_days)
        ]
    )
    last = np.concatenate(
        [
            schedule.arrival_times(day, last_batch) - schedule.window_start(day, last_batch)
            for day in range(stream.num_days)
        ]
    )
    assert first.mean() > last.mean()


def test_arrivals_for_requeues_arrive_at_window_open():
    stream = _stream()
    schedule = derive_arrivals(stream, seed=1)
    scheduled = schedule.arrival_times(1, 0)
    ids = np.arange(scheduled.size + 3)
    times = schedule.arrivals_for(1, 0, ids)
    assert times.size == ids.size
    assert np.array_equal(times[: scheduled.size], scheduled)
    assert np.all(times[scheduled.size :] == schedule.window_start(1, 0))


def test_validation_rejects_bad_parameters():
    stream = _stream()
    with pytest.raises(ValueError, match="profile"):
        derive_arrivals(stream, profile="poisson")
    with pytest.raises(ValueError, match="window_seconds"):
        derive_arrivals(stream, window_seconds=0.0)
    with pytest.raises(ValueError, match="burst_amplitude"):
        derive_arrivals(stream, profile="bursty", burst_amplitude=2.0)
