"""repro.check.property: the mini-harness itself (generators, shrinking)."""

import numpy as np
import pytest

from repro.check import property as prop
from repro.check.property import PropertyFailure, case_rng, run_property


def test_passing_property_runs_all_cases():
    seen = []
    count = run_property(
        lambda case: seen.append(case),
        lambda rng: float(rng.random()),
        num_cases=25,
        seed=3,
    )
    assert count == 25
    assert len(seen) == 25


def test_cases_are_deterministic_per_seed():
    draw = lambda rng: float(rng.random())
    first, second = [], []
    run_property(first.append, draw, num_cases=10, seed=42)
    run_property(second.append, draw, num_cases=10, seed=42)
    assert first == second
    other = []
    run_property(other.append, draw, num_cases=10, seed=43)
    assert first != other


def test_failure_reports_seed_and_index():
    def check(value):
        assert value < 0.9, f"too big: {value}"

    with pytest.raises(PropertyFailure) as excinfo:
        run_property(check, lambda rng: float(rng.random()), num_cases=500, seed=0)
    failure = excinfo.value
    # The reported (seed, index) pair replays the original failing case.
    replayed = float(case_rng(failure.seed, failure.index).random())
    assert replayed >= 0.9
    assert "seed 0" in str(failure)


def test_shrinking_reaches_a_minimal_counterexample():
    # Property: no entry equals 7.  Shrinker: drop elements one at a time.
    def check(values):
        assert 7 not in values

    def generate(rng):
        return list(rng.integers(0, 10, size=8))

    def shrink(values):
        for index in range(len(values)):
            yield values[:index] + values[index + 1 :]

    with pytest.raises(PropertyFailure) as excinfo:
        run_property(check, generate, num_cases=50, seed=1, shrink=shrink)
    assert excinfo.value.counterexample == [7]
    assert excinfo.value.shrink_steps > 0


def test_shrink_candidates_must_still_fail():
    # A shrinker that proposes only passing candidates leaves the case as-is.
    def check(value):
        assert value != 5

    with pytest.raises(PropertyFailure) as excinfo:
        run_property(
            check,
            lambda rng: 5,
            num_cases=1,
            seed=0,
            shrink=lambda value: [0, 1, 2],
        )
    assert excinfo.value.counterexample == 5
    assert excinfo.value.shrink_steps == 0


def test_shrink_step_budget_respected():
    calls = []

    def check(value):
        calls.append(value)
        assert False

    def shrink(value):
        while True:  # endless identical candidates
            yield value - 1

    with pytest.raises(PropertyFailure):
        run_property(
            check,
            lambda rng: 1000,
            num_cases=1,
            seed=0,
            shrink=shrink,
            max_shrink_steps=10,
        )
    # 1 original + at most max_shrink_steps candidate evaluations.
    assert len(calls) <= 11


def test_random_shape_degenerate_and_bounded():
    shapes = [prop.random_shape(case_rng(0, i)) for i in range(400)]
    assert any(rows == 0 or cols == 0 for rows, cols in shapes)
    assert all(rows <= 8 and cols <= 12 for rows, cols in shapes)


def test_random_utilities_cover_regimes():
    matrices = [prop.random_utilities(case_rng(1, i)) for i in range(300)]
    flat = np.concatenate([m.ravel() for m in matrices if m.size])
    assert (flat < 0).any(), "negative regime never generated"
    assert (flat == 0.0).any(), "exact zeros never generated"
    has_ties = any(
        m.size > 1 and np.unique(m).size < m.size for m in matrices
    )
    assert has_ties, "tie regime never generated"


def test_random_utilities_non_negative_mode():
    for i in range(100):
        matrix = prop.random_utilities(case_rng(2, i), allow_negative=False)
        if matrix.size:
            assert matrix.min() >= 0.0


def test_shrink_matrix_candidates_are_smaller_or_simpler():
    weights = np.array([[1.5, 0.0], [2.25, -3.0]])
    candidates = list(prop.shrink_matrix(weights))
    assert any(c.shape == (1, 2) for c in candidates)  # row drops
    assert any(c.shape == (2, 1) for c in candidates)  # column drops
    zeroed = [c for c in candidates if c.shape == weights.shape]
    assert any((c == 0.0).sum() > (weights == 0.0).sum() for c in zeroed)
