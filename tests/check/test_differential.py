"""Differential property suites: backends, padding, CBS, top-k selection.

These are the acceptance-criteria suites: the ``repro`` backend is
cross-validated against the SciPy oracle (and ``auction`` / min-cost-flow
where applicable) on >= 200 randomized rectangular instances per run,
including ties, exact zeros, negatives and degenerate 0-row/0-col shapes.
"""

import numpy as np
import pytest

from repro.check import differential, property as prop
from repro.check.property import run_property

NUM_CASES = 200


def test_backends_agree_on_randomized_instances():
    count = run_property(
        differential.assert_backends_agree,
        prop.random_utilities,
        num_cases=NUM_CASES,
        seed=101,
        shrink=prop.shrink_matrix,
        name="backends_agree",
    )
    assert count == NUM_CASES


def test_pad_square_agrees_on_randomized_instances():
    count = run_property(
        differential.assert_pad_square_agrees,
        lambda rng: prop.random_utilities(rng, allow_negative=False),
        num_cases=NUM_CASES,
        seed=102,
        shrink=prop.shrink_matrix,
        name="pad_square_agrees",
    )
    assert count == NUM_CASES


def test_cbs_preservation_on_randomized_instances():
    count = run_property(
        differential.assert_cbs_preserves,
        lambda rng: prop.random_utilities(rng, allow_negative=False),
        num_cases=NUM_CASES,
        seed=103,
        shrink=prop.shrink_matrix,
        name="cbs_preserves",
    )
    assert count == NUM_CASES


def test_topk_matches_bruteforce_on_randomized_rows():
    count = run_property(
        lambda case: differential.assert_topk_matches_bruteforce(*case),
        lambda rng: (prop.random_utility_row(rng), int(rng.integers(0, 12))),
        num_cases=NUM_CASES,
        seed=104,
        name="topk_bruteforce",
    )
    assert count == NUM_CASES


# ----------------------------------------------------------------------
# Deterministic edge cases the random suites may not pin down
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "weights",
    [
        np.zeros((3, 3)),
        np.zeros((0, 5)),
        np.zeros((4, 0)),
        np.ones((2, 6)),
        np.array([[0.0, 2.0], [2.0, 0.0]]),
        np.array([[5.0]]),
    ],
)
def test_backends_agree_on_edge_cases(weights):
    differential.assert_backends_agree(weights)


def test_backends_agree_with_negative_entries():
    differential.assert_backends_agree(np.array([[-1.0, 2.0], [3.0, -4.0]]))


def test_assert_backends_agree_catches_disagreement(monkeypatch):
    # Sanity: the assertion actually fires when a backend is wrong.
    # (importlib, because the package re-exports a same-named function
    # that shadows the module on attribute access)
    import importlib

    hungarian = importlib.import_module("repro.matching.hungarian")
    real = hungarian._solve_assignment

    def broken(weights, maximize, backend, pad_square):
        result = real(weights, maximize, backend, pad_square)
        if backend == "repro" and result.pairs:
            result.pairs.pop()
            result.total_weight -= 1.0
        return result

    monkeypatch.setattr(hungarian, "_solve_assignment", broken)
    with pytest.raises(AssertionError):
        differential.assert_backends_agree(np.array([[4.0, 1.0], [1.0, 3.0]]))


def test_topk_detects_wrong_selection(monkeypatch):
    from repro.core import selection

    monkeypatch.setattr(
        selection,
        "candidate_broker_selection",
        lambda utilities, k, rng: np.arange(min(k, utilities.size)),
    )
    # differential imported the symbol directly; patch it there too.
    monkeypatch.setattr(
        differential,
        "candidate_broker_selection",
        lambda utilities, k, rng: np.arange(min(max(k, 0), utilities.size)),
    )
    with pytest.raises(AssertionError):
        differential.assert_topk_matches_bruteforce(np.array([0.0, 5.0, 1.0]), 1)


def test_fast_topk_matches_quickselect_on_randomized_instances():
    count = run_property(
        lambda case: differential.assert_fast_topk_matches_quickselect(*case),
        prop.random_topk_case,
        num_cases=NUM_CASES,
        seed=105,
        name="fast_topk_matches_quickselect",
    )
    assert count == NUM_CASES


def test_batched_scoring_matches_on_randomized_networks():
    count = run_property(
        differential.assert_batched_scoring_matches,
        prop.random_mlp_case,
        num_cases=NUM_CASES,
        seed=106,
        name="batched_scoring_matches",
    )
    assert count == NUM_CASES


def test_fast_topk_assert_catches_wrong_tie_rule(monkeypatch):
    """Sanity: the oracle fires if the fast kernel breaks ties differently."""
    from repro.core import selection

    def highest_index_ties(utilities, k):
        # Same boundary rule but ties resolved to the *highest* index.
        mask = selection.topk_selection_mask(utilities[:, ::-1], k)[:, ::-1]
        return mask

    monkeypatch.setattr(differential, "topk_selection_mask", highest_index_ties)
    with pytest.raises(AssertionError):
        differential.assert_fast_topk_matches_quickselect(
            np.array([[1.0, 1.0, 1.0, 2.0]]), 2
        )


def test_batched_scoring_assert_catches_broken_batch_path(monkeypatch):
    from repro.nn import MLP

    real = MLP.param_gradients

    def broken(self, x):
        return real(self, x) * 1.01

    monkeypatch.setattr(MLP, "param_gradients", broken)
    case = ((4, 8, 1), np.random.default_rng(0).normal(size=(3, 4)), 7)
    with pytest.raises(AssertionError):
        differential.assert_batched_scoring_matches(case)
