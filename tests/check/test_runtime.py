"""repro.check.runtime: switchboard, CheckState policy, env-var activation."""

import numpy as np
import pytest

from repro.check import runtime
from repro.check.runtime import (
    ENV_FLAG,
    CheckState,
    InvariantViolationError,
    Violation,
)


@pytest.fixture(autouse=True)
def _checks_off():
    runtime.disable()
    yield
    runtime.disable()


def test_disabled_by_default():
    assert runtime.current() is None
    assert not runtime.enabled()


def test_enable_disable_roundtrip():
    state = runtime.enable()
    assert runtime.current() is state
    assert runtime.enabled()
    runtime.disable()
    assert runtime.current() is None


def test_use_restores_previous_state():
    outer = runtime.enable()
    with runtime.use(CheckState()) as inner:
        assert runtime.current() is inner
    assert runtime.current() is outer


def test_use_restores_on_exception():
    with pytest.raises(RuntimeError):
        with runtime.use(CheckState()):
            raise RuntimeError("boom")
    assert runtime.current() is None


def test_raise_mode_raises_on_first_violation():
    state = CheckState(mode="raise")
    with pytest.raises(InvariantViolationError) as excinfo:
        state.record(Violation("test.inv", "nope", algorithm="KM", day=1, batch=2))
    assert excinfo.value.violation.invariant == "test.inv"
    assert "KM" in str(excinfo.value) and "day 1" in str(excinfo.value)
    assert len(state.violations) == 1


def test_invariant_violation_is_an_assertion_error():
    assert issubclass(InvariantViolationError, AssertionError)


def test_collect_mode_accumulates():
    state = CheckState(mode="collect")
    state.record(Violation("a", "first"))
    state.record(Violation("b", "second"))
    assert [v.invariant for v in state.violations] == ["a", "b"]
    assert not state.ok


def test_invalid_mode_and_sampling_rejected():
    with pytest.raises(ValueError, match="mode"):
        CheckState(mode="warn")
    with pytest.raises(ValueError, match="solver_sample_every"):
        CheckState(solver_sample_every=0)


def test_solver_sampling_counter_based():
    state = CheckState(solver_sample_every=3)
    picks = [state.sample_solver() for _ in range(7)]
    assert picks == [True, False, False, True, False, False, True]
    assert state.solver_checks == 3


def test_first_solve_always_sampled():
    state = CheckState(solver_sample_every=1000)
    assert state.sample_solver() is True


def test_sampling_consumes_no_randomness():
    state = CheckState(solver_sample_every=2)
    rng = np.random.default_rng(0)
    before = rng.bit_generator.state["state"]["state"]
    for _ in range(10):
        state.sample_solver()
    assert rng.bit_generator.state["state"]["state"] == before


def test_env_flag_enables_fresh_process():
    import os
    import subprocess
    import sys

    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    code = "import repro.check.runtime as r; print(r.enabled())"
    for env_value, expected in (("1", "True"), ("0", "False"), ("", "False")):
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": os.path.abspath(src), ENV_FLAG: env_value},
        )
        assert result.stdout.strip() == expected, (env_value, result.stderr)


def test_violation_to_dict_roundtrip():
    violation = Violation("x.y", "msg", algorithm="KM", day=3, batch=1)
    assert Violation(**violation.to_dict()) == violation
