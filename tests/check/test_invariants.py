"""repro.check.invariants: each invariant fires on bad input, not on good."""

import numpy as np
import pytest

from repro.check import invariants
from repro.core.types import AssignedPair, Assignment
from repro.matching.bipartite import MatchResult


def _assignment(pairs):
    return Assignment(day=0, batch=0, pairs=[AssignedPair(*p) for p in pairs])


@pytest.fixture
def utilities():
    return np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])


# ----------------------------------------------------------------------
# check_batch_assignment
# ----------------------------------------------------------------------
def test_valid_batch_passes(utilities):
    assignment = _assignment([(10, 2, 3.0), (11, 1, 5.0)])
    assert invariants.check_batch_assignment(
        assignment, np.array([10, 11]), utilities, one_to_one=True
    ) == []


def test_unknown_request_detected(utilities):
    assignment = _assignment([(99, 0, 1.0)])
    found = invariants.check_batch_assignment(assignment, np.array([10, 11]), utilities)
    assert [v.invariant for v in found] == ["batch.unknown_request"]


def test_duplicate_request_detected(utilities):
    assignment = _assignment([(10, 0, 1.0), (10, 1, 2.0)])
    found = invariants.check_batch_assignment(assignment, np.array([10, 11]), utilities)
    assert "batch.duplicate_request" in [v.invariant for v in found]


def test_out_of_range_broker_detected(utilities):
    assignment = _assignment([(10, 7, 1.0)])
    found = invariants.check_batch_assignment(assignment, np.array([10, 11]), utilities)
    assert [v.invariant for v in found] == ["batch.unknown_broker"]


def test_duplicate_broker_only_for_one_to_one(utilities):
    assignment = _assignment([(10, 1, 2.0), (11, 1, 5.0)])
    ids = np.array([10, 11])
    relaxed = invariants.check_batch_assignment(assignment, ids, utilities)
    assert relaxed == []  # recommenders may share a broker within a batch
    strict = invariants.check_batch_assignment(
        assignment, ids, utilities, one_to_one=True
    )
    assert [v.invariant for v in strict] == ["batch.duplicate_broker"]


def test_utility_mismatch_detected(utilities):
    assignment = _assignment([(10, 1, 2.5)])
    found = invariants.check_batch_assignment(assignment, np.array([10, 11]), utilities)
    assert [v.invariant for v in found] == ["batch.utility_mismatch"]


def test_violations_carry_location(utilities):
    assignment = Assignment(day=3, batch=2, pairs=[AssignedPair(99, 0, 1.0)])
    (violation,) = invariants.check_batch_assignment(
        assignment, np.array([10]), utilities[:1], algorithm="KM"
    )
    assert (violation.day, violation.batch, violation.algorithm) == (3, 2, "KM")


# ----------------------------------------------------------------------
# check_capacity_feasibility
# ----------------------------------------------------------------------
def test_capacity_respected_passes():
    assignment = _assignment([(10, 0, 1.0), (11, 0, 1.0)])
    found = invariants.check_capacity_feasibility(
        assignment, capacities=np.array([2.0, 1.0]), booked_before=np.zeros(2, int)
    )
    assert found == []


def test_capacity_exceeded_detected():
    # Broker 0 has capacity 1; the second pair matches it at workload 1.
    assignment = _assignment([(10, 0, 1.0), (11, 0, 1.0)])
    found = invariants.check_capacity_feasibility(
        assignment, capacities=np.array([1.0, 1.0]), booked_before=np.zeros(2, int)
    )
    assert [v.invariant for v in found] == ["capacity.exceeded"]


def test_broker_outside_b_plus_detected():
    # Broker already at capacity before the batch: not in B+.
    assignment = _assignment([(10, 0, 1.0)])
    found = invariants.check_capacity_feasibility(
        assignment, capacities=np.array([2.0]), booked_before=np.array([2])
    )
    assert [v.invariant for v in found] == ["capacity.exceeded"]


def test_booked_before_is_not_mutated():
    booked = np.zeros(2, int)
    invariants.check_capacity_feasibility(
        _assignment([(10, 0, 1.0)]), np.array([5.0, 5.0]), booked
    )
    assert booked.tolist() == [0, 0]


# ----------------------------------------------------------------------
# check_day_accounting
# ----------------------------------------------------------------------
def test_day_accounting_consistent_passes():
    booked = np.array([2, 0, 1])
    assert invariants.check_day_accounting(0, booked, booked.copy(), booked.copy()) == []


def test_day_accounting_outcome_mismatch():
    found = invariants.check_day_accounting(
        0, np.array([2, 0]), outcome_workloads=np.array([1, 0])
    )
    assert [v.invariant for v in found] == ["day.outcome_workload_mismatch"]


def test_day_accounting_assigner_mismatch():
    found = invariants.check_day_accounting(
        0, np.array([2, 0]), assigner_workloads=np.array([2, 1])
    )
    assert [v.invariant for v in found] == ["day.assigner_workload_mismatch"]


def test_day_accounting_skips_none_sources():
    assert invariants.check_day_accounting(0, np.array([3])) == []


# ----------------------------------------------------------------------
# check_km_optimality
# ----------------------------------------------------------------------
def test_optimal_matching_passes():
    weights = np.array([[2.0, 1.0], [1.0, 3.0]])
    match = MatchResult(pairs=[(0, 0), (1, 1)], total_weight=5.0)
    assert invariants.check_km_optimality(weights, match) == []


def test_suboptimal_matching_detected():
    weights = np.array([[2.0, 1.0], [1.0, 3.0]])
    match = MatchResult(pairs=[(0, 1), (1, 0)], total_weight=2.0)
    found = invariants.check_km_optimality(weights, match)
    assert [v.invariant for v in found] == ["solver.suboptimal"]


def test_wrong_total_detected():
    weights = np.array([[2.0, 1.0], [1.0, 3.0]])
    match = MatchResult(pairs=[(0, 0), (1, 1)], total_weight=7.0)
    found = invariants.check_km_optimality(weights, match)
    assert "solver.total_mismatch" in [v.invariant for v in found]


def test_invalid_structure_detected():
    weights = np.array([[2.0, 1.0]])
    match = MatchResult(pairs=[(0, 0), (0, 1)], total_weight=3.0)
    found = invariants.check_km_optimality(weights, match)
    assert [v.invariant for v in found] == ["solver.invalid_matching"]


def test_oracle_uses_partial_matching_semantics():
    # The forced-full-matching optimum is 2.5 (cross pairing), but leaving
    # row 1 unmatched yields 3.0 — the oracle must know rows may stay
    # unmatched at zero gain, so the 2.5 matching is flagged suboptimal
    # while the partial 3.0 one passes.
    weights = np.array([[3.0, 2.0], [0.5, -1.0]])
    full = MatchResult(pairs=[(0, 1), (1, 0)], total_weight=2.5)
    found = invariants.check_km_optimality(weights, full)
    assert [v.invariant for v in found] == ["solver.suboptimal"]
    partial = MatchResult(pairs=[(0, 0)], total_weight=3.0)
    assert invariants.check_km_optimality(weights, partial) == []


def test_empty_matching_on_empty_matrix_passes():
    assert invariants.check_km_optimality(np.zeros((0, 3)), MatchResult()) == []


# ----------------------------------------------------------------------
# check_cbs_preservation
# ----------------------------------------------------------------------
def test_cbs_preserving_columns_pass():
    weights = np.array([[5.0, 1.0, 4.0], [2.0, 0.5, 3.0]])
    assert invariants.check_cbs_preservation(weights, np.array([0, 2])) == []


def test_cbs_losing_columns_detected():
    weights = np.array([[5.0, 1.0, 4.0], [2.0, 0.5, 3.0]])
    found = invariants.check_cbs_preservation(weights, np.array([1]))
    assert [v.invariant for v in found] == ["cbs.weight_not_preserved"]
