"""repro.check.selfcheck: the diagnostic runs clean and reports faithfully."""

import numpy as np

from repro.check import runtime
from repro.check.runtime import Violation
from repro.check.selfcheck import SelfCheckReport, run_self_check


def test_self_check_runs_clean_on_small_city():
    report = run_self_check(
        num_brokers=20,
        num_requests=150,
        num_days=2,
        algorithms=("KM", "LACB-Opt"),
        property_cases=25,
    )
    assert report.ok
    assert report.violations == []
    assert report.invariants_checked > 0
    assert report.solver_checks > 0
    # 7 property suites x 25 cases each.
    assert report.property_cases == 175
    assert report.algorithms == ("KM", "LACB-Opt")


def test_self_check_leaves_global_state_untouched():
    runtime.disable()
    run_self_check(
        num_brokers=15,
        num_requests=60,
        num_days=1,
        algorithms=("KM",),
        property_cases=5,
    )
    assert runtime.current() is None


def test_self_check_surfaces_property_failures(monkeypatch):
    from repro.check import differential, selfcheck

    def broken(weights):
        raise AssertionError("synthetic disagreement")

    monkeypatch.setattr(differential, "assert_backends_agree", broken)
    report = run_self_check(
        num_brokers=15,
        num_requests=60,
        num_days=1,
        algorithms=("KM",),
        property_cases=5,
    )
    assert not report.ok
    assert any(
        v.invariant == "property.backends_agree" for v in report.violations
    )


def test_report_to_dict_is_json_ready():
    import json

    report = SelfCheckReport(
        violations=[Violation("a.b", "msg", algorithm="KM", day=1, batch=0)],
        invariants_checked=10,
        solver_checks=2,
        property_cases=40,
        algorithms=("KM",),
    )
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["ok"] is False
    assert payload["violations"][0]["invariant"] == "a.b"
    assert payload["invariants_checked"] == 10
