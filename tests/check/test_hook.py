"""CheckHook: engine integration, auto-attach, violation detection."""

import numpy as np
import pytest

from repro.algorithms import make_matcher
from repro.algorithms.base import Matcher
from repro.check import runtime
from repro.check.hook import CheckHook
from repro.check.runtime import CheckState, InvariantViolationError
from repro.core.types import AssignedPair, Assignment
from repro.engine.loop import DayLoopEngine
from repro.simulation import SyntheticConfig, generate_city


@pytest.fixture(autouse=True)
def _checks_off():
    runtime.disable()
    yield
    runtime.disable()


@pytest.fixture
def platform():
    return generate_city(
        SyntheticConfig(num_brokers=20, num_requests=150, num_days=2, seed=5)
    )


@pytest.mark.parametrize("name", ["Top-3", "KM", "LACB-Opt"])
def test_clean_runs_produce_no_violations(platform, name):
    state = CheckState(mode="collect", solver_sample_every=4)
    hook = CheckHook(state)
    DayLoopEngine().run(platform, make_matcher(name, platform, seed=7), hooks=[hook])
    assert state.violations == []
    assert state.invariants_checked > 0


def test_engine_auto_attaches_hook_while_enabled(platform):
    state = runtime.enable(CheckState(mode="collect"))
    DayLoopEngine().run(platform, make_matcher("KM", platform, seed=7))
    assert state.invariants_checked > 0
    assert state.violations == []


def test_engine_does_not_attach_without_enablement(platform):
    # No state anywhere: the run must not fabricate one (nothing to assert
    # on directly, but the run must also not fail).
    DayLoopEngine().run(platform, make_matcher("Top-1", platform, seed=7))
    assert runtime.current() is None


def test_no_double_attach_when_hook_passed_explicitly(platform):
    # Baseline: explicit hook only, checks globally off.
    solo = CheckState(mode="collect", solver_sample_every=10**9)
    DayLoopEngine().run(
        platform, make_matcher("Top-3", platform, seed=7), hooks=[CheckHook(solo)]
    )
    # Same run with checks globally on AND the hook passed explicitly: the
    # engine must not attach a second hook, so the count stays identical.
    both = runtime.enable(CheckState(mode="collect", solver_sample_every=10**9))
    DayLoopEngine().run(
        platform, make_matcher("Top-3", platform, seed=7), hooks=[CheckHook(both)]
    )
    assert both.invariants_checked == solo.invariants_checked


class _BrokerPiler(Matcher):
    """Deliberately broken one-to-one matcher: piles everyone on broker 0."""

    name = "Piler"
    one_to_one = True

    def begin_day(self, day, contexts):
        pass

    def assign_batch(self, day, batch, request_ids, utilities):
        pairs = [
            AssignedPair(int(rid), 0, float(utilities[row, 0]))
            for row, rid in enumerate(request_ids)
        ]
        return Assignment(day=day, batch=batch, pairs=pairs)


class _UtilityFudger(Matcher):
    """Deliberately broken matcher: reports inflated pair utilities."""

    name = "Fudger"

    def begin_day(self, day, contexts):
        pass

    def assign_batch(self, day, batch, request_ids, utilities):
        pairs = [AssignedPair(int(request_ids[0]), 0, float(utilities[0, 0]) + 1.0)]
        return Assignment(day=day, batch=batch, pairs=pairs)


@pytest.fixture
def wide_batch_platform():
    # imbalance=0.3 -> batch_size 6: batches hold several requests, so a
    # matcher that reuses a broker within a batch can actually be caught.
    return generate_city(
        SyntheticConfig(
            num_brokers=20, num_requests=150, num_days=2, seed=5, imbalance=0.3
        )
    )


def test_duplicate_broker_flagged_for_one_to_one(wide_batch_platform):
    state = CheckState(mode="collect")
    DayLoopEngine().run(wide_batch_platform, _BrokerPiler(), hooks=[CheckHook(state)])
    assert "batch.duplicate_broker" in {v.invariant for v in state.violations}


def test_utility_mismatch_flagged(platform):
    state = CheckState(mode="collect")
    DayLoopEngine().run(platform, _UtilityFudger(), hooks=[CheckHook(state)])
    assert "batch.utility_mismatch" in {v.invariant for v in state.violations}


def test_raise_mode_aborts_run(wide_batch_platform):
    state = CheckState(mode="raise")
    with pytest.raises(InvariantViolationError):
        DayLoopEngine().run(
            wide_batch_platform, _BrokerPiler(), hooks=[CheckHook(state)]
        )


def test_checks_do_not_perturb_results(platform):
    """Acceptance: checks observe, never perturb — assignments bit-identical."""
    from repro.engine import MatcherSpec, PlatformSpec, RunSpec, run_many

    config = SyntheticConfig(num_brokers=20, num_requests=200, num_days=2, seed=9)

    def run_all():
        specs = [
            RunSpec(
                platform=PlatformSpec.synthetic(config),
                matcher=MatcherSpec(name, seed=7),
                store_assignments=True,
            )
            for name in ("Top-3", "KM", "LACB-Opt")
        ]
        return run_many(specs)

    baseline = run_all()
    state = CheckState(mode="collect", solver_sample_every=1)
    with runtime.use(state):
        checked = run_all()
    assert state.violations == []
    assert state.solver_checks > 0
    for base, chk in zip(baseline, checked):
        assert base.total_realized_utility == chk.total_realized_utility
        for left, right in zip(base.assignments, chk.assignments):
            assert [(p.request_id, p.broker_id, p.utility) for p in left.pairs] == [
                (p.request_id, p.broker_id, p.utility) for p in right.pairs
            ]
