"""Cross-module integration: the paper's headline behaviours end-to-end."""

import numpy as np
import pytest

from repro.algorithms import make_matcher
from repro.experiments import fraction_improved, run_algorithm
from repro.experiments.metrics import gini, top_broker_load_ratio


@pytest.fixture(scope="module")
def roster(small_platform):
    names = ("Top-1", "Top-3", "RR", "KM", "CTop-3", "LACB")
    return {
        name: run_algorithm(small_platform, make_matcher(name, small_platform, seed=11))
        for name in names
    }


def test_every_algorithm_serves_all_requests(small_platform, roster):
    for name in ("Top-1", "Top-3", "RR"):
        assert roster[name].num_assigned == len(small_platform.stream), name


def test_capacity_awareness_beats_recommendation(roster):
    """The paper's central result on realized utility ordering."""
    assert roster["CTop-3"].total_realized_utility > roster["Top-3"].total_realized_utility
    assert roster["LACB"].total_realized_utility > roster["Top-3"].total_realized_utility
    assert roster["LACB"].total_realized_utility > roster["Top-1"].total_realized_utility
    assert roster["LACB"].total_realized_utility > roster["KM"].total_realized_utility
    assert roster["LACB"].total_realized_utility > roster["RR"].total_realized_utility


def test_lacb_improves_most_brokers(roster):
    """Sec. VII-D: the large majority of brokers gain utility under LACB."""
    assert fraction_improved(roster["LACB"], roster["Top-3"]) > 0.5


def test_topk_concentrates_workload_most(roster):
    """Fig. 10's message: Top-K loads its stars hardest; RR the least."""
    assert top_broker_load_ratio(roster["Top-1"]) > top_broker_load_ratio(roster["RR"])
    top1_gini = gini(roster["Top-1"].broker_workload)
    rr_gini = gini(roster["RR"].broker_workload)
    assert top1_gini > rr_gini


def test_lacb_caps_top_broker_peaks(small_platform, roster):
    """LACB's top brokers run below Top-1's peaks (low overload risk)."""
    assert (
        np.sort(roster["LACB"].broker_peak_workload)[-5:].sum()
        < np.sort(roster["Top-1"].broker_peak_workload)[-5:].sum()
    )


def test_predicted_vs_realized_gap_largest_for_topk(roster):
    """Overload is why Top-K's promised utility does not materialize."""
    def realization_ratio(result):
        return result.total_realized_utility / result.total_predicted_utility

    assert realization_ratio(roster["Top-1"]) < realization_ratio(roster["LACB"])
