"""Property-based invariants of the platform day loop."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import AssignedPair, Assignment
from repro.simulation import SyntheticConfig, generate_city
from repro.simulation.utility import ground_truth_affinity


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_random_policy_invariants(seed):
    """Any well-formed assignment sequence keeps the books balanced."""
    config = SyntheticConfig(
        num_brokers=15, num_requests=120, num_days=2, imbalance=0.2, seed=4
    )
    platform = generate_city(config)
    platform.reset()
    rng = np.random.default_rng(seed)
    for day in range(platform.num_days):
        platform.start_day(day)
        submitted = np.zeros(platform.num_brokers, dtype=int)
        affinity_sum = np.zeros(platform.num_brokers)
        for batch in range(platform.batches_per_day):
            requests = platform.batch_requests(day, batch)
            if requests.size == 0:
                continue
            brokers = rng.integers(0, platform.num_brokers, size=requests.size)
            utilities = platform.predicted_utilities(requests)
            affinity = ground_truth_affinity(platform.population, platform.stream, requests)
            pairs = []
            for row, (request, broker) in enumerate(zip(requests, brokers)):
                pairs.append(AssignedPair(int(request), int(broker), float(utilities[row, broker])))
                submitted[broker] += 1
                affinity_sum[broker] += affinity[row, broker]
            platform.submit_assignment(Assignment(day, batch, pairs))
        outcome = platform.finish_day()

        # Workloads equal exactly what was submitted (no appeals here).
        np.testing.assert_array_equal(outcome.workloads, submitted)
        # Realized utility never exceeds the undegraded affinity total.
        assert np.all(outcome.realized_utility <= affinity_sum + 1e-9)
        assert np.all(outcome.realized_utility >= 0.0)
        # Sign-up rates are probabilities, zero for idle brokers.
        assert np.all((0.0 <= outcome.signup_rates) & (outcome.signup_rates <= 1.0))
        assert np.all(outcome.signup_rates[submitted == 0] == 0.0)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_vfga_never_exceeds_capacity(seed):
    """Alg. 2's defining invariant under arbitrary utility draws."""
    from repro.core import AssignmentConfig, ValueFunctionGuidedAssigner

    rng = np.random.default_rng(seed)
    num_brokers = 12
    assigner = ValueFunctionGuidedAssigner(
        num_brokers, AssignmentConfig(), np.random.default_rng(seed), batches_per_day=6
    )
    capacities = rng.integers(1, 5, size=num_brokers).astype(float)
    assigner.begin_day(capacities)
    for batch in range(6):
        size = int(rng.integers(1, 5))
        utilities = rng.uniform(0.01, 1.0, size=(size, num_brokers))
        assigner.assign_batch(0, batch, np.arange(size), utilities)
        assert np.all(assigner.workloads <= capacities)
    assigner.end_day()
