"""Capacity-aware value function: TD updates, time axis, refinement."""

import numpy as np
import pytest

from repro.core import CapacityAwareValueFunction


def test_parameter_validation():
    with pytest.raises(ValueError):
        CapacityAwareValueFunction(max_state=0)
    with pytest.raises(ValueError):
        CapacityAwareValueFunction(learning_rate=0.0)
    with pytest.raises(ValueError):
        CapacityAwareValueFunction(discount=1.5)
    with pytest.raises(ValueError):
        CapacityAwareValueFunction(bucket_size=0)


def test_initial_values_zero():
    vf = CapacityAwareValueFunction()
    assert vf.value(0.0, 10) == 0.0
    assert vf.refinement(0.0, 10) == 0.0


def test_td_update_moves_toward_target():
    vf = CapacityAwareValueFunction(learning_rate=0.5, discount=0.9)
    vf.td_update(0.1, 20, reward=1.0, next_time_fraction=0.2, next_residual=19)
    # target = 1.0 + 0.9 * 0 = 1.0; step = 0.5
    assert vf.value(0.1, 20) == pytest.approx(0.5)


def test_terminal_row_never_learns():
    vf = CapacityAwareValueFunction(learning_rate=1.0)
    vf.td_update(1.0, 20, reward=5.0, next_time_fraction=1.0, next_residual=19)
    assert vf.value(1.0, 20) == 0.0
    assert vf.num_updates == 0


def test_bootstrap_from_terminal_row():
    vf = CapacityAwareValueFunction(learning_rate=1.0, discount=0.9, time_buckets=4)
    # Last real bucket bootstraps from the zero terminal row.
    vf.td_update(0.9, 10, reward=0.4, next_time_fraction=1.0, next_residual=9)
    assert vf.value(0.9, 10) == pytest.approx(0.4)


def test_expire_day_end_pulls_toward_zero():
    vf = CapacityAwareValueFunction(learning_rate=0.5, time_buckets=4)
    vf.td_update(0.9, 10, reward=1.0, next_time_fraction=1.0, next_residual=9)
    before = vf.value(0.9, 10)
    vf.expire_day_end(10)
    assert 0 < vf.value(0.9, 10) < before


def test_refinement_nonpositive_and_zero_at_terminal():
    vf = CapacityAwareValueFunction(learning_rate=1.0, time_buckets=4, bucket_size=5)
    # Make V(t0, bucket of 10) large and V(t0, bucket of 5) small.
    for _ in range(5):
        vf.td_update(0.1, 10, reward=1.0, next_time_fraction=1.0, next_residual=9)
    assert vf.refinement(0.1, 10) <= 0.0
    assert vf.refinement(1.0, 10) == 0.0


def test_refinement_clamped_at_zero():
    vf = CapacityAwareValueFunction(learning_rate=1.0, bucket_size=5)
    # Inflate the *lower* bucket so the raw difference would be positive.
    vf.td_update(0.1, 4, reward=2.0, next_time_fraction=1.0, next_residual=3)
    assert vf.refinement(0.1, 10) == 0.0


def test_refinement_batch_matches_scalar():
    vf = CapacityAwareValueFunction(learning_rate=0.5, bucket_size=5)
    for residual in (7, 12, 23):
        vf.td_update(0.2, residual, 0.5, 0.25, residual - 1)
    residuals = np.array([5.0, 7.0, 12.0, 23.0])
    batch = vf.refinement_batch(0.2, residuals)
    scalar = np.array([vf.refinement(0.2, r) for r in residuals])
    np.testing.assert_allclose(batch, scalar)


def test_states_clamped_to_range():
    vf = CapacityAwareValueFunction(max_state=50)
    vf.td_update(0.1, 500, 0.3, 0.2, 499)  # clamps to max_state
    assert vf.value(0.1, 500) == vf.value(0.1, 50)
    assert np.isfinite(vf.refinement(0.1, -3))


def test_table_is_copy():
    vf = CapacityAwareValueFunction()
    table = vf.table()
    table += 1.0
    assert vf.value(0.0, 0) == 0.0
