"""Value Function Guided Assignment (Alg. 2): capacity caps, CBS, bookkeeping."""

import numpy as np
import pytest

from repro.core import AssignmentConfig, ValueFunctionGuidedAssigner


def _assigner(num_brokers=6, rng=None, **config_overrides):
    config = AssignmentConfig(**config_overrides)
    return ValueFunctionGuidedAssigner(
        num_brokers, config, rng or np.random.default_rng(0), batches_per_day=4
    )


def test_begin_day_validates_shape():
    assigner = _assigner()
    with pytest.raises(ValueError):
        assigner.begin_day(np.ones(3))


def test_capacity_cap_enforced_within_day(rng):
    assigner = _assigner(num_brokers=3, rng=rng)
    assigner.begin_day(np.array([1.0, 1.0, 10.0]))
    # Broker 2 is best for everyone; brokers 0/1 have capacity 1 each.
    utilities = np.array([[0.5, 0.4, 0.9]])
    served = []
    for batch in range(4):
        assignment = assigner.assign_batch(0, batch, np.array([batch]), utilities)
        served.extend(pair.broker_id for pair in assignment.pairs)
    # Broker 2 can serve all four batches; nobody exceeds their cap.
    assert assigner.workloads[0] <= 1
    assert assigner.workloads[1] <= 1
    assert assigner.workloads[2] <= 10


def test_no_available_brokers_returns_empty(rng):
    assigner = _assigner(num_brokers=2, rng=rng)
    assigner.begin_day(np.array([0.0, 0.0]))
    assignment = assigner.assign_batch(0, 0, np.array([0]), np.ones((1, 2)))
    assert len(assignment) == 0


def test_empty_batch(rng):
    assigner = _assigner(rng=rng)
    assigner.begin_day(np.full(6, 5.0))
    assignment = assigner.assign_batch(0, 0, np.array([], dtype=int), np.zeros((0, 6)))
    assert len(assignment) == 0


def test_utilities_shape_validated(rng):
    assigner = _assigner(rng=rng)
    assigner.begin_day(np.full(6, 5.0))
    with pytest.raises(ValueError):
        assigner.assign_batch(0, 0, np.array([1, 2]), np.ones((2, 5)))


def test_one_request_per_broker_per_batch(rng):
    assigner = _assigner(num_brokers=4, rng=rng)
    assigner.begin_day(np.full(4, 10.0))
    utilities = rng.uniform(0.1, 1.0, size=(3, 4))
    assignment = assigner.assign_batch(0, 0, np.arange(3), utilities)
    brokers = [pair.broker_id for pair in assignment.pairs]
    assert len(brokers) == len(set(brokers))
    assert len(assignment) == 3


def test_capacity_hit_frequency(rng):
    assigner = _assigner(num_brokers=2, rng=rng)
    assigner.begin_day(np.array([1.0, 5.0]))
    assigner.assign_batch(0, 0, np.array([0]), np.array([[0.9, 0.1]]))
    assigner.end_day()
    frequency = assigner.capacity_hit_frequency
    assert frequency[0] == pytest.approx(1.0)
    assert frequency[1] == pytest.approx(0.0)


def test_cbs_preserves_batch_utility(rng):
    base = _assigner(num_brokers=30, rng=np.random.default_rng(1), use_cbs=False,
                     use_value_function=False)
    pruned = _assigner(num_brokers=30, rng=np.random.default_rng(1), use_cbs=True,
                       use_value_function=False)
    utilities = rng.uniform(0.05, 1.0, size=(4, 30))
    base.begin_day(np.full(30, 10.0))
    pruned.begin_day(np.full(30, 10.0))
    a = base.assign_batch(0, 0, np.arange(4), utilities)
    b = pruned.assign_batch(0, 0, np.arange(4), utilities)
    assert a.predicted_utility == pytest.approx(b.predicted_utility)


def test_value_function_updates_on_assignment(rng):
    assigner = _assigner(rng=rng, use_value_function=True)
    assigner.begin_day(np.full(6, 5.0))
    before = assigner.value_function.num_updates
    assigner.assign_batch(0, 0, np.arange(2), rng.uniform(0.1, 1, size=(2, 6)))
    assert assigner.value_function.num_updates > before


def test_refinement_waits_for_frequency_history(rng):
    assigner = _assigner(num_brokers=2, rng=rng, use_value_function=True)
    assigner.begin_day(np.array([5.0, 5.0]))
    utilities = np.array([[0.5, 0.4]])
    refined = assigner._refine(utilities, np.array([0, 1]), time_fraction=0.0)
    np.testing.assert_array_equal(refined, utilities)  # too few days seen


def test_time_fraction_inference(rng):
    assigner = ValueFunctionGuidedAssigner(
        3, AssignmentConfig(), rng, batches_per_day=None
    )
    assigner.begin_day(np.full(3, 5.0))
    assigner.assign_batch(0, 0, np.array([0]), rng.uniform(0.1, 1, (1, 3)))
    assigner.assign_batch(0, 7, np.array([1]), rng.uniform(0.1, 1, (1, 3)))
    assert assigner._time_fraction(4) == pytest.approx(0.5)


def test_inferred_time_axis_frozen_after_first_day(rng):
    """Regression: with batches_per_day inferred, day 1 used a drifting
    denominator (batch 0 -> 0/1, batch 1 -> 1/2, ...), so every early TD
    update bootstrapped from the terminal fraction 1.0.  The denominator is
    now frozen at the end of the first day and day-1 updates are replayed
    on the settled axis — day 1 and day 2 must use identical time axes."""
    assigner = ValueFunctionGuidedAssigner(
        3, AssignmentConfig(), np.random.default_rng(0), batches_per_day=None
    )
    fractions_by_day = {0: [], 1: []}
    current_day = [0]
    original = assigner.value_function.td_update

    def recording(time_fraction, residual, utility, next_fraction, next_residual):
        fractions_by_day[current_day[0]].append((time_fraction, next_fraction))
        return original(time_fraction, residual, utility, next_fraction, next_residual)

    assigner.value_function.td_update = recording
    for day in range(2):
        current_day[0] = day
        assigner.begin_day(np.full(3, 8.0))
        for batch in range(4):
            assigner.assign_batch(
                day, batch, np.array([0, 1]), rng.uniform(0.1, 1.0, size=(2, 3))
            )
        assigner.end_day()
    assert assigner._frozen_batches == 4
    # Same number of pairs per day, and the same time axis on both days.
    assert sorted(set(fractions_by_day[0])) == sorted(set(fractions_by_day[1]))
    # The drifting axis would have produced next_fraction == 1.0 everywhere
    # on day 0; the frozen axis keeps intermediate fractions.
    assert any(next_f < 1.0 for _, next_f in fractions_by_day[0])


def test_day_one_td_updates_deferred_to_end_day(rng):
    assigner = ValueFunctionGuidedAssigner(
        2, AssignmentConfig(), np.random.default_rng(0), batches_per_day=None
    )
    assigner.begin_day(np.full(2, 5.0))
    before = assigner.value_function.num_updates
    assigner.assign_batch(0, 0, np.array([0]), rng.uniform(0.1, 1.0, size=(1, 2)))
    assert assigner.value_function.num_updates == before  # buffered, not applied
    assigner.end_day()
    assert assigner.value_function.num_updates > before  # replayed at day end


def test_explicit_batches_per_day_updates_immediately(rng):
    assigner = _assigner(num_brokers=2, rng=rng, use_value_function=True)
    assigner.begin_day(np.full(2, 5.0))
    before = assigner.value_function.num_updates
    assigner.assign_batch(0, 0, np.array([0]), rng.uniform(0.1, 1.0, size=(1, 2)))
    assert assigner.value_function.num_updates > before
