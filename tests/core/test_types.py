"""Entity types: assignment accounting and day-outcome accessors."""

import numpy as np
import pytest

from repro.core import AssignedPair, Assignment, Broker, DayOutcome


def test_broker_reset_day(rng):
    broker = Broker(broker_id=1, features=rng.normal(size=4), workload=7, signup_rate=0.2)
    fresh = rng.normal(size=4)
    broker.reset_day(fresh)
    assert broker.workload == 0
    np.testing.assert_array_equal(broker.features, fresh)


def test_assignment_predicted_utility_and_load():
    assignment = Assignment(day=0, batch=2)
    assignment.pairs.append(AssignedPair(10, 3, 0.4))
    assignment.pairs.append(AssignedPair(11, 3, 0.3))
    assignment.pairs.append(AssignedPair(12, 5, 0.2))
    assert len(assignment) == 3
    assert assignment.predicted_utility == pytest.approx(0.9)
    assert assignment.broker_load() == {3: 2, 5: 1}


def test_day_outcome_total():
    outcome = DayOutcome(
        day=1,
        workloads=np.array([2, 0, 3]),
        signup_rates=np.array([0.2, 0.0, 0.1]),
        realized_utility=np.array([0.5, 0.0, 0.4]),
    )
    assert outcome.total_realized_utility == pytest.approx(0.9)
