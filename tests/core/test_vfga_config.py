"""Assignment-module configuration plumbing (backends, padding, CBS)."""

import numpy as np
import pytest

from repro.core import AssignmentConfig, ValueFunctionGuidedAssigner


def _assign_once(config, rng, num_brokers=20, batch=4):
    assigner = ValueFunctionGuidedAssigner(
        num_brokers, config, rng, batches_per_day=3
    )
    assigner.begin_day(np.full(num_brokers, 10.0))
    utilities = rng.uniform(0.05, 1.0, size=(batch, num_brokers))
    return assigner.assign_batch(0, 0, np.arange(batch), utilities), utilities


@pytest.mark.parametrize("backend", ["repro", "scipy", "auction"])
def test_backends_produce_equal_value(backend):
    rng = np.random.default_rng(4)
    utilities = rng.uniform(0.05, 1.0, size=(4, 20))
    results = {}
    for name in ("repro", backend):
        assigner = ValueFunctionGuidedAssigner(
            20,
            AssignmentConfig(use_value_function=False, matching_backend=name),
            np.random.default_rng(1),
            batches_per_day=3,
        )
        assigner.begin_day(np.full(20, 10.0))
        results[name] = assigner.assign_batch(0, 0, np.arange(4), utilities)
    assert results[backend].predicted_utility == pytest.approx(
        results["repro"].predicted_utility
    )


def test_pad_square_config_equivalent():
    rng = np.random.default_rng(4)
    utilities = rng.uniform(0.05, 1.0, size=(3, 15))
    values = {}
    for pad in (False, True):
        assigner = ValueFunctionGuidedAssigner(
            15,
            AssignmentConfig(use_value_function=False, matching_pad_square=pad),
            np.random.default_rng(1),
            batches_per_day=3,
        )
        assigner.begin_day(np.full(15, 10.0))
        values[pad] = assigner.assign_batch(0, 0, np.arange(3), utilities).predicted_utility
    assert values[True] == pytest.approx(values[False])


def test_cbs_reduces_candidate_pool(rng):
    config = AssignmentConfig(use_cbs=True, use_value_function=False)
    assignment, utilities = _assign_once(config, rng, num_brokers=40, batch=3)
    # All matched brokers must belong to some request's top-3 set
    # (the CBS guarantee), and the value equals the unpruned optimum.
    from repro.matching import solve_assignment

    full = solve_assignment(utilities)
    assert assignment.predicted_utility == pytest.approx(full.total_weight)
    top_sets = set()
    for row in range(3):
        top_sets.update(np.argsort(utilities[row])[-3:].tolist())
    for pair in assignment.pairs:
        assert pair.broker_id in top_sets
