"""Configuration dataclasses: defaults and validation."""

import numpy as np
import pytest

from repro.core import AssignmentConfig, BanditConfig, LACBConfig


def test_bandit_defaults_match_paper():
    config = BanditConfig()
    assert config.lam == pytest.approx(0.001)
    assert config.batch_size == 16  # "preset as 16"
    assert len(config.hidden_sizes) == 2  # 3-layer MLP with the input layer


def test_bandit_validation():
    with pytest.raises(ValueError):
        BanditConfig(candidate_capacities=np.array([]))
    with pytest.raises(ValueError):
        BanditConfig(covariance="sparse")
    with pytest.raises(ValueError):
        BanditConfig(batch_size=0)
    with pytest.raises(ValueError):
        BanditConfig(train_on="reward")
    with pytest.raises(ValueError):
        BanditConfig(epsilon=1.0)


def test_assignment_defaults_match_paper():
    config = AssignmentConfig()
    assert config.learning_rate == pytest.approx(0.25)  # beta
    assert config.discount == pytest.approx(0.9)  # gamma
    assert config.threshold == pytest.approx(0.8)  # delta


def test_assignment_validation():
    with pytest.raises(ValueError):
        AssignmentConfig(learning_rate=0.0)
    with pytest.raises(ValueError):
        AssignmentConfig(discount=-0.1)


def test_lacb_config_composition():
    config = LACBConfig()
    assert config.personalize is True
    assert config.assignment.use_cbs is False
    opt = LACBConfig(assignment=AssignmentConfig(use_cbs=True))
    assert opt.assignment.use_cbs is True


def test_capacity_grid_default():
    grid = BanditConfig().candidate_capacities
    assert grid.min() >= 2.0  # no prominently-low-sign-up capacities
    assert grid.max() <= 60.0
    assert np.all(np.diff(grid) > 0)
