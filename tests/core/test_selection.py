"""Candidate Broker Selection (Alg. 3) and the Theorem 2 property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import candidate_broker_selection, select_candidate_brokers
from repro.core.selection import topk_selection_mask
from repro.matching import solve_assignment


def test_k_geq_size_returns_all(rng):
    utilities = rng.uniform(size=6)
    chosen = candidate_broker_selection(utilities, 10, rng)
    np.testing.assert_array_equal(np.sort(chosen), np.arange(6))


def test_k_zero_empty(rng):
    assert candidate_broker_selection(rng.uniform(size=5), 0, rng).size == 0


def test_rejects_matrix_input(rng):
    with pytest.raises(ValueError):
        candidate_broker_selection(rng.uniform(size=(2, 3)), 1, rng)


def test_handles_all_equal_values(rng):
    utilities = np.full(20, 0.5)
    chosen = candidate_broker_selection(utilities, 7, rng)
    assert chosen.size == 7
    assert np.unique(chosen).size == 7


@settings(max_examples=80, deadline=None)
@given(st.integers(1, 40), st.integers(1, 15), st.integers(0, 10_000))
def test_quickselect_matches_argpartition(size, k, seed):
    """CBS returns exactly a top-k index set (values match a sorted oracle)."""
    rng = np.random.default_rng(seed)
    utilities = rng.uniform(0, 1, size=size)
    chosen = candidate_broker_selection(utilities, k, rng)
    expected_k = min(k, size)
    assert chosen.size == expected_k
    assert np.unique(chosen).size == expected_k
    oracle = np.sort(utilities)[::-1][:expected_k]
    np.testing.assert_allclose(np.sort(utilities[chosen])[::-1], oracle)


def test_union_selection_shape(rng):
    utilities = rng.uniform(size=(4, 30))
    chosen = select_candidate_brokers(utilities, 4, rng)
    assert chosen.size >= 4  # each request contributes its own top-4
    assert chosen.size <= 16
    assert np.all(np.diff(chosen) > 0)  # sorted unique


def test_rejects_vector_for_union(rng):
    with pytest.raises(ValueError):
        select_candidate_brokers(rng.uniform(size=5), 2, rng)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 6), st.integers(8, 40), st.integers(0, 10_000))
def test_theorem2_cbs_preserves_optimal_value(n_requests, n_brokers, seed):
    """Corollary 1: matching on the CBS-pruned graph loses no utility."""
    rng = np.random.default_rng(seed)
    utilities = rng.uniform(0.0, 1.0, size=(n_requests, n_brokers))
    full = solve_assignment(utilities)
    chosen = select_candidate_brokers(utilities, n_requests, rng)
    pruned = solve_assignment(utilities[:, chosen])
    assert pruned.total_weight == pytest.approx(full.total_weight)


# ----------------------------------------------------------------------
# Regression: non-finite utilities must raise, not loop forever
# ----------------------------------------------------------------------
def test_nan_utilities_raise(rng):
    """A NaN pivot makes every quickselect partition empty, so the
    recursion used to spin forever; non-finite input is now rejected."""
    utilities = np.array([0.3, np.nan, 0.7])
    with pytest.raises(ValueError, match="finite"):
        candidate_broker_selection(utilities, 2, rng)


def test_infinite_utilities_raise(rng):
    with pytest.raises(ValueError, match="finite"):
        candidate_broker_selection(np.array([0.3, np.inf]), 1, rng)


def test_nan_utilities_raise_for_union(rng):
    with pytest.raises(ValueError, match="finite"):
        select_candidate_brokers(np.array([[0.1, np.nan], [0.2, 0.3]]), 1, rng)


# ----------------------------------------------------------------------
# The argpartition fast kernel vs the quickselect reference
# ----------------------------------------------------------------------
def test_topk_mask_counts_and_membership(rng):
    utilities = rng.uniform(size=(5, 30))
    mask = topk_selection_mask(utilities, 7)
    assert mask.shape == utilities.shape
    np.testing.assert_array_equal(mask.sum(axis=1), np.full(5, 7))


def test_topk_mask_edge_sizes(rng):
    utilities = rng.uniform(size=(3, 8))
    assert topk_selection_mask(utilities, 0).sum() == 0
    assert topk_selection_mask(utilities, 8).all()
    assert topk_selection_mask(utilities, 99).all()
    assert topk_selection_mask(np.empty((0, 8)), 3).shape == (0, 8)
    assert topk_selection_mask(np.empty((4, 0)), 3).shape == (4, 0)


def test_topk_mask_breaks_ties_by_lowest_index():
    # Boundary value 1.0 is triple-tied; quickselect keeps the
    # lowest-indexed ties, so the mask must do the same.
    utilities = np.array([[1.0, 2.0, 1.0, 1.0, 0.5]])
    mask = topk_selection_mask(utilities, 3)
    np.testing.assert_array_equal(np.flatnonzero(mask[0]), [0, 1, 2])


def test_topk_mask_rejects_nan():
    with pytest.raises(ValueError, match="finite"):
        topk_selection_mask(np.array([[0.1, np.nan]]), 1)


@settings(max_examples=80, deadline=None)
@given(st.integers(1, 6), st.integers(1, 40), st.integers(0, 12), st.integers(0, 10_000))
def test_fast_union_matches_quickselect_union(n_rows, n_cols, k, seed):
    """Both kernels of select_candidate_brokers return the identical union."""
    case_rng = np.random.default_rng(seed)
    # Coarse quantization forces heavy boundary ties, the adversarial case.
    utilities = case_rng.integers(0, 4, size=(n_rows, n_cols)).astype(float)
    fast = select_candidate_brokers(utilities, k, case_rng, method="argpartition")
    reference = select_candidate_brokers(utilities, k, case_rng, method="quickselect")
    np.testing.assert_array_equal(fast, reference)


def test_select_candidate_brokers_rejects_unknown_method(rng):
    with pytest.raises(ValueError, match="method"):
        select_candidate_brokers(rng.uniform(size=(2, 5)), 2, rng, method="bogus")


def test_union_selection_consumes_no_caller_randomness(rng):
    """Batch pruning must not advance the engine's shared generator.

    Seeded-run bit-identity across kernel modes rests on this: quickselect
    pivots come from a private stream (the output is pivot-independent),
    and the argpartition kernel draws nothing at all.
    """
    utilities = np.random.default_rng(0).uniform(size=(4, 20))
    for method in ("argpartition", "quickselect"):
        caller = np.random.default_rng(99)
        select_candidate_brokers(utilities, 4, caller, method=method)
        untouched = np.random.default_rng(99)
        assert caller.integers(1 << 30) == untouched.integers(1 << 30)


def test_default_method_follows_perf_switch(rng):
    from repro import perf

    utilities = np.random.default_rng(2).uniform(size=(3, 12))
    with perf.use_fast_kernels(True):
        fast = select_candidate_brokers(utilities, 3, rng)
    with perf.use_fast_kernels(False):
        reference = select_candidate_brokers(utilities, 3, rng)
    np.testing.assert_array_equal(fast, reference)
