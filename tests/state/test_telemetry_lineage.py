"""Telemetry lineage: checkpoints name their stream segment, and a killed +
resumed run's merged percentiles equal the straight-through run's."""

import pytest

from repro.engine.hooks import MetricsCollector
from repro.engine.loop import DayLoopEngine
from repro.engine.spec import MatcherSpec, PlatformSpec
from repro.obs import telemetry as obs
from repro.obs.metrics import COUNT_BOUNDARIES
from repro.obs.stream import TelemetryStreamWriter, read_stream
from repro.obs.telemetry import Telemetry
from repro.simulation import SyntheticConfig
from repro.state import CheckpointHook, CheckpointStore, RunInterrupted, StopAfterDay

CONFIG = SyntheticConfig(num_brokers=12, num_requests=90, num_days=4, imbalance=0.1, seed=3)
KILL_DAY = 1


def _segment(platform_spec, store, run_id, telemetry, extra_hooks=(), start_day=0, state=None):
    """One engine segment with checkpointing under the given telemetry."""
    platform = platform_spec.build()
    matcher = MatcherSpec("Top-3", seed=5).build(platform)
    collector = MetricsCollector()
    if state is not None:
        platform.restore(state["platform"])
        matcher.restore(state["matcher"])
        collector.restore(state["hooks"]["collector"])
    hook = CheckpointHook(store, run_id=run_id, components={"collector": collector})
    with obs.use(telemetry):
        DayLoopEngine().run(
            platform,
            matcher,
            hooks=(collector, hook) + tuple(extra_hooks),
            start_day=start_day,
        )


def test_checkpoints_record_their_stream_segment(tmp_path, platform_spec=None):
    platform_spec = PlatformSpec.synthetic(CONFIG)
    store = CheckpointStore(tmp_path / "ckpt")
    telemetry = Telemetry()
    telemetry.stream = TelemetryStreamWriter(tmp_path / "stream", segment="0000-run")
    _segment(platform_spec, store, "lineage", telemetry)
    record = store.latest(run_id="lineage")
    # The index roundtrips the segment name: merged telemetry stays
    # attributable to the stream that observed each checkpoint.
    assert record.telemetry_segment == "0000-run"


def test_checkpoints_without_a_stream_record_none(tmp_path):
    platform_spec = PlatformSpec.synthetic(CONFIG)
    store = CheckpointStore(tmp_path / "ckpt")
    _segment(platform_spec, store, "nostream", Telemetry())
    assert store.latest(run_id="nostream").telemetry_segment is None


def test_resumed_run_merged_percentiles_equal_straight_through(tmp_path):
    """The quantile half of the resume-equivalence contract.

    A run killed after day ``KILL_DAY``'s checkpoint observed days
    ``0..KILL_DAY``'s batches; its resume observes the rest.  Sketch
    bucket counts are integers, so merging the two segments' registries
    must reproduce the straight-through percentiles bit for bit — not
    approximately.
    """
    platform_spec = PlatformSpec.synthetic(CONFIG)

    straight = Telemetry()
    _segment(platform_spec, CheckpointStore(tmp_path / "a"), "straight", straight)

    store = CheckpointStore(tmp_path / "b")
    killed = Telemetry()
    killed.stream = TelemetryStreamWriter(tmp_path / "stream", segment="0000-killed")
    with pytest.raises(RunInterrupted):
        _segment(platform_spec, store, "run", killed, extra_hooks=(StopAfterDay(KILL_DAY),))
    record = store.latest(run_id="run")
    assert record.day == KILL_DAY
    assert record.telemetry_segment == "0000-killed"

    resumed = Telemetry()
    resumed.stream = TelemetryStreamWriter(tmp_path / "stream", segment="0001-resumed")
    _segment(
        platform_spec,
        store,
        "run",
        resumed,
        start_day=record.day + 1,
        state=store.load(record),
    )
    assert store.latest(run_id="run").telemetry_segment == "0001-resumed"

    merged = Telemetry()
    merged.registry.merge(killed.registry.to_dict())
    merged.registry.merge(resumed.registry.to_dict())

    def batch_hist(telemetry):
        return telemetry.registry.histogram(
            "engine.batch_requests", boundaries=COUNT_BOUNDARIES, algorithm="Top-3"
        )

    a, b = batch_hist(straight), batch_hist(merged)
    assert a.sketch.count > 0
    assert a.sketch.state() == b.sketch.state()
    for q in (0.5, 0.95, 0.99):
        assert a.quantile(q) == b.quantile(q)
    # Request totals partition exactly across the kill boundary too.
    assert (
        merged.registry.counter("engine.requests", algorithm="Top-3").value
        == straight.registry.counter("engine.requests", algorithm="Top-3").value
    )

    # The streamed segments carry the same lineage with the documented
    # crash semantics: the kill landed before day KILL_DAY's flush, so the
    # killed segment holds days ``0..KILL_DAY-1`` — the stream view loses
    # at most the in-flight day, while the checkpoint (written before the
    # kill) preserves it for the resume.
    view = read_stream(tmp_path / "stream")
    assert [s.final for s in view.segments] == [False, True]
    assert view.segments[0].day == KILL_DAY - 1
    c = view.merged_registry().histogram(
        "engine.batch_requests", boundaries=COUNT_BOUNDARIES, algorithm="Top-3"
    )
    assert 0 < c.sketch.count < a.sketch.count
