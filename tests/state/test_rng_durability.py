"""RNG durability: every stream resumes exactly where it left off.

The repo's determinism rests on named ``numpy.random.Generator`` streams
(platform, matcher, bandit, GBDT subsampling).  A restore must put each
stream back *in place* — same object identity, same position — so that
post-restore draws continue the uninterrupted sequence bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import make_matcher
from repro.simulation import SyntheticConfig, generate_city
from repro.state import rng_state, set_rng_state


def _city():
    config = SyntheticConfig(num_brokers=12, num_requests=90, num_days=3, seed=3)
    return config, generate_city(config)


def test_platform_rng_resumes_uninterrupted_sequence():
    config, platform = _city()
    platform.reset()
    platform.start_day(0)
    snapshot = platform.snapshot()
    expected = platform._rng.standard_normal(16)

    _config, twin = _city()
    twin.restore(snapshot)
    assert np.array_equal(twin._rng.standard_normal(16), expected)


def test_matcher_shared_rng_resumes_in_place():
    """make_matcher builds ONE generator shared by the bandit and the
    assigner; restore must preserve that sharing, so interleaved draws
    after restore match the uninterrupted interleaving."""
    def bandit_of(matcher):
        # With personalization on the NNUCB bandit sits behind .base.
        return getattr(matcher.estimator, "base", matcher.estimator)

    _config, platform = _city()
    matcher = make_matcher("LACB", platform, seed=5)
    bandit_rng = bandit_of(matcher)._rng
    assigner_rng = matcher.assigner.rng
    assert bandit_rng is assigner_rng  # the precondition this test guards

    bandit_rng.standard_normal(7)  # advance the shared stream
    snapshot = matcher.snapshot()
    expected = np.concatenate(
        [bandit_rng.standard_normal(3), assigner_rng.standard_normal(3)]
    )

    _config2, platform2 = _city()
    twin = make_matcher("LACB", platform2, seed=99)
    twin.restore(snapshot)
    assert bandit_of(twin)._rng is twin.assigner.rng  # sharing survives restore
    actual = np.concatenate(
        [bandit_of(twin)._rng.standard_normal(3), twin.assigner.rng.standard_normal(3)]
    )
    assert np.array_equal(actual, expected)


def test_set_rng_state_does_not_rebind():
    rng = np.random.default_rng(0)
    alias = rng
    saved = rng_state(rng)
    rng.standard_normal(10)
    set_rng_state(rng, saved)
    assert alias is rng


def test_quickselect_pivot_stream_is_call_private():
    """CBS quickselect must not consume the caller's generator, and its
    private pivot stream is rebuilt per call — so checkpoints need not
    (and do not) carry any quickselect state."""
    from repro.core.selection import select_candidate_brokers

    rng = np.random.default_rng(42)
    before = rng_state(rng)
    utilities = np.random.default_rng(7).uniform(size=(6, 40))
    first = select_candidate_brokers(utilities, 6, rng)
    assert rng_state(rng) == before  # caller stream untouched
    # Pivot-independent output: a second call with a differently-advanced
    # caller rng returns the identical candidate set.
    rng.standard_normal(100)
    second = select_candidate_brokers(utilities, 6, rng)
    assert np.array_equal(np.sort(first), np.sort(second))


def test_gbdt_subsample_rng_round_trips():
    from repro.boosting.gbdt import GradientBoostedTrees

    rng = np.random.default_rng(4)
    x = rng.standard_normal((60, 4))
    y = x[:, 0]
    model = GradientBoostedTrees(num_rounds=4, subsample=0.7, rng=rng)
    model.fit(x, y)
    snapshot = model.snapshot()
    expected = rng.standard_normal(5)

    twin_rng = np.random.default_rng(999)
    twin = GradientBoostedTrees(num_rounds=4, subsample=0.7, rng=twin_rng)
    twin.restore(snapshot)
    assert np.array_equal(twin_rng.standard_normal(5), expected)
