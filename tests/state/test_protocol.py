"""Stateful contract primitives: envelopes, versions, in-place RNG state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.state.protocol import (
    StateError,
    StateVersionError,
    Stateful,
    expect,
    rng_state,
    set_rng_state,
    versioned,
)


def test_versioned_expect_round_trip():
    state = versioned("unit.test", {"x": 1})
    assert state["kind"] == "unit.test" and state["version"] == 1
    assert expect(state, "unit.test") == {"x": 1}


def test_expect_rejects_wrong_kind():
    with pytest.raises(StateError):
        expect(versioned("bandits.nnucb", {}), "bandits.thompson")


def test_expect_rejects_wrong_version():
    state = versioned("unit.test", {}, version=2)
    with pytest.raises(StateVersionError):
        expect(state, "unit.test", version=1)


def test_expect_rejects_non_envelope():
    with pytest.raises(StateError):
        expect({"payload": {}}, "unit.test")


def test_rng_state_restores_in_place():
    rng = np.random.default_rng(42)
    rng.standard_normal(5)
    saved = rng_state(rng)
    expected = rng.standard_normal(8)

    # Aliases must keep drawing from the same restored stream: restore is
    # in-place, never a rebind (make_matcher shares one generator between
    # the bandit and the assigner).
    alias = rng
    set_rng_state(rng, saved)
    assert np.array_equal(alias.standard_normal(8), expected)
    assert alias is rng


def test_rng_state_is_a_deep_copy():
    rng = np.random.default_rng(0)
    saved = rng_state(rng)
    before = rng.standard_normal(4)
    set_rng_state(rng, saved)
    assert np.array_equal(rng.standard_normal(4), before)


def test_set_rng_state_rejects_wrong_bit_generator():
    rng = np.random.default_rng(0)
    saved = rng_state(rng)
    saved["bit_generator"] = "MT19937"
    with pytest.raises(StateError):
        set_rng_state(rng, saved)


def test_components_satisfy_stateful_protocol():
    from repro.core.value_function import CapacityAwareValueFunction
    from repro.nn.mlp import MLP
    from repro.state.hook import CheckpointHook  # noqa: F401 - import check

    assert isinstance(CapacityAwareValueFunction(), Stateful)
    assert isinstance(MLP([4, 8, 1], rng=np.random.default_rng(0)), Stateful)
