"""Append-only checkpoint store: records, latest, verification, crashes."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.state.protocol import StateError, state_equal
from repro.state.store import CheckpointStore


def _state(day: int) -> dict:
    return {
        "platform": {"kind": "p", "version": 1, "payload": {"day": day}},
        "matcher": {"kind": "m", "version": 1, "payload": {"w": np.full(3, float(day))}},
        "hooks": {},
    }


def test_save_load_round_trip(tmp_path):
    store = CheckpointStore(tmp_path)
    record = store.save(_state(0), day=0, run_id="r1")
    assert record.day == 0 and record.run_id == "r1"
    assert state_equal(store.load(record), _state(0))


def test_latest_picks_highest_day(tmp_path):
    store = CheckpointStore(tmp_path)
    for day in (0, 1, 2):
        store.save(_state(day), day=day, run_id="r1")
    latest = store.latest()
    assert latest.day == 2
    assert store.latest(run_id="r1").day == 2
    assert store.latest(run_id="other") is None


def test_empty_store_has_no_latest(tmp_path):
    store = CheckpointStore(tmp_path / "missing")
    assert store.records() == []
    assert store.latest() is None


def test_load_detects_blob_substitution(tmp_path):
    """A blob whose content does not match the indexed sha256 must refuse
    to load — the guard against silent mixups between runs or partial
    restores from the wrong file."""
    store_a = CheckpointStore(tmp_path / "a")
    store_b = CheckpointStore(tmp_path / "b")
    record = store_a.save(_state(0), day=0, run_id="r1")
    other = store_b.save(_state(1), day=0, run_id="r1")
    with open(tmp_path / "b" / other.blob, "rb") as handle:
        impostor = handle.read()
    with open(tmp_path / "a" / record.blob, "wb") as handle:
        handle.write(impostor)
    with pytest.raises(StateError):
        store_a.load(record)
    # verify=False skips the guard (the escape hatch for forensics).
    assert store_a.load(record, verify=False) is not None


def test_torn_index_tail_drops_only_final_record(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save(_state(0), day=0, run_id="r1")
    store.save(_state(1), day=1, run_id="r1")
    with open(store.index_path, "a", encoding="utf-8") as handle:
        handle.write('{"schema": "repro.state.checkpoint/v1", "day": 2, "tru')
    records = store.records()
    assert [record.day for record in records] == [0, 1]
    assert store.latest().day == 1


def test_orphan_blob_is_harmless(tmp_path):
    """Crash between blob replace and index append: blob exists, no record."""
    store = CheckpointStore(tmp_path)
    store.save(_state(0), day=0, run_id="r1")
    with open(tmp_path / "state-d00099-deadbeef0000.npz", "wb") as handle:
        handle.write(b"not a real checkpoint")
    assert store.latest().day == 0
    assert state_equal(store.load(store.latest()), _state(0))


def test_lineage_fields_round_trip(tmp_path):
    store = CheckpointStore(tmp_path)
    record = store.save(
        _state(3), day=3, run_id="r2", parent_run_id="r1", resumed_from_day=2
    )
    reread = store.records()[-1]
    assert reread.parent_run_id == "r1"
    assert reread.resumed_from_day == 2
    assert reread.sha256 == record.sha256
