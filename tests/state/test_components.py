"""Component snapshot/restore round trips across every layer.

Each test drives a component into a non-trivial state, snapshots it,
restores the snapshot into a freshly built twin, and asserts the twin's
own snapshot is :func:`~repro.state.state_equal` to the original — the
minimal contract every :class:`~repro.state.Stateful` implementation must
honor.  Behavioral equivalence after restore (same future trajectory) is
covered end-to-end by ``test_resume.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import ALGORITHM_NAMES, make_matcher
from repro.engine.loop import DayLoopEngine
from repro.simulation import SyntheticConfig, generate_city
from repro.state import StateError, state_equal


@pytest.fixture(scope="module")
def driven_platform():
    """A small city after two days under LACB (bandit state is rich)."""
    config = SyntheticConfig(num_brokers=15, num_requests=120, num_days=3, seed=3)
    platform = generate_city(config)
    matcher = make_matcher("LACB", platform, seed=5)
    _run_days(platform, matcher, days=2)
    return config, platform, matcher


def _run_days(platform, matcher, days: int) -> None:
    platform.reset()
    matcher_days = min(days, platform.num_days)
    for day in range(matcher_days):
        contexts = platform.start_day(day)
        matcher.begin_day(day, contexts)
        for batch in range(platform.batches_per_day):
            request_ids = platform.batch_requests(day, batch)
            if request_ids.size == 0:
                continue
            utilities = platform.predicted_utilities(request_ids)
            assignment = matcher.assign_batch(day, batch, request_ids, utilities)
            platform.submit_assignment(assignment)
        outcome = platform.finish_day()
        matcher.end_day(day, outcome, contexts)


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_every_algorithm_round_trips(name):
    config = SyntheticConfig(num_brokers=12, num_requests=90, num_days=2, seed=3)
    platform = generate_city(config)
    matcher = make_matcher(name, platform, seed=5)
    _run_days(platform, matcher, days=2)
    snapshot = matcher.snapshot()

    twin_platform = generate_city(config)
    twin = make_matcher(name, twin_platform, seed=99)  # different seed on purpose
    twin.restore(snapshot)
    assert state_equal(twin.snapshot(), snapshot)


def test_platform_round_trips(driven_platform):
    config, platform, _matcher = driven_platform
    snapshot = platform.snapshot()
    twin = generate_city(config)
    twin.restore(snapshot)
    assert state_equal(twin.snapshot(), snapshot)


def test_restore_rejects_cross_algorithm_state():
    config = SyntheticConfig(num_brokers=10, num_requests=60, num_days=1, seed=3)
    platform = generate_city(config)
    lacb = make_matcher("LACB", platform, seed=5)
    lacb_opt = make_matcher("LACB-Opt", platform, seed=5)
    with pytest.raises(StateError):
        lacb_opt.restore(lacb.snapshot())


def test_restore_rejects_mismatched_platform_size(driven_platform):
    _config, platform, _matcher = driven_platform
    snapshot = platform.snapshot()
    other = generate_city(
        SyntheticConfig(num_brokers=9, num_requests=60, num_days=3, seed=3)
    )
    with pytest.raises(StateError):
        other.restore(snapshot)


def test_value_function_round_trip():
    from repro.core.value_function import CapacityAwareValueFunction

    vf = CapacityAwareValueFunction()
    rng = np.random.default_rng(0)
    for _ in range(50):
        t = float(rng.random() * 0.8)
        cap = float(rng.random() * 20)
        vf.td_update(t, cap, float(rng.random()), t + 0.1, max(cap - 1.0, 0.0))
    snapshot = vf.snapshot()
    twin = CapacityAwareValueFunction()
    twin.restore(snapshot)
    assert state_equal(twin.snapshot(), snapshot)
    assert np.array_equal(twin.table(), vf.table())


def test_mlp_and_optimizer_round_trip():
    from repro.nn.mlp import MLP
    from repro.nn.optimizers import Adam

    rng = np.random.default_rng(1)
    mlp = MLP([6, 16, 1], rng=rng)
    optimizer = Adam(learning_rate=1e-3)
    for _ in range(5):
        x = rng.standard_normal((8, 6))
        out = mlp.forward(x)
        mlp.backward(out - 1.0)
        optimizer.step(mlp)
    mlp_state, opt_state = mlp.snapshot(), optimizer.snapshot()

    twin = MLP([6, 16, 1], rng=np.random.default_rng(2))
    twin_opt = Adam(learning_rate=1e-3)
    twin.restore(mlp_state)
    twin_opt.restore(opt_state)
    assert state_equal(twin.snapshot(), mlp_state)
    assert state_equal(twin_opt.snapshot(), opt_state)
    probe = np.random.default_rng(3).standard_normal((4, 6))
    assert np.array_equal(twin.forward(probe), mlp.forward(probe))


def test_gbdt_utility_model_round_trip():
    from repro.boosting.gbdt import GradientBoostedTrees

    rng = np.random.default_rng(4)
    x = rng.standard_normal((80, 5))
    y = x[:, 0] * 2 + np.sin(x[:, 1])
    model = GradientBoostedTrees(num_rounds=8, subsample=0.8, rng=rng)
    model.fit(x, y)
    snapshot = model.snapshot()

    twin = GradientBoostedTrees(
        num_rounds=8, subsample=0.8, rng=np.random.default_rng(123)
    )
    twin.restore(snapshot)
    assert state_equal(twin.snapshot(), snapshot)
    probe = np.random.default_rng(5).standard_normal((10, 5))
    assert np.array_equal(twin.predict(probe), model.predict(probe))


def test_engine_hooks_round_trip_via_stash():
    """Hook restore is stash-then-apply: the payload survives the engine's
    own on_run_start initialization."""
    from repro.engine.hooks import MetricsCollector

    config = SyntheticConfig(num_brokers=10, num_requests=60, num_days=2, seed=3)
    platform = generate_city(config)
    matcher = make_matcher("Greedy", platform, seed=5)
    collector = MetricsCollector(store_outcomes=True, store_assignments=True)
    DayLoopEngine().run(platform, matcher, hooks=(collector,))
    snapshot = collector.snapshot()

    twin = MetricsCollector(store_outcomes=True, store_assignments=True)
    twin.restore(snapshot)
    # Before on_run_start the payload is only stashed; an empty run (resume
    # from the final checkpoint) applies it, and the twin's own snapshot
    # and rebuilt result must equal the original's.
    platform2 = generate_city(config)
    matcher2 = make_matcher("Greedy", platform2, seed=5)
    DayLoopEngine().run(platform2, matcher2, hooks=(twin,), start_day=platform2.num_days)
    assert state_equal(twin.snapshot(), snapshot)
    assert twin.result.total_realized_utility == collector.result.total_realized_utility


def test_timer_restore_rejects_wrong_horizon():
    from repro.engine.hooks import DecisionTimer
    from repro.state.protocol import versioned

    config = SyntheticConfig(num_brokers=10, num_requests=60, num_days=2, seed=3)
    platform = generate_city(config)
    matcher = make_matcher("Greedy", platform, seed=5)
    timer = DecisionTimer()
    timer.restore(versioned("engine.decision_timer", {"daily_seconds": np.zeros(7)}))
    with pytest.raises(StateError):
        DayLoopEngine().run(platform, matcher, hooks=(timer,))
