"""Pickle audit: everything the executor ships between processes survives.

``run_many`` pickles specs into workers today; operators also pickle live
objects ad hoc (debug dumps, notebook workflows).  This audit pins down
that every registered algorithm, the engine hooks, the platform and the
spec layer survive ``pickle -> unpickle`` with their durable state intact
(``snapshot()`` equality before vs after).
"""

from __future__ import annotations

import pickle

import pytest

from repro.algorithms import ALGORITHM_NAMES, make_matcher
from repro.engine.hooks import AssignmentLogger, DecisionTimer, MetricsCollector
from repro.engine.loop import DayLoopEngine
from repro.engine.spec import MatcherSpec, PlatformSpec, RunSpec
from repro.simulation import SyntheticConfig, generate_city
from repro.state import state_equal


@pytest.fixture(scope="module")
def config():
    return SyntheticConfig(num_brokers=10, num_requests=60, num_days=2, seed=3)


@pytest.fixture(scope="module")
def platform(config):
    return generate_city(config)


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_every_algorithm_pickles_with_state(name, config):
    platform = generate_city(config)
    matcher = make_matcher(name, platform, seed=5)
    DayLoopEngine().run(platform, matcher)
    clone = pickle.loads(pickle.dumps(matcher))
    assert state_equal(clone.snapshot(), matcher.snapshot())


def test_platform_pickles_with_state(config):
    platform = generate_city(config)
    matcher = make_matcher("Greedy", platform, seed=5)
    DayLoopEngine().run(platform, matcher)
    clone = pickle.loads(pickle.dumps(platform))
    assert state_equal(clone.snapshot(), platform.snapshot())


def test_hooks_pickle_with_state(config):
    platform = generate_city(config)
    matcher = make_matcher("Greedy", platform, seed=5)
    hooks = (
        MetricsCollector(store_outcomes=True, store_assignments=True),
        AssignmentLogger(),
        DecisionTimer(),
    )
    DayLoopEngine().run(platform, matcher, hooks=hooks)
    for hook in hooks:
        clone = pickle.loads(pickle.dumps(hook))
        assert state_equal(clone.snapshot(), hook.snapshot())


def test_runspec_pickles(config):
    spec = RunSpec(
        platform=PlatformSpec.synthetic(config),
        matcher=MatcherSpec("LACB", seed=5),
        checkpoint_dir="/tmp/somewhere",
        checkpoint_every=2,
        resume_from="/tmp/somewhere",
        tag="pickle-audit",
    )
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.run_id() == spec.run_id()
