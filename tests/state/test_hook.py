"""CheckpointHook + StopAfterDay: day-boundary writes, cadence, interrupts."""

from __future__ import annotations

import pytest

from repro.algorithms import make_matcher
from repro.engine.hooks import MetricsCollector
from repro.engine.loop import DayLoopEngine
from repro.simulation import SyntheticConfig, generate_city
from repro.state import (
    CheckpointHook,
    CheckpointStore,
    RunInterrupted,
    StopAfterDay,
)


def _city(num_days: int = 4):
    config = SyntheticConfig(num_brokers=10, num_requests=60, num_days=num_days, seed=3)
    return generate_city(config)


def _run(platform, store, every: int = 1, extra_hooks=()):
    matcher = make_matcher("Greedy", platform, seed=5)
    collector = MetricsCollector()
    hook = CheckpointHook(
        store, run_id="hook-test", every=every, components={"collector": collector}
    )
    DayLoopEngine().run(platform, matcher, hooks=(collector, hook) + tuple(extra_hooks))
    return hook


def test_writes_every_day_boundary(tmp_path):
    store = CheckpointStore(tmp_path)
    hook = _run(_city(4), store)
    assert [record.day for record in store.records()] == [0, 1, 2, 3]
    assert [record.day for record in hook.records] == [0, 1, 2, 3]


def test_every_n_still_includes_final_day(tmp_path):
    store = CheckpointStore(tmp_path)
    _run(_city(5), store, every=2)
    # Days are 0-indexed: (day+1) % 2 == 0 -> days 1 and 3; final day 4 always.
    assert [record.day for record in store.records()] == [1, 3, 4]


def test_checkpoint_state_layout(tmp_path):
    store = CheckpointStore(tmp_path)
    _run(_city(2), store)
    state = store.load(store.latest())
    assert set(state) == {"platform", "matcher", "hooks"}
    assert state["platform"]["kind"] == "simulation.platform"
    assert state["matcher"]["kind"] == "algorithms.stateless"
    assert set(state["hooks"]) == {"collector"}
    assert state["hooks"]["collector"]["kind"] == "engine.metrics_collector"


def test_stop_after_day_interrupts_after_checkpoint(tmp_path):
    store = CheckpointStore(tmp_path)
    platform = _city(4)
    with pytest.raises(RunInterrupted) as excinfo:
        _run(platform, store, extra_hooks=(StopAfterDay(1),))
    assert excinfo.value.day == 1
    # The kill fires AFTER the boundary checkpoint was written — the crash
    # model the resume contract is built on.
    assert [record.day for record in store.records()] == [0, 1]


def test_hook_rejects_nonpositive_cadence(tmp_path):
    with pytest.raises(ValueError):
        CheckpointHook(CheckpointStore(tmp_path), run_id="x", every=0)


def test_records_carry_lineage(tmp_path):
    store = CheckpointStore(tmp_path)
    platform = _city(2)
    matcher = make_matcher("Greedy", platform, seed=5)
    collector = MetricsCollector()
    hook = CheckpointHook(
        store,
        run_id="segment-2",
        components={"collector": collector},
        parent_run_id="segment-1",
        resumed_from_day=3,
    )
    DayLoopEngine().run(platform, matcher, hooks=(collector, hook))
    for record in store.records():
        assert record.parent_run_id == "segment-1"
        assert record.resumed_from_day == 3
