"""Atomic writes and torn-tail-tolerant JSONL (`repro.state.io`)."""

from __future__ import annotations

import json
import os

import pytest

from repro.state.io import (
    append_jsonl,
    atomic_open,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    read_jsonl,
)


def test_atomic_open_writes_and_replaces(tmp_path):
    path = tmp_path / "out.txt"
    with atomic_open(path) as handle:
        handle.write("hello")
    assert path.read_text() == "hello"
    # No stray temporaries left behind.
    assert os.listdir(tmp_path) == ["out.txt"]


def test_atomic_open_leaves_previous_file_on_exception(tmp_path):
    path = tmp_path / "out.txt"
    path.write_text("previous")
    with pytest.raises(RuntimeError):
        with atomic_open(path) as handle:
            handle.write("partial garbage")
            raise RuntimeError("killed mid-write")
    assert path.read_text() == "previous"
    assert os.listdir(tmp_path) == ["out.txt"]


def test_atomic_open_rejects_read_and_append_modes(tmp_path):
    for mode in ("r", "a", "r+", "w+"):
        with pytest.raises(ValueError):
            with atomic_open(tmp_path / "x", mode):
                pass


def test_atomic_open_creates_missing_directories(tmp_path):
    path = tmp_path / "deep" / "nested" / "file.txt"
    with atomic_open(path) as handle:
        handle.write("x")
    assert path.read_text() == "x"


def test_atomic_write_helpers(tmp_path):
    text_path = atomic_write_text(tmp_path / "a.txt", "abc")
    bytes_path = atomic_write_bytes(tmp_path / "b.bin", b"\x00\x01")
    json_path = atomic_write_json(tmp_path / "c.json", {"b": 1, "a": 2})
    assert open(text_path).read() == "abc"
    assert open(bytes_path, "rb").read() == b"\x00\x01"
    assert json.load(open(json_path)) == {"a": 2, "b": 1}


def test_append_then_read_jsonl_round_trip(tmp_path):
    path = tmp_path / "log.jsonl"
    records = [{"day": 0}, {"day": 1, "x": [1, 2]}, {"day": 2}]
    for record in records:
        append_jsonl(path, record)
    assert read_jsonl(path) == records


def test_append_jsonl_escapes_newline_values(tmp_path):
    """Newlines inside values are JSON-escaped, so every record stays one
    physical line and the torn-tail recovery logic stays sound."""
    path = tmp_path / "log.jsonl"
    append_jsonl(path, {"text": "a b\nnewline"})
    append_jsonl(path, {"day": 1})
    assert len(path.read_text().rstrip("\n").split("\n")) == 2
    assert read_jsonl(path) == [{"text": "a b\nnewline"}, {"day": 1}]


def test_read_jsonl_drops_torn_final_line(tmp_path):
    path = tmp_path / "log.jsonl"
    append_jsonl(path, {"day": 0})
    append_jsonl(path, {"day": 1})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"day": 2, "tru')  # killed mid-append
    assert read_jsonl(path) == [{"day": 0}, {"day": 1}]


def test_read_jsonl_raises_on_mid_file_corruption(tmp_path):
    path = tmp_path / "log.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"day": 0}\n')
        handle.write("garbage not json\n")
        handle.write('{"day": 2}\n')
    with pytest.raises(ValueError, match="corrupt JSONL line 2"):
        read_jsonl(path)
