"""Snapshot codec: flatten/unflatten, content hashing, npz round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.state.codec import (
    content_hash,
    flatten_state,
    load_npz,
    save_npz,
    unflatten_state,
)
from repro.state.protocol import StateError, state_equal


def _sample_state() -> dict:
    return {
        "kind": "test",
        "version": 1,
        "payload": {
            "weights": np.arange(6, dtype=float).reshape(2, 3),
            "ints": np.array([1, 2, 3]),
            "by_broker": {3: np.ones(2), 0: np.zeros(2)},
            "pairs": [(0, 1.5), (2, -0.5)],
            "tags": {"a", "b"},
            "nested": {"empty": np.zeros((0, 0)), "flag": True, "none": None},
            "scalar": 3.25,
        },
    }


def test_flatten_unflatten_round_trip():
    state = _sample_state()
    skeleton, arrays = flatten_state(state)
    rebuilt = unflatten_state(skeleton, arrays)
    assert state_equal(state, rebuilt)
    # Integer dict keys survive (JSON would stringify them).
    assert 3 in rebuilt["payload"]["by_broker"]
    assert isinstance(rebuilt["payload"]["pairs"][0], tuple)
    assert rebuilt["payload"]["tags"] == {"a", "b"}


def test_flatten_is_deterministic():
    a = flatten_state(_sample_state())
    b = flatten_state(_sample_state())
    assert content_hash(*a) == content_hash(*b)


def test_content_hash_sensitive_to_array_bytes():
    state = _sample_state()
    base = content_hash(*flatten_state(state))
    state["payload"]["weights"][0, 0] += 1e-12
    assert content_hash(*flatten_state(state)) != base


def test_content_hash_sensitive_to_structure():
    state = _sample_state()
    base = content_hash(*flatten_state(state))
    state["payload"]["extra"] = 1
    assert content_hash(*flatten_state(state)) != base


def test_npz_round_trip(tmp_path):
    state = _sample_state()
    skeleton, arrays = flatten_state(state)
    path = tmp_path / "blob.npz"
    with open(path, "wb") as handle:
        save_npz(handle, skeleton, arrays)
    loaded_skeleton, loaded_arrays = load_npz(path)
    assert state_equal(state, unflatten_state(loaded_skeleton, loaded_arrays))
    # Dtypes survive exactly (int stays int, float stays float).
    rebuilt = unflatten_state(loaded_skeleton, loaded_arrays)
    assert rebuilt["payload"]["ints"].dtype == np.array([1]).dtype
    assert rebuilt["payload"]["weights"].dtype == np.dtype(float)


def test_unflatten_rejects_dangling_array_reference():
    skeleton, arrays = flatten_state({"x": np.ones(3)})
    with pytest.raises(StateError):
        unflatten_state(skeleton, {})


def test_state_equal_semantics():
    assert state_equal(float("nan"), float("nan"))
    assert not state_equal(np.ones(3), np.ones(4))
    assert not state_equal(np.ones(3, dtype=int), np.ones(3, dtype=float))
    assert state_equal({"a": (1, 2)}, {"a": (1, 2)})
    assert not state_equal({"a": (1, 2)}, {"a": [1, 2]})
