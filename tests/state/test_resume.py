"""The tentpole acceptance: straight-through ≡ checkpoint/kill/resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.check.resume import check_resume_equivalence, run_resume_suite
from repro.engine.loop import DayLoopEngine
from repro.engine.spec import MatcherSpec, PlatformSpec, RunSpec
from repro.simulation import SyntheticConfig, generate_city
from repro.state import CheckpointStore


@pytest.fixture(scope="module")
def platform_spec():
    return PlatformSpec.synthetic(
        SyntheticConfig(num_brokers=12, num_requests=90, num_days=5, seed=3)
    )


@pytest.mark.parametrize("algorithm", ["LACB", "AN", "Top-3", "KM"])
def test_resume_equivalence_per_algorithm(algorithm):
    assert check_resume_equivalence(algorithm=algorithm, kill_day=2, num_days=5) == []


def test_resume_equivalence_property_suite():
    """Seeded random kill points across the boundary x algorithm grid."""
    cases, violations = run_resume_suite(num_cases=3, seed=11, num_days=4)
    assert cases == 3
    assert violations == []


def test_runspec_resume_from_empty_store_is_fresh_start(tmp_path, platform_spec):
    spec = RunSpec(
        platform=platform_spec,
        matcher=MatcherSpec("Greedy", seed=5),
        resume_from=str(tmp_path / "never-written"),
    )
    baseline = RunSpec(platform=platform_spec, matcher=MatcherSpec("Greedy", seed=5))
    assert spec.run().total_realized_utility == baseline.run().total_realized_utility


def test_runspec_checkpoint_then_resume_round_trip(tmp_path, platform_spec):
    root = str(tmp_path)
    first = RunSpec(
        platform=platform_spec,
        matcher=MatcherSpec("Top-3", seed=5),
        checkpoint_dir=root,
    )
    result = first.run()
    store = CheckpointStore(first.run_directory(root))
    assert store.latest().day == platform_spec.config.num_days - 1

    resumed = RunSpec(
        platform=platform_spec,
        matcher=MatcherSpec("Top-3", seed=5),
        resume_from=root,
    ).run()
    assert resumed.total_realized_utility == result.total_realized_utility
    assert np.array_equal(resumed.daily_utility, result.daily_utility)
    assert np.array_equal(resumed.broker_workload, result.broker_workload)


def test_run_id_distinguishes_specs(platform_spec):
    a = RunSpec(platform=platform_spec, matcher=MatcherSpec("LACB", seed=5))
    b = RunSpec(platform=platform_spec, matcher=MatcherSpec("LACB", seed=6))
    c = RunSpec(platform=platform_spec, matcher=MatcherSpec("LACB-Opt", seed=5))
    d = RunSpec(platform=platform_spec, matcher=MatcherSpec("LACB", seed=5), tag="x")
    ids = {spec.run_id() for spec in (a, b, c, d)}
    assert len(ids) == 4
    assert a.run_id() == RunSpec(
        platform=platform_spec, matcher=MatcherSpec("LACB", seed=5)
    ).run_id()


def test_engine_validates_start_day():
    platform = generate_city(
        SyntheticConfig(num_brokers=8, num_requests=40, num_days=2, seed=3)
    )
    from repro.algorithms import make_matcher

    matcher = make_matcher("Greedy", platform, seed=5)
    with pytest.raises(ValueError):
        DayLoopEngine().run(platform, matcher, start_day=-1)
    with pytest.raises(ValueError):
        DayLoopEngine().run(platform, matcher, start_day=platform.num_days + 1)


def test_resume_equivalence_reports_violation_when_state_is_corrupted(tmp_path):
    """The equivalence checker itself must be falsifiable: a store whose
    latest checkpoint belongs to a different kill day (or is absent) is
    reported, not silently accepted."""
    from repro.check.resume import check_resume_equivalence

    violations = check_resume_equivalence(
        algorithm="Greedy", kill_day=1, num_days=3, directory=str(tmp_path)
    )
    assert violations == []
    # Re-running in the same directory now sees day-1 as latest again; a
    # kill at day 0 expects day-0 as the latest checkpoint and must flag it.
    violations = check_resume_equivalence(
        algorithm="Greedy", kill_day=0, num_days=3, directory=str(tmp_path)
    )
    assert any(v.invariant == "resume.checkpoint_missing" for v in violations)
