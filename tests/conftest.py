"""Shared fixtures: small deterministic instances reused across tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation import SyntheticConfig, generate_city


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_config() -> SyntheticConfig:
    """A minutes-fast synthetic city configuration."""
    return SyntheticConfig(
        num_brokers=40,
        num_requests=600,
        num_days=3,
        imbalance=0.05,
        seed=3,
    )


@pytest.fixture(scope="session")
def tiny_platform(tiny_config: SyntheticConfig):
    """A generated tiny city; tests must call ``reset()`` before driving it."""
    return generate_city(tiny_config)


@pytest.fixture(scope="session")
def small_platform():
    """A somewhat larger city for behaviour (ordering) tests."""
    config = SyntheticConfig(
        num_brokers=120,
        num_requests=3600,
        num_days=6,
        imbalance=0.02,
        seed=5,
    )
    return generate_city(config)
