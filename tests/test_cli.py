"""CLI: every subcommand runs end-to-end on tiny instances."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_compare_command(capsys):
    main(
        [
            "compare",
            "--brokers", "30", "--requests", "300", "--days", "2",
            "--algorithms", "Top-3", "CTop-3",
        ]
    )
    out = capsys.readouterr().out
    assert "Top-3" in out and "CTop-3" in out
    assert "total utility" in out


def test_sweep_command(capsys):
    main(
        [
            "sweep", "num_brokers", "20", "30",
            "--brokers", "20", "--requests", "200", "--days", "2",
            "--algorithms", "Top-3",
        ]
    )
    out = capsys.readouterr().out
    assert "Total utility" in out
    assert "Decision time" in out


def test_sweep_command_parallel_jobs(capsys):
    main(
        [
            "sweep", "num_brokers", "20", "30",
            "--brokers", "20", "--requests", "200", "--days", "2",
            "--algorithms", "Top-3", "KM",
            "--jobs", "2",
        ]
    )
    out = capsys.readouterr().out
    assert "Total utility" in out
    assert "KM" in out


def test_city_command(capsys):
    main(["city", "C", "--scale", "0.008"])
    out = capsys.readouterr().out
    assert "City C" in out
    assert "LACB-Opt" in out


def test_motivate_command(capsys):
    main(["motivate", "--brokers", "40", "--requests", "600", "--days", "2"])
    out = capsys.readouterr().out
    assert "sign-up rate" in out
    assert "Welch" in out


def test_timing_command(capsys):
    main(["timing", "80", "160", "--batch", "4"])
    out = capsys.readouterr().out
    assert "speedup" in out


def test_sweep_chart_and_output(capsys, tmp_path):
    output = tmp_path / "sweep.json"
    main(
        [
            "sweep", "num_brokers", "20", "30",
            "--brokers", "20", "--requests", "200", "--days", "2",
            "--algorithms", "Top-3",
            "--chart", "--output", str(output),
        ]
    )
    out = capsys.readouterr().out
    assert "o=Top-3" in out  # chart legend
    assert output.exists()


def test_develop_command(capsys):
    main(
        [
            "develop",
            "--brokers", "30", "--requests", "300", "--days", "2",
            "--algorithms", "Top-3", "RR",
        ]
    )
    out = capsys.readouterr().out
    assert "Matthew effect" in out
    assert "brokers developed" in out


def test_city_chart(capsys):
    main(["city", "C", "--scale", "0.008", "--chart"])
    out = capsys.readouterr().out
    assert "Total realized utility" in out
    assert "#" in out  # histogram bars
