"""CLI: every subcommand runs end-to-end on tiny instances."""

import json
import logging

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag(capsys):
    from repro.obs.manifest import repro_version

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert repro_version() in capsys.readouterr().out


def test_compare_command(capsys):
    main(
        [
            "compare",
            "--brokers", "30", "--requests", "300", "--days", "2",
            "--algorithms", "Top-3", "CTop-3",
        ]
    )
    out = capsys.readouterr().out
    assert "Top-3" in out and "CTop-3" in out
    assert "total utility" in out


def test_sweep_command(capsys):
    main(
        [
            "sweep", "num_brokers", "20", "30",
            "--brokers", "20", "--requests", "200", "--days", "2",
            "--algorithms", "Top-3",
        ]
    )
    out = capsys.readouterr().out
    assert "Total utility" in out
    assert "Decision time" in out


def test_sweep_command_parallel_jobs(capsys):
    main(
        [
            "sweep", "num_brokers", "20", "30",
            "--brokers", "20", "--requests", "200", "--days", "2",
            "--algorithms", "Top-3", "KM",
            "--jobs", "2",
        ]
    )
    out = capsys.readouterr().out
    assert "Total utility" in out
    assert "KM" in out


def test_city_command(capsys):
    main(["city", "C", "--scale", "0.008"])
    out = capsys.readouterr().out
    assert "City C" in out
    assert "LACB-Opt" in out


def test_motivate_command(capsys):
    main(["motivate", "--brokers", "40", "--requests", "600", "--days", "2"])
    out = capsys.readouterr().out
    assert "sign-up rate" in out
    assert "Welch" in out


def test_timing_command(capsys):
    main(["timing", "80", "160", "--batch", "4"])
    out = capsys.readouterr().out
    assert "speedup" in out


def test_sweep_chart_and_output(capsys, tmp_path):
    output = tmp_path / "sweep.json"
    main(
        [
            "sweep", "num_brokers", "20", "30",
            "--brokers", "20", "--requests", "200", "--days", "2",
            "--algorithms", "Top-3",
            "--chart", "--output", str(output),
        ]
    )
    out = capsys.readouterr().out
    assert "o=Top-3" in out  # chart legend
    assert output.exists()


def test_develop_command(capsys):
    main(
        [
            "develop",
            "--brokers", "30", "--requests", "300", "--days", "2",
            "--algorithms", "Top-3", "RR",
        ]
    )
    out = capsys.readouterr().out
    assert "Matthew effect" in out
    assert "brokers developed" in out


def test_city_chart(capsys):
    main(["city", "C", "--scale", "0.008", "--chart"])
    out = capsys.readouterr().out
    assert "Total realized utility" in out
    assert "#" in out  # histogram bars


def test_compare_telemetry_then_report_roundtrip(capsys, tmp_path):
    """The acceptance flow: compare --telemetry DIR && report DIR."""
    telemetry_dir = tmp_path / "tel"
    main(
        [
            "compare",
            "--brokers", "30", "--requests", "300", "--days", "2",
            "--algorithms", "LACB-Opt",
            "--telemetry", str(telemetry_dir),
        ]
    )
    out = capsys.readouterr().out
    assert "LACB-Opt" in out  # the result table still prints
    for artifact in ("metrics.json", "metrics.prom", "spans.jsonl",
                     "trace.json", "manifest.json"):
        assert (telemetry_dir / artifact).exists(), artifact
    manifest = json.loads((telemetry_dir / "manifest.json").read_text())
    assert manifest["command"] == "compare"
    assert manifest["args"]["brokers"] == 30
    assert manifest["wall_seconds"] > 0

    main(["report", str(telemetry_dir)])
    report = capsys.readouterr().out
    assert "Per-phase time breakdown" in report
    assert "engine.assign_batch" in report
    assert "matching.solve" in report
    assert "% of decision" in report


def test_telemetry_disabled_after_command():
    from repro.obs import telemetry as obs

    main(
        [
            "compare",
            "--brokers", "20", "--requests", "80", "--days", "2",
            "--algorithms", "Top-1",
            "--telemetry", "/tmp/ignored-telemetry-dir",
        ]
    )
    assert not obs.enabled()


def test_sweep_diagnostics_go_to_stderr_not_stdout(capsys, tmp_path):
    output = tmp_path / "sweep.json"
    main(
        [
            "sweep", "num_brokers", "20", "30",
            "--brokers", "20", "--requests", "200", "--days", "2",
            "--algorithms", "Top-3",
            "--output", str(output),
        ]
    )
    captured = capsys.readouterr()
    assert "sweep saved" not in captured.out  # tables only on stdout
    assert "sweep saved" in captured.err
    assert output.exists()


def test_quiet_suppresses_info_diagnostics(capsys, tmp_path):
    output = tmp_path / "sweep.json"
    main(
        [
            "-q",
            "sweep", "num_brokers", "20",
            "--brokers", "20", "--requests", "200", "--days", "2",
            "--algorithms", "Top-3",
            "--output", str(output),
        ]
    )
    captured = capsys.readouterr()
    assert "sweep saved" not in captured.err
    assert "Total utility" in captured.out


def test_verbose_sets_debug_level():
    main(
        [
            "-v",
            "compare",
            "--brokers", "20", "--requests", "80", "--days", "2",
            "--algorithms", "Top-1",
        ]
    )
    assert logging.getLogger("repro").level == logging.DEBUG
    main(
        [
            "compare",
            "--brokers", "20", "--requests", "80", "--days", "2",
            "--algorithms", "Top-1",
        ]
    )
    assert logging.getLogger("repro").level == logging.INFO


def test_report_on_missing_directory_fails_cleanly(tmp_path):
    with pytest.raises(FileNotFoundError, match="telemetry directory"):
        main(["report", str(tmp_path / "missing")])


def test_check_command(capsys):
    main(
        [
            "check",
            "--brokers", "15", "--requests", "100", "--days", "1",
            "--algorithms", "KM",
            "--cases", "10",
        ]
    )
    out = capsys.readouterr().out
    assert "OK: all invariants and properties hold" in out
    assert "invariants" in out and "property cases" in out


def test_check_command_writes_report(capsys, tmp_path):
    report_dir = tmp_path / "check-report"
    main(
        [
            "check",
            "--brokers", "15", "--requests", "80", "--days", "1",
            "--algorithms", "KM",
            "--cases", "5",
            "--report", str(report_dir),
        ]
    )
    payload = json.loads((report_dir / "check_report.json").read_text())
    assert payload["ok"] is True
    assert payload["violations"] == []
    assert payload["property_cases"] == 35  # 7 suites x 5 cases


def test_compare_with_check_flag(capsys):
    import os

    from repro.check import runtime
    from repro.check.runtime import ENV_FLAG

    main(
        [
            "compare",
            "--brokers", "20", "--requests", "120", "--days", "1",
            "--algorithms", "KM",
            "--check",
        ]
    )
    assert "KM" in capsys.readouterr().out
    # The flag must not leak into subsequent runs.
    assert runtime.current() is None
    assert os.environ.get(ENV_FLAG) in (None, "", "0")


# ----------------------------------------------------------------------
# `repro-lacb check` exit-code contract
# ----------------------------------------------------------------------
def _fake_report(violations):
    from repro.check.selfcheck import SelfCheckReport

    return SelfCheckReport(
        violations=violations,
        invariants_checked=10,
        solver_checks=2,
        property_cases=20,
        algorithms=("KM",),
    )


def test_check_exits_nonzero_on_violations(monkeypatch, capsys):
    """The CI self-check step must not be able to pass vacuously: any
    collected violation must surface as a non-zero exit code."""
    from repro.check.runtime import Violation

    monkeypatch.setattr(
        "repro.check.run_self_check",
        lambda **kwargs: _fake_report([Violation("batch.feasible", "boom")]),
    )
    with pytest.raises(SystemExit) as excinfo:
        main(["check", "--resume-cases", "0"])
    assert excinfo.value.code == 1
    out = capsys.readouterr().out
    assert "FAILED" in out and "batch.feasible" in out


def test_check_returns_cleanly_when_ok(monkeypatch, capsys):
    monkeypatch.setattr("repro.check.run_self_check", lambda **kwargs: _fake_report([]))
    main(["check", "--resume-cases", "0"])
    assert "OK" in capsys.readouterr().out


def test_check_report_written_even_on_failure(monkeypatch, tmp_path, capsys):
    from repro.check.runtime import Violation

    monkeypatch.setattr(
        "repro.check.run_self_check",
        lambda **kwargs: _fake_report([Violation("solver.km_optimal", "off by one")]),
    )
    report_dir = tmp_path / "report"
    with pytest.raises(SystemExit):
        main(["check", "--report", str(report_dir), "--resume-cases", "0"])
    payload = json.loads((report_dir / "check_report.json").read_text())
    assert payload["ok"] is False
    assert payload["violations"]


def test_check_telemetry_exported_even_on_failure(monkeypatch, tmp_path, capsys):
    """--telemetry used to lose its export when the command failed; the
    failing run's trace is exactly the one worth keeping."""
    from repro.check.runtime import Violation

    monkeypatch.setattr(
        "repro.check.run_self_check",
        lambda **kwargs: _fake_report([Violation("cbs.preserves", "lost weight")]),
    )
    telemetry_dir = tmp_path / "telemetry"
    with pytest.raises(SystemExit) as excinfo:
        main(["check", "--telemetry", str(telemetry_dir), "--resume-cases", "0"])
    assert excinfo.value.code == 1
    assert telemetry_dir.is_dir() and any(telemetry_dir.iterdir())


def test_check_end_to_end_small_instance(capsys):
    """Un-mocked smoke: a tiny healthy instance reports OK and exits 0."""
    main(
        [
            "check",
            "--brokers", "10",
            "--requests", "80",
            "--days", "1",
            "--cases", "5",
            "--algorithms", "KM",
            "--resume-cases", "1",
        ]
    )
    out = capsys.readouterr().out
    assert "OK: all invariants and properties hold" in out
    assert "resume cases" in out


def test_check_resume_violation_fails_exit_code(monkeypatch, capsys):
    """A resume-equivalence violation must fail the command like any other."""
    from repro.check.runtime import Violation

    monkeypatch.setattr("repro.check.run_self_check", lambda **kwargs: _fake_report([]))
    monkeypatch.setattr(
        "repro.check.resume.run_resume_suite",
        lambda **kwargs: (1, [Violation("resume.result_diverges", "drift")]),
    )
    with pytest.raises(SystemExit) as excinfo:
        main(["check", "--resume-cases", "1"])
    assert excinfo.value.code == 1
    out = capsys.readouterr().out
    assert "resume.result_diverges" in out


def test_check_report_flushed_when_resume_phase_raises(monkeypatch, tmp_path, capsys):
    """--report must land on disk even when the resume phase crashes
    outright (not merely finds violations) — the report is the artifact CI
    uploads for the post-mortem."""
    monkeypatch.setattr("repro.check.run_self_check", lambda **kwargs: _fake_report([]))

    def _boom(**kwargs):
        raise RuntimeError("store corrupted mid-suite")

    monkeypatch.setattr("repro.check.resume.run_resume_suite", _boom)
    report_dir = tmp_path / "report"
    with pytest.raises(RuntimeError, match="store corrupted"):
        main(["check", "--report", str(report_dir), "--resume-cases", "1"])
    payload = json.loads((report_dir / "check_report.json").read_text())
    assert payload["ok"] is True  # the phases that did run were clean
    assert payload["resume_cases"] == 0


def test_check_telemetry_flushed_when_resume_phase_raises(monkeypatch, tmp_path):
    monkeypatch.setattr("repro.check.run_self_check", lambda **kwargs: _fake_report([]))

    def _boom(**kwargs):
        raise RuntimeError("boom")

    monkeypatch.setattr("repro.check.resume.run_resume_suite", _boom)
    telemetry_dir = tmp_path / "telemetry"
    with pytest.raises(RuntimeError):
        main(["check", "--telemetry", str(telemetry_dir), "--resume-cases", "1"])
    assert telemetry_dir.is_dir() and any(telemetry_dir.iterdir())


# ----------------------------------------------------------------------
# --checkpoint / --resume
# ----------------------------------------------------------------------
def test_resume_requires_checkpoint():
    with pytest.raises(SystemExit) as excinfo:
        main(["compare", "--days", "1", "--algorithms", "Greedy", "--resume"])
    assert excinfo.value.code == 2


def test_compare_checkpoint_then_resume_round_trip(capsys, tmp_path):
    """The CI smoke flow: an interrupted-free checkpointed run resumed from
    its final checkpoint reprints the identical result table."""
    args = [
        "compare",
        "--brokers", "12", "--requests", "80", "--days", "2",
        "--algorithms", "Greedy", "Top-3",
        "--checkpoint", str(tmp_path / "ckpt"),
    ]
    main(args)
    straight = capsys.readouterr().out
    main(args + ["--resume"])
    resumed = capsys.readouterr().out
    assert resumed == straight
    stores = list((tmp_path / "ckpt").iterdir())
    assert len(stores) == 2  # one per-spec store directory
    assert all((store / "checkpoints.jsonl").exists() for store in stores)


def test_sweep_checkpoint_then_resume_round_trip(capsys, tmp_path):
    args = [
        "sweep",
        "--brokers", "10", "--requests", "60", "--days", "2",
        "--algorithms", "Greedy",
        "--checkpoint", str(tmp_path / "ckpt"),
        "num_brokers", "10", "12",
    ]
    main(args)
    straight = capsys.readouterr().out
    main(args + ["--resume"])
    resumed = capsys.readouterr().out
    assert resumed == straight


def test_serve_command(capsys):
    main(
        [
            "serve",
            "--brokers", "15", "--requests", "150", "--days", "2",
            "--algorithms", "Top-3", "LACB",
            "--max-wait", "5", "--max-size", "16", "--profile", "bursty",
        ]
    )
    out = capsys.readouterr().out
    assert "Serving mode" in out
    assert "Top-3" in out and "LACB" in out
    assert "wait p99 s" in out and "req/s" in out


def test_serve_incremental_matches_plain(capsys):
    args = [
        "serve",
        "--brokers", "12", "--requests", "90", "--days", "2",
        "--algorithms", "LACB-Opt",
        "--max-wait", "10",
    ]
    main(args)
    plain = capsys.readouterr().out
    main(args + ["--incremental"])
    incremental = capsys.readouterr().out
    # The fast path changes timing columns only; utilities are identical.
    assert plain.splitlines()[0] == incremental.splitlines()[0]
    plain_util = plain.splitlines()[3].split()[1]
    incr_util = incremental.splitlines()[3].split()[1]
    assert plain_util == incr_util


def test_serve_equivalence_flag(capsys, monkeypatch):
    from repro.check.runtime import Violation

    monkeypatch.setattr(
        "repro.check.serving.run_serving_suite", lambda **kwargs: (4, [])
    )
    main(["serve", "--equivalence"])
    assert "OK: boundary-flush serving" in capsys.readouterr().out

    monkeypatch.setattr(
        "repro.check.serving.run_serving_suite",
        lambda **kwargs: (1, [Violation("serving.result_diverges", "drift")]),
    )
    with pytest.raises(SystemExit) as excinfo:
        main(["serve", "--equivalence"])
    assert excinfo.value.code == 1
    assert "serving.result_diverges" in capsys.readouterr().out


def test_serve_equivalence_end_to_end(capsys):
    main(["serve", "--equivalence", "--days", "2"])
    out = capsys.readouterr().out
    assert "case(s) checked" in out
    assert "OK" in out
