"""The fast-vs-reference kernel switch (:mod:`repro.perf`)."""

from repro import perf


def test_fast_kernels_default_on():
    assert perf.fast_kernels_enabled()


def test_set_and_restore():
    perf.set_fast_kernels(False)
    try:
        assert not perf.fast_kernels_enabled()
    finally:
        perf.set_fast_kernels(True)
    assert perf.fast_kernels_enabled()


def test_context_manager_restores_on_exception():
    try:
        with perf.use_fast_kernels(False):
            assert not perf.fast_kernels_enabled()
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert perf.fast_kernels_enabled()


def test_reference_kernels_context():
    with perf.reference_kernels():
        assert not perf.fast_kernels_enabled()
    assert perf.fast_kernels_enabled()


def test_nested_contexts():
    with perf.use_fast_kernels(False):
        with perf.use_fast_kernels(True):
            assert perf.fast_kernels_enabled()
        assert not perf.fast_kernels_enabled()
    assert perf.fast_kernels_enabled()
