"""Capacity-estimator base utilities and the fixed estimator."""

import numpy as np
import pytest

from repro.bandits import FixedCapacityEstimator, NNUCBBandit
from repro.core.config import BanditConfig


def test_fixed_estimator_validation():
    with pytest.raises(ValueError):
        FixedCapacityEstimator(0.0)


def test_fixed_estimator_constant(rng):
    estimator = FixedCapacityEstimator(45.0)
    assert estimator.estimate(rng.normal(size=3)) == 45.0
    estimator.update(rng.normal(size=3), 10, 0.2)  # feedback is a no-op
    assert estimator.estimate(rng.normal(size=3), broker_id=7) == 45.0


def test_estimate_batch_shape(rng):
    bandit = NNUCBBandit(
        3,
        BanditConfig(
            candidate_capacities=np.array([10.0, 20.0]),
            hidden_sizes=(8,),
            min_arm_pulls=0,
            epsilon=0.0,
        ),
        rng,
    )
    contexts = rng.normal(size=(5, 3))
    capacities = bandit.estimate_batch(contexts)
    assert capacities.shape == (5,)
    assert all(c in bandit.capacities for c in capacities)


def test_estimate_batch_passes_broker_ids(rng):
    calls = []

    class Spy(FixedCapacityEstimator):
        def estimate(self, context, broker_id=None):
            calls.append(broker_id)
            return super().estimate(context, broker_id)

    spy = Spy(10.0)
    spy.estimate_batch(rng.normal(size=(3, 2)), broker_ids=np.array([5, 6, 7]))
    assert calls == [5, 6, 7]
