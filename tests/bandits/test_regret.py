"""Regret accounting and the Theorem 1 bound."""

import numpy as np
import pytest

from repro.bandits import NNUCBBandit, RegretTracker, theorem1_bound
from repro.core.config import BanditConfig


def test_bound_formula():
    # n |C| xi^L / pi^(L-1)
    assert theorem1_bound(10, 4, 1, 2.0) == pytest.approx(10 * 4 * 2.0)
    assert theorem1_bound(10, 4, 3, 2.0) == pytest.approx(10 * 4 * 8.0 / np.pi**2)


def test_bound_validation():
    with pytest.raises(ValueError):
        theorem1_bound(0, 4, 3, 2.0)
    with pytest.raises(ValueError):
        theorem1_bound(10, 4, 3, -1.0)


def test_tracker_records():
    tracker = RegretTracker()
    assert tracker.num_trials == 0
    regret = tracker.record(0.2, np.array([0.1, 0.5]))
    assert regret == pytest.approx(0.3)
    tracker.record(0.5, np.array([0.1, 0.5]))
    assert tracker.num_trials == 2
    assert tracker.cumulative_regret == pytest.approx(0.3)
    np.testing.assert_allclose(tracker.cumulative_curve(), [0.3, 0.3])


def test_tracker_rejects_empty_oracle():
    with pytest.raises(ValueError):
        RegretTracker().record(0.1, np.array([]))


def test_empirical_regret_under_theorem1_bound(rng):
    """Run the NN-UCB bandit and confirm the bound dominates its regret."""
    caps = np.array([10.0, 20.0, 30.0])
    bandit = NNUCBBandit(
        2,
        BanditConfig(
            candidate_capacities=caps,
            hidden_sizes=(8,),
            min_arm_pulls=1,
            epsilon=0.1,
            batch_size=8,
        ),
        rng,
    )
    tracker = RegretTracker()

    def reward_curve(context):
        best = 20.0 if context[0] > 0 else 30.0
        return np.array([0.3 - 0.02 * abs(c - best) / 10.0 for c in caps])

    for _ in range(200):
        context = rng.normal(size=2)
        rewards = reward_curve(context)
        capacity = bandit.estimate(context)
        arm = int(np.nonzero(caps == capacity)[0][0])
        observed = rewards[arm] + rng.normal(0, 0.01)
        bandit.update(context, capacity, observed, capacity=capacity)
        tracker.record(rewards[arm], rewards)

    depth, num_arms, xi = bandit.theorem1_parameters()
    bound = theorem1_bound(tracker.num_trials, num_arms, depth, xi)
    assert tracker.cumulative_regret <= bound
    # The bound should not be vacuously tight: regret per trial is small.
    assert tracker.cumulative_regret / tracker.num_trials < 0.05
