"""NN-enhanced UCB: Alg. 1 mechanics and best-arm learning."""

import numpy as np
import pytest

from repro.bandits import NNUCBBandit
from repro.core.config import BanditConfig


def _bandit(rng, **overrides):
    defaults = dict(
        candidate_capacities=np.array([10.0, 20.0, 30.0, 40.0]),
        hidden_sizes=(16, 8),
        min_arm_pulls=1,
        epsilon=0.05,
    )
    defaults.update(overrides)
    return NNUCBBandit(3, BanditConfig(**defaults), rng)


def test_rejects_bad_context_dim(rng):
    with pytest.raises(ValueError):
        NNUCBBandit(0, BanditConfig(), rng)


def test_input_includes_onehot_arms(rng):
    bandit = _bandit(rng)
    # context(3) + scalar capacity + one-hot(4 arms)
    assert bandit.network.input_dim == 3 + 1 + 4


def test_estimate_returns_candidate_and_updates_covariance(rng):
    bandit = _bandit(rng)
    before = bandit._d_diag.copy()
    capacity = bandit.estimate(rng.normal(size=3))
    assert capacity in bandit.capacities
    assert np.any(bandit._d_diag > before)


def test_forced_coverage_pulls_every_arm(rng):
    bandit = _bandit(rng, min_arm_pulls=2, epsilon=0.0)
    for _ in range(8):
        bandit.estimate(rng.normal(size=3))
    assert bandit._arm_pulls.min() >= 2


def test_buffer_trains_at_batch_size(rng):
    bandit = _bandit(rng, batch_size=4)
    context = rng.normal(size=3)
    for _ in range(3):
        bandit.update(context, 10, 0.2)
    assert bandit.num_train_steps == 0
    bandit.update(context, 10, 0.2)
    assert bandit.num_train_steps > 0
    assert not bandit._buffer


def test_flush_trains_partial_buffer(rng):
    bandit = _bandit(rng, batch_size=16)
    bandit.update(rng.normal(size=3), 10, 0.2)
    bandit.flush()
    assert bandit.num_train_steps > 0


def test_train_on_capacity_stores_arm(rng):
    bandit = _bandit(rng, batch_size=100, train_on="capacity")
    bandit.update(rng.normal(size=3), workload=3, reward=0.1, capacity=30.0)
    assert bandit._buffer[-1].workload == 30
    bandit_w = _bandit(rng, batch_size=100, train_on="workload")
    bandit_w.update(rng.normal(size=3), workload=3, reward=0.1, capacity=30.0)
    assert bandit_w._buffer[-1].workload == 3


def test_exploration_bonus_shrinks_with_data(rng):
    bandit = _bandit(rng)
    context = rng.normal(size=3)
    gradient = bandit.network.param_gradient(bandit._features(context, 10.0))
    before = bandit.exploration_bonus(gradient)
    for _ in range(30):
        bandit.estimate(context)
    after = bandit.exploration_bonus(gradient)
    assert after < before


def test_full_covariance_mode(rng):
    bandit = _bandit(rng, covariance="full", hidden_sizes=(4,))
    context = rng.normal(size=3)
    capacity = bandit.estimate(context)
    assert capacity in bandit.capacities
    gradient = bandit.network.param_gradient(bandit._features(context, capacity))
    assert bandit.exploration_bonus(gradient) >= 0.0


def test_full_covariance_matches_sherman_morrison(rng):
    bandit = _bandit(rng, covariance="full", hidden_sizes=(4,))
    dim = bandit.network.num_params
    explicit = np.eye(dim) * bandit.config.lam
    for _ in range(5):
        gradient = rng.normal(size=dim)
        bandit._update_covariance(gradient)
        explicit += np.outer(gradient, gradient)
    np.testing.assert_allclose(bandit._d_inv, np.linalg.inv(explicit), atol=1e-8)


def test_learns_context_dependent_best_arm(rng):
    """The core Alg. 1 claim: regret shrinks as the bandit learns."""
    bandit = _bandit(rng, epsilon=0.1, batch_size=8, train_epochs=3)
    caps = bandit.capacities

    def true_reward(context, capacity):
        best = 20.0 if context[0] > 0 else 30.0
        return 0.3 - 0.01 * abs(capacity - best) / 5.0

    regrets = []
    for _ in range(600):
        context = rng.normal(size=3)
        capacity = bandit.estimate(context)
        reward = true_reward(context, capacity) + rng.normal(0, 0.01)
        bandit.update(context, capacity, reward, capacity=capacity)
        oracle = max(true_reward(context, c) for c in caps)
        regrets.append(oracle - true_reward(context, capacity))
    early = np.mean(regrets[:150])
    late = np.mean(regrets[-150:])
    assert late < early


def test_theorem1_parameters(rng):
    bandit = _bandit(rng)
    depth, num_arms, xi = bandit.theorem1_parameters()
    assert depth == 3  # two hidden layers + output
    assert num_arms == 4
    assert xi > 0


# ----------------------------------------------------------------------
# Regression: tie-break must pick the smallest capacity *value*
# ----------------------------------------------------------------------
def test_tiebreak_prefers_smallest_capacity_on_unsorted_grid(rng):
    """`_pick` used to take the lowest *index* within the tolerance band,
    which silently assumed an ascending capacity grid — on an unsorted
    grid the "conservative indifference" rule handed out the wrong arm."""
    bandit = _bandit(
        rng,
        candidate_capacities=np.array([40.0, 8.0, 16.0]),
        min_arm_pulls=0,
        epsilon=0.0,
    )
    flat_scores = lambda context: np.zeros(bandit.capacities.size)
    chosen = bandit._pick(flat_scores, rng.normal(size=3))
    assert bandit.capacities[chosen] == 8.0


def test_tiebreak_unchanged_on_sorted_grid(rng):
    bandit = _bandit(rng, min_arm_pulls=0, epsilon=0.0)
    flat_scores = lambda context: np.ones(bandit.capacities.size)
    chosen = bandit._pick(flat_scores, rng.normal(size=3))
    assert chosen == 0  # grid [10, 20, 30, 40]: smallest value is index 0


def test_tiebreak_ignores_arms_outside_tolerance(rng):
    bandit = _bandit(
        rng,
        candidate_capacities=np.array([40.0, 8.0, 16.0]),
        min_arm_pulls=0,
        epsilon=0.0,
        tie_tolerance=0.05,
    )
    # Arm 2 is clearly best; arm 1 (capacity 8) is far below the band.
    scores = lambda context: np.array([0.96, 0.1, 1.0])
    chosen = bandit._pick(scores, rng.normal(size=3))
    assert chosen == 2


# ----------------------------------------------------------------------
# Regression: replay arms must bucket identically on both train_on paths
# ----------------------------------------------------------------------
def test_workload_replay_buckets_by_rounding(rng):
    """`int(workload)` truncated, so workloads 4.9 and 5.0 landed in two
    different stratified-sample strata despite being one arm bucket."""
    bandit = _bandit(rng, batch_size=64, train_on="workload")
    context = rng.normal(size=3)
    for workload in (4.9, 5.0, 5.2, 4.6):
        bandit.update(context, workload, 0.3)
    arms = {triple.workload for triple in bandit._buffer}
    assert arms == {5}


def test_stratified_sample_sees_one_stratum_for_tied_workloads(rng):
    bandit = _bandit(rng, batch_size=2, train_on="workload", replay_sample=8)
    context = rng.normal(size=3)
    bandit.update(context, 4.9, 0.3)
    bandit.update(context, 5.0, 0.4)  # triggers training; replay now holds both
    arms = np.unique([triple.workload for triple in bandit._replay])
    assert arms.size == 1
    picked = bandit._stratified_sample()
    assert picked.size == min(2, bandit.config.replay_sample)


def test_capacity_and_workload_paths_bucket_identically(rng):
    capacity_bandit = _bandit(rng, batch_size=64, train_on="capacity")
    workload_bandit = _bandit(rng, batch_size=64, train_on="workload")
    context = rng.normal(size=3)
    capacity_bandit.update(context, 4.9, 0.3, capacity=4.9)
    workload_bandit.update(context, 4.9, 0.3)
    assert capacity_bandit._buffer[0].workload == workload_bandit._buffer[0].workload


# ----------------------------------------------------------------------
# Batched (fast) vs per-sample (reference) scoring
# ----------------------------------------------------------------------
def test_fast_and_reference_scores_agree(rng):
    from repro import perf

    bandit = _bandit(rng, min_arm_pulls=0, epsilon=0.0)
    # A little training so the network and covariance are non-trivial.
    for _ in range(20):
        context = rng.normal(size=3)
        capacity = bandit.estimate(context)
        bandit.update(context, capacity, float(rng.uniform()), capacity=capacity)
    bandit.flush()
    for _ in range(5):
        context = rng.normal(size=3)
        with perf.use_fast_kernels(True):
            fast = bandit.ucb_scores(context)
        with perf.use_fast_kernels(False):
            reference = bandit.ucb_scores(context)
        np.testing.assert_allclose(fast, reference, rtol=1e-9, atol=1e-12)
        with perf.use_fast_kernels(True):
            fast_arm = bandit._pick(bandit.ucb_scores, context)
        with perf.use_fast_kernels(False):
            reference_arm = bandit._pick(bandit.ucb_scores, context)
        assert fast_arm == reference_arm


def test_exploration_bonuses_matches_scalar_loop_diagonal(rng):
    bandit = _bandit(rng)
    gradients = rng.normal(size=(6, bandit.network.num_params))
    batched = bandit.exploration_bonuses(gradients)
    scalar = np.array([bandit.exploration_bonus(g) for g in gradients])
    np.testing.assert_array_equal(batched, scalar)


def test_exploration_bonuses_matches_scalar_loop_full(rng):
    bandit = _bandit(rng, covariance="full", hidden_sizes=(6,))
    gradients = rng.normal(size=(4, bandit.network.num_params))
    batched = bandit.exploration_bonuses(gradients)
    scalar = np.array([bandit.exploration_bonus(g) for g in gradients])
    np.testing.assert_array_equal(batched, scalar)


def test_arm_feature_rows_matches_per_arm_features(rng):
    bandit = _bandit(rng)
    context = rng.normal(size=3)
    rows = bandit.arm_feature_rows(context)
    reference = np.stack([bandit._features(context, c) for c in bandit.capacities])
    np.testing.assert_array_equal(rows, reference)
