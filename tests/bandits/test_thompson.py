"""Neural Thompson sampling: stochastic scores, learning behaviour."""

import numpy as np

from repro.bandits import NeuralThompsonBandit, make_thompson_bandit
from repro.core.config import BanditConfig


def _bandit(rng, **overrides):
    defaults = dict(
        candidate_capacities=np.array([10.0, 20.0, 30.0]),
        hidden_sizes=(16, 8),
        min_arm_pulls=1,
        epsilon=0.05,
        alpha=0.05,
    )
    defaults.update(overrides)
    return NeuralThompsonBandit(3, BanditConfig(**defaults), rng)


def test_scores_are_stochastic(rng):
    bandit = _bandit(rng)
    context = rng.normal(size=3)
    first = bandit.ucb_scores(context)
    second = bandit.ucb_scores(context)
    assert not np.allclose(first, second)


def test_posterior_mean_deterministic(rng):
    bandit = _bandit(rng)
    context = rng.normal(size=3)
    np.testing.assert_array_equal(
        bandit.posterior_mean_scores(context), bandit.posterior_mean_scores(context)
    )


def test_estimate_returns_candidate(rng):
    bandit = _bandit(rng)
    assert bandit.estimate(rng.normal(size=3)) in bandit.capacities


def test_convenience_constructor(rng):
    bandit = make_thompson_bandit(5, rng)
    assert bandit.capacities.size > 0
    assert bandit.network.input_dim == 5 + 1 + bandit.capacities.size


def test_learns_best_arm(rng):
    """Regret shrinks as the posterior concentrates (same env as UCB test)."""
    bandit = _bandit(rng, epsilon=0.1, batch_size=8, train_epochs=3)
    caps = bandit.capacities

    def true_reward(context, capacity):
        best = 20.0 if context[0] > 0 else 30.0
        return 0.3 - 0.01 * abs(capacity - best) / 5.0

    regrets = []
    for _ in range(600):
        context = rng.normal(size=3)
        capacity = bandit.estimate(context)
        reward = true_reward(context, capacity) + rng.normal(0, 0.01)
        bandit.update(context, capacity, reward, capacity=capacity)
        oracle = max(true_reward(context, c) for c in caps)
        regrets.append(oracle - true_reward(context, capacity))
    assert np.mean(regrets[-150:]) < np.mean(regrets[:150])


def test_shares_training_machinery(rng):
    """TS inherits the replay / stratified training of the UCB base."""
    bandit = _bandit(rng, batch_size=4)
    context = rng.normal(size=3)
    for _ in range(4):
        bandit.update(context, 10, 0.2)
    assert bandit.num_train_steps > 0
    assert not bandit._buffer
