"""LinUCB: validation, ridge recovery, best-arm identification."""

import numpy as np
import pytest

from repro.bandits import LinUCBBandit


def test_parameter_validation():
    with pytest.raises(ValueError):
        LinUCBBandit(0, np.array([5.0]))
    with pytest.raises(ValueError):
        LinUCBBandit(3, np.array([]))
    with pytest.raises(ValueError):
        LinUCBBandit(3, np.array([5.0]), lam=0.0)


def test_estimate_returns_candidate(rng):
    caps = np.array([10.0, 20.0, 30.0])
    bandit = LinUCBBandit(4, caps)
    choice = bandit.estimate(rng.normal(size=4))
    assert choice in caps


def test_learns_linear_reward(rng):
    # reward = 0.5 * c/30 (bigger capacity better) -> should pick 30.
    caps = np.array([10.0, 20.0, 30.0])
    bandit = LinUCBBandit(2, caps, alpha=0.2)
    for _ in range(300):
        context = rng.normal(size=2)
        capacity = bandit.estimate(context)
        reward = 0.5 * capacity / 30.0 + rng.normal(0, 0.01)
        bandit.update(context, capacity, reward)
    picks = [bandit.estimate(rng.normal(size=2)) for _ in range(20)]
    assert np.mean(np.asarray(picks) == 30.0) > 0.8


def test_linear_model_cannot_express_interactions(rng):
    """The Sec. V-C motivation: LinUCB's arm ranking ignores the context.

    With a single shared ``theta`` over ``[x; c]`` the arm scores differ
    only through the capacity feature, so the chosen arm cannot flip with
    the context even when the true reward says it should — the non-linear
    reward model of NN-UCB exists precisely to fix this.
    """
    caps = np.array([10.0, 30.0])
    bandit = LinUCBBandit(1, caps, alpha=0.0)
    for _ in range(600):
        sign = rng.choice([-1.0, 1.0])
        context = np.array([sign])
        capacity = bandit.estimate(context)
        reward = sign * (capacity / 30.0) + rng.normal(0, 0.01)
        bandit.update(context, capacity, reward)
    # Whatever it converged to, the pick is the same for both contexts.
    assert bandit.estimate(np.array([1.0])) == bandit.estimate(np.array([-1.0]))


def test_update_trains_on_capacity_when_given(rng):
    caps = np.array([10.0, 20.0])
    a = LinUCBBandit(1, caps)
    b = LinUCBBandit(1, caps)
    context = np.array([0.5])
    a.update(context, workload=3.0, reward=0.2)
    b.update(context, workload=3.0, reward=0.2, capacity=20.0)
    assert not np.allclose(a._theta, b._theta)


def test_ucb_scores_shape(rng):
    caps = np.arange(5.0, 35.0, 5.0)
    bandit = LinUCBBandit(3, caps)
    scores = bandit.ucb_scores(rng.normal(size=3))
    assert scores.shape == caps.shape
    assert np.all(np.isfinite(scores))
