"""Personalized capacity estimation (Sec. V-D): corrections and exploration."""

import numpy as np
import pytest

from repro.bandits import NNUCBBandit, PersonalizedCapacityEstimator
from repro.bandits.personalization import EXPLORE_QUANTILES
from repro.core.config import BanditConfig


def _estimator(rng, **kwargs):
    base = NNUCBBandit(
        3,
        BanditConfig(
            candidate_capacities=np.arange(5.0, 45.0, 5.0),
            hidden_sizes=(16, 8),
            min_arm_pulls=1,
            epsilon=0.0,
        ),
        rng,
    )
    return PersonalizedCapacityEstimator(base, **kwargs)


def test_mode_validation(rng):
    with pytest.raises(ValueError):
        _estimator(rng, mode="other")
    with pytest.raises(ValueError):
        _estimator(rng, kernel_width=0.0)


def test_falls_back_to_base_without_broker_id(rng):
    estimator = _estimator(rng)
    capacity = estimator.estimate(rng.normal(size=3), broker_id=None)
    assert capacity in estimator.capacities


def test_structured_exploration_spreads_arms(rng):
    estimator = _estimator(rng)
    context = rng.normal(size=3)
    pulls = [estimator.estimate(context, broker_id=1) for _ in range(len(EXPLORE_QUANTILES))]
    # The first estimates visit distinct grid positions (mid/high/low/top).
    assert len(set(pulls)) == len(EXPLORE_QUANTILES)


def test_residual_correction_zero_without_history(rng):
    estimator = _estimator(rng)
    correction = estimator._residual_correction(99)
    np.testing.assert_array_equal(correction, np.zeros(estimator.capacities.size))


def test_residual_correction_bends_toward_own_data(rng):
    estimator = _estimator(rng, min_triples=3)
    context = rng.normal(size=3)
    # Broker consistently outperforms the generic model around capacity 25.
    for _ in range(6):
        estimator.update(context, workload=25, reward=0.9, broker_id=5, capacity=25.0)
        estimator.update(context, workload=5, reward=0.01, broker_id=5, capacity=5.0)
    correction = estimator._residual_correction(5)
    index_25 = int(np.nonzero(estimator.capacities == 25.0)[0][0])
    index_5 = int(np.nonzero(estimator.capacities == 5.0)[0][0])
    assert correction[index_25] > correction[index_5]


def test_personalized_estimate_prefers_own_peak(rng):
    estimator = _estimator(rng, min_triples=3)
    context = rng.normal(size=3)
    for _ in range(8):
        estimator.update(context, 25, 0.9, broker_id=7, capacity=25.0)
        estimator.update(context, 40, 0.05, broker_id=7, capacity=40.0)
        estimator.update(context, 5, 0.05, broker_id=7, capacity=5.0)
    # Skip structured exploration by exhausting it first.
    for _ in range(len(EXPLORE_QUANTILES)):
        estimator.estimate(context, broker_id=7)
    picks = [estimator.estimate(context, broker_id=7) for _ in range(5)]
    assert np.median(picks) == pytest.approx(25.0, abs=5.0)


def test_history_window_capped(rng):
    estimator = _estimator(rng, max_history=10)
    context = rng.normal(size=3)
    for _ in range(25):
        estimator.update(context, 10, 0.2, broker_id=3, capacity=10.0)
    assert len(estimator._history[3]) == 10


def test_num_personalized_counts_ready_brokers(rng):
    estimator = _estimator(rng, min_triples=3)
    context = rng.normal(size=3)
    estimator.update(context, 10, 0.2, broker_id=1, capacity=10.0)
    assert estimator.num_personalized() == 0
    for _ in range(3):
        estimator.update(context, 10, 0.2, broker_id=2, capacity=10.0)
    assert estimator.num_personalized() == 1


def test_linear_mode_fits_heads(rng):
    estimator = _estimator(rng, mode="linear", min_triples=2)
    context = rng.normal(size=3)
    for _ in range(4):
        estimator.update(context, 10, 0.3, broker_id=4, capacity=10.0)
    assert 4 in estimator._linear_heads
    scores = estimator.personalized_scores(context, 4)
    assert scores.shape == estimator.capacities.shape
