"""Decision-audit overhead — telemetry+streaming with the audit off vs. on.

The provenance layer (:mod:`repro.obs.audit`) taps the hottest paths of
the run: every sampled batch captures its CBS candidate set, per-decision
raw/refined utilities and runner-up alternatives, and the bandit stashes
per-arm means/bonuses whenever an audit session is live.  Its cost is a
standing perf budget on top of the telemetry one: **audit on must stay
within 5% of audit off** (both with telemetry and live streaming enabled,
the configuration ``--telemetry DIR --audit`` actually ships), and the
records themselves must stay compact — a bounded number of bytes per
audited decision, so a season-scale run's audit directory stays readable
and shippable.

Methodology follows ``benchmarks/test_obs_overhead.py``: the two modes
are interleaved so drift hits both equally, the budget is enforced on the
median of per-mode repeats (one disturbed repeat is discarded outright
instead of poisoning a pairwise ratio), results must be bit-identical
both ways, and the bench emits ``BENCH_decision_audit.json`` so
``repro-lacb baseline`` can track the trajectory across PRs.
"""

import json
import os
import statistics
import tempfile

from repro.engine import MatcherSpec, PlatformSpec, RunSpec
from repro.engine.executor import execute_spec_observed
from repro.obs import telemetry as obs
from repro.obs.audit import AuditConfig, read_audit
from repro.simulation import SyntheticConfig

#: CI smoke mode: tiny instance, budget relaxed to "not pathologically
#: slower" — on a tiny city the fixed per-batch bookkeeping dwarfs the
#: KM work that dominates (and amortizes it) at real scale.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: Near the CLI's default city scale, audited at the default ``--audit``
#: sampling (every batch): the worst case the flag actually ships.
CONFIG = SyntheticConfig(
    num_brokers=20 if SMOKE else 200,
    num_requests=150 if SMOKE else 5000,
    num_days=1 if SMOKE else 6,
    imbalance=0.02,
    seed=5,
)
SAMPLE_EVERY = 1
REPEATS = 3 if SMOKE else 5
OVERHEAD_BUDGET = 2.0 if SMOKE else 1.05
#: Compact-record budget: an audited decision (provenance fields plus its
#: share of the batch/capacity envelope) must serialize under this.
BYTES_PER_DECISION_BUDGET = 1024

RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_decision_audit.json")


def _spec() -> RunSpec:
    return RunSpec(
        platform=PlatformSpec.synthetic(CONFIG), matcher=MatcherSpec("LACB-Opt", seed=7)
    )


def test_decision_audit_overhead(benchmark):
    obs.disable()
    off_runs, on_runs = [], []
    off_times, on_times = [], []
    audit_bytes = audit_decisions = audit_days = 0
    with tempfile.TemporaryDirectory(prefix="repro-audit-bench-") as workdir:
        stream_dir = os.path.join(workdir, "stream")
        audit_dir = os.path.join(workdir, "audit")
        # Interleave the modes so drift (thermal, cache) hits both equally.
        for repeat in range(REPEATS):
            off, _payload = execute_spec_observed(
                _spec(), stream_dir=stream_dir, segment=f"{repeat:04d}-off"
            )
            off_runs.append(off)
            off_times.append(off.decision_time)

            on, _payload = execute_spec_observed(
                _spec(),
                stream_dir=stream_dir,
                segment=f"{repeat:04d}-on",
                audit_dir=audit_dir,
                audit=AuditConfig(sample_every=SAMPLE_EVERY),
            )
            on_runs.append(on)
            on_times.append(on.decision_time)

        # One recorded pass for the pytest-benchmark tables: the audited
        # configuration, the quantity whose regression this bench catches.
        benchmark.pedantic(
            lambda: execute_spec_observed(
                _spec(),
                stream_dir=stream_dir,
                audit_dir=audit_dir,
                audit=AuditConfig(sample_every=SAMPLE_EVERY),
            ),
            rounds=1,
            iterations=1,
        )

        view = read_audit(audit_dir)
        for segment in view.segments:
            audit_bytes += os.path.getsize(segment.path)
            audit_days += len(segment.records)
            audit_decisions += sum(
                len(batch["decisions"])
                for record in segment.records
                for batch in record["batches"]
            )

    # Provenance capture must never change results.
    for off, on in zip(off_runs, on_runs):
        assert off.total_realized_utility == on.total_realized_utility
        assert off.num_assigned == on.num_assigned

    assert audit_days > 0 and audit_decisions > 0
    bytes_per_decision = audit_bytes / audit_decisions

    off_median, on_median = statistics.median(off_times), statistics.median(on_times)
    overhead = on_median / off_median
    payload = {
        "bench": "decision_audit",
        "smoke": SMOKE,
        "sample_every": SAMPLE_EVERY,
        "instance": {
            "num_brokers": CONFIG.num_brokers,
            "num_requests": CONFIG.num_requests,
            "num_days": CONFIG.num_days,
            "imbalance": CONFIG.imbalance,
            "algorithm": "LACB-Opt",
        },
        "repeats": REPEATS,
        "audit_off_seconds": off_times,
        "audit_on_seconds": on_times,
        "audit_off_median": off_median,
        "audit_on_median": on_median,
        "overhead_ratio": overhead,
        "budget_ratio": OVERHEAD_BUDGET,
        "audit_bytes": audit_bytes,
        "audit_days": audit_days,
        "audit_decisions": audit_decisions,
        "bytes_per_decision": bytes_per_decision,
        "bytes_per_decision_budget": BYTES_PER_DECISION_BUDGET,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print()
    print(f"decision time, audit off: {off_median:.3f}s (median of {REPEATS})")
    print(f"decision time, audit on:  {on_median:.3f}s "
          f"({audit_decisions} decisions over {audit_days} day records)")
    print(f"overhead: {(overhead - 1) * 100:+.2f}% (budget +{(OVERHEAD_BUDGET - 1) * 100:.0f}%)")
    print(f"record size: {bytes_per_decision:.0f} B/decision "
          f"(budget {BYTES_PER_DECISION_BUDGET})")
    assert bytes_per_decision <= BYTES_PER_DECISION_BUDGET, (
        f"audit records average {bytes_per_decision:.0f} bytes/decision, over "
        f"the {BYTES_PER_DECISION_BUDGET}-byte budget"
    )
    assert overhead <= OVERHEAD_BUDGET, (
        f"decision-audit overhead {(overhead - 1) * 100:.2f}% exceeds the "
        f"{(OVERHEAD_BUDGET - 1) * 100:.0f}% budget"
    )
