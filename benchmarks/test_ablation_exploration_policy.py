"""Ablation — exploration principle: optimism (UCB) vs posterior sampling.

The paper picks the UCB principle for its capacity bandit (Sec. V-C);
Thompson sampling is the other standard choice in the cited literature.
Both share the identical network, covariance and training machinery here
(see ``repro.bandits.thompson``), so this bench isolates the exploration
rule in the clean bandit environment and end-to-end through AN-style
assignment.
"""

import numpy as np

from repro.algorithms.neural_assign import NeuralUCBAssignment
from repro.bandits import NeuralThompsonBandit, NNUCBBandit, RegretTracker
from repro.core.config import BanditConfig
from repro.experiments import format_table, run_algorithm
from repro.simulation import SyntheticConfig, generate_city

TRIALS = 400
CONFIG = SyntheticConfig(
    num_brokers=150, num_requests=4500, num_days=10, imbalance=0.015, seed=1
)


def _bandit_regret(cls, rng):
    caps = np.array([10.0, 20.0, 30.0])
    bandit = cls(
        3,
        BanditConfig(
            candidate_capacities=caps,
            hidden_sizes=(16, 8),
            min_arm_pulls=1,
            epsilon=0.05,
            alpha=0.05,
            batch_size=8,
        ),
        rng,
    )
    tracker = RegretTracker()
    for _ in range(TRIALS):
        context = rng.normal(size=3)
        best = 20.0 if context[0] > 0 else 30.0
        rewards = np.array([0.3 - 0.02 * abs(c - best) / 10.0 for c in caps])
        capacity = bandit.estimate(context)
        arm = int(np.nonzero(caps == capacity)[0][0])
        bandit.update(context, capacity, rewards[arm] + rng.normal(0, 0.01), capacity=capacity)
        tracker.record(rewards[arm], rewards)
    return tracker.cumulative_regret


def _end_to_end(cls, platform, seed):
    matcher = NeuralUCBAssignment(
        platform.context_dim,
        platform.num_brokers,
        np.random.default_rng(seed),
        batches_per_day=platform.batches_per_day,
    )
    if cls is NeuralThompsonBandit:
        matcher.bandit = NeuralThompsonBandit(
            platform.context_dim, matcher.bandit.config, np.random.default_rng(seed)
        )
        matcher.name = "AN-TS"
    return run_algorithm(platform, matcher).total_realized_utility


def test_ablation_exploration_policy(benchmark):
    platform = generate_city(CONFIG)

    def run():
        outcomes = {}
        for label, cls in (("UCB", NNUCBBandit), ("Thompson", NeuralThompsonBandit)):
            regret = _bandit_regret(cls, np.random.default_rng(11))
            utilities = [_end_to_end(cls, platform, seed) for seed in (7, 17)]
            outcomes[label] = (regret, float(np.mean(utilities)))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (label, regret, utility) for label, (regret, utility) in outcomes.items()
    ]
    print()
    print(
        format_table(
            ["exploration", f"bandit regret ({TRIALS} trials)", "end-to-end utility"],
            rows,
            title="Ablation: optimism (UCB) vs posterior sampling (Thompson)",
        )
    )
    # Both principles must work; neither collapses (the paper's choice of
    # UCB is a design preference, not a hard requirement).
    for label, (regret, utility) in outcomes.items():
        assert regret < 0.5 * (0.04 * TRIALS), label
        assert utility > 0, label
    ucb, ts = outcomes["UCB"][1], outcomes["Thompson"][1]
    assert min(ucb, ts) > 0.75 * max(ucb, ts)
