"""Fig. 4 — workload concentration of the top brokers under top-k.

Paper: the top-200 brokers' workloads sit far above the city average
(top-1 at 38.26 requests/day = 12.03x the average in City A), with
"roughly a hundred brokers" at risk of exceeding their capacity.

Here: the same concentration measurement under Top-3 on a simulated city.
The bench prints the head of the distribution and asserts both the
multiple over the average and the at-risk head count.
"""

from benchmarks.common import MOTIVATION_CONFIG
from repro.experiments import format_table, workload_concentration
from repro.simulation import generate_city


def test_fig4_top_broker_concentration(benchmark):
    platform = generate_city(MOTIVATION_CONFIG)
    concentration = benchmark.pedantic(
        lambda: workload_concentration(platform, seed=5, top_n=60), rounds=1, iterations=1
    )
    rows = [
        (rank + 1, workload, workload / concentration.city_average)
        for rank, workload in enumerate(concentration.top_workloads[:15])
    ]
    print()
    print(
        format_table(
            ["rank", "mean daily workload", "x city average"],
            rows,
            title="Fig. 4: top-broker workloads under Top-3",
        )
    )
    print(
        f"top-1 ratio = {concentration.top1_ratio:.2f}x (paper: 12.03x); "
        f"{concentration.above_sweet_spot} of the top 60 exceed the typical sweet spot"
    )
    # Paper shape: a severe multiple over the average and a sizeable head
    # of brokers past their capacity sweet spot.
    assert concentration.top1_ratio > 4.0
    assert concentration.above_sweet_spot >= 10
