"""Fig. 2 — city-level average sign-up rate vs. daily workload.

Paper: under the incumbent top-k recommendation, the average sign-up rate
sits in a 14.3-27.5% band below ~40 requests/day and drops to 2.5-17.8%
beyond it; Welch's t-test gives p < 0.0001.

Here: same measurement on two simulated cities (the latent capacity band
of the simulated population puts the knee near ~25 requests/day at this
scale).  The bench prints the binned curve per city and asserts the drop
and its statistical significance.
"""

import numpy as np

from benchmarks.common import MOTIVATION_CONFIG
from repro.experiments import format_table, signup_vs_workload
from repro.simulation import generate_city

OVERLOAD_THRESHOLD = 25.0


def _study(seed_offset: int):
    config = MOTIVATION_CONFIG
    config = type(config)(**{**config.__dict__, "seed": config.seed + seed_offset})
    platform = generate_city(config)
    return signup_vs_workload(platform, seed=5, overload_threshold=OVERLOAD_THRESHOLD)


def test_fig2_signup_rate_drops_past_capacity(benchmark):
    studies = benchmark.pedantic(
        lambda: [_study(0), _study(10)], rounds=1, iterations=1
    )
    for city, study in zip(("City A'", "City B'"), studies):
        rows = zip(study.bin_centers, study.mean_signup, study.count)
        print()
        print(
            format_table(
                ["workload bin", "mean sign-up rate", "broker-days"],
                rows,
                title=f"Fig. 2 ({city}): sign-up rate vs daily workload under Top-3",
            )
        )
        print(
            f"{city}: below-knee band {study.low_band[0]:.1%}~{study.low_band[1]:.1%}, "
            f"above-knee band {study.high_band[0]:.1%}~{study.high_band[1]:.1%}, "
            f"Welch p = {study.welch_p_value:.2e}"
        )
        # Paper shape: rates above the knee sit below the plateau band and
        # the difference is statistically significant.
        assert np.mean(study.high_band) < np.mean(study.low_band)
        assert study.welch_p_value < 1e-4
