"""Ablation — personalized capacity estimation (Sec. V-D).

Three estimator variants under the same assignment module:

- generic: one shared NN-UCB model for all brokers (the AN configuration);
- personalized/residual: per-broker kernel-smoothed output corrections
  (the default LACB realization of layer transfer);
- personalized/linear: the literal anchored last-layer refit.

Paper claim: personalization is what lets LACB track broker-specific
capacities.  The bench reports utilities and the capacity-estimation
accuracy against the latent ground truth.
"""

import numpy as np

from repro.algorithms.lacb import LACBMatcher
from repro.bandits import PersonalizedCapacityEstimator
from repro.core.config import LACBConfig
from repro.experiments import format_table, run_algorithm
from repro.simulation import SyntheticConfig, generate_city

CONFIG = SyntheticConfig(
    num_brokers=150, num_requests=4500, num_days=12, imbalance=0.015, seed=1
)
SEEDS = (7, 17)


def _build(platform, variant, seed):
    config = LACBConfig(personalize=(variant != "generic"))
    matcher = LACBMatcher(
        platform.context_dim,
        platform.num_brokers,
        np.random.default_rng(seed),
        config,
        batches_per_day=platform.batches_per_day,
    )
    if variant == "linear":
        assert isinstance(matcher.estimator, PersonalizedCapacityEstimator)
        matcher.estimator.mode = "linear"
    return matcher


def _capacity_error(matcher, platform):
    """Mean |estimated - latent| over the busiest quartile of brokers."""
    estimated = matcher.assigner.capacities
    latent = platform.latent_capacities
    busy = np.argsort(latent)[-len(latent) // 4 :]
    return float(np.mean(np.abs(estimated[busy] - latent[busy])))


def test_ablation_personalization(benchmark):
    platform = generate_city(CONFIG)

    def run():
        outcomes = {}
        for variant in ("generic", "residual", "linear"):
            utilities, errors = [], []
            for seed in SEEDS:
                matcher = _build(platform, variant, seed)
                result = run_algorithm(platform, matcher)
                utilities.append(result.total_realized_utility)
                errors.append(_capacity_error(matcher, platform))
            outcomes[variant] = (np.mean(utilities), np.mean(errors))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (variant, utility, error) for variant, (utility, error) in outcomes.items()
    ]
    print()
    print(
        format_table(
            ["estimator", "mean total utility", "top-quartile capacity error"],
            rows,
            title="Ablation: personalization (Sec. V-D)",
        )
    )
    # Personalized estimation must at least match the generic model, and
    # the residual realization tracks top-broker capacities more closely.
    assert outcomes["residual"][0] > 0.9 * outcomes["generic"][0]
    assert outcomes["residual"][1] <= outcomes["generic"][1] + 6.0
