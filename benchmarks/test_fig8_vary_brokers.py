"""Fig. 8 column 1 — total utility and running time vs. number of brokers.

Paper (|B| in 500..10000): LACB and LACB-Opt dominate all baselines in
total utility at every pool size; Top-K's utility does not grow with more
brokers (the overloaded stars stay the same); KM-based algorithms slow
down cubically while LACB-Opt stays near-flat.

Here: the same sweep at ~1/7 scale (|B| in 75..300, other factors scaled
accordingly).  The bench prints both panels and asserts the utility
ordering and the LACB ~= LACB-Opt equality of Corollary 1.
"""

import numpy as np

from benchmarks.common import SWEEP_ALGORITHMS, SWEEP_BASE
from repro.experiments import ascii_chart, format_series, sweep

VALUES = [75, 150, 300]


def test_fig8_vary_num_brokers(benchmark):
    result = benchmark.pedantic(
        lambda: sweep("num_brokers", VALUES, SWEEP_BASE, algorithms=SWEEP_ALGORITHMS, seed=7),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_series("|B|", result.values, result.utilities, title="Fig. 8a: total utility"))
    print()
    print(format_series("|B|", result.values, result.times, title="Fig. 8a: decision time (s)"))
    print()
    print(
        ascii_chart(
            result.values,
            {name: result.utilities[name] for name in ("Top-3", "CTop-3", "AN", "LACB")},
            title="Fig. 8a (chart): total utility vs |B|",
        )
    )
    for index in range(len(VALUES)):
        lacb_family = max(result.utilities["LACB"][index], result.utilities["LACB-Opt"][index])
        # LACB wins or is within single-run noise of the best baseline at
        # every point, and wins outright at the default scale.
        for baseline in ("Top-3", "RR", "KM", "CTop-3"):
            assert lacb_family > 0.93 * result.utilities[baseline][index], (baseline, index)
    default_index = VALUES.index(150)
    lacb_default = max(
        result.utilities["LACB"][default_index], result.utilities["LACB-Opt"][default_index]
    )
    for baseline in ("Top-3", "RR", "KM", "CTop-3"):
        assert lacb_default > result.utilities[baseline][default_index], baseline
    # Corollary 1: CBS does not sacrifice utility (parity within run noise).
    lacb = np.array(result.utilities["LACB"])
    opt = np.array(result.utilities["LACB-Opt"])
    assert np.all(np.abs(lacb - opt) / lacb < 0.2)
