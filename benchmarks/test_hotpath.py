"""Hot-path speedups — vectorized kernels vs. the retained reference kernels.

The two inner loops that dominate LACB wall-clock each now have a fast
kernel and a reference kernel (switched by :mod:`repro.perf`):

* **NeuralUCB scoring** (Eq. 5) — batched ``MLP.param_gradients`` over all
  grid arms vs. the original per-arm ``param_gradient`` loop.
* **CBS pruning** (Alg. 3) — one ``np.partition`` boundary pass over the
  whole utility matrix vs. the per-row quickselect, which Theorem 2 keeps
  as the correctness oracle.

This bench times both kernels on an |B| >= 2000 instance, enforces the
speedup floors (scoring >= 3x, CBS >= 2x in full mode; "not slower" in
CI smoke mode), re-checks that the CBS unions are *exactly* equal and a
seeded LACB-Opt engine run is bit-identical in either mode, and emits
``BENCH_hotpath.json`` so the speedups are tracked across PRs.  A KM
solve at city scale is timed alongside for context (recorded, not
gated): pruning only matters because the KM solve it shrinks dominates.

Run modes::

    PYTHONPATH=src python -m pytest benchmarks/test_hotpath.py --benchmark-only
    REPRO_BENCH_SMOKE=1 PYTHONPATH=src python -m pytest benchmarks/test_hotpath.py --benchmark-only
"""

import json
import os
import time

import numpy as np

from repro import perf
from repro.bandits.neural_ucb import NNUCBBandit
from repro.core.config import BanditConfig
from repro.core.selection import select_candidate_brokers
from repro.engine import MatcherSpec, PlatformSpec, RunSpec
from repro.engine.executor import execute_spec
from repro.matching import solve_assignment
from repro.simulation import SyntheticConfig

#: CI smoke mode: small instances, floors relaxed to "fast is not slower".
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

REPEATS = 3 if SMOKE else 5
#: NeuralUCB scoring calls per timed pass (one per broker context).
NUM_CONTEXTS = 50 if SMOKE else 2000
CONTEXT_DIM = 12
#: CBS instance: (batch of requests, |B| brokers); |B| >= 2000 in full mode.
CBS_SHAPE = (16, 250) if SMOKE else (64, 2000)
CBS_TOP_K = 3
#: KM solve timed for context only (the work CBS pruning exists to shrink).
KM_SHAPE = (16, 250) if SMOKE else (64, 2000)

SCORING_FLOOR = 1.0 if SMOKE else 3.0
CBS_FLOOR = 1.0 if SMOKE else 2.0

#: Seeded engine run replayed under both kernel modes; must be bit-identical.
COMPARE_CONFIG = SyntheticConfig(
    num_brokers=20 if SMOKE else 40,
    num_requests=150 if SMOKE else 400,
    num_days=1 if SMOKE else 3,
    imbalance=0.05,
    seed=42,
)

RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_hotpath.json")


def _best_of(repeats, fn):
    """Min-of-repeats wall clock — robust to scheduler noise."""
    times = []
    for _ in range(repeats):
        tick = time.perf_counter()
        fn()
        times.append(time.perf_counter() - tick)
    return min(times), times


def _make_bandit() -> NNUCBBandit:
    return NNUCBBandit(CONTEXT_DIM, BanditConfig(), np.random.default_rng(3))


def test_hotpath_speedups(benchmark):
    rng = np.random.default_rng(11)

    # ------------------------------------------------------------------
    # NeuralUCB scoring: batched gradients vs. the per-arm loop.
    # ------------------------------------------------------------------
    bandit = _make_bandit()
    contexts = rng.normal(0.0, 1.0, size=(NUM_CONTEXTS, CONTEXT_DIM))

    def score_all():
        for context in contexts:
            bandit.ucb_scores(context)

    with perf.use_fast_kernels(False):
        scoring_ref_best, scoring_ref_times = _best_of(REPEATS, score_all)
    with perf.use_fast_kernels(True):
        scoring_fast_best, scoring_fast_times = _best_of(REPEATS, score_all)
    scoring_speedup = scoring_ref_best / scoring_fast_best

    # The two kernels must still score identically (to ulp scale) on the
    # bench instance itself, not just in the differential suites.
    for context in contexts[:10]:
        with perf.use_fast_kernels(False):
            reference_scores = bandit.ucb_scores(context)
        with perf.use_fast_kernels(True):
            fast_scores = bandit.ucb_scores(context)
        np.testing.assert_allclose(fast_scores, reference_scores, rtol=1e-9, atol=1e-12)
        assert int(np.argmax(fast_scores)) == int(np.argmax(reference_scores))

    # ------------------------------------------------------------------
    # CBS pruning: one argpartition boundary pass vs. per-row quickselect.
    # ------------------------------------------------------------------
    utilities = rng.uniform(0.0, 10.0, size=CBS_SHAPE)
    # Quantize a band of entries so boundary ties — the regime where a
    # wrong tie-break kernel would diverge — actually occur at scale.
    tie_mask = rng.random(CBS_SHAPE) < 0.25
    utilities[tie_mask] = np.round(utilities[tie_mask])

    cbs_rng = np.random.default_rng(0)
    cbs_ref_best, cbs_ref_times = _best_of(
        REPEATS,
        lambda: select_candidate_brokers(utilities, CBS_TOP_K, cbs_rng, method="quickselect"),
    )
    cbs_fast_best, cbs_fast_times = _best_of(
        REPEATS,
        lambda: select_candidate_brokers(utilities, CBS_TOP_K, cbs_rng, method="argpartition"),
    )
    cbs_speedup = cbs_ref_best / cbs_fast_best

    reference_union = select_candidate_brokers(
        utilities, CBS_TOP_K, cbs_rng, method="quickselect"
    )
    fast_union = select_candidate_brokers(
        utilities, CBS_TOP_K, cbs_rng, method="argpartition"
    )
    np.testing.assert_array_equal(fast_union, reference_union)

    # ------------------------------------------------------------------
    # KM solve at the same scale, for context (recorded, not gated).
    # ------------------------------------------------------------------
    km_weights = rng.uniform(0.0, 10.0, size=KM_SHAPE)
    km_best, km_times = _best_of(
        max(1, REPEATS - 2), lambda: solve_assignment(km_weights)
    )

    # ------------------------------------------------------------------
    # Seeded compare run: fast mode must be bit-identical to reference.
    # ------------------------------------------------------------------
    def compare_run():
        spec = RunSpec(
            platform=PlatformSpec.synthetic(COMPARE_CONFIG),
            matcher=MatcherSpec("LACB-Opt", seed=7),
        )
        return execute_spec(spec)

    with perf.use_fast_kernels(True):
        fast_run = compare_run()
    with perf.use_fast_kernels(False):
        reference_run = compare_run()
    assert fast_run.total_realized_utility == reference_run.total_realized_utility
    assert fast_run.total_predicted_utility == reference_run.total_predicted_utility
    assert fast_run.num_assigned == reference_run.num_assigned
    np.testing.assert_array_equal(fast_run.daily_utility, reference_run.daily_utility)
    np.testing.assert_array_equal(fast_run.broker_utility, reference_run.broker_utility)

    # One recorded pass for the pytest-benchmark tables: the fast scoring
    # kernel, the quantity whose regression this bench exists to catch.
    with perf.use_fast_kernels(True):
        benchmark.pedantic(score_all, rounds=1, iterations=1)

    payload = {
        "bench": "hotpath",
        "smoke": SMOKE,
        "repeats": REPEATS,
        "scoring": {
            "num_contexts": NUM_CONTEXTS,
            "context_dim": CONTEXT_DIM,
            "num_arms": int(bandit.capacities.size),
            "reference_seconds": scoring_ref_times,
            "fast_seconds": scoring_fast_times,
            "reference_best": scoring_ref_best,
            "fast_best": scoring_fast_best,
            "speedup": scoring_speedup,
            "floor": SCORING_FLOOR,
        },
        "cbs": {
            "shape": list(CBS_SHAPE),
            "top_k": CBS_TOP_K,
            "reference_seconds": cbs_ref_times,
            "fast_seconds": cbs_fast_times,
            "reference_best": cbs_ref_best,
            "fast_best": cbs_fast_best,
            "speedup": cbs_speedup,
            "floor": CBS_FLOOR,
            "union_size": int(fast_union.size),
            "union_identical": True,
        },
        "km_solve": {
            "shape": list(KM_SHAPE),
            "seconds": km_times,
            "best": km_best,
        },
        "compare_run": {
            "num_brokers": COMPARE_CONFIG.num_brokers,
            "num_requests": COMPARE_CONFIG.num_requests,
            "num_days": COMPARE_CONFIG.num_days,
            "algorithm": "LACB-Opt",
            "bit_identical": True,
            "total_realized_utility": fast_run.total_realized_utility,
        },
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print()
    print(
        f"NeuralUCB scoring: {scoring_ref_best:.3f}s -> {scoring_fast_best:.3f}s "
        f"({scoring_speedup:.1f}x, floor {SCORING_FLOOR:.0f}x, "
        f"{NUM_CONTEXTS} contexts x {bandit.capacities.size} arms)"
    )
    print(
        f"CBS pruning:       {cbs_ref_best * 1e3:.2f}ms -> {cbs_fast_best * 1e3:.2f}ms "
        f"({cbs_speedup:.1f}x, floor {CBS_FLOOR:.0f}x, shape {CBS_SHAPE})"
    )
    print(f"KM solve:          {km_best:.3f}s (shape {KM_SHAPE}, context only)")
    print("compare run:       bit-identical fast vs reference (LACB-Opt, seeded)")

    assert scoring_speedup >= SCORING_FLOOR, (
        f"batched NeuralUCB scoring is only {scoring_speedup:.2f}x the per-arm "
        f"loop (floor {SCORING_FLOOR:.1f}x)"
    )
    assert cbs_speedup >= CBS_FLOOR, (
        f"argpartition CBS pruning is only {cbs_speedup:.2f}x quickselect "
        f"(floor {CBS_FLOOR:.1f}x)"
    )
