"""Diagnostic — how much of the oracle skyline does learned estimation reach?

The oracle matcher runs the same assignment module with the ground-truth
effective capacities the simulator hides from every real algorithm; the
gap between LACB and the oracle is the price of *learning* capacities
online (Challenge 1 of the paper).  The bench reports the fraction of the
skyline each estimator attains and asserts the learned schemes recover a
substantial share while the capacity-unaware baselines do not.
"""

import numpy as np

from repro.algorithms import make_matcher
from repro.algorithms.oracle import OracleCapacityMatcher
from repro.experiments import format_table, run_algorithm
from repro.simulation import SyntheticConfig, generate_city

CONFIG = SyntheticConfig(
    num_brokers=150, num_requests=4500, num_days=12, imbalance=0.015, seed=1
)
SEEDS = (7, 17)


def test_capacity_estimation_gap(benchmark):
    platform = generate_city(CONFIG)

    def run():
        oracle = np.mean(
            [
                run_algorithm(
                    platform, OracleCapacityMatcher(platform, np.random.default_rng(seed))
                ).total_realized_utility
                for seed in SEEDS
            ]
        )
        attained = {}
        for name in ("Top-3", "CTop-3", "AN", "LACB"):
            utilities = [
                run_algorithm(
                    platform, make_matcher(name, platform, seed=seed)
                ).total_realized_utility
                for seed in SEEDS
            ]
            attained[name] = float(np.mean(utilities) / oracle)
        return oracle, attained

    oracle, attained = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("Oracle (ground-truth capacities)", 1.0)]
    rows += [(name, fraction) for name, fraction in attained.items()]
    print()
    print(
        format_table(
            ["capacity source", "fraction of skyline utility"],
            rows,
            title=f"Capacity-estimation gap (oracle = {oracle:.1f})",
        )
    )
    # Learned estimation recovers a substantial share of the skyline...
    assert attained["LACB"] > 0.6
    assert attained["AN"] > 0.5
    # ...which capacity-ignorance cannot.
    assert attained["Top-3"] < attained["LACB"]
    assert attained["CTop-3"] < attained["LACB"] + 0.15
