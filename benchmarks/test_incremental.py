"""Incremental matching — warm-started KM and the utility-prediction cache.

The fig8-style hot path re-solves one assignment per batch, and
consecutive batches are near-duplicates: availability drifts slowly and
the Eq. 15 refinement perturbs a few rows.  This bench drives the
repeated-solve regime those batches form:

* **warm-started KM** — one :class:`repro.matching.incremental.
  IncrementalKMSolver` through a stream of related instances (tail-row
  deltas, identical repeats, full redraws) vs a cold
  ``solve_assignment`` per step.  The end-to-end stream speedup carries
  a hard floor (>= 2x full mode, "not slower" in CI smoke); every step
  is separately asserted bit-identical to the cold solver before any
  timing happens.  An interior-delta stream (changed rows in the middle
  of the matrix, where prefix resumption helps least) is recorded
  alongside, ungated, for transparency.
* **utility-prediction cache** — ``CachedUtilityModel`` vs the bare GBDT
  on overlapping request batches (the appealed-request re-query
  pattern), with bit-identical outputs asserted and the hit-path
  speedup floored.
* **seeded compare runs** — LACB and LACB-Opt with
  ``incremental=True, utility_cache=True`` under the fast kernels vs
  ``REPRO_REFERENCE_KERNELS``-equivalent reference kernels: results must
  be bit-identical, which is the whole contract of the knobs.

Emits ``BENCH_incremental.json`` (tracked by ``repro-lacb baseline``).

Run modes::

    PYTHONPATH=src python -m pytest benchmarks/test_incremental.py --benchmark-only
    REPRO_BENCH_SMOKE=1 PYTHONPATH=src python -m pytest benchmarks/test_incremental.py --benchmark-only
"""

import json
import os
import time

import numpy as np

from repro import perf
from repro.boosting import CachedUtilityModel, UtilityModel
from repro.core.config import AssignmentConfig, BanditConfig, LACBConfig
from repro.engine import MatcherSpec, PlatformSpec, RunSpec
from repro.engine.executor import execute_spec
from repro.matching import IncrementalKMSolver, solve_assignment
from repro.simulation import SyntheticConfig, generate_city

#: CI smoke mode: small instances, floors relaxed to "fast is not slower".
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

REPEATS = 3 if SMOKE else 5
#: Batch instance shape: |R| requests x |B| candidate brokers.
SOLVE_SHAPE = (12, 80) if SMOKE else (32, 600)
#: Steps in the repeated-solve stream.
NUM_STEPS = 60 if SMOKE else 400
#: Rows changed per tail-delta step (the value-refinement regime).
MAX_DELTA_ROWS = 4

WARM_FLOOR = 1.0 if SMOKE else 2.0
CACHE_FLOOR = 1.0 if SMOKE else 1.2

#: Utility-cache instance.
CACHE_CITY = SyntheticConfig(
    num_brokers=40 if SMOKE else 150,
    num_requests=400 if SMOKE else 1500,
    num_days=2,
    imbalance=0.05,
    seed=13,
)
CACHE_HISTORY = 300 if SMOKE else 1000
CACHE_BATCH = 24 if SMOKE else 48
CACHE_QUERIES = 12 if SMOKE else 30
#: Fraction of each query batch re-drawn from the previous batch
#: (appealed requests re-entering the next batch).
CACHE_OVERLAP = 0.75

#: Seeded engine runs replayed under both kernel modes; must be bit-identical.
COMPARE_CONFIG = SyntheticConfig(
    num_brokers=20 if SMOKE else 40,
    num_requests=150 if SMOKE else 400,
    num_days=1 if SMOKE else 3,
    imbalance=0.05,
    seed=42,
)

RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_incremental.json")


def _best_of(repeats, fn):
    """Min-of-repeats wall clock — robust to scheduler noise."""
    times = []
    for _ in range(repeats):
        tick = time.perf_counter()
        fn()
        times.append(time.perf_counter() - tick)
    return min(times), times


def _solve_stream(rng, tail_deltas: bool) -> list[np.ndarray]:
    """The repeated-solve instance stream.

    ~84% of steps redraw 1-``MAX_DELTA_ROWS`` rows (trailing rows when
    ``tail_deltas`` — the batch regime prefix resumption targets —
    uniformly placed otherwise), ~8% repeat the previous instance
    unchanged (pure cache hits), ~8% redraw the whole matrix (forced cold
    fallbacks), so the stream exercises hit, warm and cold modes in
    realistic proportion.
    """
    n_rows, n_cols = SOLVE_SHAPE
    current = rng.uniform(0.0, 10.0, size=SOLVE_SHAPE)
    stream = [current]
    for _ in range(NUM_STEPS - 1):
        draw = rng.random()
        if draw < 0.08:
            current = current.copy()
        elif draw < 0.16:
            current = rng.uniform(0.0, 10.0, size=SOLVE_SHAPE)
        else:
            k = int(rng.integers(1, MAX_DELTA_ROWS + 1))
            current = current.copy()
            if tail_deltas:
                current[n_rows - k:] = rng.uniform(0.0, 10.0, size=(k, n_cols))
            else:
                rows = rng.choice(n_rows, size=k, replace=False)
                current[rows] = rng.uniform(0.0, 10.0, size=(k, n_cols))
        stream.append(current)
    return stream


def _time_stream(stream) -> tuple[float, list, float, list, dict]:
    """Best-of warm vs cold wall clock over one instance stream."""

    def warm_pass():
        solver = IncrementalKMSolver()
        for weights in stream:
            solver.solve(weights)
        return solver

    def cold_pass():
        for weights in stream:
            solve_assignment(weights, maximize=True, backend="repro")

    cold_best, cold_times = _best_of(REPEATS, cold_pass)
    warm_best, warm_times = _best_of(REPEATS, warm_pass)
    stats = warm_pass().stats
    return warm_best, warm_times, cold_best, cold_times, stats


def _compare_run(name: str):
    spec = RunSpec(
        platform=PlatformSpec.synthetic(COMPARE_CONFIG),
        matcher=MatcherSpec(
            name,
            seed=7,
            lacb_config=LACBConfig(
                bandit=BanditConfig(),
                assignment=AssignmentConfig(
                    use_cbs=(name == "LACB-Opt"),
                    incremental=True,
                    utility_cache=True,
                ),
            ),
        ),
    )
    return execute_spec(spec)


def test_incremental_matching(benchmark):
    rng = np.random.default_rng(29)

    # ------------------------------------------------------------------
    # Correctness before timing: every step of the tail-delta stream is
    # bit-identical to the cold reference.
    # ------------------------------------------------------------------
    tail_stream = _solve_stream(rng, tail_deltas=True)
    solver = IncrementalKMSolver()
    for step, weights in enumerate(tail_stream):
        warm = solver.solve(weights)
        cold = solve_assignment(weights, maximize=True, backend="repro")
        assert warm.pairs == cold.pairs, f"pair divergence at step {step}"
        assert warm.total_weight == cold.total_weight, f"total divergence at step {step}"
    assert solver.stats["warm"] > 0 and solver.stats["hit"] > 0

    # ------------------------------------------------------------------
    # The gated repeated-solve benchmark (tail deltas), plus the
    # interior-delta stream recorded for transparency.
    # ------------------------------------------------------------------
    warm_best, warm_times, cold_best, cold_times, warm_stats = _time_stream(tail_stream)
    warm_speedup = cold_best / warm_best

    interior_stream = _solve_stream(rng, tail_deltas=False)
    (
        interior_best,
        interior_times,
        interior_cold_best,
        interior_cold_times,
        interior_stats,
    ) = _time_stream(interior_stream)
    interior_speedup = interior_cold_best / interior_best

    # ------------------------------------------------------------------
    # Utility-prediction cache: bit-identical rows, hit-path speedup on
    # overlapping request batches.
    # ------------------------------------------------------------------
    platform = generate_city(CACHE_CITY)
    history_rng = np.random.default_rng(5)
    history_requests = history_rng.integers(
        0, CACHE_CITY.num_requests, size=CACHE_HISTORY
    )
    history_brokers = history_rng.integers(0, CACHE_CITY.num_brokers, size=CACHE_HISTORY)
    history_outcomes = history_rng.uniform(0.0, 1.0, size=CACHE_HISTORY)
    model = UtilityModel(num_rounds=10 if SMOKE else 30, rng=np.random.default_rng(3))
    model.fit_from_history(
        platform.population, platform.stream, history_requests, history_brokers,
        history_outcomes,
    )

    query_rng = np.random.default_rng(17)
    batches = [query_rng.integers(0, CACHE_CITY.num_requests, size=CACHE_BATCH)]
    carried = int(CACHE_BATCH * CACHE_OVERLAP)
    for _ in range(CACHE_QUERIES - 1):
        fresh = query_rng.integers(0, CACHE_CITY.num_requests, size=CACHE_BATCH - carried)
        batches.append(np.concatenate([batches[-1][:carried], fresh]))

    cached_model = CachedUtilityModel(model)
    for batch in batches:
        expected = model.predict_matrix(platform.population, platform.stream, batch)
        got = cached_model.predict_matrix(platform.population, platform.stream, batch)
        np.testing.assert_array_equal(got, expected)
    assert cached_model.cache.stats["hits"] > 0

    def uncached_pass():
        for batch in batches:
            model.predict_matrix(platform.population, platform.stream, batch)

    def cached_pass():
        fresh = CachedUtilityModel(model)
        for batch in batches:
            fresh.predict_matrix(platform.population, platform.stream, batch)

    uncached_best, uncached_times = _best_of(REPEATS, uncached_pass)
    cached_best, cached_times = _best_of(REPEATS, cached_pass)
    cache_speedup = uncached_best / cached_best

    # ------------------------------------------------------------------
    # Seeded compare runs: knobs on + fast kernels vs reference kernels.
    # ------------------------------------------------------------------
    compare = {}
    for name in ("LACB", "LACB-Opt"):
        with perf.use_fast_kernels(True):
            fast_run = _compare_run(name)
        with perf.use_fast_kernels(False):
            reference_run = _compare_run(name)
        assert fast_run.total_realized_utility == reference_run.total_realized_utility
        assert fast_run.total_predicted_utility == reference_run.total_predicted_utility
        assert fast_run.num_assigned == reference_run.num_assigned
        np.testing.assert_array_equal(fast_run.daily_utility, reference_run.daily_utility)
        np.testing.assert_array_equal(
            fast_run.broker_utility, reference_run.broker_utility
        )
        compare[name] = {
            "bit_identical": True,
            "total_realized_utility": fast_run.total_realized_utility,
        }

    # One recorded pass for the pytest-benchmark tables: the warm stream,
    # the quantity whose regression this bench exists to catch.
    def warm_pass():
        solver = IncrementalKMSolver()
        for weights in tail_stream:
            solver.solve(weights)

    benchmark.pedantic(warm_pass, rounds=1, iterations=1)

    payload = {
        "bench": "incremental",
        "smoke": SMOKE,
        "repeats": REPEATS,
        "warm": {
            "shape": list(SOLVE_SHAPE),
            "steps": NUM_STEPS,
            "max_delta_rows": MAX_DELTA_ROWS,
            "cold_seconds": cold_times,
            "warm_seconds": warm_times,
            "cold_best": cold_best,
            "warm_best": warm_best,
            "speedup": warm_speedup,
            "floor": WARM_FLOOR,
            "solver_stats": warm_stats,
        },
        "interior": {
            "cold_seconds": interior_cold_times,
            "warm_seconds": interior_times,
            "cold_best": interior_cold_best,
            "warm_best": interior_best,
            "speedup": interior_speedup,
            "solver_stats": interior_stats,
        },
        "cache": {
            "num_brokers": CACHE_CITY.num_brokers,
            "batch": CACHE_BATCH,
            "queries": CACHE_QUERIES,
            "overlap": CACHE_OVERLAP,
            "uncached_seconds": uncached_times,
            "cached_seconds": cached_times,
            "uncached_best": uncached_best,
            "cached_best": cached_best,
            "speedup": cache_speedup,
            "floor": CACHE_FLOOR,
            "rows_identical": True,
        },
        "compare_runs": {
            "num_brokers": COMPARE_CONFIG.num_brokers,
            "num_requests": COMPARE_CONFIG.num_requests,
            "num_days": COMPARE_CONFIG.num_days,
            **compare,
        },
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print()
    print(
        f"warm KM (tail deltas):    {cold_best:.3f}s -> {warm_best:.3f}s "
        f"({warm_speedup:.1f}x, floor {WARM_FLOOR:.1f}x, shape {SOLVE_SHAPE}, "
        f"{NUM_STEPS} steps, modes {warm_stats['hit']}h/{warm_stats['warm']}w/"
        f"{warm_stats['cold']}c)"
    )
    print(
        f"warm KM (interior):       {interior_cold_best:.3f}s -> {interior_best:.3f}s "
        f"({interior_speedup:.1f}x, recorded only)"
    )
    print(
        f"utility cache:            {uncached_best:.3f}s -> {cached_best:.3f}s "
        f"({cache_speedup:.1f}x, floor {CACHE_FLOOR:.1f}x, "
        f"{CACHE_QUERIES} batches x {CACHE_BATCH} requests, "
        f"{CACHE_OVERLAP:.0%} overlap)"
    )
    print("compare runs:             bit-identical fast vs reference (LACB, LACB-Opt)")

    assert warm_speedup >= WARM_FLOOR, (
        f"warm-started KM stream is only {warm_speedup:.2f}x the cold stream "
        f"(floor {WARM_FLOOR:.1f}x)"
    )
    assert cache_speedup >= CACHE_FLOOR, (
        f"utility-prediction cache is only {cache_speedup:.2f}x the uncached "
        f"model (floor {CACHE_FLOOR:.1f}x)"
    )
