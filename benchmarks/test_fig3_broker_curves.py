"""Fig. 3 — per-broker sign-up curves of the most-loaded brokers.

Paper: the 21 most-loaded City A brokers show decreasing sign-up rates as
workload grows, with complex, non-linear, broker-specific patterns; each
performs best inside an "accustomed workload area".

Here: the same 21-broker study on a simulated city.  The bench prints one
row per broker (peak location, rate at the peak, rate when pushed to 2x
the peak) and asserts broker-specific unimodality.
"""

import numpy as np

from benchmarks.common import MOTIVATION_CONFIG
from repro.experiments import format_table, top_broker_curves
from repro.simulation import generate_city


def test_fig3_broker_specific_unimodal_curves(benchmark):
    platform = generate_city(MOTIVATION_CONFIG)
    curves = benchmark.pedantic(
        lambda: top_broker_curves(platform, seed=5, top_n=21), rounds=1, iterations=1
    )
    rows = []
    for curve in curves:
        peak = curve.accustomed_workload
        at_peak = float(np.max(curve.expected_signup))
        overloaded = float(
            curve.expected_signup[np.searchsorted(curve.workload_grid, min(2 * peak, 80)) - 1]
        )
        rows.append((curve.broker_id, peak, at_peak, overloaded, curve.observed_workloads.size))
    print()
    print(
        format_table(
            ["broker", "accustomed workload", "rate at peak", "rate at 2x peak", "observed days"],
            rows,
            title="Fig. 3: top-21 broker response curves",
        )
    )
    peaks = np.array([curve.accustomed_workload for curve in curves])
    # Broker-specific: peaks spread across a wide band, not one city value.
    assert np.unique(peaks).size >= 8
    assert peaks.min() >= 3 and peaks.max() <= 60
    for curve in curves:
        # Overloading to 2x the accustomed workload loses most of the rate.
        peak_rate = float(np.max(curve.expected_signup))
        overloaded_rate = float(curve.expected_signup[-1])
        assert overloaded_rate < 0.6 * peak_rate
