"""Ablation — the capacity-aware value function (Eq. 14/15).

Isolates the MDP contribution: LACB with the Eq. 15 refinement enabled vs
the same matcher with the value function switched off (plain
capacity-capped per-batch KM).  The workload carries an intra-day value
ramp, so reservation has genuine headroom; the bench reports the measured
effect over multiple seeds and asserts the refinement is at least
cost-neutral (the stabilized marginal form cannot lock top brokers out).
"""

import numpy as np

from repro.algorithms.lacb import LACBMatcher
from repro.core.config import AssignmentConfig, LACBConfig
from repro.experiments import format_table, run_algorithm
from repro.simulation import SyntheticConfig, generate_city

CONFIG = SyntheticConfig(
    num_brokers=150, num_requests=4500, num_days=10, imbalance=0.015, seed=1
)
SEEDS = (7, 17, 27)


def _run(platform, use_value_function, seed):
    config = LACBConfig(assignment=AssignmentConfig(use_value_function=use_value_function))
    matcher = LACBMatcher(
        platform.context_dim,
        platform.num_brokers,
        np.random.default_rng(seed),
        config,
        batches_per_day=platform.batches_per_day,
    )
    return run_algorithm(platform, matcher).total_realized_utility


def test_ablation_value_function(benchmark):
    platform = generate_city(CONFIG)
    results = benchmark.pedantic(
        lambda: {
            switch: [_run(platform, switch, seed) for seed in SEEDS]
            for switch in (True, False)
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        ("VFGA (Eq. 15 on)", np.mean(results[True]), np.std(results[True])),
        ("capacity-capped KM (off)", np.mean(results[False]), np.std(results[False])),
    ]
    print()
    print(
        format_table(
            ["variant", "mean total utility", "std"],
            rows,
            title="Ablation: capacity-aware value function",
        )
    )
    # The refinement must not cost meaningful utility (>10% would signal
    # the over-reservation failure mode the marginal form eliminates).
    assert np.mean(results[True]) > 0.85 * np.mean(results[False])
