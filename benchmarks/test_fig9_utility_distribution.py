"""Fig. 9 — per-broker utility distribution on the real-like cities.

Paper (City A): capacity-based algorithms (CTop-K, AN, LACB) beat Top-K
for most brokers; 80.8% of brokers improve under LACB vs Top-K, while RR
equalizes utilities but *decreases* 25.7% of brokers.

Here: the same distribution study on real-like Cities A/B/C.  The bench
prints the top-broker utility series per algorithm plus the improvement /
degradation fractions and asserts the paper's two headline claims.
"""

import numpy as np

from benchmarks.common import city_runs
from repro.experiments import format_series, format_table, fraction_degraded, gini


def test_fig9_utility_distribution(benchmark):
    evaluations = benchmark.pedantic(
        lambda: [city_runs(city) for city in "ABC"], rounds=1, iterations=1
    )
    for evaluation in evaluations:
        series = {
            name: values[:10]
            for name, values in evaluation.top_utility_series(top_n=10).items()
        }
        print()
        print(
            format_series(
                "rank",
                list(range(1, 11)),
                series,
                title=f"Fig. 9 (City {evaluation.city}): top-broker utilities",
            )
        )
        rows = [(name, frac) for name, frac in evaluation.improved_vs_top3.items()]
        print(format_table(["algorithm", "brokers improved vs Top-3"], rows))
        print(f"RR degrades {evaluation.rr_degraded_vs_top3:.1%} of brokers vs Top-3")

        # Paper shape: LACB improves the majority of brokers...
        assert evaluation.improved_vs_top3["LACB"] > 0.5
        # ...while RR, despite equalizing, hurts a visible minority (the
        # paper reports 25.7%; our simulated cities measure 3-10%).
        assert evaluation.rr_degraded_vs_top3 > 0.02
        # RR's distribution is the most equal (its very design).
        rr_gini = gini(evaluation.results["RR"].broker_utility)
        topk_gini = gini(evaluation.results["Top-3"].broker_utility)
        assert rr_gini < topk_gini
