"""Shared instances and cached runs for the benchmark suite.

Figures 9, 10 and 11 all read the same per-city algorithm runs, and the
four Fig. 8 columns share a base configuration — caching here keeps the
whole suite regenerable in minutes.

Scale note: paper-scale instances (|B| up to 10 000, |R| up to 200 000)
are expressible through the same configs, but the benches run scaled-down
instances (documented per bench and in EXPERIMENTS.md).  The *shape* of
each figure — orderings, trends, speedup factors — is what the suite
checks and prints; absolute numbers differ from the paper's testbed.
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments import CityEvaluation, evaluate_city
from repro.simulation import SyntheticConfig

#: Real-like city scale used by the Fig. 9-11 benches (the smallest scale
#: at which the Table IV demand concentration makes capacities bind in
#: all three cities).
CITY_SCALE = 0.05

#: Algorithms of the city comparison, in the paper's reporting order.
CITY_ALGORITHMS = ("Top-1", "Top-3", "RR", "KM", "CTop-1", "CTop-3", "AN", "LACB", "LACB-Opt")

#: Reduced Table III default used as the Fig. 8 sweep base.
SWEEP_BASE = SyntheticConfig(
    num_brokers=150,
    num_requests=4500,
    num_days=10,
    imbalance=0.015,
    seed=1,
)

#: Algorithms included in the Fig. 8 sweeps.
SWEEP_ALGORITHMS = ("Top-3", "RR", "KM", "CTop-3", "AN", "LACB", "LACB-Opt")

#: Synthetic config used for the motivation benches (Figs. 2-4).
MOTIVATION_CONFIG = SyntheticConfig(
    num_brokers=300,
    num_requests=12_000,
    num_days=12,
    imbalance=0.015,
    seed=2,
)


@lru_cache(maxsize=None)
def city_runs(city: str) -> CityEvaluation:
    """One full Fig. 9-11 evaluation per city, cached across benches."""
    return evaluate_city(city, scale=CITY_SCALE, seed=7, algorithms=CITY_ALGORITHMS)
