"""Sec. VII-D summary statistics.

Paper: (i) CTop-K > Top-K on all datasets; (ii) LACB / LACB-Opt improve
72.0%-82.2% of brokers' utilities vs Top-K; (iii) LACB-Opt is up to 284.9x
faster than the KM-based algorithms on real-world datasets without losing
utility.

Here: the same three summary rows computed over the real-like cities (the
speedup factor comes from the square-padded per-batch matching profile at
the cities' broker counts, which is where the paper's factor originates).
"""

import numpy as np

from benchmarks.common import CITY_SCALE, city_runs
from repro.experiments import format_table, matching_time_profile
from repro.simulation import REAL_CITY_SPECS


def test_summary_statistics(benchmark):
    def run():
        evaluations = [city_runs(city) for city in "ABC"]
        profiles = {
            city: matching_time_profile(
                num_brokers=max(50, round(REAL_CITY_SPECS[city].brokers * CITY_SCALE)),
                batch_size=4,
                repeats=2,
            )
            for city in "ABC"
        }
        return evaluations, profiles

    evaluations, profiles = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for evaluation in evaluations:
        utilities = {
            name: run.total_realized_utility for name, run in evaluation.results.items()
        }
        improved = evaluation.improved_vs_top3["LACB"]
        speedup = profiles[evaluation.city].speedup
        rows.append(
            (
                evaluation.city,
                utilities["CTop-3"] / utilities["Top-3"],
                improved,
                speedup,
            )
        )
    print()
    print(
        format_table(
            ["city", "CTop-3 / Top-3 utility", "brokers improved (LACB)", "LACB-Opt speedup"],
            rows,
            title="Sec. VII-D summary (paper: CTop-K > Top-K; 72.0%-82.2% improved; <= 284.9x)",
        )
    )
    for city, ctopk_ratio, improved, speedup in rows:
        assert ctopk_ratio > 1.0, city  # CTop-K > Top-K everywhere
        assert improved > 0.5, city  # majority of brokers improve
        assert speedup > 5.0, city  # KM-based algorithms clearly slower
    # Fractions in (or near) the paper's 72-82% band on average.
    mean_improved = np.mean([row[2] for row in rows])
    assert mean_improved > 0.55
