"""Extension — the Matthew effect over time (Sec. II-B's long-term claim).

The paper argues qualitatively that top-k recommendation starves neglected
brokers of "opportunities to improve their home-finding skills, which has
a negative impact on the development of the platform".  With
learning-by-doing dynamics enabled (serving requests moves a broker's
quality toward its potential), that claim becomes measurable:

- under Top-3, rookie brokers (low seniority, quality far below potential)
  receive almost no work and stay frozen below their ceiling;
- under LACB, capacity caps on the stars redirect work to rookies, whose
  quality — and hence the platform's future utility — grows.

The bench reports each policy's end-of-horizon rookie development and
workload Gini, and asserts LACB develops rookies strictly better.
"""

import numpy as np

from repro.algorithms import make_matcher
from repro.experiments import format_table, run_algorithm
from repro.experiments.metrics import gini
from repro.simulation import SyntheticConfig, generate_city

CONFIG = SyntheticConfig(
    num_brokers=150,
    num_requests=6000,
    num_days=14,
    imbalance=0.015,
    skill_growth=0.02,
    seed=9,
)


def _development(platform, name, seed):
    """Run one policy and measure skill development at horizon end."""
    matcher = make_matcher(name, platform, seed=seed)
    result = run_algorithm(platform, matcher)
    population = platform.population
    initial = population.potential_quality * (0.55 + 0.45 * population.experience)
    # base_quality reflects the run's growth until the next reset().
    closed_gap = population.base_quality - initial
    potential_gap = np.maximum(population.potential_quality - initial, 1e-12)
    development = float(closed_gap.sum() / potential_gap.sum())
    developed_brokers = int(np.sum(closed_gap > 0.1 * potential_gap))
    return {
        "utility": result.total_realized_utility,
        "development": development,
        "developed_brokers": developed_brokers,
        "workload_gini": gini(result.broker_workload),
    }


def test_extension_matthew_effect(benchmark):
    platform = generate_city(CONFIG)
    results = benchmark.pedantic(
        lambda: {name: _development(platform, name, seed=5) for name in ("Top-3", "RR", "LACB")},
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            name,
            stats["utility"],
            stats["development"],
            stats["developed_brokers"],
            stats["workload_gini"],
        )
        for name, stats in results.items()
    ]
    print()
    print(
        format_table(
            [
                "policy",
                "total utility",
                "potential realized (pool)",
                "brokers developed",
                "workload gini",
            ],
            rows,
            title="Extension: Matthew effect under learning-by-doing",
        )
    )
    # Top-3 concentrates practice on a handful of stars; LACB's capacity
    # caps spread it across a broad tier of the pool.
    assert results["LACB"]["development"] > results["Top-3"]["development"]
    assert results["LACB"]["developed_brokers"] > 2 * results["Top-3"]["developed_brokers"]
    assert results["LACB"]["workload_gini"] < results["Top-3"]["workload_gini"]
    # And unlike RR, it develops the pool without sacrificing utility.
    assert results["LACB"]["utility"] > results["Top-3"]["utility"]
    assert results["LACB"]["utility"] > results["RR"]["utility"]
