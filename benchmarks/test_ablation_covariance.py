"""Ablation — exact vs diagonal covariance in the UCB bonus (Eq. 5).

The exact ``D`` is d x d for a d-parameter network; the diagonal
approximation is what makes realistic reward models tractable.  This bench
runs both regimes on a small network in a clean bandit environment and
compares cumulative regret and per-decision cost.
"""

import time

import numpy as np

from repro.bandits import NNUCBBandit, RegretTracker
from repro.core.config import BanditConfig
from repro.experiments import format_table

TRIALS = 300


def _run(covariance, rng):
    caps = np.array([10.0, 20.0, 30.0])
    bandit = NNUCBBandit(
        3,
        BanditConfig(
            candidate_capacities=caps,
            hidden_sizes=(8,),
            covariance=covariance,
            min_arm_pulls=1,
            epsilon=0.1,
            batch_size=8,
        ),
        rng,
    )
    tracker = RegretTracker()
    tick = time.perf_counter()
    for _ in range(TRIALS):
        context = rng.normal(size=3)
        best = 20.0 if context[0] > 0 else 30.0
        rewards = np.array([0.3 - 0.02 * abs(c - best) / 10.0 for c in caps])
        capacity = bandit.estimate(context)
        arm = int(np.nonzero(caps == capacity)[0][0])
        bandit.update(context, capacity, rewards[arm] + rng.normal(0, 0.01), capacity=capacity)
        tracker.record(rewards[arm], rewards)
    elapsed = time.perf_counter() - tick
    return tracker.cumulative_regret, elapsed


def test_ablation_covariance_regimes(benchmark):
    results = benchmark.pedantic(
        lambda: {
            mode: _run(mode, np.random.default_rng(5)) for mode in ("diagonal", "full")
        },
        rounds=1,
        iterations=1,
    )
    rows = [(mode, regret, seconds) for mode, (regret, seconds) in results.items()]
    print()
    print(
        format_table(
            ["covariance", "cumulative regret", "wall seconds"],
            rows,
            title=f"Ablation: UCB covariance regime ({TRIALS} trials)",
        )
    )
    # The diagonal approximation must not blow up regret relative to the
    # exact matrix (it is the default for realistic model sizes).
    diagonal_regret = results["diagonal"][0]
    full_regret = results["full"][0]
    assert diagonal_regret < 2.5 * max(full_regret, 1e-9) + 1.0
