"""Fig. 11 — overall utility and running time on the real-like cities.

Paper: on all three cities Top-K performs worst (Top-3 slightly above
Top-1), CTop-K improves over Top-K, AN beats most baselines, and LACB /
LACB-Opt come out on top; KM-based algorithms are the slowest while
LACB-Opt stays within seconds of the recommenders.

Here: the full roster on real-like Cities A/B/C.  The bench prints the
per-city utility/time table and asserts the ordering relations the paper
calls out.
"""

from benchmarks.common import city_runs
from repro.experiments import format_table


def test_fig11_overall_comparison(benchmark):
    evaluations = benchmark.pedantic(
        lambda: [city_runs(city) for city in "ABC"], rounds=1, iterations=1
    )
    for evaluation in evaluations:
        print()
        print(
            format_table(
                ["algorithm", "total utility", "decision s"],
                evaluation.utility_table(),
                title=f"Fig. 11 (City {evaluation.city})",
            )
        )
        utilities = {
            name: run.total_realized_utility for name, run in evaluation.results.items()
        }
        # "As expected, Top-K performs poorly on all three datasets."
        lacb_best = max(utilities["LACB"], utilities["LACB-Opt"])
        assert lacb_best > utilities["Top-1"]
        assert lacb_best > utilities["Top-3"]
        # "CTop-K improves the total utility over Top-K."
        assert utilities["CTop-3"] > utilities["Top-3"]
        assert utilities["CTop-1"] > utilities["Top-1"]
        # "our LACB and LACB-Opt outperform AN" (allowing run noise: the
        # LACB family must be at least competitive and win on average).
        assert lacb_best > 0.95 * utilities["AN"]
        # The family also beats the remaining baselines outright.
        for baseline in ("RR", "KM"):
            assert lacb_best > utilities[baseline], baseline

    # Averaged over the three cities, LACB > AN strictly.
    lacb_mean = sum(
        max(
            e.results["LACB"].total_realized_utility,
            e.results["LACB-Opt"].total_realized_utility,
        )
        for e in evaluations
    )
    an_mean = sum(e.results["AN"].total_realized_utility for e in evaluations)
    assert lacb_mean > an_mean
