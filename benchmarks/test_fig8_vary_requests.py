"""Fig. 8 column 2 — total utility and running time vs. number of requests.

Paper (|R| in 10K..200K): total utility generally increases with |R|;
LACB / LACB-Opt stay on top throughout.

Here: |R| in 2250..9000 at the sweep base scale.  The bench prints both
panels and asserts the growth trend plus the winner at every point.
"""

from benchmarks.common import SWEEP_ALGORITHMS, SWEEP_BASE
from repro.experiments import format_series, sweep

VALUES = [2250, 4500, 9000]


def test_fig8_vary_num_requests(benchmark):
    result = benchmark.pedantic(
        lambda: sweep("num_requests", VALUES, SWEEP_BASE, algorithms=SWEEP_ALGORITHMS, seed=7),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_series("|R|", result.values, result.utilities, title="Fig. 8b: total utility"))
    print()
    print(format_series("|R|", result.values, result.times, title="Fig. 8b: decision time (s)"))
    # "The total utility generally increases as |R| increases" — for the
    # capacity-aware algorithms.  (The paper measures the matching's input
    # utility; our realized metric lets Top-K *lose* utility at high |R|
    # because extra demand piles onto the same overloaded stars — the
    # overload signature itself.)
    for name in ("CTop-3", "AN", "LACB", "LACB-Opt"):
        assert result.utilities[name][-1] > result.utilities[name][0], name
    for index in range(len(VALUES)):
        lacb_family = max(result.utilities["LACB"][index], result.utilities["LACB-Opt"][index])
        for baseline in ("Top-3", "RR", "KM", "CTop-3"):
            assert lacb_family > 0.93 * result.utilities[baseline][index], (baseline, index)
