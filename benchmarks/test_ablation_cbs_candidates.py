"""Ablation — CBS candidate-set size (Corollary 1 tightness).

Corollary 1 proves k = |R| candidates per request suffice for optimality.
This bench sweeps k below and above |R| on random batch instances and
measures (a) the retained fraction of the optimal matching value and
(b) the pruned-solve time: k < |R| starts losing utility, k = |R| is
exactly lossless, larger k only costs time.
"""

import time

import numpy as np

from repro.core.selection import select_candidate_brokers
from repro.experiments import format_table
from repro.matching import solve_assignment

NUM_BROKERS = 400
BATCH_SIZE = 8
TRIALS = 20


def _retention(k, rng):
    kept, durations = [], []
    for _ in range(TRIALS):
        utilities = rng.uniform(0.0, 1.0, size=(BATCH_SIZE, NUM_BROKERS))
        full = solve_assignment(utilities).total_weight
        tick = time.perf_counter()
        chosen = select_candidate_brokers(utilities, k, rng)
        pruned = solve_assignment(utilities[:, chosen]).total_weight
        durations.append(time.perf_counter() - tick)
        kept.append(pruned / full)
    return float(np.mean(kept)), float(np.mean(durations))


def test_ablation_cbs_candidate_size(benchmark):
    rng = np.random.default_rng(3)
    sizes = [1, 2, 4, BATCH_SIZE, 2 * BATCH_SIZE]
    results = benchmark.pedantic(
        lambda: {k: _retention(k, rng) for k in sizes}, rounds=1, iterations=1
    )
    rows = [(k, kept, seconds) for k, (kept, seconds) in results.items()]
    print()
    print(
        format_table(
            ["candidates per request k", "retained optimal value", "prune+solve s"],
            rows,
            title=f"Ablation: CBS candidate size (|R| = {BATCH_SIZE}, |B| = {NUM_BROKERS})",
        )
    )
    # Corollary 1: k = |R| is lossless; k > |R| adds nothing.
    assert results[BATCH_SIZE][0] >= 1.0 - 1e-9
    assert results[2 * BATCH_SIZE][0] >= 1.0 - 1e-9
    # Under-pruning loses utility monotonically as k shrinks.
    assert results[1][0] < results[4][0] <= results[BATCH_SIZE][0] + 1e-9
