"""Checkpointing overhead — whole-run wall clock with checkpoints off vs. on.

Day-boundary checkpointing (:mod:`repro.state`) sits outside the matcher
decision clock — its cost is snapshot + npz blob write + fsync'd index
append, once per day.  That cost is a standing perf budget: **a run with
``checkpoint_dir`` set must stay within 5% of the same run without it**
on the BENCH_hotpath compare scenario.  This bench runs the same
LACB-Opt day loop both ways, checks the results are bit-identical,
enforces the budget on the median off/on pair ratio of *whole-run* wall
clock (the decision clock excludes hook time by design), and emits
``BENCH_checkpoint.json`` so the trajectory of that budget is tracked
across PRs.

The per-write cost is also measured from the inside via :mod:`repro.obs`:
the hook wraps each save in a ``state.checkpoint`` span, so the payload
records exactly how much of the wall clock the durable writes consumed.
"""

import json
import os
import shutil
import statistics
import tempfile
import time

from repro.engine import MatcherSpec, PlatformSpec, RunSpec
from repro.engine.executor import execute_spec, execute_spec_observed
from repro.obs import telemetry as obs
from repro.simulation import SyntheticConfig

#: CI smoke mode: tiny instance, budget relaxed to "not pathologically
#: slower" — per-day compute shrinks with the instance but the per-write
#: fsync floor does not, so the 5% bound is only meaningful at scale.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

REPEATS = 3 if SMOKE else 5
OVERHEAD_BUDGET = 2.0 if SMOKE else 1.05

#: Near the CLI's default city scale (|B|=200), like BENCH_obs_overhead:
#: per-day assignment work must dominate, as it does in real runs — tiny
#: instances overstate the relative cost of the fixed per-day write
#: (a few ms of fsync'd npz, regardless of instance size).
CONFIG = SyntheticConfig(
    num_brokers=20 if SMOKE else 200,
    num_requests=150 if SMOKE else 5000,
    num_days=1 if SMOKE else 6,
    imbalance=0.02,
    seed=5,
)

RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_checkpoint.json")


def _spec(checkpoint_dir=None) -> RunSpec:
    return RunSpec(
        platform=PlatformSpec.synthetic(CONFIG),
        matcher=MatcherSpec("LACB-Opt", seed=7),
        checkpoint_dir=checkpoint_dir,
    )


def _timed(fn):
    tick = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - tick


def test_checkpoint_overhead(benchmark):
    obs.disable()
    root = tempfile.mkdtemp(prefix="bench-checkpoint-")
    try:
        execute_spec(_spec())  # warm the process-local platform cache
        off_runs, on_runs = [], []
        off_times, on_times = [], []
        # Interleave the two modes so drift (thermal, cache) hits both equally.
        for index in range(REPEATS):
            off, off_seconds = _timed(lambda: execute_spec(_spec()))
            off_runs.append(off)
            off_times.append(off_seconds)

            store_dir = os.path.join(root, f"repeat-{index}")
            on, on_seconds = _timed(lambda: execute_spec(_spec(store_dir)))
            on_runs.append(on)
            on_times.append(on_seconds)

        # One observed pass: repro.obs spans time each durable write from
        # the inside, giving the absolute cost alongside the ratio.
        _observed, payload = execute_spec_observed(
            _spec(os.path.join(root, "observed"))
        )
        write_seconds = [
            span["duration"]
            for span in payload["spans"]
            if span["name"] == "state.checkpoint"
        ]
        checkpoint_writes = len(write_seconds)

        # One recorded pass for the pytest-benchmark tables: checkpointing
        # on, the quantity whose regression this bench exists to catch.
        benchmark.pedantic(
            lambda: execute_spec(_spec(os.path.join(root, "recorded"))),
            rounds=1,
            iterations=1,
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)

    # Checkpointing must never change results.
    for off, on in zip(off_runs, on_runs):
        assert off.total_realized_utility == on.total_realized_utility
        assert off.total_predicted_utility == on.total_predicted_utility
        assert off.num_assigned == on.num_assigned

    off_best, on_best = min(off_times), min(on_times)
    # Each off/on pair runs back-to-back, so the per-pair ratio cancels
    # machine drift; the median then discards disturbed pairs entirely.
    pair_ratios = [on / off for off, on in zip(off_times, on_times)]
    overhead = statistics.median(pair_ratios)
    result = {
        "bench": "checkpoint_overhead",
        "smoke": SMOKE,
        "instance": {
            "num_brokers": CONFIG.num_brokers,
            "num_requests": CONFIG.num_requests,
            "num_days": CONFIG.num_days,
            "imbalance": CONFIG.imbalance,
            "algorithm": "LACB-Opt",
        },
        "repeats": REPEATS,
        "checkpoint_off_seconds": off_times,
        "checkpoint_on_seconds": on_times,
        "checkpoint_off_best": off_best,
        "checkpoint_on_best": on_best,
        "pair_ratios": pair_ratios,
        "overhead_ratio": overhead,
        "budget_ratio": OVERHEAD_BUDGET,
        "checkpoint_writes": checkpoint_writes,
        "checkpoint_write_seconds": write_seconds,
        "checkpoint_write_total": sum(write_seconds),
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2)

    print()
    print(f"whole run, checkpoints off: {off_best:.3f}s (best of {REPEATS})")
    print(f"whole run, checkpoints on:  {on_best:.3f}s ({checkpoint_writes} writes, "
          f"{sum(write_seconds) * 1e3:.1f}ms inside state.checkpoint spans)")
    print(f"overhead: {(overhead - 1) * 100:+.2f}% (budget +{(OVERHEAD_BUDGET - 1) * 100:.0f}%)")
    assert checkpoint_writes == CONFIG.num_days
    assert overhead <= OVERHEAD_BUDGET, (
        f"checkpointing overhead {(overhead - 1) * 100:.2f}% exceeds the "
        f"{(OVERHEAD_BUDGET - 1) * 100:.0f}% budget"
    )
