"""Orchestration throughput — serial vs. process-pool sweep execution.

The Fig. 8 sweeps are embarrassingly parallel across (algorithm x
instance) runs; the engine's spec executor exploits that.  This bench
runs a small Fig. 8 column grid both ways, checks bit-identical results,
and prints the wall-clock speedup so the perf trajectory starts tracking
orchestration throughput alongside matching throughput.

The recorded benchmark time is the parallel pass (the quantity future
PRs should push down); the serial baseline and speedup are printed.
"""

import os
import time

import numpy as np

from repro.engine import run_many
from repro.experiments import sweep_specs
from repro.simulation import SyntheticConfig

#: A reduced Fig. 8 "vary |B|" column: 3 instances x 4 algorithms.
GRID_BASE = SyntheticConfig(
    num_brokers=100,
    num_requests=2000,
    num_days=6,
    imbalance=0.02,
    seed=1,
)
GRID_VALUES = [75, 100, 150]
GRID_ALGORITHMS = ("Top-3", "KM", "AN", "LACB-Opt")
JOBS = min(4, os.cpu_count() or 1)


def test_engine_parallel_sweep(benchmark):
    specs = sweep_specs(
        "num_brokers", GRID_VALUES, GRID_BASE, algorithms=GRID_ALGORITHMS, seed=7
    )

    tick = time.perf_counter()
    serial = run_many(specs, jobs=1)
    serial_seconds = time.perf_counter() - tick

    tick = time.perf_counter()
    parallel = benchmark.pedantic(lambda: run_many(specs, jobs=JOBS), rounds=1, iterations=1)
    parallel_seconds = time.perf_counter() - tick

    # Parallelism is a wall-clock knob only: results stay bit-identical.
    assert [run.algorithm for run in parallel] == [spec.matcher.name for spec in specs]
    for a, b in zip(serial, parallel):
        assert a.total_realized_utility == b.total_realized_utility
        assert a.num_assigned == b.num_assigned
        np.testing.assert_array_equal(a.broker_utility, b.broker_utility)

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print()
    print(f"grid: {len(specs)} runs ({len(GRID_VALUES)} instances x {len(GRID_ALGORITHMS)} algorithms)")
    print(f"serial (jobs=1):    {serial_seconds:.2f}s")
    print(f"parallel (jobs={JOBS}): {parallel_seconds:.2f}s")
    print(f"speedup: {speedup:.2f}x")
    # Pool startup overhead can eat the gain on tiny grids / few cores;
    # require only that parallel execution is not pathologically slower.
    assert parallel_seconds < 2.0 * serial_seconds
