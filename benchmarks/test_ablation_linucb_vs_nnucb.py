"""Ablation — linear vs neural reward model (the Sec. V-C motivation).

The paper replaces LinUCB's linear reward model because the sign-up-rate /
working-status relation is non-linear (Sec. II-A).  This bench runs the
same capacity-capped assignment with capacities chosen by (a) LinUCB
(Eq. 3) and (b) NN-enhanced UCB (Eq. 5) on a synthetic environment whose
reward structure is context-dependent, and compares total utility.
"""

import numpy as np

from repro.algorithms.base import Matcher
from repro.algorithms.neural_assign import NeuralUCBAssignment
from repro.bandits import LinUCBBandit
from repro.core.config import AssignmentConfig, BanditConfig
from repro.core.types import DayOutcome
from repro.core.vfga import ValueFunctionGuidedAssigner
from repro.experiments import format_table, run_algorithm
from repro.simulation import SyntheticConfig, generate_city

CONFIG = SyntheticConfig(
    num_brokers=150, num_requests=4500, num_days=10, imbalance=0.015, seed=1
)
SEEDS = (7, 17)


class _LinUCBAssignment(Matcher):
    """AN with the neural reward model swapped for LinUCB."""

    name = "LinUCB+KM"

    def __init__(self, platform, seed):
        rng = np.random.default_rng(seed)
        self.bandit = LinUCBBandit(
            platform.context_dim, BanditConfig().candidate_capacities, alpha=0.1
        )
        self.assigner = ValueFunctionGuidedAssigner(
            platform.num_brokers,
            AssignmentConfig(use_value_function=False),
            rng,
            batches_per_day=platform.batches_per_day,
        )

    def begin_day(self, day, contexts):
        capacities = np.array([self.bandit.estimate(c) for c in contexts])
        self.assigner.begin_day(capacities)

    def assign_batch(self, day, batch, request_ids, utilities):
        return self.assigner.assign_batch(day, batch, request_ids, utilities)

    def end_day(self, day, outcome: DayOutcome, contexts):
        self.assigner.end_day()
        for broker_id in np.nonzero(outcome.workloads > 0)[0]:
            self.bandit.update(
                contexts[broker_id],
                float(outcome.workloads[broker_id]),
                float(outcome.signup_rates[broker_id]),
                capacity=float(self.assigner.capacities[broker_id]),
            )


def test_ablation_linear_vs_neural_reward_model(benchmark):
    platform = generate_city(CONFIG)

    def run():
        linear = [
            run_algorithm(platform, _LinUCBAssignment(platform, seed)).total_realized_utility
            for seed in SEEDS
        ]
        neural = [
            run_algorithm(
                platform,
                NeuralUCBAssignment(
                    platform.context_dim,
                    platform.num_brokers,
                    np.random.default_rng(seed),
                    batches_per_day=platform.batches_per_day,
                ),
            ).total_realized_utility
            for seed in SEEDS
        ]
        return np.mean(linear), np.mean(neural)

    linear, neural = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["reward model", "mean total utility"],
            [("LinUCB (Eq. 3)", linear), ("NN-enhanced UCB (Eq. 5)", neural)],
            title="Ablation: linear vs neural reward model",
        )
    )
    # The neural model captures the non-linear, context-dependent capacity
    # structure; the linear model cannot rank arms per broker.
    assert neural > linear
