"""Telemetry overhead — engine wall-clock with observability off vs. on.

The :mod:`repro.obs` instrumentation sits on the hottest paths (batch
assignment, KM solve, CBS pruning, bandit updates), so its cost is a
standing perf budget: **telemetry on must stay within 5% of telemetry
off**, and telemetry off must be free (a single global read per call
site).  This bench runs the same LACB-Opt day loop both ways, checks the
results are bit-identical, enforces the budget on min-of-repeats
decision time, and emits ``BENCH_obs_overhead.json`` so the trajectory
of that budget is tracked across PRs.

Spans are recorded at batch/day altitude (never per request-broker
pair) precisely so this bound holds; a regression here usually means an
instrumentation point slid into a per-pair loop.
"""

import json
import os
import statistics

from repro.engine import MatcherSpec, PlatformSpec, RunSpec
from repro.engine.executor import execute_spec, execute_spec_observed
from repro.obs import telemetry as obs
from repro.simulation import SyntheticConfig

#: Near the CLI's default city scale (|B|=200): per-batch KM work must
#: dominate, as it does in real runs — tiny instances overstate the
#: relative cost of the fixed per-batch instrumentation.
CONFIG = SyntheticConfig(
    num_brokers=200,
    num_requests=5000,
    num_days=6,
    imbalance=0.02,
    seed=5,
)
REPEATS = 5
OVERHEAD_BUDGET = 1.05

RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs_overhead.json")


def _spec() -> RunSpec:
    return RunSpec(
        platform=PlatformSpec.synthetic(CONFIG), matcher=MatcherSpec("LACB-Opt", seed=7)
    )


def test_obs_overhead(benchmark):
    obs.disable()
    off_runs, on_runs = [], []
    off_times, on_times = [], []
    span_count = metric_count = 0
    # Interleave the two modes so drift (thermal, cache) hits both equally.
    for _ in range(REPEATS):
        off = execute_spec(_spec())
        off_runs.append(off)
        off_times.append(off.decision_time)

        on, payload = execute_spec_observed(_spec())
        on_runs.append(on)
        on_times.append(on.decision_time)
        span_count = len(payload["spans"])
        metric_count = len(payload["registry"]["metrics"])

    # One recorded pass for the pytest-benchmark tables: telemetry on,
    # the quantity whose regression this bench exists to catch.
    benchmark.pedantic(lambda: execute_spec_observed(_spec()), rounds=1, iterations=1)

    # Observability must never change results.
    for off, on in zip(off_runs, on_runs):
        assert off.total_realized_utility == on.total_realized_utility
        assert off.num_assigned == on.num_assigned

    off_best, on_best = min(off_times), min(on_times)
    # Each off/on pair runs back-to-back, so the per-pair ratio cancels
    # machine drift; the median then discards disturbed pairs entirely.
    pair_ratios = [on / off for off, on in zip(off_times, on_times)]
    overhead = statistics.median(pair_ratios)
    payload = {
        "bench": "obs_overhead",
        "instance": {
            "num_brokers": CONFIG.num_brokers,
            "num_requests": CONFIG.num_requests,
            "num_days": CONFIG.num_days,
            "imbalance": CONFIG.imbalance,
            "algorithm": "LACB-Opt",
        },
        "repeats": REPEATS,
        "telemetry_off_seconds": off_times,
        "telemetry_on_seconds": on_times,
        "telemetry_off_best": off_best,
        "telemetry_on_best": on_best,
        "pair_ratios": pair_ratios,
        "overhead_ratio": overhead,
        "budget_ratio": OVERHEAD_BUDGET,
        "spans_recorded": span_count,
        "metrics_recorded": metric_count,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print()
    print(f"decision time, telemetry off: {off_best:.3f}s (best of {REPEATS})")
    print(f"decision time, telemetry on:  {on_best:.3f}s ({span_count} spans, "
          f"{metric_count} metric series)")
    print(f"overhead: {(overhead - 1) * 100:+.2f}% (budget +{(OVERHEAD_BUDGET - 1) * 100:.0f}%)")
    assert span_count > 0 and metric_count > 0
    assert overhead <= OVERHEAD_BUDGET, (
        f"telemetry overhead {(overhead - 1) * 100:.2f}% exceeds the "
        f"{(OVERHEAD_BUDGET - 1) * 100:.0f}% budget"
    )
