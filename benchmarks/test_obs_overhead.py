"""Telemetry overhead — engine wall-clock with observability off vs. on.

The :mod:`repro.obs` instrumentation sits on the hottest paths (batch
assignment, KM solve, CBS pruning, bandit updates), so its cost is a
standing perf budget: **telemetry on must stay within 5% of telemetry
off**, and telemetry off must be free (a single global read per call
site).  This bench runs the same LACB-Opt day loop both ways — telemetry
on *includes live streaming* (a day-boundary JSONL flush, the default
under ``--telemetry``), so the budget covers the whole v2 pipeline, not
just in-memory counters.  Results must be bit-identical both ways, the
budget is enforced on median-of-repeats per mode, and the bench emits
``BENCH_obs_overhead.json`` so ``repro-lacb baseline`` can track the
trajectory across PRs.

Median of per-mode repeats, not of pairwise ratios: a pair ratio divides
two single noisy samples, so one disturbed run poisons its pair in either
direction (an earlier artifact recorded a 0.857 "overhead" — telemetry-on
measured *faster* than off).  The per-mode median discards disturbed
repeats before the division, and the modes stay interleaved so drift
(thermal, cache) still hits both equally.

Spans are recorded at batch/day altitude (never per request-broker
pair) precisely so this bound holds; a regression here usually means an
instrumentation point slid into a per-pair loop.
"""

import json
import os
import statistics
import tempfile

from repro.engine import MatcherSpec, PlatformSpec, RunSpec
from repro.engine.executor import execute_spec, execute_spec_observed
from repro.obs import telemetry as obs
from repro.simulation import SyntheticConfig

#: CI smoke mode: tiny instance, budget relaxed to "not pathologically
#: slower" — the full-size budget only means something when per-batch KM
#: work dominates, as it does in real runs.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: Near the CLI's default city scale (|B|=200): per-batch KM work must
#: dominate — tiny instances overstate the relative cost of the fixed
#: per-batch instrumentation.
CONFIG = SyntheticConfig(
    num_brokers=20 if SMOKE else 200,
    num_requests=150 if SMOKE else 5000,
    num_days=1 if SMOKE else 6,
    imbalance=0.02,
    seed=5,
)
REPEATS = 3 if SMOKE else 5
OVERHEAD_BUDGET = 2.0 if SMOKE else 1.05

RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs_overhead.json")


def _spec() -> RunSpec:
    return RunSpec(
        platform=PlatformSpec.synthetic(CONFIG), matcher=MatcherSpec("LACB-Opt", seed=7)
    )


def test_obs_overhead(benchmark):
    obs.disable()
    off_runs, on_runs = [], []
    off_times, on_times = [], []
    span_count = metric_count = 0
    with tempfile.TemporaryDirectory(prefix="repro-obs-bench-") as stream_dir:
        # Interleave the two modes so drift (thermal, cache) hits both equally.
        for repeat in range(REPEATS):
            off = execute_spec(_spec())
            off_runs.append(off)
            off_times.append(off.decision_time)

            on, payload = execute_spec_observed(
                _spec(), stream_dir=stream_dir, segment=f"{repeat:04d}-bench"
            )
            on_runs.append(on)
            on_times.append(on.decision_time)
            span_count = len(payload["spans"])
            metric_count = len(payload["registry"]["metrics"])

        # One recorded pass for the pytest-benchmark tables: telemetry on
        # with streaming, the quantity whose regression this bench catches.
        benchmark.pedantic(
            lambda: execute_spec_observed(_spec(), stream_dir=stream_dir),
            rounds=1,
            iterations=1,
        )
        streamed = [n for n in os.listdir(stream_dir) if n.endswith(".jsonl")]
        assert len(streamed) >= REPEATS  # every observed repeat streamed

    # Observability must never change results.
    for off, on in zip(off_runs, on_runs):
        assert off.total_realized_utility == on.total_realized_utility
        assert off.num_assigned == on.num_assigned

    off_best, on_best = min(off_times), min(on_times)
    # Median per mode first, ratio second: one disturbed repeat is
    # discarded outright instead of poisoning a pairwise ratio.
    off_median, on_median = statistics.median(off_times), statistics.median(on_times)
    overhead = on_median / off_median
    payload = {
        "bench": "obs_overhead",
        "smoke": SMOKE,
        "streaming": True,
        "instance": {
            "num_brokers": CONFIG.num_brokers,
            "num_requests": CONFIG.num_requests,
            "num_days": CONFIG.num_days,
            "imbalance": CONFIG.imbalance,
            "algorithm": "LACB-Opt",
        },
        "repeats": REPEATS,
        "telemetry_off_seconds": off_times,
        "telemetry_on_seconds": on_times,
        "telemetry_off_best": off_best,
        "telemetry_on_best": on_best,
        "telemetry_off_median": off_median,
        "telemetry_on_median": on_median,
        "overhead_ratio": overhead,
        "budget_ratio": OVERHEAD_BUDGET,
        "spans_recorded": span_count,
        "metrics_recorded": metric_count,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print()
    print(f"decision time, telemetry off: {off_median:.3f}s (median of {REPEATS})")
    print(f"decision time, on+streaming:  {on_median:.3f}s ({span_count} spans, "
          f"{metric_count} metric series)")
    print(f"overhead: {(overhead - 1) * 100:+.2f}% (budget +{(OVERHEAD_BUDGET - 1) * 100:.0f}%)")
    assert span_count > 0 and metric_count > 0
    assert overhead <= OVERHEAD_BUDGET, (
        f"telemetry overhead {(overhead - 1) * 100:.2f}% exceeds the "
        f"{(OVERHEAD_BUDGET - 1) * 100:.0f}% budget"
    )
