"""Ablation — reward-network depth vs the Theorem 1 regret bound.

The paper's Theorem 1 discussion: "a deeper network may model more complex
relationships ... it may also prevent the bandit from choosing the optimal
workload capacity" — the bound ``n |C| xi^L / pi^(L-1)`` degrades with
depth unless the weights stay small.  The paper settles on a 3-layer MLP.

This bench trains bandits of depth 2-4 in a clean environment, reports
empirical cumulative regret next to each bandit's own Theorem 1 bound, and
checks (a) every bound holds, and (b) depth does not buy lower regret on
this (mildly non-linear) task — matching the paper's choice of a shallow
network.
"""

import numpy as np

from repro.bandits import NNUCBBandit, RegretTracker, theorem1_bound
from repro.core.config import BanditConfig
from repro.experiments import format_table

TRIALS = 400
DEPTHS = {2: (16,), 3: (32, 16), 4: (32, 16, 8)}


def _run(hidden_sizes, rng):
    caps = np.array([10.0, 20.0, 30.0])
    bandit = NNUCBBandit(
        3,
        BanditConfig(
            candidate_capacities=caps,
            hidden_sizes=hidden_sizes,
            min_arm_pulls=1,
            epsilon=0.1,
            batch_size=8,
        ),
        rng,
    )
    tracker = RegretTracker()
    for _ in range(TRIALS):
        context = rng.normal(size=3)
        best = 20.0 if context[0] > 0 else 30.0
        rewards = np.array([0.3 - 0.02 * abs(c - best) / 10.0 for c in caps])
        capacity = bandit.estimate(context)
        arm = int(np.nonzero(caps == capacity)[0][0])
        bandit.update(context, capacity, rewards[arm] + rng.normal(0, 0.01), capacity=capacity)
        tracker.record(rewards[arm], rewards)
    depth, num_arms, xi = bandit.theorem1_parameters()
    bound = theorem1_bound(tracker.num_trials, num_arms, depth, xi)
    return tracker.cumulative_regret, bound, xi


def test_ablation_network_depth(benchmark):
    results = benchmark.pedantic(
        lambda: {
            depth: _run(hidden, np.random.default_rng(depth))
            for depth, hidden in DEPTHS.items()
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        (depth, regret, bound, xi) for depth, (regret, bound, xi) in results.items()
    ]
    print()
    print(
        format_table(
            ["depth L", "empirical regret", "Theorem 1 bound", "max singular value xi"],
            rows,
            title=f"Ablation: network depth ({TRIALS} trials)",
        )
    )
    for depth, (regret, bound, _xi) in results.items():
        assert regret <= bound, depth
        # The bandit actually learned: regret is far below the worst case
        # of pulling the most suboptimal arm every trial (0.04 per trial).
        assert regret < 0.5 * (0.04 * TRIALS), depth
