"""Ablation — train the reward model on the chosen capacity vs workload.

The paper's text contains both conventions (Alg. 1 line 16 trains on the
chosen arm ``c_o``; Eq. 6 / Alg. 2 line 17 use the realized workload
``w_o``).  The workload carries denser information (what actually
happened) but is endogenous to demand; the chosen arm is confound-free
but coarser.  The workload variant measures slightly better end-to-end
and is the library default; this bench keeps the comparison honest.
"""

import numpy as np

from repro.algorithms.lacb import LACBMatcher
from repro.core.config import BanditConfig, LACBConfig
from repro.experiments import format_table, run_algorithm
from repro.simulation import SyntheticConfig, generate_city

CONFIG = SyntheticConfig(
    num_brokers=150, num_requests=4500, num_days=10, imbalance=0.015, seed=1
)
SEEDS = (7, 17)


def _run(platform, train_on, seed):
    config = LACBConfig(bandit=BanditConfig(train_on=train_on))
    matcher = LACBMatcher(
        platform.context_dim,
        platform.num_brokers,
        np.random.default_rng(seed),
        config,
        batches_per_day=platform.batches_per_day,
    )
    return run_algorithm(platform, matcher).total_realized_utility


def test_ablation_training_input(benchmark):
    platform = generate_city(CONFIG)
    results = benchmark.pedantic(
        lambda: {
            mode: [_run(platform, mode, seed) for seed in SEEDS]
            for mode in ("capacity", "workload")
        },
        rounds=1,
        iterations=1,
    )
    rows = [(mode, np.mean(values)) for mode, values in results.items()]
    print()
    print(
        format_table(
            ["training input", "mean total utility"],
            rows,
            title="Ablation: reward-model training input (Alg. 1 line 16 vs Eq. 6)",
        )
    )
    # Both conventions must produce a working system within a modest band
    # of each other (neither collapses the estimator).
    assert np.mean(results["capacity"]) > 0.8 * np.mean(results["workload"])
    assert np.mean(results["workload"]) > 0.8 * np.mean(results["capacity"])
