"""Fig. 8 column 3 — total utility and running time vs. covering days.

Paper (Days in 7..21): LACB keeps outperforming throughout; AN "yields
less utility in covering seven days, indicating that it may face a cold
start, while LACB consistently performs well".

Here: Days in 5..15 at the sweep base scale.  The bench prints both
panels, asserts the winner, and checks the cold-start signature: AN's
disadvantage against the LACB family shrinks as days grow.
"""

from benchmarks.common import SWEEP_ALGORITHMS, SWEEP_BASE
from repro.experiments import format_series, sweep

VALUES = [5, 10, 15]


def test_fig8_vary_days(benchmark):
    result = benchmark.pedantic(
        lambda: sweep("num_days", VALUES, SWEEP_BASE, algorithms=SWEEP_ALGORITHMS, seed=7),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_series("days", result.values, result.utilities, title="Fig. 8c: total utility"))
    print()
    print(format_series("days", result.values, result.times, title="Fig. 8c: decision time (s)"))
    for index in range(len(VALUES)):
        lacb_family = max(result.utilities["LACB"][index], result.utilities["LACB-Opt"][index])
        for baseline in ("Top-3", "RR", "KM", "CTop-3"):
            assert lacb_family > result.utilities[baseline][index], (baseline, index)
    # Cold start: learned algorithms must not *lose* ground as the horizon
    # grows (normalized by the learning-free CTop-3, since per-day demand
    # differs across horizon lengths — Table III keeps |R| fixed).  The
    # paper's sharp AN-at-7-days dip softens here because the workload-
    # trained reward model warms within days; we assert the tolerant form.
    for learner in ("AN", "LACB"):
        edge_short = result.utilities[learner][0] / result.utilities["CTop-3"][0]
        edge_long = result.utilities[learner][-1] / result.utilities["CTop-3"][-1]
        assert edge_long > 0.85 * edge_short, learner
        # And absolute utility grows with the horizon.
        assert result.utilities[learner][-1] > result.utilities[learner][0], learner
    # LACB is at least competitive with AN from the shortest horizon on.
    assert result.utilities["LACB"][0] > 0.9 * result.utilities["AN"][0]
