"""Fig. 8 column 4 — impact of the degree of imbalance sigma = |R|/|B|.

Paper (sigma in 0.005..0.05, |B| fixed, |R| adjusted): utilities trend
alike for all algorithms as sigma grows; the LACB-Opt acceleration over
LACB is largest at small sigma (641.7x at 0.005 vs 16.4x at 0.05) because
CBS prunes |B| brokers down to |R| candidates per request.

Here: the utility panel runs the full horizon per sigma; the acceleration
is measured by the per-batch matching-time profile (square-padded KM vs
CBS+KM), which is where the paper's factors come from.
"""

from dataclasses import replace

from benchmarks.common import SWEEP_ALGORITHMS, SWEEP_BASE
from repro.experiments import format_series, format_table, matching_time_profile, sweep

VALUES = [0.005, 0.015, 0.05]


def test_fig8_vary_imbalance(benchmark):
    def run():
        # The paper keeps |B| and adjusts |R| with sigma; mirror that by
        # scaling num_requests so the horizon's batch count stays fixed.
        base = SWEEP_BASE
        utility = sweep("imbalance", VALUES, base, algorithms=SWEEP_ALGORITHMS, seed=7)
        profiles = [
            matching_time_profile(
                num_brokers=400, batch_size=max(2, round(sigma * 400)), repeats=2
            )
            for sigma in VALUES
        ]
        return utility, profiles

    utility, profiles = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series("sigma", utility.values, utility.utilities, title="Fig. 8d: total utility"))
    print()
    rows = [
        (sigma, p.batch_size, p.km_square_seconds, p.cbs_km_seconds, p.speedup)
        for sigma, p in zip(VALUES, profiles)
    ]
    print(
        format_table(
            ["sigma", "|R| per batch", "KM-square s", "CBS+KM s", "speedup"],
            rows,
            title="Fig. 8d: LACB-Opt acceleration vs imbalance (|B| = 400)",
        )
    )
    # Paper shape: the more imbalanced (smaller sigma), the larger the
    # CBS speedup.
    assert profiles[0].speedup > profiles[-1].speedup
    assert profiles[0].speedup > 10.0
