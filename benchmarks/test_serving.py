"""Serving mode — adaptive micro-batching vs fixed windows, and saturation.

Two claims this bench tracks:

* **Adaptive beats fixed on tail latency at equal utility.**  On the
  bursty arrival profile, the max-wait/max-size policy closes batches
  long before the window boundary, so the p99 *queueing* wait drops by
  an order of magnitude while total realized utility stays within a
  small tolerance of the fixed-window run (micro-batches see less
  cross-request context, so a small utility give-back is expected and
  bounded).  Queue waits are **virtual-time** quantities — a pure
  function of the arrival schedule and the policy — so both gated
  metrics (``adaptive.p99_ratio``, ``adaptive.utility_ratio``) are
  deterministic and machine-independent, and the floors can be tight.
* **Saturation curve.**  Shrinking the virtual window raises the offered
  load (same measured solver seconds, less virtual time between
  arrivals); the recorded latency-vs-load curve shows end-to-end p99
  exploding as utilization approaches 1 — the real queueing behavior
  the :class:`~repro.serving.microbatch.LoadLevelingQueue` models.
  Latencies carry measured service time, so the curve is recorded for
  transparency, never gated.

Serving-vs-batch equivalence is asserted *before* any timing: the
boundary-flush run must be bit-identical to the batch day loop for every
suite algorithm (the neural VFGA-style matcher, LACB and LACB-Opt).

Emits ``BENCH_serving.json`` (tracked by ``repro-lacb baseline``).

Run modes::

    PYTHONPATH=src python -m pytest benchmarks/test_serving.py --benchmark-only
    REPRO_BENCH_SMOKE=1 PYTHONPATH=src python -m pytest benchmarks/test_serving.py --benchmark-only
"""

import json
import os

import numpy as np

from repro.algorithms import make_matcher
from repro.check.serving import check_serving_equivalence
from repro.engine.hooks import MetricsCollector
from repro.serving import MicroBatchPolicy, ServingEngine
from repro.simulation import SyntheticConfig, generate_city

#: CI smoke mode: small instances, floors relaxed.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: Algorithms proven equivalent before any timing happens.
EQUIVALENCE_ALGORITHMS = ("AN",) if SMOKE else ("AN", "LACB", "LACB-Opt")

#: The bursty-profile comparison instance.
CITY = SyntheticConfig(
    num_brokers=20 if SMOKE else 40,
    num_requests=400 if SMOKE else 2000,
    num_days=2 if SMOKE else 3,
    imbalance=0.05,
    seed=13,
)
ALGORITHM = "LACB"
WINDOW_SECONDS = 60.0
ADAPTIVE = MicroBatchPolicy(max_wait=5.0, max_size=32)

#: Deterministic floors: fixed-window p99 queue wait sits near the window
#: length while the adaptive policy's is bounded by max_wait, so the true
#: ratio is ~window/max_wait = 12x; utility gives back well under 1%.
P99_RATIO_FLOOR = 2.0 if SMOKE else 4.0
UTILITY_RATIO_FLOOR = 0.95 if SMOKE else 0.97

#: Saturation sweep: window lengths from relaxed to overloaded.  Offered
#: load = requests per virtual second; service seconds are measured, so
#: utilization climbs as the window shrinks, and the smallest windows sit
#: below the per-batch solve time — the regime where the load-leveling
#: queue backlogs and end-to-end p99 explodes.
SWEEP_WINDOWS = (
    (60.0, 0.5, 0.005, 0.0002) if SMOKE else (60.0, 1.0, 0.01, 0.0005, 0.0001)
)

RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_serving.json")


def _serve(policy, window_seconds=WINDOW_SECONDS, profile="bursty"):
    platform = generate_city(CITY)
    matcher = make_matcher(ALGORITHM, platform, seed=7)
    collector = MetricsCollector()
    engine = ServingEngine(policy=policy, window_seconds=window_seconds, profile=profile)
    report = engine.run(platform, matcher, hooks=[collector])
    return collector.result, report


def test_serving_saturation(benchmark):
    # ------------------------------------------------------------------
    # Correctness before timing: boundary-flush serving is bit-identical
    # to the batch day loop for every suite algorithm.
    # ------------------------------------------------------------------
    for algorithm in EQUIVALENCE_ALGORITHMS:
        violations = check_serving_equivalence(algorithm=algorithm, num_days=3)
        assert violations == [], f"{algorithm}: {[str(v) for v in violations]}"

    # ------------------------------------------------------------------
    # Adaptive vs fixed windows on the bursty profile (gated ratios).
    # ------------------------------------------------------------------
    fixed_result, fixed = _serve(MicroBatchPolicy.boundary(WINDOW_SECONDS))
    adaptive_result, adaptive = _serve(ADAPTIVE)

    fixed_p99 = fixed.wait_quantiles()[2]
    adaptive_p99 = adaptive.wait_quantiles()[2]
    p99_ratio = fixed_p99 / adaptive_p99
    utility_ratio = (
        adaptive_result.total_realized_utility / fixed_result.total_realized_utility
    )

    # ------------------------------------------------------------------
    # Saturation: latency vs offered load, window-length sweep (recorded).
    # ------------------------------------------------------------------
    curve = []
    for window in SWEEP_WINDOWS:
        _, report = _serve(ADAPTIVE, window_seconds=window)
        offered = report.requests / (
            CITY.num_days * report.context.batches_per_day * window
        )
        utilization = (
            float(report.service_seconds.sum()) / report.makespan
            if report.makespan > 0
            else 0.0
        )
        p50, p95, p99 = report.latency_quantiles()
        curve.append(
            {
                "window_seconds": window,
                "offered_rps": offered,
                "throughput_rps": report.throughput_rps,
                "utilization": utilization,
                "latency_p50": p50,
                "latency_p95": p95,
                "latency_p99": p99,
                "micro_batches": report.micro_batches,
            }
        )

    # One recorded pass for the pytest-benchmark tables: the adaptive
    # bursty serving run, the hot loop this bench exists to watch.
    benchmark.pedantic(lambda: _serve(ADAPTIVE), rounds=1, iterations=1)

    payload = {
        "bench": "serving",
        "smoke": SMOKE,
        "instance": {
            "num_brokers": CITY.num_brokers,
            "num_requests": CITY.num_requests,
            "num_days": CITY.num_days,
            "algorithm": ALGORITHM,
            "window_seconds": WINDOW_SECONDS,
            "max_wait": ADAPTIVE.max_wait,
            "max_size": ADAPTIVE.max_size,
        },
        "equivalence": {"algorithms": list(EQUIVALENCE_ALGORITHMS), "bit_identical": True},
        "adaptive": {
            "fixed_wait_p99": fixed_p99,
            "adaptive_wait_p99": adaptive_p99,
            "p99_ratio": p99_ratio,
            "p99_ratio_floor": P99_RATIO_FLOOR,
            "fixed_utility": fixed_result.total_realized_utility,
            "adaptive_utility": adaptive_result.total_realized_utility,
            "utility_ratio": utility_ratio,
            "utility_ratio_floor": UTILITY_RATIO_FLOOR,
            "fixed_micro_batches": fixed.micro_batches,
            "adaptive_micro_batches": adaptive.micro_batches,
            "flush_reasons": adaptive.flush_reasons,
        },
        "saturation": curve,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print()
    print(
        f"equivalence:     bit-identical serving vs batch "
        f"({', '.join(EQUIVALENCE_ALGORITHMS)})"
    )
    print(
        f"wait p99:        fixed {fixed_p99:.2f}s -> adaptive {adaptive_p99:.2f}s "
        f"({p99_ratio:.1f}x, floor {P99_RATIO_FLOOR:.1f}x)"
    )
    print(
        f"utility:         fixed {fixed_result.total_realized_utility:.2f} vs "
        f"adaptive {adaptive_result.total_realized_utility:.2f} "
        f"(ratio {utility_ratio:.4f}, floor {UTILITY_RATIO_FLOOR:.2f})"
    )
    for point in curve:
        print(
            f"saturation:      window {point['window_seconds']:>6.2f}s  "
            f"offered {point['offered_rps']:>8.2f} req/s  "
            f"util {point['utilization']:.2f}  "
            f"latency p99 {point['latency_p99']:.4f}s"
        )

    assert p99_ratio >= P99_RATIO_FLOOR, (
        f"adaptive micro-batching cuts p99 queue wait only {p99_ratio:.2f}x "
        f"(floor {P99_RATIO_FLOOR:.1f}x)"
    )
    assert utility_ratio >= UTILITY_RATIO_FLOOR, (
        f"adaptive utility ratio {utility_ratio:.4f} below floor "
        f"{UTILITY_RATIO_FLOOR:.2f}"
    )
    # Offered load rises monotonically along the sweep; utilization must
    # respond (the load-leveling queue is actually queueing).
    assert curve[-1]["utilization"] >= curve[0]["utilization"]
    assert np.isfinite([p["latency_p99"] for p in curve]).all()
