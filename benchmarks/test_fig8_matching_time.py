"""Fig. 8 running-time panels — the KM-based cubic blow-up vs LACB-Opt.

Paper: as |B| grows, KM, AN and LACB become inefficient due to their
O(|B|^3) square-padded matching while LACB-Opt's time "remains stable
since its time complexity is mainly decided by the number of requests";
LACB-Opt is 16.4x-1091.9x faster than the KM-based algorithms.

Here: per-batch matching cost at growing |B| (square-padded KM exactly as
Sec. VI-B describes vs CBS+KM of Sec. VI-C).  Sizes are capped at
|B| = 600 so the cubic solves stay benchmarkable; the measured factors
already span two orders of magnitude and grow with |B| as in the paper.
"""

from benchmarks.common import SWEEP_BASE
from repro.experiments import format_table, matching_time_profile

BROKER_VALUES = [150, 300, 600]
BATCH_SIZE = 5


def test_fig8_matching_time_scaling(benchmark):
    profiles = benchmark.pedantic(
        lambda: [
            matching_time_profile(num_brokers=b, batch_size=BATCH_SIZE, repeats=2)
            for b in BROKER_VALUES
        ],
        rounds=1,
        iterations=1,
    )
    rows = [
        (p.num_brokers, p.km_square_seconds, p.cbs_km_seconds, p.speedup) for p in profiles
    ]
    print()
    print(
        format_table(
            ["|B|", "KM-square s (KM/AN/LACB)", "CBS+KM s (LACB-Opt)", "speedup"],
            rows,
            title=f"Fig. 8 time panel: per-batch matching cost, |R| = {BATCH_SIZE}",
        )
    )
    # Cubic vs near-flat: the square solve grows much faster than CBS+KM.
    growth_square = profiles[-1].km_square_seconds / profiles[0].km_square_seconds
    growth_cbs = profiles[-1].cbs_km_seconds / max(profiles[0].cbs_km_seconds, 1e-9)
    assert growth_square > 3 * growth_cbs
    # Speedups grow with |B| and reach the paper's order of magnitude.
    assert profiles[0].speedup < profiles[-1].speedup
    assert profiles[-1].speedup > 30.0
