"""Sensitivity — the paper's Alg. 2 hyper-parameters (beta, gamma, delta).

Sec. VII-A fixes ``beta = 0.25``, ``gamma = 0.9`` and ``delta = 0.8``
without a sensitivity study.  This bench sweeps each around the paper's
value (others held at defaults) and reports total utility — establishing
that the reproduction is robust in a neighbourhood of the reported
settings rather than tuned to a knife's edge.
"""

import numpy as np

from repro.algorithms.lacb import LACBMatcher
from repro.core.config import AssignmentConfig, LACBConfig
from repro.experiments import format_table, run_algorithm
from repro.simulation import SyntheticConfig, generate_city

CONFIG = SyntheticConfig(
    num_brokers=150, num_requests=4500, num_days=10, imbalance=0.015, seed=1
)

GRID = {
    "learning_rate": (0.1, 0.25, 0.5),   # beta
    "discount": (0.8, 0.9, 0.99),        # gamma
    "threshold": (0.5, 0.8, 0.95),       # delta
}
PAPER_VALUES = {"learning_rate": 0.25, "discount": 0.9, "threshold": 0.8}


def _run(platform, parameter, value, seed):
    assignment = AssignmentConfig(**{parameter: value})
    matcher = LACBMatcher(
        platform.context_dim,
        platform.num_brokers,
        np.random.default_rng(seed),
        LACBConfig(assignment=assignment),
        batches_per_day=platform.batches_per_day,
    )
    return run_algorithm(platform, matcher).total_realized_utility


def test_sensitivity_assignment_hyperparams(benchmark):
    platform = generate_city(CONFIG)

    def run():
        table = {}
        for parameter, values in GRID.items():
            table[parameter] = {
                value: _run(platform, parameter, value, seed=7) for value in values
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for parameter, by_value in table.items():
        for value, utility in by_value.items():
            marker = " (paper)" if value == PAPER_VALUES[parameter] else ""
            rows.append((parameter, f"{value}{marker}", utility))
    print()
    print(
        format_table(
            ["parameter", "value", "total utility"],
            rows,
            title="Sensitivity: Alg. 2 hyper-parameters around the paper's settings",
        )
    )
    # Robustness: within each sweep, no setting deviates from the paper's
    # value by more than ~20% — the reported settings are not knife-edge.
    for parameter, by_value in table.items():
        reference = by_value[PAPER_VALUES[parameter]]
        for value, utility in by_value.items():
            assert utility > 0.8 * reference, (parameter, value)
            assert utility < 1.25 * reference, (parameter, value)
