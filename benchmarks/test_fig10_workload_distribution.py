"""Fig. 10 — per-broker workload distribution on the real-like cities.

Paper: Top-K loads its top brokers hardest; RR spreads demand thinnest
(but wastes top brokers' spare capacity); among capacity-aware matchers,
LACB keeps top brokers' workloads lowest — at low overload risk.

Here: the same distribution study.  The bench prints the top-broker
workload series per algorithm and asserts the ordering of the extremes
plus LACB's overload safety.
"""

import numpy as np

from benchmarks.common import city_runs
from repro.experiments import format_series


def test_fig10_workload_distribution(benchmark):
    evaluations = benchmark.pedantic(
        lambda: [city_runs(city) for city in "ABC"], rounds=1, iterations=1
    )
    for evaluation in evaluations:
        series = {
            name: values[:10]
            for name, values in evaluation.top_workload_series(top_n=10).items()
        }
        print()
        print(
            format_series(
                "rank",
                list(range(1, 11)),
                series,
                title=f"Fig. 10 (City {evaluation.city}): top-broker mean daily workloads",
            )
        )
        print(
            "overload severity (mean peak excess over latent capacity): "
            + ", ".join(f"{n}={s:.2f}" for n, s in evaluation.overload_severities.items())
        )
        top3 = evaluation.top_workload_series(top_n=5)
        # Top-K's stars carry the heaviest load; RR's the lightest.
        assert np.mean(top3["Top-3"]) > np.mean(top3["LACB"])
        assert np.mean(top3["RR"]) <= np.mean(top3["LACB"]) + 1e-9
        # LACB's brokers are pushed far less past capacity than Top-K's
        # stars (the "low risk of overload" of Fig. 10).
        assert (
            evaluation.overload_severities["LACB"]
            < evaluation.overload_severities["Top-3"]
        )
