"""Appeals — the Sec. VI-B client-dissatisfaction mechanism in action.

When a client is unhappy with the assigned broker, the platform zeroes
that pair's utility, restores the broker's workload and re-queues the
request in the next interval.  This example runs the same city with
appeals disabled and enabled and shows how matchers that pick poor fits
(RR) churn far more clients than fit-aware assignment (LACB-Opt).

Run with::

    python examples/appeals_workflow.py
"""

from repro import SyntheticConfig, generate_city, make_matcher, run_algorithm
from repro.experiments import format_table


def main() -> None:
    rows = []
    for appeal_rate in (0.0, 0.4):
        config = SyntheticConfig(
            num_brokers=120,
            num_requests=4800,
            num_days=8,
            imbalance=0.02,
            appeal_rate=appeal_rate,
            seed=33,
        )
        platform = generate_city(config)
        for name in ("RR", "LACB-Opt"):
            result = run_algorithm(platform, make_matcher(name, platform, seed=9))
            # Appealed requests are re-queued, so the assigned count exceeds
            # the stream size; the excess measures client churn.
            churn = result.num_assigned - len(platform.stream)
            rows.append((appeal_rate, name, result.total_realized_utility, churn))

    print(
        format_table(
            ["appeal rate", "algorithm", "realized utility", "appealed requests"],
            rows,
            title="Client appeals: fit-aware assignment churns fewer clients",
        )
    )
    print(
        "\nWith appeals on, RR's random broker picks trigger many re-assignments, "
        "while LACB-Opt's fit-aware matches rarely get appealed."
    )


if __name__ == "__main__":
    main()
