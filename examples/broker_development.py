"""Broker development — the Matthew effect under learning-by-doing.

Sec. II-B of the paper warns that top-k recommendation leaves neglected
brokers "few opportunities to improve their home-finding skills".  With
the simulator's learning-by-doing dynamics on (serving requests moves a
broker's quality toward its potential), this example compares how much of
the pool's latent potential each matching policy actually develops over a
horizon — and at what utility cost.

Run with::

    python examples/broker_development.py
"""

import numpy as np

from repro import SyntheticConfig, generate_city, make_matcher, run_algorithm
from repro.experiments import format_table
from repro.experiments.metrics import gini


def main() -> None:
    config = SyntheticConfig(
        num_brokers=150,
        num_requests=6000,
        num_days=14,
        imbalance=0.015,
        skill_growth=0.02,
        seed=9,
    )
    platform = generate_city(config)
    population = platform.population
    initial = population.potential_quality * (0.55 + 0.45 * population.experience)

    rows = []
    for name in ("Top-1", "Top-3", "RR", "CTop-3", "LACB-Opt"):
        result = run_algorithm(platform, make_matcher(name, platform, seed=5))
        closed = population.base_quality - initial
        potential = np.maximum(population.potential_quality - initial, 1e-12)
        rows.append(
            (
                name,
                result.total_realized_utility,
                float(closed.sum() / potential.sum()),
                int(np.sum(closed > 0.1 * potential)),
                gini(result.broker_workload),
            )
        )
    print(
        format_table(
            [
                "policy",
                "total utility",
                "pool potential realized",
                "brokers developed",
                "workload gini",
            ],
            rows,
            title="Who develops the broker pool? (14 days, learning-by-doing on)",
        )
    )
    print(
        "\nTop-k concentrates practice on one or two stars (Matthew effect); "
        "RR develops everyone but burns utility; capacity-aware assignment "
        "develops a broad tier while *earning* the most."
    )


if __name__ == "__main__":
    main()
