"""Learned utility — replace the deployed utility oracle with a GBDT.

Def. 2 notes that the matching utility ``u_{r,b}`` "can be learned from
historical assignments using models such as XGBoost".  This example closes
that loop end-to-end:

1. run one "historical" period under the incumbent Top-3 recommendation,
   logging every served (request, broker) pair with its realized outcome;
2. fit the from-scratch gradient-boosted-trees utility model on that log;
3. run LACB-Opt twice on a fresh evaluation period — once with the
   platform's deployed utility predictor, once with the learned GBDT —
   and compare realized utility.

Run with::

    python examples/learned_utility.py
"""

import numpy as np

from repro import SyntheticConfig, generate_city, make_matcher, run_algorithm
from repro.boosting import UtilityModel
from repro.core.types import AssignedPair, Assignment
from repro.experiments import format_table
from repro.simulation.utility import ground_truth_affinity


def collect_history(platform, rng):
    """One period of Top-3 service, logged pair by pair."""
    matcher = make_matcher("Top-3", platform, seed=1)
    requests, brokers, outcomes = [], [], []
    platform.reset()
    for day in range(platform.num_days):
        contexts = platform.start_day(day)
        matcher.begin_day(day, contexts)
        for batch in range(platform.batches_per_day):
            batch_requests = platform.batch_requests(day, batch)
            utilities = platform.predicted_utilities(batch_requests)
            assignment = matcher.assign_batch(day, batch, batch_requests, utilities)
            platform.submit_assignment(assignment)
            affinity = ground_truth_affinity(
                platform.population, platform.stream,
                np.array([pair.request_id for pair in assignment.pairs]),
            )
            for row, pair in enumerate(assignment.pairs):
                requests.append(pair.request_id)
                brokers.append(pair.broker_id)
                # The platform observes a noisy per-pair conversion signal.
                outcomes.append(
                    float(np.clip(affinity[row, pair.broker_id] + rng.normal(0, 0.02), 0, 1))
                )
        outcome = platform.finish_day()
        matcher.end_day(day, outcome, contexts)
    return np.array(requests), np.array(brokers), np.array(outcomes)


class LearnedUtilityPlatform:
    """Platform wrapper answering utility queries from the learned model."""

    def __init__(self, platform, model):
        self._platform = platform
        self._model = model

    def __getattr__(self, name):
        return getattr(self._platform, name)

    def predicted_utilities(self, request_indices):
        return self._model.predict_matrix(
            self._platform.population, self._platform.stream, request_indices
        )


def main() -> None:
    rng = np.random.default_rng(0)
    config = SyntheticConfig(
        num_brokers=120, num_requests=4800, num_days=8, imbalance=0.02, seed=21
    )
    platform = generate_city(config)

    print("Collecting one period of historical Top-3 assignments...")
    requests, brokers, outcomes = collect_history(platform, rng)
    print(f"  {len(requests)} served pairs logged")

    print("Fitting the gradient-boosted utility model...")
    model = UtilityModel(num_rounds=60, rng=rng).fit_from_history(
        platform.population, platform.stream, requests, brokers, outcomes
    )

    print("Evaluating LACB-Opt with both utility sources...\n")
    deployed = run_algorithm(platform, make_matcher("LACB-Opt", platform, seed=5))
    learned_platform = LearnedUtilityPlatform(platform, model)
    learned = run_algorithm(learned_platform, make_matcher("LACB-Opt", platform, seed=5))

    print(
        format_table(
            ["utility source", "realized total utility"],
            [
                ("deployed predictor (oracle + noise)", deployed.total_realized_utility),
                ("learned GBDT (from history)", learned.total_realized_utility),
            ],
            title="LACB-Opt under different utility models",
        )
    )
    ratio = learned.total_realized_utility / deployed.total_realized_utility
    print(f"\nThe learned utility model retains {ratio:.0%} of the deployed model's value.")


if __name__ == "__main__":
    main()
