"""Quickstart — run LACB against the status quo on a synthetic city.

Generates a small synthetic real-estate market, runs the incumbent Top-3
recommendation and the paper's LACB-Opt on the *identical* instance, and
prints the realized-utility comparison together with the overload picture.

Run with::

    python examples/quickstart.py
"""

from repro import SyntheticConfig, generate_city, make_matcher, run_algorithm
from repro.experiments import format_table, fraction_improved, overload_rate
from repro.experiments.metrics import top_broker_load_ratio


def main() -> None:
    config = SyntheticConfig(
        num_brokers=150,
        num_requests=6000,
        num_days=10,
        imbalance=0.015,
        seed=42,
    )
    platform = generate_city(config)
    print(
        f"Synthetic city: {platform.num_brokers} brokers, "
        f"{len(platform.stream)} requests over {platform.num_days} days "
        f"({platform.batches_per_day} batches/day)\n"
    )

    top3 = run_algorithm(platform, make_matcher("Top-3", platform, seed=7))
    lacb = run_algorithm(platform, make_matcher("LACB-Opt", platform, seed=7))

    rows = [
        (
            result.algorithm,
            result.total_realized_utility,
            top_broker_load_ratio(result),
            overload_rate(result, platform.latent_capacities),
            result.decision_time,
        )
        for result in (top3, lacb)
    ]
    print(
        format_table(
            ["algorithm", "realized utility", "top-1 load ratio", "overload rate", "decision s"],
            rows,
            title="Recommendation vs capacity-aware assignment",
        )
    )
    gain = lacb.total_realized_utility / top3.total_realized_utility - 1.0
    improved = fraction_improved(lacb, top3)
    print(
        f"\nLACB-Opt realizes {gain:+.0%} total utility vs Top-3 recommendation "
        f"and improves {improved:.0%} of brokers individually."
    )


if __name__ == "__main__":
    main()
