"""City benchmark — the full Fig. 11-style comparison on a real-like city.

Runs the complete algorithm roster on a scaled-down real-like City A
(Table IV statistics) and prints the overall utility/time table, the
Sec. VII-D improvement fractions and the top-broker workload picture.

Run with::

    python examples/city_benchmark.py [A|B|C]
"""

import sys

from repro.experiments import evaluate_city, format_series, format_table


def main() -> None:
    city = sys.argv[1] if len(sys.argv) > 1 else "A"
    print(f"Evaluating real-like City {city} (scale 0.03) — this takes a minute...\n")
    evaluation = evaluate_city(city, scale=0.03, seed=7)

    print(
        format_table(
            ["algorithm", "total utility", "decision s"],
            evaluation.utility_table(),
            title=f"Overall comparison (Fig. 11, City {city})",
        )
    )
    print()
    print(
        format_table(
            ["algorithm", "brokers improved vs Top-3"],
            sorted(evaluation.improved_vs_top3.items()),
            title="Per-broker improvement (Sec. VII-D)",
        )
    )
    print(f"RR degrades {evaluation.rr_degraded_vs_top3:.1%} of brokers vs Top-3")
    print()
    workloads = {
        name: values for name, values in evaluation.top_workload_series(top_n=8).items()
        if name in ("Top-3", "RR", "CTop-3", "LACB")
    }
    print(
        format_series(
            "rank",
            list(range(1, 9)),
            workloads,
            title="Top-broker mean daily workloads (Fig. 10)",
        )
    )


if __name__ == "__main__":
    main()
