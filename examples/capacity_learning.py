"""Capacity learning — watch the contextual bandit discover broker limits.

Runs LACB on a synthetic city and, day by day, reports how the estimated
capacities of the busiest brokers converge toward their latent
ground-truth capacities (which the algorithm never sees), plus the
cumulative regret of the capacity estimator against an oracle that knows
every broker's response curve.

Run with::

    python examples/capacity_learning.py
"""

import numpy as np

from repro import SyntheticConfig, generate_city, make_matcher
from repro.experiments import format_table


def main() -> None:
    config = SyntheticConfig(
        num_brokers=150,
        num_requests=6000,
        num_days=14,
        imbalance=0.015,
        seed=11,
    )
    platform = generate_city(config)
    matcher = make_matcher("LACB", platform, seed=3)
    latent = platform.latent_capacities
    busiest = np.argsort(latent)[-20:]

    print(
        f"Tracking the top-20 brokers by latent capacity "
        f"(ground-truth mean {latent[busiest].mean():.1f} requests/day)\n"
    )
    rows = []
    platform.reset()
    for day in range(platform.num_days):
        contexts = platform.start_day(day)
        matcher.begin_day(day, contexts)
        estimated = matcher.estimated_capacities
        for batch in range(platform.batches_per_day):
            requests = platform.batch_requests(day, batch)
            utilities = platform.predicted_utilities(requests)
            platform.submit_assignment(matcher.assign_batch(day, batch, requests, utilities))
        outcome = platform.finish_day()
        matcher.end_day(day, outcome, contexts)

        error = float(np.mean(np.abs(estimated[busiest] - latent[busiest])))
        rows.append(
            (
                day,
                float(estimated[busiest].mean()),
                error,
                int(outcome.workloads.max()),
                outcome.total_realized_utility,
            )
        )
    print(
        format_table(
            [
                "day",
                "mean estimated capacity (top-20)",
                "mean abs error vs latent",
                "max workload",
                "realized utility",
            ],
            rows,
            title="Online capacity estimation (LACB)",
        )
    )
    first, last = rows[1][2], rows[-1][2]
    print(
        f"\nEstimation error went from {first:.1f} (day 1) to {last:.1f} "
        f"(day {rows[-1][0]}) requests/day."
    )
    if hasattr(matcher.estimator, "num_personalized"):
        print(f"Brokers with personalized heads: {matcher.estimator.num_personalized()}")


if __name__ == "__main__":
    main()
