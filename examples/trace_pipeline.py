"""Trace pipeline — files in, matcher out (the production integration path).

A platform adopting this library starts from *exports*: broker rosters,
request logs and historical assignment traces.  This example walks that
exact path end-to-end on simulated data:

1. export a city and one period of Top-3 history to CSV
   (``repro.simulation.export``);
2. load the assignment trace back from disk;
3. train the gradient-boosted utility model on the loaded trace, using
   realized per-broker outcomes as labels;
4. run LACB-Opt with the file-trained utility model and compare against
   the incumbent.

Run with::

    python examples/trace_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import SyntheticConfig, generate_city, make_matcher, run_algorithm
from repro.boosting import UtilityModel
from repro.experiments import format_table
from repro.simulation.export import export_assignments, export_city, load_assignments
from repro.simulation.utility import ground_truth_affinity


def main() -> None:
    rng = np.random.default_rng(1)
    config = SyntheticConfig(
        num_brokers=100, num_requests=4000, num_days=8, imbalance=0.02, seed=13
    )
    platform = generate_city(config)

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        tables = export_city(platform, directory)
        print("exported city tables:")
        for name, path in tables.items():
            print(f"  {name}: {path.name} ({path.stat().st_size} bytes)")

        history = run_algorithm(
            platform, make_matcher("Top-3", platform, seed=1), store_assignments=True
        )
        trace_path = export_assignments(history.assignments, directory / "assignments.csv")
        print(f"  assignments: {trace_path.name} ({trace_path.stat().st_size} bytes)")

        requests, brokers, _logged_utilities = load_assignments(trace_path)
        print(f"\nloaded {requests.size} historical pairs from disk")

        # Label each served pair with its (noisily observed) conversion.
        affinity = ground_truth_affinity(platform.population, platform.stream, requests)
        outcomes = np.clip(
            affinity[np.arange(requests.size), brokers] + rng.normal(0, 0.02, requests.size),
            0.0,
            1.0,
        )
        model = UtilityModel(num_rounds=50, rng=rng).fit_from_history(
            platform.population, platform.stream, requests, brokers, outcomes
        )
        print("utility model trained from the CSV trace")

    class FilePlatform:
        """Answer utility queries from the file-trained model."""

        def __init__(self, inner, model):
            self._inner, self._model = inner, model

        def __getattr__(self, name):
            return getattr(self._inner, name)

        def predicted_utilities(self, request_indices):
            return self._model.predict_matrix(
                self._inner.population, self._inner.stream, request_indices
            )

    incumbent = run_algorithm(platform, make_matcher("Top-3", platform, seed=5))
    lacb = run_algorithm(
        FilePlatform(platform, model), make_matcher("LACB-Opt", platform, seed=5)
    )
    print()
    print(
        format_table(
            ["pipeline", "realized total utility"],
            [
                ("incumbent Top-3 (deployed utilities)", incumbent.total_realized_utility),
                ("LACB-Opt on file-trained utilities", lacb.total_realized_utility),
            ],
            title="From CSV trace to capacity-aware assignment",
        )
    )


if __name__ == "__main__":
    main()
