"""Gradient-boosted regression trees (the paper's "XGBoost" role).

Def. 2 of the paper notes that the matching utility ``u_{r,b}`` "can be
learned from historical assignments using models such as XGBoost".  This
package implements that learner from scratch:

- :class:`~repro.boosting.tree.RegressionTree` — CART-style regression
  trees with variance-reduction splits;
- :class:`~repro.boosting.gbdt.GradientBoostedTrees` — least-squares
  gradient boosting with shrinkage and subsampling;
- :class:`~repro.boosting.utility_model.UtilityModel` — the end-to-end
  utility learner: builds pair features from broker/request attributes,
  fits on historical assignment outcomes, predicts utility matrices;
- :mod:`~repro.boosting.cache` — a cache-aside layer memoizing
  prediction rows by request-feature digest, with explicit invalidation
  on refits and learning updates.
"""

from repro.boosting.cache import CachedUtilityModel, UtilityPredictionCache
from repro.boosting.gbdt import GradientBoostedTrees
from repro.boosting.tree import RegressionTree
from repro.boosting.utility_model import UtilityModel, pair_features

__all__ = [
    "GradientBoostedTrees",
    "RegressionTree",
    "UtilityModel",
    "pair_features",
    "CachedUtilityModel",
    "UtilityPredictionCache",
]
