"""Least-squares gradient boosting over regression trees."""

from __future__ import annotations

import numpy as np

from repro.boosting.tree import RegressionTree
from repro.state.protocol import expect, rng_state, set_rng_state, versioned


class GradientBoostedTrees:
    """Gradient boosting with shrinkage and row subsampling.

    For squared loss the negative gradient is the residual, so each round
    fits a small tree to the current residuals and the ensemble adds it
    with a shrinkage factor — the core of the XGBoost-style learner the
    paper assumes for ``u_{r,b}``.

    Args:
        num_rounds: number of boosting rounds (trees).
        learning_rate: shrinkage factor on each tree's contribution.
        max_depth: depth of each tree.
        subsample: row-subsampling fraction per round.
        min_samples_leaf: minimum samples per leaf.
        rng: subsampling randomness (required when ``subsample < 1``).
    """

    def __init__(
        self,
        num_rounds: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        subsample: float = 1.0,
        min_samples_leaf: int = 5,
        rng: np.random.Generator | None = None,
    ) -> None:
        if num_rounds <= 0:
            raise ValueError(f"num_rounds must be positive, got {num_rounds}")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        if subsample < 1.0 and rng is None:
            raise ValueError("subsample < 1 requires an rng")
        self.num_rounds = num_rounds
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.rng = rng
        self._base: float = 0.0
        self._trees: list[RegressionTree] = []
        self.train_losses: list[float] = []

    @property
    def num_trees(self) -> int:
        """Number of fitted boosting rounds."""
        return len(self._trees)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostedTrees":
        """Fit the ensemble; records the per-round training MSE."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2 or features.shape[0] != targets.shape[0]:
            raise ValueError(
                f"inconsistent shapes: features {features.shape}, targets {targets.shape}"
            )
        self._trees = []
        self.train_losses = []
        self._base = float(targets.mean())
        predictions = np.full(targets.shape[0], self._base)
        for _ in range(self.num_rounds):
            residuals = targets - predictions
            if self.subsample < 1.0:
                size = max(1, int(self.subsample * targets.shape[0]))
                rows = self.rng.choice(targets.shape[0], size=size, replace=False)
            else:
                rows = np.arange(targets.shape[0])
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.fit(features[rows], residuals[rows])
            self._trees.append(tree)
            predictions += self.learning_rate * tree.predict(features)
            self.train_losses.append(float(np.mean((targets - predictions) ** 2)))
        return self

    # ------------------------------------------------------------------
    # Durable state (repro.state contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deep snapshot: base value, every tree, losses, subsample RNG."""
        return versioned(
            "boosting.gbdt",
            {
                "base": float(self._base),
                "trees": [tree.snapshot() for tree in self._trees],
                "train_losses": [float(loss) for loss in self.train_losses],
                "rng": None if self.rng is None else rng_state(self.rng),
            },
        )

    def restore(self, state) -> None:
        """Reinstall a :meth:`snapshot` (trees are rebuilt in order)."""
        payload = expect(state, "boosting.gbdt")
        self._base = float(payload["base"])
        trees = []
        for tree_state in payload["trees"]:
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.restore(tree_state)
            trees.append(tree)
        self._trees = trees
        self.train_losses = [float(loss) for loss in payload["train_losses"]]
        if self.rng is not None and payload["rng"] is not None:
            set_rng_state(self.rng, payload["rng"])

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Ensemble prediction for a ``(n, d)`` design matrix."""
        if not self._trees:
            raise RuntimeError("predict() called before fit()")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        out = np.full(features.shape[0], self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(features)
        return out
