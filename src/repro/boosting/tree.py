"""CART-style regression trees (the base learner of the GBDT)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.state.protocol import expect, versioned


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int
    threshold: float
    value: float
    left: int
    right: int


class RegressionTree:
    """Binary regression tree grown by variance-reduction splits.

    Split points are searched over feature quantiles (histogram-style, as
    XGBoost's approximate algorithm does) rather than every distinct value,
    keeping fitting fast on wide pair-feature matrices.

    Args:
        max_depth: maximum tree depth.
        min_samples_leaf: minimum samples on each side of a split.
        num_thresholds: candidate quantile thresholds per feature.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        num_thresholds: int = 16,
    ) -> None:
        if max_depth <= 0 or min_samples_leaf <= 0 or num_thresholds <= 0:
            raise ValueError("max_depth, min_samples_leaf and num_thresholds must be positive")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.num_thresholds = num_thresholds
        self._nodes: list[_Node] = []

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the fitted tree."""
        return len(self._nodes)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RegressionTree":
        """Grow the tree on a ``(n, d)`` design matrix."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2 or features.shape[0] != targets.shape[0]:
            raise ValueError(
                f"inconsistent shapes: features {features.shape}, targets {targets.shape}"
            )
        if features.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self._nodes = []
        self._grow(features, targets, np.arange(features.shape[0]), depth=0)
        return self

    def _grow(self, features: np.ndarray, targets: np.ndarray, rows: np.ndarray, depth: int) -> int:
        node_index = len(self._nodes)
        value = float(targets[rows].mean())
        self._nodes.append(_Node(feature=-1, threshold=0.0, value=value, left=-1, right=-1))
        if depth >= self.max_depth or rows.size < 2 * self.min_samples_leaf:
            return node_index
        split = self._best_split(features, targets, rows)
        if split is None:
            return node_index
        feature, threshold = split
        mask = features[rows, feature] <= threshold
        left = self._grow(features, targets, rows[mask], depth + 1)
        right = self._grow(features, targets, rows[~mask], depth + 1)
        node = self._nodes[node_index]
        node.feature = feature
        node.threshold = threshold
        node.left = left
        node.right = right
        return node_index

    def _best_split(
        self, features: np.ndarray, targets: np.ndarray, rows: np.ndarray
    ) -> tuple[int, float] | None:
        """Variance-reduction-optimal (feature, threshold) or ``None``."""
        y = targets[rows]
        base_sse = float(np.sum((y - y.mean()) ** 2))
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        quantiles = np.linspace(0.05, 0.95, self.num_thresholds)
        for feature in range(features.shape[1]):
            column = features[rows, feature]
            thresholds = np.unique(np.quantile(column, quantiles))
            for threshold in thresholds:
                mask = column <= threshold
                n_left = int(mask.sum())
                if n_left < self.min_samples_leaf or rows.size - n_left < self.min_samples_leaf:
                    continue
                left, right = y[mask], y[~mask]
                sse = float(np.sum((left - left.mean()) ** 2) + np.sum((right - right.mean()) ** 2))
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold))
        return best

    # ------------------------------------------------------------------
    # Durable state (repro.state contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Fitted structure as parallel node arrays (compact and exact)."""
        return versioned(
            "boosting.tree",
            {
                "feature": np.array([n.feature for n in self._nodes], dtype=int),
                "threshold": np.array([n.threshold for n in self._nodes], dtype=float),
                "value": np.array([n.value for n in self._nodes], dtype=float),
                "left": np.array([n.left for n in self._nodes], dtype=int),
                "right": np.array([n.right for n in self._nodes], dtype=int),
            },
        )

    def restore(self, state) -> None:
        """Reinstall a fitted structure from a :meth:`snapshot`."""
        payload = expect(state, "boosting.tree")
        feature = np.asarray(payload["feature"], dtype=int)
        threshold = np.asarray(payload["threshold"], dtype=float)
        value = np.asarray(payload["value"], dtype=float)
        left = np.asarray(payload["left"], dtype=int)
        right = np.asarray(payload["right"], dtype=int)
        self._nodes = [
            _Node(
                feature=int(feature[i]),
                threshold=float(threshold[i]),
                value=float(value[i]),
                left=int(left[i]),
                right=int(right[i]),
            )
            for i in range(feature.size)
        ]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict a ``(n,)`` vector for a ``(n, d)`` design matrix."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if not self._nodes:
            raise RuntimeError("predict() called before fit()")
        out = np.empty(features.shape[0])
        # Vectorized routing: keep an index set per frontier node.
        frontier = [(0, np.arange(features.shape[0]))]
        while frontier:
            node_index, rows = frontier.pop()
            node = self._nodes[node_index]
            if node.feature < 0:
                out[rows] = node.value
                continue
            mask = features[rows, node.feature] <= node.threshold
            if mask.any():
                frontier.append((node.left, rows[mask]))
            if (~mask).any():
                frontier.append((node.right, rows[~mask]))
        return out
