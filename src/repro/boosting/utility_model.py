"""Learned matching-utility model (Def. 2's "learned ... using XGBoost").

The platform's deployed utility function scores (request, broker) pairs.
This module learns that function from *historical assignment outcomes*:
pairs that were served in the past together with their realized
per-request conversion, exactly the supervision an operating platform
accumulates.  The learned model can then replace the oracle-with-noise
predictor inside :class:`repro.simulation.platform.RealEstatePlatform`
(see ``examples/learned_utility.py``).
"""

from __future__ import annotations

import numpy as np

from repro.boosting.gbdt import GradientBoostedTrees
from repro.simulation.brokers import BrokerPopulation
from repro.simulation.requests import RequestStream
from repro.state.protocol import expect, versioned


def pair_features(
    population: BrokerPopulation,
    stream: RequestStream,
    request_indices: np.ndarray,
    broker_indices: np.ndarray,
) -> np.ndarray:
    """Feature rows for (request, broker) pairs.

    Combines the interaction terms the platform can compute (district
    preference fit, house-type fit, price/area gaps) with broker-side
    covariates (response rate, preference sharpness).

    Args:
        population: the broker pool.
        stream: the request stream.
        request_indices / broker_indices: equal-length index arrays; row
            ``i`` describes the pair ``(request_indices[i],
            broker_indices[i])``.

    Returns:
        A ``(n, 8)`` feature matrix.
    """
    request_indices = np.asarray(request_indices, dtype=int)
    broker_indices = np.asarray(broker_indices, dtype=int)
    if request_indices.shape != broker_indices.shape:
        raise ValueError("request and broker index arrays must have equal length")
    district = stream.district[request_indices]
    house_type = stream.house_type[request_indices]
    district_fit = population.district_pref[broker_indices, district]
    district_fit = district_fit / np.maximum(
        population.district_pref[broker_indices].max(axis=1), 1e-12
    )
    type_fit = population.type_pref[broker_indices, house_type]
    type_fit = type_fit / np.maximum(
        population.type_pref[broker_indices].max(axis=1), 1e-12
    )
    price_gap = np.abs(stream.price[request_indices] - population.price_pref[broker_indices])
    area_gap = np.abs(stream.area[request_indices] - population.area_pref[broker_indices])
    return np.column_stack(
        [
            district_fit,
            type_fit,
            price_gap,
            area_gap,
            population.response_rate[broker_indices],
            stream.urgency[request_indices],
            stream.price[request_indices],
            stream.value_multiplier[request_indices],
        ]
    )


class UtilityModel:
    """GBDT regressor from pair features to conversion propensity.

    Args:
        num_rounds / learning_rate / max_depth: boosting hyper-parameters.
        rng: subsampling randomness.
    """

    def __init__(
        self,
        num_rounds: int = 60,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._gbdt = GradientBoostedTrees(
            num_rounds=num_rounds,
            learning_rate=learning_rate,
            max_depth=max_depth,
            subsample=0.8 if rng is not None else 1.0,
            rng=rng,
        )
        self._fitted = False

    def fit_from_history(
        self,
        population: BrokerPopulation,
        stream: RequestStream,
        request_indices: np.ndarray,
        broker_indices: np.ndarray,
        outcomes: np.ndarray,
    ) -> "UtilityModel":
        """Fit on historical served pairs and their realized conversions."""
        features = pair_features(population, stream, request_indices, broker_indices)
        self._gbdt.fit(features, np.asarray(outcomes, dtype=float))
        self._fitted = True
        return self

    def predict_matrix(
        self,
        population: BrokerPopulation,
        stream: RequestStream,
        request_indices: np.ndarray,
    ) -> np.ndarray:
        """Utility matrix ``u_{r,b}`` for a batch of requests.

        Returns:
            ``(n_requests, |B|)`` clipped to ``[1e-6, 1]``.
        """
        if not self._fitted:
            raise RuntimeError("predict_matrix() called before fit_from_history()")
        request_indices = np.asarray(request_indices, dtype=int)
        n = request_indices.size
        num_brokers = len(population)
        grid_requests = np.repeat(request_indices, num_brokers)
        grid_brokers = np.tile(np.arange(num_brokers), n)
        features = pair_features(population, stream, grid_requests, grid_brokers)
        predictions = self._gbdt.predict(features).reshape(n, num_brokers)
        return np.clip(predictions, 1e-6, 1.0)

    def snapshot(self) -> dict:
        """Deep snapshot of the fitted ensemble."""
        return versioned(
            "boosting.utility_model",
            {"gbdt": self._gbdt.snapshot(), "fitted": bool(self._fitted)},
        )

    def restore(self, state) -> None:
        """Reinstall a fitted ensemble from a :meth:`snapshot`."""
        payload = expect(state, "boosting.utility_model")
        self._gbdt.restore(payload["gbdt"])
        self._fitted = bool(payload["fitted"])
