"""Cache-aside layer for GBDT utility predictions.

The deployed utility model answers one matrix query per batch, and the
rows it computes are *pure*: a request's prediction row depends only on
the request's features, the (static) broker attributes and the fitted
ensemble.  Re-queried requests — appealed requests re-entering later
batches, repeated evaluation sweeps over the same stream — therefore
recompute identical rows.  This module adds the classic cache-aside
pattern around :class:`repro.boosting.utility_model.UtilityModel`:

* :class:`UtilityPredictionCache` — a bounded LRU of prediction rows
  keyed by a request-feature digest (so the key is the *content* of the
  request, per the ISSUE's ``request-feature hash × broker id`` scheme:
  one stored row covers all broker columns of one request), with
  explicit generation-bumping invalidation;
* :class:`CachedUtilityModel` — a drop-in wrapper with the exact
  ``fit_from_history`` / ``predict_matrix`` surface, batching all cache
  misses into a single model call.

Soundness contract
------------------

A cached row is valid for as long as the function it memoizes is
unchanged.  Three events can change it, and each maps to an explicit
invalidation:

1. **model refit** — :meth:`CachedUtilityModel.fit_from_history`
   invalidates before returning;
2. **learning updates** — matchers holding a cache
   (``AssignmentConfig(utility_cache=True)``) call
   :meth:`UtilityPredictionCache.notify_learning_update` after each
   day's value-function/bandit updates.  With this repo's platforms the
   GBDT does not actually depend on that learned state, so the call is
   conservative — but it is the contract that keeps the cache safe for
   utility sources that *do* retrain online;
3. **population change** — the digest covers request features and the
   broker-pool size, not broker attributes; callers swapping the broker
   population under one cache must :meth:`~UtilityPredictionCache.
   invalidate` explicitly.

Because hits return bit-identical rows, enabling the cache never changes
a seeded run's results — only its environment-side wall-clock.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.boosting.utility_model import UtilityModel
from repro.obs import telemetry as obs
from repro.simulation.brokers import BrokerPopulation
from repro.simulation.requests import RequestStream
from repro.state.protocol import expect, versioned

#: Snapshot envelope kind (see ``docs/state.md``).
STATE_KIND = "boosting.utility_cache"

#: Default row capacity — at paper scale (hundreds of brokers) about
#: 4096 * |B| floats, tens of megabytes at most.
DEFAULT_MAX_ROWS = 4096


def request_feature_digest(
    stream: RequestStream, request_index: int, num_brokers: int
) -> str:
    """Content key for one request's prediction row.

    Hashes the request-side features that
    :func:`repro.boosting.utility_model.pair_features` consumes, plus the
    broker-pool size (a row for a 100-broker pool must never answer a
    120-broker query).  Two requests with identical features legitimately
    share a key — the prediction is a pure function of the features.
    """
    payload = np.array(
        [
            float(stream.district[request_index]),
            float(stream.house_type[request_index]),
            float(stream.price[request_index]),
            float(stream.area[request_index]),
            float(stream.urgency[request_index]),
            float(stream.value_multiplier[request_index]),
            float(num_brokers),
        ]
    )
    return hashlib.blake2b(payload.tobytes(), digest_size=16).hexdigest()


class UtilityPredictionCache:
    """Bounded LRU of prediction rows with generation-bump invalidation.

    Attributes:
        generation: monotone counter bumped by every invalidation; stored
            rows belong to the current generation by construction (the
            store is cleared on bump), so the counter is provenance for
            telemetry and snapshots rather than a per-row filter.
        stats: monotone counters — ``hits``, ``misses``, ``evictions``,
            ``invalidations``.
    """

    def __init__(self, max_rows: int = DEFAULT_MAX_ROWS) -> None:
        if max_rows <= 0:
            raise ValueError(f"max_rows must be positive, got {max_rows}")
        self.max_rows = int(max_rows)
        self.generation = 0
        self.stats = {"hits": 0, "misses": 0, "evictions": 0, "invalidations": 0}
        self._rows: OrderedDict[str, np.ndarray] = OrderedDict()

    def __len__(self) -> int:
        return len(self._rows)

    def lookup(self, key: str) -> np.ndarray | None:
        """The cached row for ``key`` (refreshing recency), or ``None``."""
        row = self._rows.get(key)
        if row is None:
            self.stats["misses"] += 1
            return None
        self._rows.move_to_end(key)
        self.stats["hits"] += 1
        return row

    def store(self, key: str, row: np.ndarray) -> None:
        """Insert (a copy of) a freshly computed row, evicting LRU rows."""
        self._rows[key] = np.array(row, dtype=float)
        self._rows.move_to_end(key)
        while len(self._rows) > self.max_rows:
            self._rows.popitem(last=False)
            self.stats["evictions"] += 1

    def invalidate(self) -> None:
        """Drop every cached row and open a new generation."""
        self._rows.clear()
        self.generation += 1
        self.stats["invalidations"] += 1
        obs.add("utility_cache.invalidations", 1)

    def notify_learning_update(self) -> None:
        """Invalidate after a value-function/bandit update (cache-aside).

        Semantically identical to :meth:`invalidate`; the separate entry
        point exists so call sites read as the contract they implement.
        """
        self.invalidate()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / total if total else 0.0

    # ------------------------------------------------------------------
    # Durable state (repro.state contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deep snapshot: rows (in recency order), generation, counters."""
        return versioned(
            STATE_KIND,
            {
                "max_rows": int(self.max_rows),
                "generation": int(self.generation),
                "stats": dict(self.stats),
                "keys": list(self._rows.keys()),
                "rows": [row.copy() for row in self._rows.values()],
            },
        )

    def restore(self, state) -> None:
        """Reinstall a :meth:`snapshot` (recency order preserved)."""
        payload = expect(state, STATE_KIND)
        self.max_rows = int(payload["max_rows"])
        self.generation = int(payload["generation"])
        self.stats = {key: int(value) for key, value in payload["stats"].items()}
        self._rows = OrderedDict(
            (key, np.array(row, dtype=float))
            for key, row in zip(payload["keys"], payload["rows"])
        )


class CachedUtilityModel:
    """Drop-in :class:`UtilityModel` wrapper answering from the cache.

    Misses are batched into one underlying ``predict_matrix`` call, so a
    fully-cold query costs exactly one model invocation — the wrapper is
    never slower by more than the hash/lookup overhead.  Because the
    GBDT's prediction is row-independent, a row computed in a miss batch
    is bit-identical to the row the uncached model would produce for any
    other batch containing the same request.

    Args:
        model: the fitted (or to-be-fitted) utility model.
        cache: the row store; pass a matcher's
            :attr:`~repro.algorithms.lacb.LACBMatcher.utility_cache` to
            couple invalidation to its learning updates, or omit for a
            private cache invalidated only by refits.
    """

    def __init__(
        self, model: UtilityModel, cache: UtilityPredictionCache | None = None
    ) -> None:
        self.model = model
        self.cache = cache if cache is not None else UtilityPredictionCache()

    def fit_from_history(
        self,
        population: BrokerPopulation,
        stream: RequestStream,
        request_indices: np.ndarray,
        broker_indices: np.ndarray,
        outcomes: np.ndarray,
    ) -> "CachedUtilityModel":
        """Refit the underlying model and invalidate every cached row."""
        self.model.fit_from_history(
            population, stream, request_indices, broker_indices, outcomes
        )
        self.cache.invalidate()
        return self

    def predict_matrix(
        self,
        population: BrokerPopulation,
        stream: RequestStream,
        request_indices: np.ndarray,
    ) -> np.ndarray:
        """Utility matrix ``u_{r,b}``, bit-identical to the uncached model."""
        request_indices = np.asarray(request_indices, dtype=int)
        n = request_indices.size
        num_brokers = len(population)
        if n == 0:
            return np.zeros((0, num_brokers))
        keys = [
            request_feature_digest(stream, int(index), num_brokers)
            for index in request_indices
        ]
        out = np.empty((n, num_brokers))
        missing: list[int] = []
        for position, key in enumerate(keys):
            row = self.cache.lookup(key)
            if row is None:
                missing.append(position)
            else:
                out[position] = row
        if missing:
            computed = self.model.predict_matrix(
                population, stream, request_indices[missing]
            )
            for offset, position in enumerate(missing):
                out[position] = computed[offset]
                self.cache.store(keys[position], computed[offset])
        obs.add("utility_cache.lookups", n)
        if missing:
            obs.add("utility_cache.miss_rows", len(missing))
        return out

    # ------------------------------------------------------------------
    # Durable state (repro.state contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deep snapshot: the fitted ensemble plus the row store."""
        return versioned(
            "boosting.cached_utility_model",
            {"model": self.model.snapshot(), "cache": self.cache.snapshot()},
        )

    def restore(self, state) -> None:
        payload = expect(state, "boosting.cached_utility_model")
        self.model.restore(payload["model"])
        self.cache.restore(payload["cache"])
