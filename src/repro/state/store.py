"""Append-only checkpoint store: JSONL index + npz state blobs.

Layout of one store directory::

    checkpoints.jsonl            # append-only index, one record per line
    state-d00006-3fb1c2d4a9e7.npz  # one blob per checkpoint
    manifest.json                # lineage manifest (written by the hook)

Write protocol (crash-safe by construction):

1. the blob is written to a temp file and ``os.replace``d into place;
2. only then is the index line appended (flushed + fsynced).

A kill between the steps leaves an orphan blob that no index line
references — harmless.  A kill mid-append leaves a torn final index line,
which :func:`repro.state.io.read_jsonl` drops.  Either way every indexed
checkpoint is complete, and :meth:`CheckpointStore.load` additionally
verifies the blob's content hash against the index record.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from datetime import datetime, timezone

from repro.state import codec
from repro.state.io import append_jsonl, atomic_open, read_jsonl
from repro.state.protocol import StateError

#: Index record schema identifier.
RECORD_SCHEMA = "repro.state.checkpoint/v1"

#: Index file name inside a store directory.
INDEX_NAME = "checkpoints.jsonl"


@dataclass(frozen=True)
class CheckpointRecord:
    """One line of the checkpoint index.

    Attributes:
        run_id: stable identity of the producing run (spec-derived).
        day: the completed day the checkpoint captures (state *after*
            that day's ``end_day``).
        blob: blob file name, relative to the store directory.
        sha256: canonical content hash of the state (skeleton + arrays,
            not the npz file bytes — zip timestamps are not deterministic).
        parent_run_id: the run this one resumed from, if any.
        resumed_from_day: the checkpoint day the parent was resumed at.
        telemetry_segment: the live telemetry stream segment covering the
            producing run (see :mod:`repro.obs.stream`), if one was
            active — the lineage link from durable state back to the
            telemetry that observed it being written.
        created_utc: ISO-8601 write timestamp (informational only).
        schema: the record schema identifier.
    """

    run_id: str
    day: int
    blob: str
    sha256: str
    parent_run_id: str | None = None
    resumed_from_day: int | None = None
    telemetry_segment: str | None = None
    created_utc: str | None = None
    schema: str = RECORD_SCHEMA


class CheckpointStore:
    """Append-only store of day-boundary checkpoints in one directory."""

    def __init__(self, directory) -> None:
        self.directory = os.fspath(directory)

    @property
    def index_path(self) -> str:
        return os.path.join(self.directory, INDEX_NAME)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(
        self,
        state: dict,
        day: int,
        run_id: str,
        parent_run_id: str | None = None,
        resumed_from_day: int | None = None,
        telemetry_segment: str | None = None,
    ) -> CheckpointRecord:
        """Persist one state snapshot for ``day``; returns its record."""
        skeleton, arrays = codec.flatten_state(state)
        digest = codec.content_hash(skeleton, arrays)
        blob = f"state-d{day:05d}-{digest[:12]}.npz"
        with atomic_open(os.path.join(self.directory, blob), "wb") as handle:
            codec.save_npz(handle, skeleton, arrays)
        record = CheckpointRecord(
            run_id=run_id,
            day=int(day),
            blob=blob,
            sha256=digest,
            parent_run_id=parent_run_id,
            resumed_from_day=resumed_from_day,
            telemetry_segment=telemetry_segment,
            created_utc=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        )
        append_jsonl(self.index_path, asdict(record))
        return record

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(self) -> list[CheckpointRecord]:
        """All indexed checkpoints, in append order (torn tail dropped)."""
        if not os.path.exists(self.index_path):
            return []
        records = []
        for entry in read_jsonl(self.index_path):
            if entry.get("schema") != RECORD_SCHEMA:
                raise StateError(
                    f"unsupported checkpoint record schema {entry.get('schema')!r} "
                    f"in {self.index_path} (expected {RECORD_SCHEMA}; see docs/state.md)"
                )
            fields = {key: entry.get(key) for key in CheckpointRecord.__dataclass_fields__}
            records.append(CheckpointRecord(**fields))
        return records

    def latest(self, run_id: str | None = None) -> CheckpointRecord | None:
        """The most advanced checkpoint (ties broken by append order)."""
        candidates = [
            record
            for record in self.records()
            if run_id is None or record.run_id == run_id
        ]
        if not candidates:
            return None
        return max(enumerate(candidates), key=lambda pair: (pair[1].day, pair[0]))[1]

    def load(self, record: CheckpointRecord | None = None, verify: bool = True) -> dict:
        """Load (and integrity-check) one checkpoint's state snapshot."""
        if record is None:
            record = self.latest()
            if record is None:
                raise StateError(f"no checkpoints in {self.directory}")
        path = os.path.join(self.directory, record.blob)
        if not os.path.exists(path):
            raise StateError(f"checkpoint blob missing: {path}")
        skeleton, arrays = codec.load_npz(path)
        if verify:
            digest = codec.content_hash(skeleton, arrays)
            if digest != record.sha256:
                raise StateError(
                    f"checkpoint {record.blob} failed integrity check: "
                    f"content hash {digest[:12]} != indexed {record.sha256[:12]}"
                )
        return codec.unflatten_state(skeleton, arrays)
