"""Lossless flattening of snapshot structures into skeleton + arrays.

A snapshot (see :mod:`repro.state.protocol`) is a nested structure of
dicts, lists, tuples, sets, numpy arrays and scalars.  The codec splits
it into

* a JSON-serializable *skeleton* in which every numpy array is replaced
  by a ``{"__ndarray__": "a<i>"}`` placeholder, and
* an ``arrays`` mapping from those placeholder keys to the arrays.

Non-JSON shapes are encoded explicitly so the round trip is exact:

* tuples     → ``{"__tuple__": [...]}``
* sets       → ``{"__set__": [sorted items]}``
* dicts      → ``{"__map__": [[key, value], ...]}`` (keys may be ints —
  JSON objects cannot carry them — and entries are sorted for a
  canonical layout)
* numpy scalars are converted to python scalars.

:func:`content_hash` digests the canonical skeleton plus each array's
dtype, shape and raw bytes.  Hashing the *content* rather than the blob
file makes the hash deterministic (npz is a zip archive whose member
timestamps vary run to run) and lets a resumed run prove it loaded
exactly the bytes the interrupted run wrote.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.state.protocol import StateError

#: Skeleton markers (reserved keys of single-entry dicts).
NDARRAY_KEY = "__ndarray__"
TUPLE_KEY = "__tuple__"
SET_KEY = "__set__"
MAP_KEY = "__map__"
_MARKERS = (NDARRAY_KEY, TUPLE_KEY, SET_KEY, MAP_KEY)

#: npz member holding the UTF-8 skeleton JSON.
SKELETON_MEMBER = "__skeleton__"

#: npz member holding the packed-array layout JSON (see :func:`save_npz`).
LAYOUT_MEMBER = "__layout__"


def flatten_state(state) -> tuple[object, dict[str, np.ndarray]]:
    """Split a snapshot into (JSON skeleton, arrays dict).

    Array placeholder keys are assigned in depth-first encounter order
    (``a0``, ``a1``, ...), which is itself canonical because map entries
    are sorted before their values are encoded.
    """
    arrays: dict[str, np.ndarray] = {}

    def encode(value):
        if isinstance(value, np.ndarray):
            key = f"a{len(arrays)}"
            arrays[key] = value
            return {NDARRAY_KEY: key}
        if isinstance(value, np.generic):
            return encode(value.item())
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        if isinstance(value, dict):
            entries = sorted(value.items(), key=lambda kv: (type(kv[0]).__name__, str(kv[0])))
            return {MAP_KEY: [[encode(k), encode(v)] for k, v in entries]}
        if isinstance(value, tuple):
            return {TUPLE_KEY: [encode(item) for item in value]}
        if isinstance(value, (set, frozenset)):
            items = sorted(value, key=lambda item: (type(item).__name__, str(item)))
            return {SET_KEY: [encode(item) for item in items]}
        if isinstance(value, list):
            return [encode(item) for item in value]
        raise StateError(f"cannot encode a {type(value).__name__} in a snapshot")

    return encode(state), arrays


def unflatten_state(skeleton, arrays: dict[str, np.ndarray]):
    """Inverse of :func:`flatten_state`."""

    def decode(value):
        if isinstance(value, dict):
            if len(value) == 1:
                marker, body = next(iter(value.items()))
                if marker == NDARRAY_KEY:
                    try:
                        return arrays[body]
                    except KeyError:
                        raise StateError(f"skeleton references missing array {body!r}") from None
                if marker == TUPLE_KEY:
                    return tuple(decode(item) for item in body)
                if marker == SET_KEY:
                    return {decode(item) for item in body}
                if marker == MAP_KEY:
                    return {decode(k): decode(v) for k, v in body}
            raise StateError(f"malformed skeleton node: {sorted(value)!r}")
        if isinstance(value, list):
            return [decode(item) for item in value]
        return value

    return decode(skeleton)


def skeleton_json(skeleton) -> str:
    """The canonical JSON text of a skeleton (sorted keys, tight separators)."""
    return json.dumps(skeleton, sort_keys=True, separators=(",", ":"))


def content_hash(skeleton, arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over the canonical skeleton and every array's exact bytes."""
    digest = hashlib.sha256()
    digest.update(skeleton_json(skeleton).encode("utf-8"))
    for key in sorted(arrays):
        array = np.ascontiguousarray(arrays[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(repr(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def save_npz(handle, skeleton, arrays: dict[str, np.ndarray]) -> None:
    """Write skeleton + arrays into one (uncompressed) npz stream.

    Arrays are packed one member per dtype (raveled and concatenated),
    with a ``__layout__`` member recording each array's slice and shape.
    A snapshot holds hundreds of small arrays (per-broker bandit heads),
    and zipfile's fixed per-member cost would otherwise dominate the
    day-boundary checkpoint write.
    """
    if SKELETON_MEMBER in arrays or LAYOUT_MEMBER in arrays:
        raise StateError(f"array keys {SKELETON_MEMBER!r}/{LAYOUT_MEMBER!r} are reserved")
    members = {
        SKELETON_MEMBER: np.frombuffer(
            skeleton_json(skeleton).encode("utf-8"), dtype=np.uint8
        )
    }
    layout = []
    chunks: dict[str, list[np.ndarray]] = {}
    offsets: dict[str, int] = {}
    dtype_members: dict[str, str] = {}
    for key, value in arrays.items():
        array = np.ascontiguousarray(value)
        member = dtype_members.setdefault(array.dtype.str, f"pack{len(dtype_members)}")
        start = offsets.get(member, 0)
        chunks.setdefault(member, []).append(array.ravel())
        offsets[member] = start + array.size
        layout.append([key, member, start, list(array.shape)])
    for member, parts in chunks.items():
        members[member] = np.concatenate(parts)
    members[LAYOUT_MEMBER] = np.frombuffer(
        json.dumps(layout, separators=(",", ":")).encode("utf-8"), dtype=np.uint8
    )
    np.savez(handle, **members)


def load_npz(path) -> tuple[object, dict[str, np.ndarray]]:
    """Read back (skeleton, arrays) written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as blob:
        try:
            text = bytes(blob[SKELETON_MEMBER].tobytes()).decode("utf-8")
        except KeyError:
            raise StateError(f"{path} is not a repro.state blob (no skeleton)") from None
        skeleton = json.loads(text)
        if LAYOUT_MEMBER in blob.files:
            layout = json.loads(bytes(blob[LAYOUT_MEMBER].tobytes()).decode("utf-8"))
            packs = {name: blob[name] for name in {entry[1] for entry in layout}}
            arrays = {}
            for key, member, start, shape in layout:
                count = int(np.prod(shape, dtype=np.int64))
                arrays[key] = (
                    packs[member][start : start + count].reshape(shape).copy()
                )
        else:  # unpacked layout: one member per array
            arrays = {key: blob[key] for key in blob.files if key != SKELETON_MEMBER}
    return skeleton, arrays
