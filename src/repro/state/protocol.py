"""The ``Stateful`` contract: versioned, numpy-aware snapshot/restore.

Every learning/serving component implements two methods::

    def snapshot(self) -> dict:            # versioned({kind}, {payload})
    def restore(self, state: Mapping):     # payload = expect(state, {kind})

A snapshot is a plain nested structure of dicts, lists, tuples, sets,
numpy arrays and scalars — exactly what :mod:`repro.state.codec` can
persist losslessly.  Snapshots are *deep*: mutating the live component
after ``snapshot()`` never changes an already-taken snapshot, and
``restore()`` copies data in (it never aliases the caller's arrays).

Versioning policy (see ``docs/state.md``): every snapshot dict carries
its component ``kind`` and an integer ``version``.  :func:`expect`
rejects mismatched kinds and versions with typed errors, so loading an
old checkpoint against newer code fails loudly at the component that
changed rather than corrupting silently.  Components that evolve their
payload bump their version and may accept older versions explicitly in
``restore``.

RNG durability: :func:`rng_state` / :func:`set_rng_state` capture and
reinstall a ``numpy.random.Generator``'s bit-generator state *in place*.
In-place restoration matters because components may share one generator
(e.g. a matcher's bandit and assigner receive the same stream from the
algorithm registry); restoring through the existing object preserves
that sharing, so post-restore draws interleave exactly as an
uninterrupted run's would.
"""

from __future__ import annotations

import copy
import math
from typing import Mapping, Protocol, runtime_checkable

import numpy as np


class StateError(RuntimeError):
    """A snapshot is malformed, mismatched or fails integrity checks."""


class StateVersionError(StateError):
    """A snapshot's version is not supported by the running code.

    See ``docs/state.md`` for the versioning/migration policy.
    """


@runtime_checkable
class Stateful(Protocol):
    """Structural protocol implemented by every durable component."""

    def snapshot(self) -> dict:
        """A deep, plain-data snapshot of all mutable state."""
        ...

    def restore(self, state: Mapping) -> None:
        """Reinstall a snapshot produced by :meth:`snapshot` in place."""
        ...


def versioned(kind: str, payload: dict, version: int = 1) -> dict:
    """Wrap a payload in the standard ``{kind, version, payload}`` envelope."""
    return {"kind": kind, "version": int(version), "payload": payload}


def expect(state: Mapping, kind: str, version: int = 1) -> dict:
    """Unwrap a snapshot envelope, enforcing kind and version.

    Raises:
        StateError: when the envelope is malformed or of a different kind.
        StateVersionError: when the kind matches but the version does not.
    """
    if not isinstance(state, Mapping) or "kind" not in state or "payload" not in state:
        raise StateError(f"malformed snapshot for {kind!r}: {type(state).__name__}")
    if state["kind"] != kind:
        raise StateError(f"expected a {kind!r} snapshot, got {state['kind']!r}")
    found = int(state.get("version", 0))
    if found != version:
        raise StateVersionError(
            f"{kind!r} snapshot version {found} is not supported "
            f"(expected {version}; see docs/state.md for the migration policy)"
        )
    return state["payload"]


# ----------------------------------------------------------------------
# numpy RNG capture
# ----------------------------------------------------------------------
def rng_state(rng: np.random.Generator) -> dict:
    """A deep copy of the generator's bit-generator state (JSON-safe)."""
    return copy.deepcopy(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: Mapping) -> None:
    """Reinstall a captured state into an *existing* generator, in place.

    In-place (rather than returning a fresh generator) so components that
    share one stream keep sharing it after restore.
    """
    expected = type(rng.bit_generator).__name__
    found = state.get("bit_generator") if isinstance(state, Mapping) else None
    if found != expected:
        raise StateError(f"RNG state is for {found!r}, generator uses {expected!r}")
    rng.bit_generator.state = copy.deepcopy(dict(state))


# ----------------------------------------------------------------------
# Deep equality over snapshot structures
# ----------------------------------------------------------------------
def state_equal(a, b) -> bool:
    """Bitwise deep equality of two snapshot structures.

    Arrays compare by dtype, shape and raw bytes (so NaN payloads and
    signed zeros are distinguished exactly as the checkpoint hash does);
    floats treat two NaNs as equal; containers compare recursively.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return False
        if a.dtype != b.dtype or a.shape != b.shape:
            return False
        return np.ascontiguousarray(a).tobytes() == np.ascontiguousarray(b).tobytes()
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        if set(a.keys()) != set(b.keys()):
            return False
        return all(state_equal(a[key], b[key]) for key in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if type(a) is not type(b) or len(a) != len(b):
            return False
        return all(state_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, (set, frozenset)) and isinstance(b, (set, frozenset)):
        return a == b
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return a == b
    if isinstance(a, (np.generic,)) or isinstance(b, (np.generic,)):
        # Snapshot authors emit python scalars; accept numpy scalars by value.
        return state_equal(np.asarray(a).item(), np.asarray(b).item())
    return type(a) is type(b) and a == b
