"""Day-boundary checkpointing as a run hook, plus kill-at-boundary testing.

:class:`CheckpointHook` snapshots the full durable state of a run —
platform, matcher, and any extra :class:`~repro.state.protocol.Stateful`
components such as the metrics collector — after each day's ``end_day``
and persists it through a :class:`~repro.state.store.CheckpointStore`.
Resuming from such a checkpoint (see :meth:`repro.engine.spec.RunSpec.run`)
reproduces the uninterrupted run bit for bit: the checkpoint captures
every RNG stream and accumulator *after* day ``k``, so continuing at
``start_day = k + 1`` replays exactly the draws and updates the straight
run would have made.

:class:`StopAfterDay` simulates a kill at a day boundary by raising
:class:`RunInterrupted` from ``on_day_end``.  Order it *after* the
checkpoint hook so the day's checkpoint lands before the "crash" — the
same ordering a real kill between days produces.
"""

from __future__ import annotations

from repro.engine.hooks import RunHook
from repro.engine.loop import DayEndEvent, RunContext
from repro.obs.telemetry import add as _metric_add
from repro.obs.telemetry import span as _span
from repro.state.store import CheckpointRecord, CheckpointStore


def _active_stream_segment() -> str | None:
    """The live telemetry stream segment of this process, if any.

    Recorded on every checkpoint index line (telemetry lineage): a
    regression hunt that starts from a checkpoint can find the exact
    streamed telemetry segment that observed the run writing it.
    """
    from repro.obs.telemetry import current

    telemetry = current()
    if telemetry is None or telemetry.stream is None:
        return None
    return telemetry.stream.segment


class RunInterrupted(RuntimeError):
    """Raised by :class:`StopAfterDay` to end a run at a day boundary."""

    def __init__(self, day: int) -> None:
        super().__init__(f"run interrupted after day {day}")
        self.day = day


class StopAfterDay(RunHook):
    """Aborts the run once ``day`` has fully completed (kill simulation).

    Raises :class:`RunInterrupted` from ``on_day_end``, after all hooks
    registered before it have seen the event — so a preceding
    :class:`CheckpointHook` has already persisted the day.
    """

    def __init__(self, day: int) -> None:
        self.day = int(day)

    def on_day_end(self, event: DayEndEvent) -> None:
        if event.day >= self.day:
            raise RunInterrupted(event.day)


class CheckpointHook(RunHook):
    """Persists the run's durable state at day boundaries.

    The snapshot written for day ``d`` is::

        {
          "platform": platform.snapshot(),
          "matcher":  matcher.snapshot(),
          "hooks":    {name: component.snapshot(), ...},
        }

    captured after ``matcher.end_day`` (and after every earlier hook has
    folded the day's events into its accumulators — register this hook
    last among the stateful ones).

    Args:
        store: destination store (its directory is created on demand).
        run_id: stable identity recorded on every index line.
        every: write after every N-th completed day; the final day is
            always written so a finished run can be reloaded whole.
        components: extra named ``Stateful`` objects (e.g. the metrics
            collector) checkpointed alongside platform and matcher.
        parent_run_id / resumed_from_day: lineage of a resumed run,
            recorded on each index line it writes.
    """

    def __init__(
        self,
        store: CheckpointStore,
        run_id: str,
        every: int = 1,
        components: dict | None = None,
        parent_run_id: str | None = None,
        resumed_from_day: int | None = None,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.store = store
        self.run_id = run_id
        self.every = int(every)
        self.components = dict(components or {})
        self.parent_run_id = parent_run_id
        self.resumed_from_day = resumed_from_day
        self.records: list[CheckpointRecord] = []
        self._context: RunContext | None = None

    def on_run_start(self, context: RunContext) -> None:
        self._context = context

    def on_day_end(self, event: DayEndEvent) -> None:
        context = self._context
        if context is None:
            raise RuntimeError("CheckpointHook saw on_day_end before on_run_start")
        last_day = context.num_days - 1
        if (event.day + 1) % self.every != 0 and event.day != last_day:
            return
        with _span("state.checkpoint", day=str(event.day)):
            state = {
                "platform": context.platform.snapshot(),
                "matcher": context.matcher.snapshot(),
                "hooks": {name: comp.snapshot() for name, comp in self.components.items()},
            }
            record = self.store.save(
                state,
                day=event.day,
                run_id=self.run_id,
                parent_run_id=self.parent_run_id,
                resumed_from_day=self.resumed_from_day,
                telemetry_segment=_active_stream_segment(),
            )
        _metric_add("state.checkpoints")
        self.records.append(record)
