"""repro.state — the explicit, durable state layer.

Every learning/serving component of the reproduction (bandits, value
functions, matchers, the platform, the result collectors) implements one
auditable contract — :class:`Stateful` — instead of scattering mutable
attributes across modules:

* :mod:`repro.state.protocol` — the ``snapshot() -> dict`` /
  ``restore(dict)`` contract, version helpers, numpy RNG capture and the
  deep :func:`state_equal` comparator.
* :mod:`repro.state.io` — atomic file writes (write-temp-then-
  ``os.replace``) and torn-tail-tolerant JSONL, shared with
  :mod:`repro.obs` exporters.
* :mod:`repro.state.codec` — lossless flattening of nested state dicts
  into a JSON skeleton plus numpy arrays, with a canonical content hash.
* :mod:`repro.state.store` — the append-only checkpoint store (JSONL
  index + npz blobs).
* :mod:`repro.state.hook` — the engine-attached :class:`CheckpointHook`
  writing day-boundary checkpoints, plus :class:`StopAfterDay` for
  kill-at-boundary testing.

``CheckpointHook`` / ``StopAfterDay`` / ``RunInterrupted`` are exported
lazily: :mod:`repro.state.hook` imports the engine, and an eager re-export
would make ``import repro.state`` (which :mod:`repro.obs.telemetry`
performs for the atomic writers) circular.
"""

from repro.state.codec import content_hash, flatten_state, unflatten_state
from repro.state.io import (
    append_jsonl,
    atomic_open,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    read_jsonl,
)
from repro.state.protocol import (
    StateError,
    Stateful,
    StateVersionError,
    expect,
    rng_state,
    set_rng_state,
    state_equal,
    versioned,
)
from repro.state.store import CheckpointRecord, CheckpointStore

__all__ = [
    "CheckpointHook",
    "CheckpointRecord",
    "CheckpointStore",
    "RunInterrupted",
    "StateError",
    "Stateful",
    "StateVersionError",
    "StopAfterDay",
    "append_jsonl",
    "atomic_open",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "content_hash",
    "expect",
    "flatten_state",
    "read_jsonl",
    "rng_state",
    "set_rng_state",
    "state_equal",
    "unflatten_state",
    "versioned",
]

_LAZY = {
    "CheckpointHook": ("repro.state.hook", "CheckpointHook"),
    "StopAfterDay": ("repro.state.hook", "StopAfterDay"),
    "RunInterrupted": ("repro.state.hook", "RunInterrupted"),
}


def __getattr__(name: str):
    """PEP 562 lazy exports for the engine-dependent pieces."""
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
