"""Atomic file writes and torn-tail-tolerant JSONL.

Every durable artifact of the reproduction — checkpoints, telemetry
exports, manifests, reports — goes through the same discipline: write to
a temporary file in the destination directory, flush, then ``os.replace``
onto the final name.  A reader therefore only ever observes either the
previous complete file or the new complete file, never a torn one, no
matter when the writing process is killed.

The one deliberately *append-only* format is the checkpoint index
(``checkpoints.jsonl``): appends are not atomic, so :func:`read_jsonl`
tolerates a torn final line — a kill mid-append loses at most the record
being written, never an earlier one.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from typing import Iterator


@contextlib.contextmanager
def atomic_open(path, mode: str = "w", encoding: str | None = None) -> Iterator:
    """Open a temp file beside ``path``; replace ``path`` on clean exit.

    The temporary lives in the destination directory so the final
    ``os.replace`` stays within one filesystem (rename atomicity).  On any
    exception the temporary is removed and ``path`` is left untouched.
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_open only supports fresh writes, got mode {mode!r}")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    if encoding is None and "b" not in mode:
        encoding = "utf-8"
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=f".{os.path.basename(path)}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode, encoding=encoding) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(temp_path)
        raise


def atomic_write_text(path, text: str) -> str:
    """Atomically write ``text`` to ``path``; returns the path."""
    with atomic_open(path, "w") as handle:
        handle.write(text)
    return os.fspath(path)


def atomic_write_bytes(path, data: bytes) -> str:
    """Atomically write ``data`` to ``path``; returns the path."""
    with atomic_open(path, "wb") as handle:
        handle.write(data)
    return os.fspath(path)


def atomic_write_json(path, payload, indent: int | None = 2, default=None) -> str:
    """Atomically write ``payload`` as sorted-key JSON; returns the path."""
    with atomic_open(path, "w") as handle:
        json.dump(payload, handle, indent=indent, sort_keys=True, default=default)
    return os.fspath(path)


def append_jsonl(path, record: dict) -> None:
    """Append one JSON record (plus newline) to a JSONL file.

    Appends are intentionally not staged through a temp file — the format
    is append-only and :func:`read_jsonl` tolerates a torn final line.
    The write is flushed and fsynced so a completed append survives a
    crash of the process.
    """
    line = json.dumps(record, sort_keys=True)
    if "\n" in line:
        raise ValueError("JSONL records must serialize to a single line")
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def read_jsonl(path) -> list[dict]:
    """Read a JSONL file, tolerating a torn (killed-mid-append) final line.

    A malformed line anywhere *before* the final line indicates real
    corruption and raises ``ValueError``; a malformed or unterminated
    final line is silently dropped.
    """
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    # A well-formed file ends with a newline, so the final split entry is
    # empty; anything else there is a torn tail.
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break
            raise ValueError(f"corrupt JSONL line {index + 1} in {path}") from None
    return records
