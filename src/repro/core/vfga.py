"""Value Function Guided Assignment — Alg. 2 (Sec. VI-B).

Per batch, VFGA:

1. restricts matching to the available brokers ``B+ = {b : w_b < c_b}``
   (line 5),
2. refines each candidate edge's utility with the capacity-aware value
   function for top brokers whose capacity-hit frequency exceeds ``delta``
   (Eq. 15, line 6),
3. optionally prunes the broker side with Candidate Broker Selection
   (Alg. 3) — the LACB-Opt acceleration,
4. runs Kuhn-Munkres on the (pruned) refined graph (line 7),
5. books workloads and TD-updates the value function (lines 8-10).

The class is deliberately estimator-agnostic: any capacity vector can be
fed to :meth:`begin_day`, which is how the LACB / AN / CTop-K variants
share this machinery.
"""

from __future__ import annotations

import numpy as np

from repro import perf
from repro.check import invariants as check_invariants
from repro.check import runtime as check_runtime
from repro.core.config import AssignmentConfig
from repro.core.selection import select_candidate_brokers
from repro.core.types import AssignedPair, Assignment
from repro.core.value_function import CapacityAwareValueFunction
from repro.matching import IncrementalKMSolver, solve_assignment
from repro.obs import audit as obs_audit
from repro.obs import telemetry as obs
from repro.obs.metrics import RATIO_BOUNDARIES
from repro.state.protocol import (
    StateError,
    expect,
    rng_state,
    set_rng_state,
    versioned,
)

#: Tiny positive utility keeping refined edges matchable: Eq. 15 may push a
#: low-utility edge negative, but an available broker is still preferable to
#: leaving the client unserved.
MIN_REFINED_UTILITY = 1e-6


class ValueFunctionGuidedAssigner:
    """Stateful per-day driver of Alg. 2.

    Args:
        num_brokers: pool size ``|B|``.
        config: assignment hyper-parameters (``beta``, ``gamma``, ``delta``,
            CBS and value-function switches).
        rng: randomness for CBS pivots.
        max_capacity_state: largest residual capacity the value table tracks.
        batches_per_day: fixed time windows per day, used to convert batch
            indices into the value function's time axis; inferred from the
            largest batch index seen when omitted.
    """

    def __init__(
        self,
        num_brokers: int,
        config: AssignmentConfig,
        rng: np.random.Generator,
        max_capacity_state: int = 200,
        batches_per_day: int | None = None,
    ) -> None:
        self.num_brokers = num_brokers
        self.config = config
        self.rng = rng
        self.value_function = CapacityAwareValueFunction(
            max_state=max_capacity_state,
            learning_rate=config.learning_rate,
            discount=config.discount,
        )
        self.batches_per_day = batches_per_day
        self._max_batch_seen = 0
        # Inferred time axis: while batches_per_day is unknown, the day's
        # batch count is only established at end_day, where it is frozen
        # once and the first day's buffered TD updates are replayed on the
        # settled axis (see _time_fraction).
        self._frozen_batches: int | None = None
        self._pending_td: list[tuple[int, float, float]] = []
        self.capacities = np.zeros(num_brokers)
        self.workloads = np.zeros(num_brokers, dtype=int)
        self._capacity_hits = np.zeros(num_brokers)
        self._days_seen = 0
        self._check_state = check_runtime.CheckState() if config.check else None
        self._incremental_solver: IncrementalKMSolver | None = None

    # ------------------------------------------------------------------
    # Day lifecycle
    # ------------------------------------------------------------------
    def begin_day(self, capacities: np.ndarray) -> None:
        """Install today's estimated capacities ``c_b`` and reset workloads."""
        capacities = np.asarray(capacities, dtype=float)
        if capacities.shape != (self.num_brokers,):
            raise ValueError(
                f"expected capacities of shape ({self.num_brokers},), got {capacities.shape}"
            )
        self.capacities = capacities
        self.workloads = np.zeros(self.num_brokers, dtype=int)

    def end_day(self) -> None:
        """Book capacity hits into ``f_b`` and settle the value function.

        Three pieces of end-of-day bookkeeping:

        1. When ``batches_per_day`` is inferred, the first day settles the
           time axis: the denominator is frozen at the day's observed batch
           count and the day's buffered TD updates are replayed on it.
           Updating eagerly with the still-growing count would put batch 0
           at ``0/1``, batch 1 at ``1/2``, … — a drifting axis where every
           in-day update bootstraps from the terminal fraction ``1.0``.
        2. The capacity-hit frequency ``f_b`` gains today's observation.
        3. *Terminal* TD updates: a broker's unused residual capacity
           expires worthless at day end.  Without this, the TD chain of
           Eq. 14 converges to ``V(cr) = u + gamma V(cr - 1)`` — as if
           reserved capacity always converts later — and the Eq. 15
           refinement then overcharges every edge by a full average
           utility, leaving top brokers systematically under-used.
        """
        if self.batches_per_day is None and self._frozen_batches is None:
            self._frozen_batches = max(self._max_batch_seen, 1)
            if self.config.use_value_function:
                for batch, residual, raw_utility in self._pending_td:
                    self.value_function.td_update(
                        self._time_fraction(batch),
                        residual,
                        raw_utility,
                        self._time_fraction(batch + 1),
                        residual - 1.0,
                    )
            self._pending_td.clear()
        self._capacity_hits += self.workloads >= np.maximum(self.capacities, 1.0)
        self._days_seen += 1
        if self.config.use_value_function:
            residuals = self.capacities - self.workloads
            for residual in residuals[residuals >= 1.0]:
                self.value_function.expire_day_end(float(residual))

    @property
    def capacity_hit_frequency(self) -> np.ndarray:
        """``f_b`` — fraction of past days each broker reached capacity."""
        if self._days_seen == 0:
            return np.zeros(self.num_brokers)
        return self._capacity_hits / self._days_seen

    # ------------------------------------------------------------------
    # Per-batch assignment (Alg. 2 lines 4-10)
    # ------------------------------------------------------------------
    def available_brokers(self) -> np.ndarray:
        """``B+`` — brokers with residual capacity today (line 5)."""
        return np.nonzero(self.workloads < self.capacities)[0]

    def assign_batch(
        self,
        day: int,
        batch: int,
        request_ids: np.ndarray,
        utilities: np.ndarray,
    ) -> Assignment:
        """Match one batch of requests against the available brokers.

        Args:
            day / batch: interval coordinates (bookkeeping only).
            request_ids: global ids of the batch's requests.
            utilities: ``(|R_batch|, |B|)`` predicted utilities ``u_{r,b}``.

        Returns:
            The batch assignment ``M^(i)``; workloads and the value function
            are updated as a side effect.
        """
        with obs.span("vfga.assign_batch"):
            return self._assign_batch(day, batch, request_ids, utilities)

    def _assign_batch(
        self,
        day: int,
        batch: int,
        request_ids: np.ndarray,
        utilities: np.ndarray,
    ) -> Assignment:
        request_ids = np.asarray(request_ids, dtype=int)
        utilities = np.asarray(utilities, dtype=float)
        if utilities.shape != (request_ids.size, self.num_brokers):
            raise ValueError(
                f"utilities shape {utilities.shape} does not match "
                f"({request_ids.size}, {self.num_brokers})"
            )
        assignment = Assignment(day=day, batch=batch)
        self._max_batch_seen = max(self._max_batch_seen, batch + 1)
        if request_ids.size == 0:
            return assignment
        available = self.available_brokers()
        if available.size == 0:
            return assignment
        # Decision provenance (repro.obs.audit): pure observation — no RNG,
        # no result change; `trail` is None unless an audit session is
        # active *and* this batch is sampled.
        session = obs_audit.current()
        trail = session.begin_batch(day, batch) if session is not None else None
        if trail is not None:
            trail.requests = int(request_ids.size)
            trail.available = int(available.size)

        candidate_utilities = utilities[:, available]
        precbs_utilities = candidate_utilities
        kept_columns: np.ndarray | None = None
        if self.config.use_cbs and available.size > request_ids.size:
            before = available.size
            with obs.span("matching.cbs_prune"):
                local = select_candidate_brokers(
                    candidate_utilities, int(request_ids.size), self.rng
                )
            kept_columns = local
            available = available[local]
            candidate_utilities = candidate_utilities[:, local]
            pruned_ratio = 1.0 - available.size / before
            obs.set_gauge("cbs.pruned_broker_ratio", pruned_ratio)
            obs.observe(
                "cbs.pruned_broker_ratio_hist", pruned_ratio, boundaries=RATIO_BOUNDARIES
            )
            if trail is not None:
                trail.kept = int(available.size)
                trail.pruned_ratio = float(pruned_ratio)

        time_fraction = self._time_fraction(batch)
        next_fraction = self._time_fraction(batch + 1)
        with obs.span("vfga.refine"):
            refined = self._refine(candidate_utilities, available, time_fraction)
        match = self._solve(refined, available)
        self._oracle_checks(day, batch, precbs_utilities, kept_columns, refined, match)

        # While the time axis is still unsettled (first day with inferred
        # batches_per_day), TD updates are buffered and replayed at end_day
        # on the frozen denominator.
        defer_td = self.batches_per_day is None and self._frozen_batches is None
        alt_orders = None
        if trail is not None and match.pairs:
            # One stable argsort for the whole batch's matched rows — the
            # per-decision runner-up walk then only reads precomputed order.
            top_alts = session.config.top_alternatives
            if top_alts > 0 and refined.shape[1] > 1:
                matched_rows = [row for row, _col in match.pairs]
                alt_orders = np.argsort(-refined[matched_rows], axis=1, kind="stable")
        with obs.span("vfga.td_update"):
            for pair_index, (row, col) in enumerate(match.pairs):
                broker = int(available[col])
                raw_utility = float(utilities[row, broker])
                residual = float(self.capacities[broker] - self.workloads[broker])
                if trail is not None:
                    trail.add_decision(
                        int(request_ids[row]),
                        broker,
                        raw_utility,
                        float(refined[row, col]),
                        residual,
                        float(self.capacities[broker]),
                        int(self.workloads[broker]),
                        self._alternatives(
                            None if alt_orders is None else alt_orders[pair_index],
                            row, col, refined, candidate_utilities, available,
                            session.config.top_alternatives,
                        ),
                    )
                self.workloads[broker] += 1
                if self.config.use_value_function:
                    if defer_td:
                        self._pending_td.append((batch, residual, raw_utility))
                    else:
                        self.value_function.td_update(
                            time_fraction, residual, raw_utility, next_fraction, residual - 1.0
                        )
                assignment.pairs.append(
                    AssignedPair(int(request_ids[row]), broker, raw_utility)
                )
        if self.config.use_value_function:
            obs.add("vfga.td_updates", len(match.pairs))
        if trail is not None:
            session.commit_batch(trail)
        return assignment

    def _solve(self, refined: np.ndarray, available: np.ndarray):
        """KM on the refined graph, warm-started when the knob allows it.

        The incremental path engages only for the ``"repro"`` rectangular
        solver and only while the fast kernels are active — under
        ``REPRO_REFERENCE_KERNELS=1`` every batch runs the reference cold
        solve.  Both paths return bit-identical results (pairs, tie
        resolution and totals), so the knob never changes a seeded run.
        """
        if (
            self.config.incremental
            and perf.fast_kernels_enabled()
            and self.config.matching_backend == "repro"
            and not self.config.matching_pad_square
        ):
            if self._incremental_solver is None:
                self._incremental_solver = IncrementalKMSolver()
            with obs.span("matching.solve", backend="incremental"):
                return self._incremental_solver.solve(
                    refined, maximize=True, column_ids=available
                )
        return solve_assignment(
            refined,
            maximize=True,
            backend=self.config.matching_backend,
            pad_square=self.config.matching_pad_square,
        )

    @staticmethod
    def _alternatives(
        order_row: np.ndarray | None,
        row: int,
        col: int,
        refined: np.ndarray,
        raw: np.ndarray,
        available: np.ndarray,
        top: int,
    ) -> list[tuple[int, float, float]]:
        """The realized edge's runners-up: top brokers by refined value.

        Deterministic (stable sort, index tie-break) and allocation-light —
        only runs for audited pairs, and ``order_row`` comes from one
        batch-level argsort rather than a per-decision sort.  Returns
        ``(broker id, refined, raw)`` triples in descending refined order,
        the chosen column excluded.
        """
        if order_row is None or top <= 0:
            return []
        alternatives: list[tuple[int, float, float]] = []
        for j in order_row:
            j = int(j)
            if j == col:
                continue
            alternatives.append(
                (int(available[j]), float(refined[row, j]), float(raw[row, j]))
            )
            if len(alternatives) >= top:
                break
        return alternatives

    #: Days of history required before the capacity-hit frequency ``f_b``
    #: is trusted (after one day it is degenerately 0 or 1).
    MIN_FREQUENCY_DAYS = 3

    def _time_fraction(self, batch: int) -> float:
        """Position of a batch within the day on the value function's axis.

        With an inferred batch count the denominator is frozen at the end
        of the first day (see :meth:`end_day`); until then the live count
        is only a provisional reading used by :meth:`_refine` (inactive
        that early anyway) — TD updates never consume it.
        """
        denominator = (
            self.batches_per_day or self._frozen_batches or max(self._max_batch_seen, 1)
        )
        return batch / denominator

    def _oracle_checks(
        self,
        day: int,
        batch: int,
        precbs_utilities: np.ndarray,
        kept_columns: np.ndarray | None,
        refined: np.ndarray,
        match,
    ) -> None:
        """Sampled solver-oracle spot checks (KM optimality, Theorem 2).

        Pure observation: runs only while checks are enabled (process-wide
        or via ``AssignmentConfig(check=True)``), samples deterministically
        off a counter, and consumes no randomness — results are bit-for-bit
        identical with checks on or off.
        """
        state = check_runtime.current() or self._check_state
        if state is None or not state.sample_solver():
            return
        with obs.span("check.solver_oracle"):
            state.record_all(
                check_invariants.check_km_optimality(refined, match, day=day, batch=batch)
            )
            state.count()
            if kept_columns is not None:
                state.record_all(
                    check_invariants.check_cbs_preservation(
                        precbs_utilities, kept_columns, day=day, batch=batch
                    )
                )
                state.count()

    # ------------------------------------------------------------------
    # Durable state (repro.state contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deep snapshot of all day-spanning assignment state.

        ``_check_state`` is transient observation (sampled oracle checks)
        and is deliberately excluded: runs are bit-identical with checks on
        or off, so it carries no run state.
        """
        return versioned(
            "core.vfga",
            {
                "value_function": self.value_function.snapshot(),
                "rng": rng_state(self.rng),
                "max_batch_seen": int(self._max_batch_seen),
                "frozen_batches": (
                    None if self._frozen_batches is None else int(self._frozen_batches)
                ),
                "pending_td": [
                    (int(batch), float(residual), float(raw))
                    for batch, residual, raw in self._pending_td
                ],
                "capacities": self.capacities.copy(),
                "workloads": self.workloads.copy(),
                "capacity_hits": self._capacity_hits.copy(),
                "days_seen": int(self._days_seen),
                "incremental_solver": (
                    None
                    if self._incremental_solver is None
                    else self._incremental_solver.snapshot()
                ),
            },
        )

    def restore(self, state) -> None:
        """Reinstall a :meth:`snapshot`; the RNG is restored in place."""
        payload = expect(state, "core.vfga")
        workloads = np.asarray(payload["workloads"], dtype=int)
        if workloads.shape != (self.num_brokers,):
            raise StateError(
                f"VFGA snapshot is for {workloads.size} brokers, "
                f"this assigner has {self.num_brokers}"
            )
        self.value_function.restore(payload["value_function"])
        set_rng_state(self.rng, payload["rng"])
        self._max_batch_seen = int(payload["max_batch_seen"])
        frozen = payload["frozen_batches"]
        self._frozen_batches = None if frozen is None else int(frozen)
        self._pending_td = [
            (int(batch), float(residual), float(raw))
            for batch, residual, raw in payload["pending_td"]
        ]
        self.capacities = np.array(payload["capacities"], dtype=float)
        self.workloads = workloads.copy()
        self._capacity_hits = np.array(payload["capacity_hits"], dtype=float)
        self._days_seen = int(payload["days_seen"])
        # Older snapshots predate the incremental solver; absence means a
        # cold first solve after resume, which is bit-identical anyway.
        solver_state = payload.get("incremental_solver")
        if solver_state is None:
            self._incremental_solver = None
        else:
            self._incremental_solver = IncrementalKMSolver()
            self._incremental_solver.restore(solver_state)

    def _refine(
        self, utilities: np.ndarray, broker_ids: np.ndarray, time_fraction: float
    ) -> np.ndarray:
        """Eq. 15: value-refined utilities for frequently capped brokers."""
        if not self.config.use_value_function:
            return utilities
        if self._days_seen < self.MIN_FREQUENCY_DAYS:
            return utilities
        frequency = self.capacity_hit_frequency[broker_ids]
        top_mask = frequency > self.config.threshold
        if not np.any(top_mask):
            return utilities
        residuals = self.capacities[broker_ids] - self.workloads[broker_ids]
        adjustment = self.value_function.refinement_batch(time_fraction, residuals)
        refined = utilities.copy()
        refined[:, top_mask] = np.maximum(
            refined[:, top_mask] + adjustment[top_mask][None, :],
            MIN_REFINED_UTILITY,
        )
        return refined
