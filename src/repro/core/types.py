"""Typed entities shared across the library.

Definitions follow Sec. III of the paper: a broker is the triple
``(x_b, w_b, s_b)`` (Def. 1), requests arrive in per-interval batches, and
an assignment ``M^(i)`` matches requests of interval ``i`` to brokers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Broker:
    """A broker as in Def. 1: attributes, daily workload, daily sign-up rate.

    Attributes:
        broker_id: stable integer identifier (index into utility matrices).
        features: the working-status context vector ``x_b`` (Table II
            attributes, vectorized).  Refreshed each day by the platform.
        workload: number of requests served so far *today* (``w_b``).
        signup_rate: most recent observed daily sign-up rate (``s_b``).
    """

    broker_id: int
    features: np.ndarray
    workload: int = 0
    signup_rate: float = 0.0

    def reset_day(self, features: np.ndarray) -> None:
        """Start a new day with a fresh working-status context."""
        self.features = features
        self.workload = 0


@dataclass(frozen=True)
class Request:
    """A client request to be served by exactly one broker.

    Attributes:
        request_id: stable integer identifier.
        features: client/house feature vector used by the utility model.
        day: day index on which the request appears.
        batch: batch (time interval ``i``) index within the day.
    """

    request_id: int
    features: np.ndarray
    day: int
    batch: int


@dataclass(frozen=True)
class TrialTriple:
    """One bandit observation ``(x, w, s)`` (Sec. V-B).

    The broker's realized workload ``w`` (which may be below the chosen
    capacity) together with the realized sign-up rate ``s`` under working
    status ``x`` is what updates the reward mapping function.
    """

    context: np.ndarray
    workload: int
    reward: float


def triples_to_state(triples: list[TrialTriple]) -> dict:
    """Encode a trial-triple list as three parallel arrays (snapshot form).

    Columnar encoding keeps a bandit's replay history compact in a
    checkpoint blob: one ``(n, d)`` context matrix instead of ``n`` tiny
    arrays.  An empty list encodes as a ``(0, 0)`` context matrix.
    """
    if not triples:
        contexts = np.zeros((0, 0))
    else:
        contexts = np.stack([np.asarray(t.context, dtype=float) for t in triples])
    return {
        "contexts": contexts,
        "workloads": np.array([t.workload for t in triples], dtype=int),
        "rewards": np.array([t.reward for t in triples], dtype=float),
    }


def triples_from_state(state: dict) -> list[TrialTriple]:
    """Inverse of :func:`triples_to_state`."""
    contexts = np.asarray(state["contexts"], dtype=float)
    workloads = np.asarray(state["workloads"], dtype=int)
    rewards = np.asarray(state["rewards"], dtype=float)
    return [
        TrialTriple(contexts[i].copy(), int(workloads[i]), float(rewards[i]))
        for i in range(workloads.size)
    ]


@dataclass(frozen=True)
class AssignedPair:
    """One matched (request, broker) edge with its predicted utility."""

    request_id: int
    broker_id: int
    utility: float


@dataclass
class Assignment:
    """The matching ``M^(i)`` produced for one batch.

    Attributes:
        day: day index.
        batch: batch index within the day.
        pairs: matched request-broker pairs.
    """

    day: int
    batch: int
    pairs: list[AssignedPair] = field(default_factory=list)

    @property
    def predicted_utility(self) -> float:
        """Sum of input utilities over matched pairs (the reward of Eq. 1)."""
        return sum(pair.utility for pair in self.pairs)

    def broker_load(self) -> dict[int, int]:
        """Requests assigned per broker in this batch."""
        load: dict[int, int] = {}
        for pair in self.pairs:
            load[pair.broker_id] = load.get(pair.broker_id, 0) + 1
        return load

    def __len__(self) -> int:
        return len(self.pairs)

    def to_state(self) -> dict:
        """Columnar snapshot form (see :func:`triples_to_state` rationale)."""
        return {
            "day": int(self.day),
            "batch": int(self.batch),
            "request_ids": np.array([p.request_id for p in self.pairs], dtype=int),
            "broker_ids": np.array([p.broker_id for p in self.pairs], dtype=int),
            "utilities": np.array([p.utility for p in self.pairs], dtype=float),
        }

    @classmethod
    def from_state(cls, state: dict) -> "Assignment":
        request_ids = np.asarray(state["request_ids"], dtype=int)
        broker_ids = np.asarray(state["broker_ids"], dtype=int)
        utilities = np.asarray(state["utilities"], dtype=float)
        pairs = [
            AssignedPair(int(request_ids[i]), int(broker_ids[i]), float(utilities[i]))
            for i in range(request_ids.size)
        ]
        return cls(day=int(state["day"]), batch=int(state["batch"]), pairs=pairs)


@dataclass
class DayOutcome:
    """Realized end-of-day feedback revealed by the platform.

    Attributes:
        day: day index.
        workloads: ``(|B|,)`` requests served per broker today.
        signup_rates: ``(|B|,)`` realized daily sign-up rate per broker
            (zero for brokers who served nothing).
        realized_utility: ``(|B|,)`` realized (workload-degraded) utility
            accrued by each broker today.
    """

    day: int
    workloads: np.ndarray
    signup_rates: np.ndarray
    realized_utility: np.ndarray

    @property
    def total_realized_utility(self) -> float:
        """Total realized utility of the day across all brokers."""
        return float(np.sum(self.realized_utility))

    def to_state(self) -> dict:
        """Snapshot form: the day index plus deep copies of the arrays."""
        return {
            "day": int(self.day),
            "workloads": np.array(self.workloads),
            "signup_rates": np.array(self.signup_rates),
            "realized_utility": np.array(self.realized_utility),
        }

    @classmethod
    def from_state(cls, state: dict) -> "DayOutcome":
        return cls(
            day=int(state["day"]),
            workloads=np.array(state["workloads"]),
            signup_rates=np.array(state["signup_rates"]),
            realized_utility=np.array(state["realized_utility"]),
        )
