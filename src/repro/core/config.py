"""Configuration dataclasses mirroring the paper's reported settings.

Defaults reproduce Sec. VII-A: a 3-layer MLP reward model, ``alpha = 0.001``,
``batchSize = 16``, ``lambda = 0.001`` for the bandit (Alg. 1), and
``beta = 0.25``, ``gamma = 0.9``, ``delta = 0.8`` for the assignment module
(Alg. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _default_capacity_grid() -> np.ndarray:
    """Candidate capacities C (Sec. V-B).

    The paper determines the candidate range empirically from the Sec. II
    measurements "and do[es] not explore the workload capacity with a
    prominent low sign-up rate" — the grid spans the population's observed
    accustomed-workload band (sweet spots of ~6-45 requests/day in the
    simulated cities).
    """
    return np.arange(4, 48, 4, dtype=float)


@dataclass
class BanditConfig:
    """Hyper-parameters of the NN-enhanced UCB capacity estimator (Alg. 1).

    Attributes:
        candidate_capacities: the arm set ``C``.
        hidden_sizes: hidden-layer widths of the reward MLP (Eq. 4);
            ``(64, 16)`` with the input layer gives the paper's 3-layer net.
        alpha: upper-confidence-bound coefficient of Eq. 5.
        lam: regularization parameter ``lambda`` (covariance prior ``D = lam I``
            and the ridge term of Eq. 6).
        batch_size: observation-buffer size triggering a parameter update
            (``batchSize``, preset to 16 in the paper).
        learning_rate: step size for the reward-model update.
        train_epochs: gradient steps per buffer flush (the paper's Alg. 1
            takes one; a few more stabilize the small-net fit).
        covariance: ``"diagonal"`` (scalable NeuralUCB-style approximation)
            or ``"full"`` (exact ``D`` with Sherman-Morrison inverse updates;
            only practical for small reward models).
        min_arm_pulls: forced-coverage floor — every candidate capacity is
            pulled globally at least this often before pure UCB argmax takes
            over (cold-start safeguard; see ``NNUCBBandit.select_arm``).
        epsilon: probability of pulling a uniformly random arm instead of
            the UCB argmax.  Capacity choices gate which workloads can ever
            be *observed* (a capacity of 5 guarantees no data beyond
            workload 5), so without an exploration floor the estimator
            self-reinforces whatever region it starts in.
        train_on: which input the reward model is fit against —
            ``"workload"`` follows Eq. 6 / Alg. 2 line 17 (``S(x_o, w_o)``:
            the realized workload, denser information per day), while
            ``"capacity"`` follows Alg. 1 line 16 (``S(x_o, c_o)``: the
            chosen arm, free of demand confounding).  The paper's text
            contains both; ``"workload"`` measures slightly better
            end-to-end and is the default, with the difference quantified
            by an ablation bench.
        replay_size: capped FIFO of past trials the reward model retrains
            on.  Alg. 1 clears the 16-sample buffer after each update;
            fitting only those 16 freshest samples forgets everything
            earlier, so (as in standard NeuralUCB practice) each flush
            trains on a sample of the full history instead.
        replay_sample: rows sampled from the replay per training flush.
        minibatch: SGD minibatch size within a training flush.
        tie_tolerance: relative score band within which the *smallest*
            capacity is preferred — conservative behaviour for brokers whose
            reward is flat in their own capacity (demand-limited brokers).
    """

    candidate_capacities: np.ndarray = field(default_factory=_default_capacity_grid)
    hidden_sizes: tuple[int, ...] = (64, 16)
    alpha: float = 0.05
    lam: float = 0.001
    batch_size: int = 16
    learning_rate: float = 0.01
    train_epochs: int = 5
    covariance: str = "diagonal"
    min_arm_pulls: int = 3
    epsilon: float = 0.08
    tie_tolerance: float = 0.05
    train_on: str = "workload"
    replay_size: int = 4096
    replay_sample: int = 1024
    minibatch: int = 64

    def __post_init__(self) -> None:
        self.candidate_capacities = np.asarray(self.candidate_capacities, dtype=float)
        if self.candidate_capacities.size == 0:
            raise ValueError("candidate capacity set must be non-empty")
        if self.covariance not in ("diagonal", "full"):
            raise ValueError(f"covariance must be 'diagonal' or 'full', got {self.covariance!r}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.train_on not in ("capacity", "workload"):
            raise ValueError(f"train_on must be 'capacity' or 'workload', got {self.train_on!r}")
        if not 0.0 <= self.epsilon < 1.0:
            raise ValueError(f"epsilon must be in [0, 1), got {self.epsilon}")


@dataclass
class AssignmentConfig:
    """Hyper-parameters of the capacity-based assignment module (Alg. 2).

    Attributes:
        learning_rate: TD learning rate ``beta`` (paper: 0.25).
        discount: TD discount factor ``gamma`` (paper: 0.9).
        threshold: ``delta`` — value-function refinement only applies to
            brokers whose frequency of reaching capacity exceeds it
            (paper: 0.8).
        use_value_function: ablation switch; ``False`` reduces Alg. 2 to
            capacity-capped per-batch KM.
        use_cbs: enable Candidate Broker Selection (Alg. 3) — the LACB-Opt
            variant.
        matching_backend: ``"repro"`` (from-scratch KM) or ``"scipy"``.
        matching_pad_square: run KM on the full square |B| x |B| graph as
            Sec. VI-B describes (the O(|B|^3) baseline behaviour); off by
            default — the rectangular solver finds the identical matching
            faster, and the square mode exists for the paper's running-time
            comparisons.
        incremental: warm-start consecutive batch solves from the previous
            solve's recorded trajectory
            (:class:`repro.matching.incremental.IncrementalKMSolver`).
            Results are bit-identical to the cold solver; the knob only
            trades memory for repeated-solve speed.  Takes effect with the
            ``"repro"`` backend without square padding, and only while the
            fast kernels are active (``REPRO_REFERENCE_KERNELS=1`` routes
            every solve to the reference cold path).
        utility_cache: attach a :class:`repro.boosting.cache.
            UtilityPredictionCache` to the matcher, for platforms serving
            predictions through :class:`repro.boosting.cache.
            CachedUtilityModel`.  The matcher invalidates the cache after
            each day's value-function/bandit updates (the conservative
            cache-aside contract), so cached rows never outlive the
            learned state they were computed under.
        check: enable this assigner's runtime solver checks (sampled KM
            optimality vs the SciPy oracle, CBS preservation per Theorem 2)
            even when process-wide checking (:mod:`repro.check.runtime`) is
            off.  Violations raise :class:`repro.check.InvariantViolationError`.
            Checks observe only — they never change assignment results.
    """

    learning_rate: float = 0.25
    discount: float = 0.9
    threshold: float = 0.8
    use_value_function: bool = True
    use_cbs: bool = False
    matching_backend: str = "repro"
    matching_pad_square: bool = False
    incremental: bool = False
    utility_cache: bool = False
    check: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in (0, 1], got {self.learning_rate}")
        if not 0.0 <= self.discount <= 1.0:
            raise ValueError(f"discount must be in [0, 1], got {self.discount}")


@dataclass
class LACBConfig:
    """Full LACB configuration: estimation plus assignment (Fig. 5).

    Attributes:
        bandit: capacity-estimation settings (Alg. 1).
        assignment: capacity-based assignment settings (Alg. 2/3).
        personalize: fine-tune a per-broker reward head by layer transfer
            (Sec. V-D); disabling it degrades LACB towards the AN baseline.
        warmup_days: days served before per-broker fine-tuning begins
            (personalization needs some broker-specific triples first).
    """

    bandit: BanditConfig = field(default_factory=BanditConfig)
    assignment: AssignmentConfig = field(default_factory=AssignmentConfig)
    personalize: bool = True
    warmup_days: int = 2
