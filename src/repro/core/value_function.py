"""Capacity-aware value function (Sec. VI-B).

The batched assignment is modeled as an MDP whose per-broker state is the
residual capacity ``cr``.  The paper defines ``V(i, cr)`` — "the expected
utility of the broker after batch i, where cr is the broker's residue
capacity" — learned online by the temporal-difference rule of Eq. 14:

    V(cr) <- V(cr) + beta * (u + gamma * V(cr') - V(cr))

and consumed by the utility refinement of Eq. 15, which charges an edge the
opportunity cost ``gamma * V(cr - 1) - V(cr)`` of spending one unit of a
top broker's scarce residual capacity.

The *time* index matters: one unit of a top broker's capacity is expensive
in the morning (many valuable batches remain) and worthless in the last
batch of the day.  States are therefore ``(time bucket, capacity bucket)``
pairs; the row past the final time bucket is pinned at zero (capacity left
at the end of a day expires worthless), which is what calibrates the
refinement between "reserve for later" and "use it or lose it".

Both axes are bucketed: per-integer states receive too few, too-noisy TD
updates for the Eq. 15 *difference* of neighbouring values to carry signal.
"""

from __future__ import annotations

import numpy as np

from repro.state.protocol import StateError, expect, versioned


class CapacityAwareValueFunction:
    """Tabular ``V`` over (time-of-day, residual-capacity) buckets.

    Args:
        max_state: largest representable residual capacity; states above it
            are clamped (their marginal value is indistinguishable anyway).
        learning_rate: TD step size ``beta`` (paper default 0.25).
        discount: TD discount ``gamma`` (paper default 0.9).
        bucket_size: residual capacities per capacity bucket.
        time_buckets: within-day time resolution.
    """

    def __init__(
        self,
        max_state: int = 200,
        learning_rate: float = 0.25,
        discount: float = 0.9,
        bucket_size: int = 5,
        time_buckets: int = 8,
    ) -> None:
        if max_state <= 0:
            raise ValueError(f"max_state must be positive, got {max_state}")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0.0 <= discount <= 1.0:
            raise ValueError(f"discount must be in [0, 1], got {discount}")
        if bucket_size <= 0 or time_buckets <= 0:
            raise ValueError("bucket_size and time_buckets must be positive")
        self.max_state = max_state
        self.learning_rate = learning_rate
        self.discount = discount
        self.bucket_size = bucket_size
        self.time_buckets = time_buckets
        # Row `time_buckets` is the terminal row, pinned at zero: residual
        # capacity expires worthless at the end of the day.
        self._table = np.zeros((time_buckets + 1, max_state // bucket_size + 1))
        self.num_updates = 0

    # ------------------------------------------------------------------
    # State indexing
    # ------------------------------------------------------------------
    def _capacity_state(self, residual_capacity: float) -> int:
        clipped = np.clip(round(residual_capacity), 0, self.max_state)
        return int(clipped) // self.bucket_size

    def _time_state(self, time_fraction: float) -> int:
        if time_fraction >= 1.0:
            return self.time_buckets  # terminal (zero) row
        return int(np.clip(time_fraction, 0.0, 1.0) * self.time_buckets)

    def value(self, time_fraction: float, residual_capacity: float) -> float:
        """``V(i, cr)`` with clamping to the representable state grid."""
        return float(
            self._table[self._time_state(time_fraction), self._capacity_state(residual_capacity)]
        )

    # ------------------------------------------------------------------
    # Learning (Eq. 14)
    # ------------------------------------------------------------------
    def td_update(
        self,
        time_fraction: float,
        residual_capacity: float,
        reward: float,
        next_time_fraction: float,
        next_residual: float,
    ) -> None:
        """One TD step for a broker that served a request.

        ``V(i, cr) += beta * (u + gamma * V(i', cr') - V(i, cr))`` where
        ``(i', cr')`` is the successor state.  Transitions into
        ``next_time_fraction >= 1`` bootstrap from the zero terminal row.
        """
        time_state = self._time_state(time_fraction)
        if time_state >= self.time_buckets:
            return  # terminal states hold no value by definition
        cap_state = self._capacity_state(residual_capacity)
        target = reward + self.discount * self._table[
            self._time_state(next_time_fraction), self._capacity_state(next_residual)
        ]
        self._table[time_state, cap_state] += self.learning_rate * (
            target - self._table[time_state, cap_state]
        )
        self.num_updates += 1

    def expire_day_end(self, residual_capacity: float) -> None:
        """Terminal update: unused residual capacity expired worthless.

        Pulls the *late-day* value of the expired state toward zero so the
        TD chain learns that capacity cannot be hoarded across days.
        """
        last = self.time_buckets - 1
        cap_state = self._capacity_state(residual_capacity)
        self._table[last, cap_state] += self.learning_rate * (
            0.0 - self._table[last, cap_state]
        )
        self.num_updates += 1

    # ------------------------------------------------------------------
    # Refinement (Eq. 15)
    # ------------------------------------------------------------------
    def refinement(self, time_fraction: float, residual_capacity: float) -> float:
        """The Eq. 15 adjustment: the marginal cost ``V(i, cr-1) - V(i, cr)``.

        Eq. 15 writes ``gamma * V(cr') - V(cr)``, but with a *time-indexed*
        value function the within-day horizon is already encoded by the
        terminal row, and re-applying ``gamma`` adds a ``-(1-gamma) V``
        leak proportional to the value's absolute level — an order of
        magnitude larger than the marginal value of one capacity unit,
        which locks frequently-capped brokers out of matching entirely.
        The pure marginal is the intended opportunity cost: negative when
        one capacity unit carries future value (morning, top broker), zero
        late in the day.  Clamped at zero — spending capacity can never
        *increase* future value, so a positive difference is noise.
        """
        time_state = self._time_state(time_fraction)
        if time_state >= self.time_buckets:
            return 0.0
        current = self._capacity_state(residual_capacity)
        after = self._capacity_state(residual_capacity - 1)
        row = self._table[time_state]
        return min(float(row[after] - row[current]), 0.0)

    def refinement_batch(
        self, time_fraction: float, residual_capacities: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`refinement` over many brokers."""
        time_state = self._time_state(time_fraction)
        residuals = np.asarray(residual_capacities, dtype=float)
        if time_state >= self.time_buckets:
            return np.zeros(residuals.shape)
        states = (
            np.clip(np.round(residuals).astype(int), 0, self.max_state) // self.bucket_size
        )
        after = (
            np.clip(np.round(residuals - 1).astype(int), 0, self.max_state)
            // self.bucket_size
        )
        row = self._table[time_state]
        return np.minimum(row[after] - row[states], 0.0)

    def table(self) -> np.ndarray:
        """A copy of the current value table (for analysis/plots)."""
        return self._table.copy()

    # ------------------------------------------------------------------
    # Durable state (repro.state contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deep snapshot of the value table and update counter."""
        return versioned(
            "core.value_function",
            {"table": self._table.copy(), "num_updates": int(self.num_updates)},
        )

    def restore(self, state) -> None:
        """Reinstall a :meth:`snapshot`; bucketing must match exactly."""
        payload = expect(state, "core.value_function")
        table = np.array(payload["table"], dtype=float)
        if table.shape != self._table.shape:
            raise StateError(
                f"value-function snapshot table shape {table.shape} does not "
                f"match this function's {self._table.shape} (bucketing changed?)"
            )
        self._table = table
        self.num_updates = int(payload["num_updates"])
