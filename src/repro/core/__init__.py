"""The paper's primary contribution: LACB and its building blocks.

- :mod:`~repro.core.types` — brokers, requests, trial triples, assignments;
- :mod:`~repro.core.config` — configuration dataclasses for every knob the
  paper reports (Sec. VII-A);
- :mod:`~repro.core.value_function` — the capacity-aware value function
  ``V(cr)`` with TD updates (Eq. 14) and utility refinement (Eq. 15);
- :mod:`~repro.core.selection` — Candidate Broker Selection (Alg. 3);
- :mod:`~repro.core.vfga` — Value Function Guided Assignment (Alg. 2);
- :mod:`~repro.core.lacb` — the LACB orchestrator combining personalized
  capacity estimation with capacity-based assignment (Fig. 5).
"""

from repro.core.config import (
    AssignmentConfig,
    BanditConfig,
    LACBConfig,
)
from repro.core.selection import candidate_broker_selection, select_candidate_brokers
from repro.core.types import (
    Assignment,
    AssignedPair,
    Broker,
    DayOutcome,
    Request,
    TrialTriple,
)
from repro.core.value_function import CapacityAwareValueFunction
from repro.core.vfga import ValueFunctionGuidedAssigner

__all__ = [
    "AssignedPair",
    "Assignment",
    "AssignmentConfig",
    "BanditConfig",
    "Broker",
    "CapacityAwareValueFunction",
    "DayOutcome",
    "LACBConfig",
    "Request",
    "TrialTriple",
    "ValueFunctionGuidedAssigner",
    "candidate_broker_selection",
    "select_candidate_brokers",
]
