"""Candidate Broker Selection — Alg. 3 (Sec. VI-C).

Theorem 2 / Corollary 1: on an unbalanced bipartite graph ``|R| <= |B|``,
restricting each request to its ``|R|`` highest-utility brokers preserves
at least one optimal assignment.  CBS finds those top-``k`` sets in expected
``O(|B|)`` per request via quickselect with random pivots, so the whole
pruning costs ``O(|R| |B|)`` and the subsequent KM run shrinks from
``O(|B|^3)`` to ``O(|R|^3)`` — the LACB-Opt speedup.
"""

from __future__ import annotations

import numpy as np

from repro import perf

#: Pivot stream for the quickselect reference path of
#: :func:`select_candidate_brokers`.  Quickselect's *output* is provably
#: pivot-independent (see :func:`topk_selection_mask`), so batch pruning
#: draws its pivots from this private stream instead of the caller's
#: generator — both kernel modes then leave the engine's RNG untouched and
#: seeded runs are bit-identical whichever mode is active.
_PIVOT_SEED = 0


def candidate_broker_selection(
    utilities: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Indices of the ``k`` largest entries (Alg. 3, ``Top_k^r``).

    Iterative quickselect with random pivots, three-way partitioned so
    duplicate utilities cannot cause quadratic blow-up.  The returned index
    set is unordered (any ``Top_k`` set works for Theorem 2).

    Args:
        utilities: ``(|B|,)`` utility row of one request.
        k: candidate set size; when ``k >= |B|`` all brokers are returned
            (Alg. 3 lines 1-3).
        rng: pivot randomness.
    """
    utilities = np.asarray(utilities, dtype=float)
    if utilities.ndim != 1:
        raise ValueError(f"expected a 1-D utility row, got shape {utilities.shape}")
    if not np.all(np.isfinite(utilities)):
        # A NaN pivot makes all three partitions empty (every comparison is
        # False), so the selection loop would never shrink its candidate
        # set; infinities break the top-k ordering contract the same way.
        raise ValueError("utilities must be finite (got NaN or infinity)")
    if k <= 0:
        return np.empty(0, dtype=int)
    candidates = np.arange(utilities.size)
    if k >= utilities.size:
        return candidates

    chosen: list[np.ndarray] = []
    needed = k
    while needed > 0:
        if candidates.size <= needed:
            chosen.append(candidates)
            break
        pivot = utilities[candidates[rng.integers(candidates.size)]]
        values = utilities[candidates]
        greater = candidates[values > pivot]   # LC without ties
        equal = candidates[values == pivot]
        if greater.size >= needed:
            candidates = greater               # recurse into LC (line 8)
            continue
        chosen.append(greater)                 # take LC, fill from the rest (line 11)
        needed -= greater.size
        if equal.size >= needed:
            chosen.append(equal[:needed])
            break
        chosen.append(equal)
        needed -= equal.size
        candidates = candidates[values < pivot]
    return np.concatenate(chosen) if chosen else np.empty(0, dtype=int)


def topk_selection_mask(utilities: np.ndarray, k: int) -> np.ndarray:
    """Boolean ``Top_k`` membership per row, vectorized over the matrix.

    The ``np.argpartition``-style fast kernel of Alg. 3: one
    ``np.partition`` pass finds every row's boundary (the ``k``-th largest
    value), membership is then "strictly above the boundary, plus the
    lowest-indexed ties at the boundary until ``k`` entries are reached".

    That tie rule makes the mask *exactly* the set quickselect returns:
    :func:`candidate_broker_selection` filters an index-sorted candidate
    array, so whatever pivots are drawn it keeps every strictly-greater
    index and fills the remainder with the lowest-indexed boundary ties —
    its output never depends on the pivot sequence.  The property suites
    in :mod:`repro.check.differential` pin this equality.

    Args:
        utilities: ``(|R|, |B|)`` finite utility matrix.
        k: per-row candidate size.

    Returns:
        ``(|R|, |B|)`` boolean membership mask with ``min(k, |B|)`` true
        entries per row.
    """
    utilities = np.asarray(utilities, dtype=float)
    if utilities.ndim != 2:
        raise ValueError(f"expected a 2-D utility matrix, got shape {utilities.shape}")
    if not np.all(np.isfinite(utilities)):
        raise ValueError("utilities must be finite (got NaN or infinity)")
    n_rows, n_cols = utilities.shape
    if k <= 0 or n_cols == 0:
        return np.zeros((n_rows, n_cols), dtype=bool)
    if k >= n_cols:
        return np.ones((n_rows, n_cols), dtype=bool)
    boundary = np.partition(utilities, n_cols - k, axis=1)[:, n_cols - k]
    greater = utilities > boundary[:, None]
    need = k - greater.sum(axis=1)
    ties = utilities == boundary[:, None]
    ties &= np.cumsum(ties, axis=1) <= need[:, None]
    return greater | ties


def select_candidate_brokers(
    utilities: np.ndarray,
    k: int,
    rng: np.random.Generator,
    method: str | None = None,
) -> np.ndarray:
    """Union of per-request candidate sets over a batch (Sec. VI-C).

    ``U_r Top_k^r`` — the pruned broker pool on which LACB-Opt runs KM.

    Two kernels produce the identical union (selected by ``method``, or by
    :mod:`repro.perf` when omitted): ``"argpartition"`` — the vectorized
    :func:`topk_selection_mask` over the whole matrix, the default — and
    ``"quickselect"`` — per-row :func:`candidate_broker_selection`, the
    Theorem-2 reference.  Neither consumes the caller's generator: the
    reference draws its pivots from a private stream because quickselect's
    output is pivot-independent (see :func:`topk_selection_mask`), so runs
    are bit-identical whichever kernel is active.

    Args:
        utilities: ``(|R|, |B|)`` predicted utility matrix of one batch.
        k: per-request candidate size (Corollary 1 uses ``k = |R|``).
        rng: accepted for API stability; no longer consumed (see above).
        method: ``"argpartition"``, ``"quickselect"``, or ``None`` for the
            process-wide kernel mode.

    Returns:
        Sorted unique broker indices participating in the pruned graph.
    """
    utilities = np.asarray(utilities, dtype=float)
    if utilities.ndim != 2:
        raise ValueError(f"expected a 2-D utility matrix, got shape {utilities.shape}")
    if method is None:
        method = "argpartition" if perf.fast_kernels_enabled() else "quickselect"
    if method == "argpartition":
        mask = topk_selection_mask(utilities, k)
        return np.flatnonzero(mask.any(axis=0))
    if method != "quickselect":
        raise ValueError(
            f"method must be 'argpartition' or 'quickselect', got {method!r}"
        )
    pivot_rng = np.random.default_rng(_PIVOT_SEED)
    selected: set[int] = set()
    for row in utilities:
        selected.update(int(i) for i in candidate_broker_selection(row, k, pivot_rng))
    return np.array(sorted(selected), dtype=int)
