"""Candidate Broker Selection — Alg. 3 (Sec. VI-C).

Theorem 2 / Corollary 1: on an unbalanced bipartite graph ``|R| <= |B|``,
restricting each request to its ``|R|`` highest-utility brokers preserves
at least one optimal assignment.  CBS finds those top-``k`` sets in expected
``O(|B|)`` per request via quickselect with random pivots, so the whole
pruning costs ``O(|R| |B|)`` and the subsequent KM run shrinks from
``O(|B|^3)`` to ``O(|R|^3)`` — the LACB-Opt speedup.
"""

from __future__ import annotations

import numpy as np


def candidate_broker_selection(
    utilities: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Indices of the ``k`` largest entries (Alg. 3, ``Top_k^r``).

    Iterative quickselect with random pivots, three-way partitioned so
    duplicate utilities cannot cause quadratic blow-up.  The returned index
    set is unordered (any ``Top_k`` set works for Theorem 2).

    Args:
        utilities: ``(|B|,)`` utility row of one request.
        k: candidate set size; when ``k >= |B|`` all brokers are returned
            (Alg. 3 lines 1-3).
        rng: pivot randomness.
    """
    utilities = np.asarray(utilities, dtype=float)
    if utilities.ndim != 1:
        raise ValueError(f"expected a 1-D utility row, got shape {utilities.shape}")
    if not np.all(np.isfinite(utilities)):
        # A NaN pivot makes all three partitions empty (every comparison is
        # False), so the selection loop would never shrink its candidate
        # set; infinities break the top-k ordering contract the same way.
        raise ValueError("utilities must be finite (got NaN or infinity)")
    if k <= 0:
        return np.empty(0, dtype=int)
    candidates = np.arange(utilities.size)
    if k >= utilities.size:
        return candidates

    chosen: list[np.ndarray] = []
    needed = k
    while needed > 0:
        if candidates.size <= needed:
            chosen.append(candidates)
            break
        pivot = utilities[candidates[rng.integers(candidates.size)]]
        values = utilities[candidates]
        greater = candidates[values > pivot]   # LC without ties
        equal = candidates[values == pivot]
        if greater.size >= needed:
            candidates = greater               # recurse into LC (line 8)
            continue
        chosen.append(greater)                 # take LC, fill from the rest (line 11)
        needed -= greater.size
        if equal.size >= needed:
            chosen.append(equal[:needed])
            break
        chosen.append(equal)
        needed -= equal.size
        candidates = candidates[values < pivot]
    return np.concatenate(chosen) if chosen else np.empty(0, dtype=int)


def select_candidate_brokers(
    utilities: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Union of per-request candidate sets over a batch (Sec. VI-C).

    ``U_r Top_k^r`` — the pruned broker pool on which LACB-Opt runs KM.

    Args:
        utilities: ``(|R|, |B|)`` predicted utility matrix of one batch.
        k: per-request candidate size (Corollary 1 uses ``k = |R|``).
        rng: pivot randomness.

    Returns:
        Sorted unique broker indices participating in the pruned graph.
    """
    utilities = np.asarray(utilities, dtype=float)
    if utilities.ndim != 2:
        raise ValueError(f"expected a 2-D utility matrix, got shape {utilities.shape}")
    selected: set[int] = set()
    for row in utilities:
        selected.update(int(i) for i in candidate_broker_selection(row, k, rng))
    return np.array(sorted(selected), dtype=int)
