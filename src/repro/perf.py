"""Fast-vs-reference kernel switch for the vectorized hot paths.

Two inner loops dominate a day-loop run at city scale: NN-UCB arm scoring
(one per-sample parameter gradient per candidate capacity per broker per
day, :mod:`repro.bandits.neural_ucb`) and Candidate Broker Selection
(one quickselect per request row per batch, :mod:`repro.core.selection`).
Both now ship in two implementations:

* the **fast** kernels — batched NumPy passes (:meth:`repro.nn.MLP.
  param_gradients`, the ``argpartition`` top-k mask) — the default;
* the **reference** kernels — the original per-sample / per-row code,
  retained verbatim as the differential oracle the :mod:`repro.check`
  suites cross-validate against.

Both kernels consume no randomness, so a seeded run is bit-identical in
either mode (CBS selection sets are *exactly* equal; UCB scores agree to
floating-point round-off, which the differential suites bound, and the
covariance update always uses the per-sample gradient so the bandit state
evolves identically).  ``benchmarks/test_hotpath.py`` enforces both the
equivalence and the speedup.

The switch is process-wide.  :func:`set_fast_kernels` flips it in-process;
the ``REPRO_REFERENCE_KERNELS=1`` environment variable flips it at import
time — use the environment variable when running with ``--jobs N`` so
worker processes inherit the mode.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

#: Environment flag forcing the reference kernels process-wide.
ENV_FLAG = "REPRO_REFERENCE_KERNELS"

_TRUTHY = ("1", "true", "yes", "on")

_fast = os.environ.get(ENV_FLAG, "").strip().lower() not in _TRUTHY


def fast_kernels_enabled() -> bool:
    """Whether the vectorized fast paths are active (the default)."""
    return _fast


def set_fast_kernels(enabled: bool) -> None:
    """Select the fast (``True``) or reference (``False``) kernels."""
    global _fast
    _fast = bool(enabled)


@contextmanager
def use_fast_kernels(enabled: bool):
    """Temporarily select a kernel mode (restores the previous one)."""
    global _fast
    previous = _fast
    _fast = bool(enabled)
    try:
        yield
    finally:
        _fast = previous


def reference_kernels():
    """Context manager running its body on the reference kernels."""
    return use_fast_kernels(False)
