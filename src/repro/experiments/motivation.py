"""The Sec. II measurement study, reproduced on simulated traces.

The paper motivates capacity-aware assignment with three measurements on
Beike data, all taken *under the incumbent top-k recommendation*:

- Fig. 2 — city-level average sign-up rate vs. daily workload, dropping
  sharply past ~40 requests/day (Welch's t-test, p < 0.0001);
- Fig. 3 — per-broker sign-up curves of the most-loaded brokers:
  non-linear, broker-specific, best inside an accustomed workload area;
- Fig. 4 — the workload distribution of the top brokers vs. the city
  average (top-1 at 12.03x the average in City A).

We regenerate all three by running Top-K recommendation on a simulated
city and observing the same statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.algorithms import make_matcher
from repro.experiments.runner import run_algorithm
from repro.simulation.platform import RealEstatePlatform


@dataclass
class SignupWorkloadStudy:
    """Fig. 2 data: binned sign-up rate vs. daily workload for one city.

    Attributes:
        bin_centers: workload bin centers (requests/day).
        mean_signup: average observed daily sign-up rate per bin.
        count: broker-day observations per bin.
        low_band / high_band: (min, max) of binned rates below / at-or-above
            the overload threshold — the paper's "14.3~27.5%" vs
            "2.5~17.8%" bands.
        welch_p_value: Welch's t-test p-value between the below- and
            above-threshold observations.
    """

    bin_centers: np.ndarray
    mean_signup: np.ndarray
    count: np.ndarray
    low_band: tuple[float, float]
    high_band: tuple[float, float]
    welch_p_value: float


def signup_vs_workload(
    platform: RealEstatePlatform,
    seed: int = 0,
    bin_width: int = 5,
    overload_threshold: float = 40.0,
    algorithm: str = "Top-3",
) -> SignupWorkloadStudy:
    """Reproduce Fig. 2 for one city under top-k recommendation.

    Args:
        platform: the city environment.
        seed: matcher seed.
        bin_width: workload bin width (requests/day).
        overload_threshold: the workload the paper flags as overload onset.
        algorithm: incumbent mechanism generating the trace.
    """
    matcher = make_matcher(algorithm, platform, seed=seed)
    result = run_algorithm(platform, matcher, store_outcomes=True)
    workloads: list[float] = []
    signups: list[float] = []
    for outcome in result.outcomes:
        served = outcome.workloads > 0
        workloads.extend(outcome.workloads[served].tolist())
        signups.extend(outcome.signup_rates[served].tolist())
    workloads_arr = np.asarray(workloads, dtype=float)
    signups_arr = np.asarray(signups, dtype=float)

    max_bin = int(np.ceil(workloads_arr.max() / bin_width)) if workloads_arr.size else 1
    centers, means, counts = [], [], []
    for index in range(max_bin):
        low, high = index * bin_width, (index + 1) * bin_width
        mask = (workloads_arr >= low) & (workloads_arr < high)
        if not mask.any():
            continue
        centers.append((low + high) / 2.0)
        means.append(float(signups_arr[mask].mean()))
        counts.append(int(mask.sum()))
    centers_arr = np.asarray(centers)
    means_arr = np.asarray(means)

    below = signups_arr[workloads_arr < overload_threshold]
    above = signups_arr[workloads_arr >= overload_threshold]
    if below.size > 1 and above.size > 1:
        welch = float(stats.ttest_ind(below, above, equal_var=False).pvalue)
    else:
        welch = float("nan")
    low_mask = centers_arr < overload_threshold
    low_rates = means_arr[low_mask]
    high_rates = means_arr[~low_mask]
    return SignupWorkloadStudy(
        bin_centers=centers_arr,
        mean_signup=means_arr,
        count=np.asarray(counts),
        low_band=(float(low_rates.min()), float(low_rates.max())) if low_rates.size else (0.0, 0.0),
        high_band=(float(high_rates.min()), float(high_rates.max())) if high_rates.size else (0.0, 0.0),
        welch_p_value=welch,
    )


@dataclass
class BrokerCurve:
    """Fig. 3 data: one top broker's workload-response relationship.

    Attributes:
        broker_id: the broker.
        workload_grid: probe workloads.
        expected_signup: ground-truth expected sign-up rate per workload.
        observed_workloads / observed_signups: the broker's actual
            broker-day observations under the incumbent mechanism.
        accustomed_workload: the curve's peak (the "light area" of Fig. 3).
    """

    broker_id: int
    workload_grid: np.ndarray
    expected_signup: np.ndarray
    observed_workloads: np.ndarray
    observed_signups: np.ndarray
    accustomed_workload: float


def top_broker_curves(
    platform: RealEstatePlatform,
    seed: int = 0,
    top_n: int = 21,
    algorithm: str = "Top-3",
) -> list[BrokerCurve]:
    """Reproduce Fig. 3: per-broker curves of the most-loaded brokers."""
    matcher = make_matcher(algorithm, platform, seed=seed)
    result = run_algorithm(platform, matcher, store_outcomes=True)
    busiest = np.argsort(result.broker_workload)[::-1][:top_n]
    grid = np.arange(1, 81)
    curves = []
    for broker_id in busiest:
        broker_id = int(broker_id)
        observed_w, observed_s = [], []
        for outcome in result.outcomes:
            if outcome.workloads[broker_id] > 0:
                observed_w.append(float(outcome.workloads[broker_id]))
                observed_s.append(float(outcome.signup_rates[broker_id]))
        expected = platform.signup_rate_curve(broker_id, grid)
        curves.append(
            BrokerCurve(
                broker_id=broker_id,
                workload_grid=grid,
                expected_signup=expected,
                observed_workloads=np.asarray(observed_w),
                observed_signups=np.asarray(observed_s),
                accustomed_workload=float(grid[int(np.argmax(expected))]),
            )
        )
    return curves


@dataclass
class WorkloadConcentration:
    """Fig. 4 data: top-broker workload concentration under top-k.

    Attributes:
        top_workloads: mean daily workloads of the top brokers, descending.
        city_average: mean daily workload over active brokers.
        top1_ratio: top-1 broker's workload over the city average (the
            paper reports 12.03x in City A).
        above_sweet_spot: how many of the top brokers exceed the
            population's typical accustomed workload (the black box of
            Fig. 4).
    """

    top_workloads: np.ndarray
    city_average: float
    top1_ratio: float
    above_sweet_spot: int


def workload_concentration(
    platform: RealEstatePlatform,
    seed: int = 0,
    top_n: int = 200,
    algorithm: str = "Top-3",
) -> WorkloadConcentration:
    """Reproduce Fig. 4: the unbalanced workload distribution of top-k."""
    matcher = make_matcher(algorithm, platform, seed=seed)
    result = run_algorithm(platform, matcher)
    ordered = np.sort(result.broker_workload)[::-1]
    active = result.broker_workload[result.broker_workload > 0]
    city_average = float(active.mean()) if active.size else 0.0
    top = ordered[: min(top_n, ordered.size)]
    sweet_spot = float(np.median(platform.latent_capacities))
    return WorkloadConcentration(
        top_workloads=top,
        city_average=city_average,
        top1_ratio=float(top[0] / city_average) if city_average > 0 else 0.0,
        above_sweet_spot=int(np.sum(top > sweet_spot)),
    )
