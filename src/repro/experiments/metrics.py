"""Metrics reported in the paper's evaluation (Sec. VII).

Covers the quantities behind Figs. 8-11 and the Sec. VII-D summary:
total utility, per-broker utility and workload distributions, the fraction
of brokers improved against a baseline, overload rates against latent
capacities, and the Gini coefficient quantifying the Matthew effect.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import RunResult


def utility_distribution(result: RunResult, top_n: int | None = None) -> np.ndarray:
    """Per-broker realized utilities, sorted descending (Fig. 9's x-axis).

    Args:
        result: one algorithm's run result.
        top_n: keep only the ``top_n`` highest-utility brokers (the paper
            plots top brokers; the rest follow a similar long tail).
    """
    ordered = np.sort(result.broker_utility)[::-1]
    return ordered[:top_n] if top_n is not None else ordered


def workload_distribution(result: RunResult, top_n: int | None = None) -> np.ndarray:
    """Per-broker mean daily workloads, sorted descending (Fig. 10 / Fig. 4)."""
    ordered = np.sort(result.broker_workload)[::-1]
    return ordered[:top_n] if top_n is not None else ordered


def fraction_improved(result: RunResult, baseline: RunResult, atol: float = 1e-12) -> float:
    """Fraction of brokers whose utility strictly improved over a baseline.

    The Sec. VII-D summary reports 72.0%-82.2% of brokers improved under
    LACB versus Top-K.  Brokers inactive under both algorithms are excluded
    (their utility is identically zero either way).
    """
    ours = result.broker_utility
    theirs = baseline.broker_utility
    active = (ours > atol) | (theirs > atol)
    if not np.any(active):
        return 0.0
    return float(np.mean(ours[active] > theirs[active] + atol))


def fraction_degraded(result: RunResult, baseline: RunResult, atol: float = 1e-12) -> float:
    """Fraction of brokers whose utility strictly dropped vs a baseline.

    Fig. 9's RR analysis: RR decreases the utility of 25.7% of brokers
    compared with Top-K.
    """
    ours = result.broker_utility
    theirs = baseline.broker_utility
    active = (ours > atol) | (theirs > atol)
    if not np.any(active):
        return 0.0
    return float(np.mean(ours[active] < theirs[active] - atol))


def overload_rate(result: RunResult, latent_capacities: np.ndarray) -> float:
    """Fraction of brokers whose *peak* daily workload exceeded capacity.

    Measures how exposed an algorithm leaves its brokers to the overloaded
    phenomenon (Fig. 10's message: Top-K highest, LACB lowest among
    non-degenerate algorithms).
    """
    latent_capacities = np.asarray(latent_capacities, dtype=float)
    if latent_capacities.shape != result.broker_peak_workload.shape:
        raise ValueError("capacity vector does not match the broker pool")
    return float(np.mean(result.broker_peak_workload > latent_capacities))


def overload_severity(result: RunResult, latent_capacities: np.ndarray) -> float:
    """Total peak workload in excess of latent capacity, per broker.

    The quantity behind Fig. 10's "top brokers in LACB are at low risk of
    overload": Top-K drives a few stars *far* past capacity (large excess),
    while capacity-aware matchers run many brokers close to — occasionally
    a little over — their capacity (small excess).  The plain fraction of
    brokers ever exceeding capacity (:func:`overload_rate`) cannot tell
    those two regimes apart.
    """
    latent_capacities = np.asarray(latent_capacities, dtype=float)
    if latent_capacities.shape != result.broker_peak_workload.shape:
        raise ValueError("capacity vector does not match the broker pool")
    excess = np.maximum(result.broker_peak_workload - latent_capacities, 0.0)
    return float(excess.mean())


def top_broker_load_ratio(result: RunResult) -> float:
    """Top-1 broker's mean workload over the active-broker average.

    Sec. II-B reports 12.03x for Top-K recommendation in City A.
    """
    workloads = result.broker_workload
    active = workloads > 0
    if not np.any(active):
        return 0.0
    return float(workloads.max() / workloads[active].mean())


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative distribution (Matthew effect).

    0 = perfectly even, 1 = everything on one broker.
    """
    values = np.sort(np.asarray(values, dtype=float))
    if values.size == 0:
        raise ValueError("gini() needs at least one value")
    if np.any(values < 0):
        raise ValueError("gini() expects non-negative values")
    total = values.sum()
    if total == 0:
        return 0.0
    ranks = np.arange(1, values.size + 1)
    return float((2.0 * np.sum(ranks * values) / (values.size * total)) - (values.size + 1) / values.size)


def jain_index(values: np.ndarray) -> float:
    """Jain's fairness index of a non-negative distribution.

    ``(sum x)^2 / (n * sum x^2)`` — 1 when perfectly even, ``1/n`` when one
    broker takes everything.  The complementary fairness lens to
    :func:`gini` for the RR comparison of Fig. 9.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("jain_index() needs at least one value")
    if np.any(values < 0):
        raise ValueError("jain_index() expects non-negative values")
    squares = float(np.sum(values**2))
    if squares == 0:
        return 1.0
    return float(np.sum(values) ** 2 / (values.size * squares))


def speedup(result: RunResult, baseline: RunResult) -> float:
    """Decision-time speedup of ``result`` over ``baseline``.

    The Fig. 8/11 running-time comparisons (e.g. LACB-Opt is 16.4x-1091.9x
    faster than the KM-based algorithms on synthetic datasets).
    """
    if result.decision_time <= 0:
        return float("inf")
    return baseline.decision_time / result.decision_time
