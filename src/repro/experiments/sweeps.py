"""Fig. 8 parameter sweeps on the Table III synthetic grid.

Each sweep varies one factor (number of brokers, number of requests,
covering days, degree of imbalance) and reports, per algorithm, the total
realized utility of a full run and the decision time.

Running time is reproduced at two granularities:

- the *full-run* decision time inside each sweep (all algorithms on the
  efficient rectangular matcher — identical matchings, feasible wall
  clock), and
- :func:`matching_time_profile`, a per-batch microbenchmark where the
  KM-based algorithms solve the square-padded ``|B| x |B|`` instance the
  paper describes while LACB-Opt prunes with CBS first — this is what
  regenerates the paper's 16.4x-1091.9x speedup factors without running
  cubic solves for an entire horizon.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.selection import select_candidate_brokers
from repro.engine import MatcherSpec, PlatformSpec, RunSpec, run_many
from repro.matching import solve_assignment
from repro.simulation.datasets import SyntheticConfig

#: Factor names accepted by :func:`sweep` (the four Fig. 8 columns).
SWEEP_FACTORS = ("num_brokers", "num_requests", "num_days", "imbalance")

#: Default algorithm set of the Fig. 8 comparison.
DEFAULT_ALGORITHMS = ("Top-1", "Top-3", "RR", "KM", "CTop-1", "CTop-3", "AN", "LACB", "LACB-Opt")


@dataclass
class SweepResult:
    """One Fig. 8 column: a factor swept over several values.

    Attributes:
        factor: the swept factor name.
        values: the factor values.
        utilities: per algorithm, total realized utility at each value.
        times: per algorithm, full-run decision seconds at each value.
    """

    factor: str
    values: list[float]
    utilities: dict[str, list[float]] = field(default_factory=dict)
    times: dict[str, list[float]] = field(default_factory=dict)


def sweep_specs(
    factor: str,
    values: list,
    base_config: SyntheticConfig,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    seed: int = 7,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> list[RunSpec]:
    """Build the declarative run grid of one Fig. 8 column.

    Specs are ordered value-major (all algorithms on one instance before
    the next value), so consecutive specs share a platform and the
    executor's per-process instance cache stays hot.

    Args:
        checkpoint_dir: when set, every spec checkpoints its day-boundary
            state under its own ``checkpoint_dir/<run_id>`` store (the
            per-spec ``run_id`` keeps grid cells from colliding, also
            under ``jobs > 1``).
        resume: continue each spec from its latest checkpoint, if any.
    """
    if factor not in SWEEP_FACTORS:
        raise ValueError(f"unknown factor {factor!r}; choose from {SWEEP_FACTORS}")
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")
    specs: list[RunSpec] = []
    for value in values:
        config = replace(base_config, **{factor: value})
        platform_spec = PlatformSpec.synthetic(config)
        for name in algorithms:
            specs.append(
                RunSpec(
                    platform=platform_spec,
                    matcher=MatcherSpec(name, seed=seed),
                    tag=f"{factor}={value}",
                    checkpoint_dir=checkpoint_dir,
                    resume_from=checkpoint_dir if resume else None,
                )
            )
    return specs


def sweep(
    factor: str,
    values: list,
    base_config: SyntheticConfig,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    seed: int = 7,
    jobs: int = 1,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> SweepResult:
    """Run one Fig. 8 column.

    Args:
        factor: one of :data:`SWEEP_FACTORS`.
        values: factor values (Table III rows).
        base_config: the synthetic city config to perturb.
        algorithms: algorithm names to compare.
        seed: matcher seed (instance seeds come from the config).
        jobs: worker processes for the run grid (1 = serial; results are
            bit-identical either way, see :func:`repro.engine.run_many`).
        checkpoint_dir / resume: durable day-boundary state per grid cell;
            see :func:`sweep_specs`.
    """
    specs = sweep_specs(
        factor,
        values,
        base_config,
        algorithms=algorithms,
        seed=seed,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    runs = run_many(specs, jobs=jobs)
    result = SweepResult(factor=factor, values=[float(v) for v in values])
    for name in algorithms:
        result.utilities[name] = []
        result.times[name] = []
    for index, run in enumerate(runs):
        name = algorithms[index % len(algorithms)]
        result.utilities[name].append(run.total_realized_utility)
        result.times[name].append(run.decision_time)
    return result


@dataclass
class MatchingTimeProfile:
    """Per-batch matching cost of the paper's implementations.

    Attributes:
        num_brokers: broker-side size ``|B|``.
        batch_size: request-side size ``|R|`` of the batch.
        km_square_seconds: one KM solve on the square-padded graph (the
            KM / AN / LACB implementation of Sec. VI-B).
        cbs_km_seconds: CBS pruning plus KM on the reduced graph (the
            LACB-Opt implementation of Sec. VI-C).
        speedup: their ratio — the paper's headline acceleration.
    """

    num_brokers: int
    batch_size: int
    km_square_seconds: float
    cbs_km_seconds: float

    @property
    def speedup(self) -> float:
        """KM-square time over CBS+KM time."""
        if self.cbs_km_seconds <= 0:
            return float("inf")
        return self.km_square_seconds / self.cbs_km_seconds


def matching_time_profile(
    num_brokers: int,
    batch_size: int,
    seed: int = 0,
    repeats: int = 3,
) -> MatchingTimeProfile:
    """Measure one batch's matching cost under both implementations."""
    rng = np.random.default_rng(seed)
    utilities = rng.uniform(0.0, 1.0, size=(batch_size, num_brokers))

    square_times = []
    for _ in range(repeats):
        tick = time.perf_counter()
        solve_assignment(utilities, pad_square=True)
        square_times.append(time.perf_counter() - tick)

    cbs_times = []
    for _ in range(repeats):
        tick = time.perf_counter()
        chosen = select_candidate_brokers(utilities, batch_size, rng)
        solve_assignment(utilities[:, chosen])
        cbs_times.append(time.perf_counter() - tick)

    return MatchingTimeProfile(
        num_brokers=num_brokers,
        batch_size=batch_size,
        km_square_seconds=float(np.median(square_times)),
        cbs_km_seconds=float(np.median(cbs_times)),
    )
