"""Terminal figure rendering — the paper's plots without a plotting stack.

The benches regenerate every figure's *data*; this module renders those
series as compact ASCII charts so a terminal run of the suite (or the CLI)
shows the curve shapes themselves, not just tables.  No external plotting
dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

#: Glyphs assigned to series in order.
SERIES_GLYPHS = "ox*+#@%&"


def ascii_chart(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 14,
    title: str | None = None,
    log_y: bool = False,
) -> str:
    """Render one or more (x, y) series as an ASCII scatter/line chart.

    Args:
        x_values: shared x coordinates.
        series: name -> y values (each the same length as ``x_values``).
        width / height: plot-area size in characters.
        title: optional heading line.
        log_y: log-scale the y axis (requires positive values).

    Returns:
        The chart as a multi-line string with axes and a legend.
    """
    x = np.asarray(x_values, dtype=float)
    if x.size < 2:
        raise ValueError("a chart needs at least two x values")
    if not series:
        raise ValueError("at least one series is required")
    if len(series) > len(SERIES_GLYPHS):
        raise ValueError(f"at most {len(SERIES_GLYPHS)} series are supported")
    if width < 16 or height < 4:
        raise ValueError("width must be >= 16 and height >= 4")
    for name, values in series.items():
        if len(values) != x.size:
            raise ValueError(f"series {name!r} length {len(values)} != {x.size}")

    all_y = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    if log_y:
        if np.any(all_y <= 0):
            raise ValueError("log_y requires strictly positive values")
        transform = np.log10
    else:
        transform = lambda v: np.asarray(v, dtype=float)  # noqa: E731

    y_low = float(transform(all_y).min())
    y_high = float(transform(all_y).max())
    if y_high == y_low:
        y_high = y_low + 1.0
    x_low, x_high = float(x.min()), float(x.max())

    grid = [[" "] * width for _ in range(height)]

    def _col(value: float) -> int:
        return int(round((value - x_low) / (x_high - x_low) * (width - 1)))

    def _row(value: float) -> int:
        fraction = (value - y_low) / (y_high - y_low)
        return int(round((1.0 - fraction) * (height - 1)))

    for glyph, (name, values) in zip(SERIES_GLYPHS, series.items()):
        y = transform(np.asarray(values, dtype=float))
        columns = [_col(v) for v in x]
        rows = [_row(v) for v in y]
        # Connect consecutive points with interpolated marks.
        for (c0, r0), (c1, r1) in zip(zip(columns, rows), zip(columns[1:], rows[1:])):
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for step in range(steps + 1):
                fraction = step / steps
                col = int(round(c0 + fraction * (c1 - c0)))
                row = int(round(r0 + fraction * (r1 - r0)))
                if grid[row][col] == " " or step in (0, steps):
                    grid[row][col] = glyph

    def _fmt(value: float) -> str:
        raw = 10**value if log_y else value
        if abs(raw) >= 1000 or (abs(raw) < 0.01 and raw != 0):
            return f"{raw:.1e}"
        return f"{raw:.4g}"

    label_width = max(len(_fmt(y_high)), len(_fmt(y_low)))
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        if index == 0:
            label = _fmt(y_high)
        elif index == height - 1:
            label = _fmt(y_low)
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |{''.join(row)}")
    lines.append(f"{'':>{label_width}} +{'-' * width}")
    x_axis = f"{_fmt(x_low) if not log_y else x_low:<{width // 2}}{_fmt(x_high) if not log_y else x_high:>{width // 2}}"
    lines.append(f"{'':>{label_width}}  {x_axis}")
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(SERIES_GLYPHS, series.keys())
    )
    lines.append(f"{'':>{label_width}}  {legend}")
    return "\n".join(lines)


def ascii_histogram(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    title: str | None = None,
) -> str:
    """Render labelled values as a horizontal bar chart.

    Args:
        labels: one label per bar.
        values: non-negative bar lengths.
        width: maximum bar width in characters.
        title: optional heading line.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("at least one bar is required")
    values_arr = np.asarray(values, dtype=float)
    if np.any(values_arr < 0):
        raise ValueError("histogram values must be non-negative")
    peak = float(values_arr.max()) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values_arr):
        bar = "#" * int(round(value / peak * width))
        lines.append(f"{str(label):>{label_width}} |{bar} {value:.4g}")
    return "\n".join(lines)
