"""Drive matchers through platform environments and collect results."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import Matcher
from repro.core.types import Assignment, DayOutcome
from repro.simulation.platform import RealEstatePlatform


@dataclass
class RunResult:
    """Everything measured over one algorithm's run on one instance.

    Attributes:
        algorithm: the matcher's display name.
        total_realized_utility: sum of workload-degraded realized utility
            over all brokers and days — the paper's "total utility" axis.
        total_predicted_utility: sum of input utilities over matched pairs
            (the objective of Eq. 1; useful to contrast with realized).
        daily_utility: ``(days,)`` realized utility per day.
        broker_utility: ``(|B|,)`` realized utility per broker over the run.
        broker_workload: ``(|B|,)`` mean daily workload per broker.
        broker_peak_workload: ``(|B|,)`` max daily workload per broker.
        broker_signup: ``(|B|,)`` mean daily sign-up rate over served days.
        decision_time: seconds spent inside the matcher (the paper's
            running-time axis measures algorithm time, not environment time).
        daily_decision_time: ``(days,)`` per-day matcher seconds.
        num_assigned: total matched request count.
        outcomes: the raw day outcomes (kept only when requested).
        assignments: the per-pair assignment log (kept only when requested;
            the raw material for trace export and utility-model training).
    """

    algorithm: str
    total_realized_utility: float
    total_predicted_utility: float
    daily_utility: np.ndarray
    broker_utility: np.ndarray
    broker_workload: np.ndarray
    broker_peak_workload: np.ndarray
    broker_signup: np.ndarray
    decision_time: float
    daily_decision_time: np.ndarray
    num_assigned: int
    outcomes: list[DayOutcome] = field(default_factory=list)
    assignments: list[Assignment] = field(default_factory=list)


def run_algorithm(
    platform: RealEstatePlatform,
    matcher: Matcher,
    store_outcomes: bool = False,
    store_assignments: bool = False,
) -> RunResult:
    """Run one matcher over the platform's whole horizon.

    The platform is reset first, so repeated calls on the same instance are
    independent and face identical request streams and utility inputs.
    """
    platform.reset()
    num_days = platform.num_days
    num_brokers = platform.num_brokers
    daily_utility = np.zeros(num_days)
    daily_time = np.zeros(num_days)
    broker_utility = np.zeros(num_brokers)
    workload_sum = np.zeros(num_brokers)
    workload_peak = np.zeros(num_brokers)
    signup_sum = np.zeros(num_brokers)
    signup_days = np.zeros(num_brokers)
    predicted_total = 0.0
    num_assigned = 0
    outcomes: list[DayOutcome] = []
    assignments: list[Assignment] = []

    for day in range(num_days):
        contexts = platform.start_day(day)
        tick = time.perf_counter()
        matcher.begin_day(day, contexts)
        daily_time[day] += time.perf_counter() - tick
        for batch in range(platform.batches_per_day):
            request_ids = platform.batch_requests(day, batch)
            if request_ids.size == 0:
                continue
            utilities = platform.predicted_utilities(request_ids)
            tick = time.perf_counter()
            assignment = matcher.assign_batch(day, batch, request_ids, utilities)
            daily_time[day] += time.perf_counter() - tick
            platform.submit_assignment(assignment)
            predicted_total += assignment.predicted_utility
            num_assigned += len(assignment)
            if store_assignments:
                assignments.append(assignment)
        outcome = platform.finish_day()
        tick = time.perf_counter()
        matcher.end_day(day, outcome, contexts)
        daily_time[day] += time.perf_counter() - tick

        daily_utility[day] = outcome.total_realized_utility
        broker_utility += outcome.realized_utility
        workload_sum += outcome.workloads
        workload_peak = np.maximum(workload_peak, outcome.workloads)
        served = outcome.workloads > 0
        signup_sum[served] += outcome.signup_rates[served]
        signup_days += served
        if store_outcomes:
            outcomes.append(outcome)

    with np.errstate(invalid="ignore"):
        broker_signup = np.where(signup_days > 0, signup_sum / np.maximum(signup_days, 1), 0.0)

    return RunResult(
        algorithm=matcher.name,
        total_realized_utility=float(daily_utility.sum()),
        total_predicted_utility=float(predicted_total),
        daily_utility=daily_utility,
        broker_utility=broker_utility,
        broker_workload=workload_sum / num_days,
        broker_peak_workload=workload_peak,
        broker_signup=broker_signup,
        decision_time=float(daily_time.sum()),
        daily_decision_time=daily_time,
        num_assigned=num_assigned,
        outcomes=outcomes,
        assignments=assignments,
    )


def compare_algorithms(
    platform: RealEstatePlatform,
    matchers: list[Matcher],
    store_outcomes: bool = False,
) -> dict[str, RunResult]:
    """Run several matchers on the identical instance, name-keyed."""
    results: dict[str, RunResult] = {}
    for matcher in matchers:
        results[matcher.name] = run_algorithm(platform, matcher, store_outcomes)
    return results
