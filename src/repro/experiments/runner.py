"""Classic run entry points, now thin shims over :mod:`repro.engine`.

:func:`run_algorithm` / :func:`compare_algorithms` keep their historical
signatures (every figure script and test drives them), but the day loop
itself lives in :class:`~repro.engine.loop.DayLoopEngine` and the result
accumulation in :class:`~repro.engine.hooks.MetricsCollector`.  Callers
that need custom observation (progress lines, streaming assignment logs,
alternative metrics) should use the engine directly with their own
:class:`~repro.engine.hooks.RunHook`.
"""

from __future__ import annotations

from repro.algorithms.base import Matcher
from repro.engine.hooks import MetricsCollector, RunResult
from repro.engine.loop import DayLoopEngine
from repro.simulation.platform import RealEstatePlatform

__all__ = ["RunResult", "run_algorithm", "compare_algorithms"]


def run_algorithm(
    platform: RealEstatePlatform,
    matcher: Matcher,
    store_outcomes: bool = False,
    store_assignments: bool = False,
) -> RunResult:
    """Run one matcher over the platform's whole horizon.

    The platform is reset first, so repeated calls on the same instance are
    independent and face identical request streams and utility inputs.
    """
    collector = MetricsCollector(
        store_outcomes=store_outcomes, store_assignments=store_assignments
    )
    DayLoopEngine().run(platform, matcher, hooks=(collector,))
    return collector.result


def compare_algorithms(
    platform: RealEstatePlatform,
    matchers: list[Matcher],
    store_outcomes: bool = False,
    store_assignments: bool = False,
) -> dict[str, RunResult]:
    """Run several matchers on the identical instance, name-keyed."""
    results: dict[str, RunResult] = {}
    for matcher in matchers:
        results[matcher.name] = run_algorithm(
            platform,
            matcher,
            store_outcomes=store_outcomes,
            store_assignments=store_assignments,
        )
    return results
