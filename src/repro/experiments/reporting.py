"""Plain-text printers matching the paper's tables and series.

Every benchmark prints through these helpers so the regenerated rows read
the same way across experiments (and diff cleanly between runs).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width text table.

    Floats are rendered with four significant digits; column widths adapt
    to content.
    """
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """A figure rendered as text: one column per x value, one row per line."""
    headers = [x_label, *[_render(v) for v in x_values]]
    rows = [[name, *values] for name, values in series.items()]
    return format_table(headers, rows, title=title)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
