"""The Fig. 9-11 evaluation on the Table IV-like cities.

Runs the full algorithm roster on real-like Cities A, B and C and collects
the three views the paper reports:

- overall total utility and cumulative running time over days (Fig. 11),
- the per-broker utility distribution (Fig. 9) with the improved/degraded
  broker fractions of Sec. VII-D,
- the per-broker workload distribution (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine import MatcherSpec, PlatformSpec, RunSpec, run_many, warm_platform_cache
from repro.experiments.metrics import (
    fraction_degraded,
    fraction_improved,
    overload_rate,
    overload_severity,
    utility_distribution,
    workload_distribution,
)
from repro.experiments.runner import RunResult
from repro.simulation.datasets import real_like_city

#: Algorithms of the Fig. 11 comparison, in reporting order.
CITY_ALGORITHMS = ("Top-1", "Top-3", "RR", "KM", "CTop-1", "CTop-3", "AN", "LACB", "LACB-Opt")


@dataclass
class CityEvaluation:
    """All Fig. 9-11 quantities for one city.

    Attributes:
        city: city name ("A", "B" or "C").
        results: per-algorithm run results (utilities, times, per-broker
            vectors).
        improved_vs_top3: per capacity-aware algorithm, the fraction of
            brokers whose utility improved over Top-3 (Sec. VII-D reports
            72.0%-82.2% for LACB).
        rr_degraded_vs_top3: fraction of brokers RR degrades vs Top-3
            (the paper reports 25.7%).
        overload_rates: per algorithm, the fraction of brokers pushed past
            their latent capacity on some day.
        overload_severities: per algorithm, the mean peak workload in
            excess of latent capacity (the Fig. 10 risk measure).
    """

    city: str
    results: dict[str, RunResult]
    improved_vs_top3: dict[str, float] = field(default_factory=dict)
    rr_degraded_vs_top3: float = 0.0
    overload_rates: dict[str, float] = field(default_factory=dict)
    overload_severities: dict[str, float] = field(default_factory=dict)

    def utility_table(self) -> list[tuple[str, float, float]]:
        """(algorithm, total utility, decision seconds) rows, Fig. 11."""
        return [
            (name, run.total_realized_utility, run.decision_time)
            for name, run in self.results.items()
        ]

    def top_utility_series(self, top_n: int = 60) -> dict[str, np.ndarray]:
        """Sorted top-broker utilities per algorithm (Fig. 9)."""
        return {
            name: utility_distribution(run, top_n) for name, run in self.results.items()
        }

    def top_workload_series(self, top_n: int = 60) -> dict[str, np.ndarray]:
        """Sorted top-broker workloads per algorithm (Fig. 10)."""
        return {
            name: workload_distribution(run, top_n) for name, run in self.results.items()
        }


def evaluate_city(
    city: str,
    scale: float = 0.05,
    seed: int = 7,
    algorithms: tuple[str, ...] = CITY_ALGORITHMS,
    jobs: int = 1,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> CityEvaluation:
    """Run the Fig. 9-11 evaluation on one real-like city.

    Args:
        city: "A", "B" or "C".
        scale: proportional shrink factor on Table IV sizes.
        seed: matcher seed.
        algorithms: names to compare (must include "Top-3" for the
            improvement statistics when any capacity-aware name is present).
        jobs: worker processes for the per-algorithm runs (1 = serial;
            results are bit-identical either way).
        checkpoint_dir: when set, each algorithm run checkpoints its
            day-boundary state under ``checkpoint_dir/<run_id>``.
        resume: continue each run from its latest checkpoint, if any.
    """
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")
    platform, spec, _config = real_like_city(city, scale=scale, seed=seed)
    platform_spec = PlatformSpec.real_city(city, scale=scale, seed=seed)
    # Donate the platform we already built (it is needed for the overload
    # metrics below) so a serial run does not regenerate the city.
    warm_platform_cache(platform_spec, platform)
    run_specs = [
        RunSpec(
            platform=platform_spec,
            matcher=MatcherSpec(
                name, seed=seed, empirical_capacity=float(spec.empirical_capacity)
            ),
            checkpoint_dir=checkpoint_dir,
            resume_from=checkpoint_dir if resume else None,
        )
        for name in algorithms
    ]
    runs = run_many(run_specs, jobs=jobs)
    results: dict[str, RunResult] = dict(zip(algorithms, runs))

    evaluation = CityEvaluation(city=city, results=results)
    baseline = results.get("Top-3")
    if baseline is not None:
        for name in ("CTop-1", "CTop-3", "AN", "LACB", "LACB-Opt"):
            if name in results:
                evaluation.improved_vs_top3[name] = fraction_improved(results[name], baseline)
        if "RR" in results:
            evaluation.rr_degraded_vs_top3 = fraction_degraded(results["RR"], baseline)
    for name, run in results.items():
        evaluation.overload_rates[name] = overload_rate(run, platform.latent_capacities)
        evaluation.overload_severities[name] = overload_severity(
            run, platform.latent_capacities
        )
    return evaluation
