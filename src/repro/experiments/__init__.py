"""Experiment harness: runners, metrics, sweeps and figure reproduction.

- :mod:`~repro.experiments.runner` — the classic ``run_algorithm`` /
  ``compare_algorithms`` entry points, now thin shims over the
  :mod:`repro.engine` day-loop engine (hooks, specs, parallel executor);
- :mod:`~repro.experiments.metrics` — total utility, distributions,
  improvement fractions, Gini, overload rates (the quantities of
  Figs. 8-11 and the Sec. VII-D summary);
- :mod:`~repro.experiments.sweeps` — the Table III / Fig. 8 parameter
  sweeps on synthetic cities;
- :mod:`~repro.experiments.motivation` — the Sec. II measurement study
  (Figs. 2-4) reproduced on simulated traces;
- :mod:`~repro.experiments.real_world` — the Fig. 9-11 evaluation on the
  Table IV-like cities;
- :mod:`~repro.experiments.reporting` — plain-text table/series printers
  matching the paper's rows.
"""

from repro.experiments.metrics import (
    fraction_degraded,
    fraction_improved,
    gini,
    overload_rate,
    speedup,
    top_broker_load_ratio,
    utility_distribution,
    workload_distribution,
)
from repro.experiments.figures import ascii_chart, ascii_histogram
from repro.experiments.io import (
    load_run_result,
    load_sweep_result,
    save_run_result,
    save_sweep_result,
)
from repro.experiments.motivation import (
    signup_vs_workload,
    top_broker_curves,
    workload_concentration,
)
from repro.experiments.significance import compare, seeded_utilities
from repro.experiments.real_world import CityEvaluation, evaluate_city
from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import RunResult, compare_algorithms, run_algorithm
from repro.experiments.sweeps import (
    MatchingTimeProfile,
    SweepResult,
    matching_time_profile,
    sweep,
    sweep_specs,
)

__all__ = [
    "CityEvaluation",
    "MatchingTimeProfile",
    "RunResult",
    "SweepResult",
    "ascii_chart",
    "ascii_histogram",
    "compare",
    "compare_algorithms",
    "evaluate_city",
    "load_run_result",
    "load_sweep_result",
    "save_run_result",
    "save_sweep_result",
    "seeded_utilities",
    "format_series",
    "format_table",
    "fraction_degraded",
    "fraction_improved",
    "gini",
    "matching_time_profile",
    "overload_rate",
    "run_algorithm",
    "signup_vs_workload",
    "speedup",
    "sweep",
    "sweep_specs",
    "top_broker_curves",
    "top_broker_load_ratio",
    "utility_distribution",
    "workload_concentration",
    "workload_distribution",
]
