"""Multi-seed comparison utilities with significance testing.

Single runs of learned matchers carry ±5-8% noise; honest comparisons need
seed repetition.  This module runs an algorithm over several matcher seeds
on the identical instance and compares two algorithms with Welch's t-test
— the same test the paper uses for its Sec. II measurement claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.algorithms import make_matcher
from repro.experiments.runner import run_algorithm
from repro.simulation.platform import RealEstatePlatform


@dataclass(frozen=True)
class SeededUtilities:
    """Total realized utilities of one algorithm over several seeds."""

    algorithm: str
    utilities: tuple[float, ...]

    @property
    def mean(self) -> float:
        """Sample mean over seeds."""
        return float(np.mean(self.utilities))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for a single seed)."""
        if len(self.utilities) < 2:
            return 0.0
        return float(np.std(self.utilities, ddof=1))


@dataclass(frozen=True)
class Comparison:
    """Welch's t-test between two seeded utility samples.

    Attributes:
        first / second: the compared samples.
        difference: ``first.mean - second.mean``.
        p_value: two-sided Welch p-value (NaN when either sample has fewer
            than two seeds).
    """

    first: SeededUtilities
    second: SeededUtilities
    difference: float
    p_value: float

    def significant(self, level: float = 0.05) -> bool:
        """Whether the difference clears the given significance level."""
        return bool(np.isfinite(self.p_value) and self.p_value < level)


def seeded_utilities(
    platform: RealEstatePlatform,
    algorithm: str,
    seeds: tuple[int, ...] = (7, 17, 27),
    **matcher_kwargs,
) -> SeededUtilities:
    """Run one algorithm across matcher seeds on the identical instance."""
    if not seeds:
        raise ValueError("at least one seed is required")
    utilities = tuple(
        run_algorithm(
            platform, make_matcher(algorithm, platform, seed=seed, **matcher_kwargs)
        ).total_realized_utility
        for seed in seeds
    )
    return SeededUtilities(algorithm=algorithm, utilities=utilities)


def compare(first: SeededUtilities, second: SeededUtilities) -> Comparison:
    """Welch's t-test between two seeded samples."""
    if len(first.utilities) >= 2 and len(second.utilities) >= 2:
        p_value = float(
            stats.ttest_ind(first.utilities, second.utilities, equal_var=False).pvalue
        )
    else:
        p_value = float("nan")
    return Comparison(
        first=first,
        second=second,
        difference=first.mean - second.mean,
        p_value=p_value,
    )
