"""JSON persistence for experiment results.

Long sweeps and city evaluations are expensive; saving their results lets
reports (EXPERIMENTS.md tables, figures) be rebuilt and diffed without
re-running the experiments.  Arrays are stored as lists; loading restores
NumPy types.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.experiments.runner import RunResult
from repro.experiments.sweeps import SweepResult


def _jsonable(value):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def run_result_to_dict(result: RunResult) -> dict:
    """Plain-dict form of a :class:`RunResult` (outcomes are not kept)."""
    return {
        "algorithm": result.algorithm,
        "total_realized_utility": result.total_realized_utility,
        "total_predicted_utility": result.total_predicted_utility,
        "daily_utility": _jsonable(result.daily_utility),
        "broker_utility": _jsonable(result.broker_utility),
        "broker_workload": _jsonable(result.broker_workload),
        "broker_peak_workload": _jsonable(result.broker_peak_workload),
        "broker_signup": _jsonable(result.broker_signup),
        "decision_time": result.decision_time,
        "daily_decision_time": _jsonable(result.daily_decision_time),
        "num_assigned": result.num_assigned,
    }


def run_result_from_dict(payload: dict) -> RunResult:
    """Inverse of :func:`run_result_to_dict`."""
    return RunResult(
        algorithm=payload["algorithm"],
        total_realized_utility=float(payload["total_realized_utility"]),
        total_predicted_utility=float(payload["total_predicted_utility"]),
        daily_utility=np.asarray(payload["daily_utility"], dtype=float),
        broker_utility=np.asarray(payload["broker_utility"], dtype=float),
        broker_workload=np.asarray(payload["broker_workload"], dtype=float),
        broker_peak_workload=np.asarray(payload["broker_peak_workload"], dtype=float),
        broker_signup=np.asarray(payload["broker_signup"], dtype=float),
        decision_time=float(payload["decision_time"]),
        daily_decision_time=np.asarray(payload["daily_decision_time"], dtype=float),
        num_assigned=int(payload["num_assigned"]),
    )


def save_run_result(result: RunResult, path: str | Path) -> None:
    """Write one run result as JSON."""
    Path(path).write_text(json.dumps(run_result_to_dict(result), indent=2))


def load_run_result(path: str | Path) -> RunResult:
    """Read one run result from JSON."""
    return run_result_from_dict(json.loads(Path(path).read_text()))


def save_sweep_result(result: SweepResult, path: str | Path) -> None:
    """Write a Fig. 8 sweep column as JSON."""
    payload = {
        "factor": result.factor,
        "values": result.values,
        "utilities": result.utilities,
        "times": result.times,
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_sweep_result(path: str | Path) -> SweepResult:
    """Read a Fig. 8 sweep column from JSON."""
    payload = json.loads(Path(path).read_text())
    return SweepResult(
        factor=payload["factor"],
        values=[float(v) for v in payload["values"]],
        utilities={k: [float(x) for x in v] for k, v in payload["utilities"].items()},
        times={k: [float(x) for x in v] for k, v in payload["times"].items()},
    )
