"""Adaptive micro-batching: max-wait + max-size closing over arrival events.

The paper's interval is a constant; here it becomes a *policy*.  A
:class:`MicroBatchPolicy` closes a forming micro-batch when the oldest
queued request has waited ``max_wait`` virtual seconds, when the batch
reaches ``max_size`` requests (load-adaptive: bursts close batches early,
quiet stretches wait out the clock), or when the platform window ends —
micro-batches never span windows, because utilities and the value-function
time axis are per-window quantities.

Two properties the rest of the serving stack leans on:

- **Degeneracy**: ``max_wait >= window_seconds`` with unbounded size
  yields exactly one micro-batch per window, closed at the window
  boundary — today's fixed windows, which is what the
  :mod:`repro.check.serving` equivalence suite proves bit-identical to
  the batch day loop.
- **Determinism**: splitting is a pure function of the arrival
  timestamps and the policy — service times never feed back into batch
  composition, so assignments stay machine-independent even though
  measured latencies are not.

The :class:`LoadLevelingQueue` is the queue-based load-leveling stage
between the batcher and the solver: a single-server FIFO on the virtual
timeline whose service durations are the *measured* solver seconds, so
completion latencies exhibit real saturation behavior (waits explode as
offered load approaches service capacity) without the backlog ever
influencing which requests share a batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Close reasons, in the order they are checked.
FLUSH_REASONS = ("max_size", "max_wait", "boundary")


@dataclass(frozen=True)
class MicroBatch:
    """One closed micro-batch: a row range of the window's arrival order.

    Attributes:
        start / stop: half-open row range into the window's
            arrival-ordered request array.
        close_time: virtual timestamp the batch closed at.
        reason: which rule closed it (``"max_size"`` / ``"max_wait"`` /
            ``"boundary"``).
    """

    start: int
    stop: int
    close_time: float
    reason: str

    @property
    def size(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class MicroBatchPolicy:
    """Max-wait + max-size micro-batch closing policy.

    Args:
        max_wait: virtual seconds the *first* request of a forming batch
            may wait before the batch closes.
        max_size: close as soon as the batch holds this many requests
            (``None`` = unbounded).
    """

    max_wait: float
    max_size: int | None = None

    def __post_init__(self) -> None:
        if self.max_wait <= 0.0:
            raise ValueError(f"max_wait must be positive, got {self.max_wait}")
        if self.max_size is not None and self.max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {self.max_size}")

    @classmethod
    def boundary(cls, window_seconds: float) -> MicroBatchPolicy:
        """The degenerate policy reproducing the paper's fixed windows."""
        return cls(max_wait=float(window_seconds), max_size=None)

    def split(self, arrivals: np.ndarray, window_end: float) -> list[MicroBatch]:
        """Split one window's sorted arrival timestamps into micro-batches.

        Args:
            arrivals: the window's arrival timestamps, non-decreasing.
            window_end: the window's closing time; every batch closes at
                or before it regardless of ``max_wait``.

        Returns:
            Contiguous micro-batches covering ``[0, len(arrivals))``.
        """
        batches: list[MicroBatch] = []
        n = len(arrivals)
        i = 0
        while i < n:
            start = i
            deadline = min(float(arrivals[start]) + self.max_wait, window_end)
            i += 1
            while (
                i < n
                and arrivals[i] <= deadline
                and (self.max_size is None or i - start < self.max_size)
            ):
                i += 1
            if self.max_size is not None and i - start >= self.max_size:
                # Full the instant its last member arrived: waiting out the
                # deadline would add latency with no chance of more members.
                close, reason = float(arrivals[i - 1]), "max_size"
            elif deadline < window_end:
                close, reason = deadline, "max_wait"
            else:
                close, reason = window_end, "boundary"
            batches.append(MicroBatch(start=start, stop=i, close_time=close, reason=reason))
        return batches


class LoadLevelingQueue:
    """Single-server FIFO between micro-batcher and solver (virtual time).

    Closed micro-batches queue here; each is served for its *measured*
    solver duration.  ``admit`` returns the batch's service start and
    completion timestamps, from which per-request end-to-end latency
    (completion minus arrival) follows.
    """

    def __init__(self) -> None:
        self._free_at = 0.0
        #: Total service seconds pushed through the server.
        self.busy_seconds = 0.0
        #: Completion time of the last admitted batch.
        self.last_completion = 0.0

    def admit(self, ready_time: float, service_seconds: float) -> tuple[float, float]:
        """Queue one closed batch; returns ``(service_start, completion)``."""
        if service_seconds < 0.0:
            raise ValueError(f"service_seconds must be >= 0, got {service_seconds}")
        start = max(float(ready_time), self._free_at)
        completion = start + float(service_seconds)
        self._free_at = completion
        self.busy_seconds += float(service_seconds)
        self.last_completion = completion
        return start, completion


__all__ = [
    "FLUSH_REASONS",
    "LoadLevelingQueue",
    "MicroBatch",
    "MicroBatchPolicy",
]
