"""Event-driven serving mode over the batch simulation.

``repro.serving`` replays a :class:`~repro.simulation.requests.
RequestStream` as a continuous arrival process, closes micro-batches with
an adaptive max-wait/max-size policy, and drives the unchanged
``Matcher``/``Platform`` protocol per micro-batch — so the paper's
algorithms serve request *events* instead of preset windows, with
per-request queueing and end-to-end latency measured along the way.

Modules:

- :mod:`repro.serving.arrivals` — deterministic arrival timestamps
  (uniform and bursty intra-day profiles);
- :mod:`repro.serving.microbatch` — the micro-batch policy and the
  load-leveling queue in front of the solver;
- :mod:`repro.serving.engine` — the :class:`ServingEngine` run loop and
  its :class:`ServingReport`.

The degenerate policy (``MicroBatchPolicy.boundary(window_seconds)``)
reproduces the batch day loop bit for bit; :mod:`repro.check.serving`
proves it.
"""

from repro.serving.arrivals import (
    DEFAULT_BURST_AMPLITUDE,
    DEFAULT_WINDOW_SECONDS,
    PROFILES,
    ArrivalSchedule,
    derive_arrivals,
)
from repro.serving.engine import (
    REPORT_QUANTILES,
    WAIT_BOUNDARIES,
    ServingEngine,
    ServingReport,
)
from repro.serving.microbatch import (
    FLUSH_REASONS,
    LoadLevelingQueue,
    MicroBatch,
    MicroBatchPolicy,
)

__all__ = [
    "ArrivalSchedule",
    "DEFAULT_BURST_AMPLITUDE",
    "DEFAULT_WINDOW_SECONDS",
    "FLUSH_REASONS",
    "LoadLevelingQueue",
    "MicroBatch",
    "MicroBatchPolicy",
    "PROFILES",
    "REPORT_QUANTILES",
    "ServingEngine",
    "ServingReport",
    "WAIT_BOUNDARIES",
    "derive_arrivals",
]
