"""ServingEngine: the event-driven counterpart of the batch day loop.

Where :class:`~repro.engine.loop.DayLoopEngine` hands each platform window
to the matcher as one batch, this engine replays the window's requests as
*arrival events* (see :mod:`repro.serving.arrivals`), closes micro-batches
with an adaptive policy (:mod:`repro.serving.microbatch`), and drives the
**same** ``Matcher``/``Platform`` protocol per micro-batch — emitting the
standard lifecycle events, so every existing hook (metrics collection,
telemetry, runtime checks, checkpointing observers) composes unchanged.
Algorithms built on repeated small solves are exactly what the PR-9
incremental KM warm start and utility cache exist for; enable them via
``AssignmentConfig(incremental=True, utility_cache=True)``.

Latency accounting happens on two clocks, deliberately kept apart:

- **virtual time** drives arrivals and batch closing — micro-batch
  composition is a pure function of the schedule and the policy, so
  assignments are bit-identical across machines and runs;
- **measured time** (the engine's matcher clock) provides each
  micro-batch's service duration, which the
  :class:`~repro.serving.microbatch.LoadLevelingQueue` folds back onto
  the virtual timeline: completion = service start + measured seconds.
  Queue waits are therefore deterministic; end-to-end latencies carry
  real solver cost and saturate like a real server.

Per-request queue wait and end-to-end latency are recorded into
``repro.obs`` histograms (``serving.queue_wait`` / ``serving.latency``),
whose embedded quantile sketches answer p50/p95/p99; micro-batch sizes and
flush reasons ride along (``serving.microbatch_size``,
``serving.flushes``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from repro.engine.loop import (
    BatchAssignedEvent,
    DayEndEvent,
    DayStartEvent,
    RunContext,
    _check_hooks,
    _set_observed_day,
    _telemetry_hooks,
)
from repro.obs import telemetry as obs
from repro.serving.arrivals import (
    DEFAULT_BURST_AMPLITUDE,
    DEFAULT_WINDOW_SECONDS,
    ArrivalSchedule,
    derive_arrivals,
)
from repro.serving.microbatch import FLUSH_REASONS, LoadLevelingQueue, MicroBatchPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.algorithms.base import Matcher
    from repro.engine.hooks import RunHook
    from repro.simulation.platform import RealEstatePlatform

#: Histogram boundaries for virtual-time waits/latencies (sub-second
#: micro-batch waits through minute-scale saturated backlogs).
WAIT_BOUNDARIES = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Report quantiles, matching the repo-wide sketch convention.
REPORT_QUANTILES = (0.5, 0.95, 0.99)


@dataclass
class ServingReport:
    """Everything the serving engine measured over one run.

    The run's :class:`~repro.engine.hooks.RunResult` still comes from a
    :class:`~repro.engine.hooks.MetricsCollector` hook, exactly as in
    batch mode; this report adds the serving-only quantities.

    Attributes:
        context: the run's context (as handed to every hook).
        profile / window_seconds / policy: the serving configuration.
        requests: total request events served.
        micro_batches: micro-batches flushed.
        flush_reasons: count per close reason (max_size/max_wait/boundary).
        queue_waits: ``(requests,)`` virtual seconds from arrival to batch
            close, in service order (deterministic).
        latencies: ``(requests,)`` virtual seconds from arrival to service
            completion (carries measured solver time).
        batch_sizes: ``(micro_batches,)`` requests per micro-batch.
        service_seconds: ``(micro_batches,)`` measured solver seconds.
        makespan: virtual completion time of the last micro-batch.
    """

    context: RunContext
    profile: str
    window_seconds: float
    policy: MicroBatchPolicy
    requests: int
    micro_batches: int
    flush_reasons: dict[str, int]
    queue_waits: np.ndarray
    latencies: np.ndarray
    batch_sizes: np.ndarray
    service_seconds: np.ndarray
    makespan: float

    @property
    def throughput_rps(self) -> float:
        """Requests per virtual second over the run's makespan."""
        return self.requests / self.makespan if self.makespan > 0 else 0.0

    def wait_quantiles(self) -> tuple[float, float, float]:
        """p50/p95/p99 of the deterministic queueing wait."""
        return self._quantiles(self.queue_waits)

    def latency_quantiles(self) -> tuple[float, float, float]:
        """p50/p95/p99 of end-to-end latency (includes measured service)."""
        return self._quantiles(self.latencies)

    @staticmethod
    def _quantiles(values: np.ndarray) -> tuple[float, float, float]:
        if values.size == 0:
            return (0.0, 0.0, 0.0)
        p50, p95, p99 = np.quantile(values, REPORT_QUANTILES)
        return (float(p50), float(p95), float(p99))


@dataclass
class ServingEngine:
    """Drives one matcher over a platform's horizon, event by event.

    Attributes:
        policy: the micro-batch closing policy.
            :meth:`MicroBatchPolicy.boundary` reproduces fixed windows.
        window_seconds / profile / arrival_seed / burst_amplitude: the
            arrival-schedule parameters, used when no explicit
            ``schedule`` is given.
        schedule: an explicit arrival schedule (must match the platform's
            window geometry); derived from the platform's stream otherwise.
        clock: the monotonic timer charged for matcher calls (the same
            timing seam as the day loop: only ``begin_day`` /
            ``assign_batch`` / ``end_day`` are measured).
    """

    policy: MicroBatchPolicy
    window_seconds: float = DEFAULT_WINDOW_SECONDS
    profile: str = "uniform"
    arrival_seed: int = 0
    burst_amplitude: float = DEFAULT_BURST_AMPLITUDE
    schedule: ArrivalSchedule | None = None
    clock: Callable[[], float] = time.perf_counter
    #: Filled by :meth:`run`; kept for callers that only see the context.
    last_report: ServingReport | None = field(default=None, repr=False)

    def run(
        self,
        platform: RealEstatePlatform,
        matcher: Matcher,
        hooks: Sequence[RunHook] | Iterable[RunHook] = (),
    ) -> ServingReport:
        """Serve the whole horizon, notifying ``hooks`` throughout."""
        hooks = tuple(hooks)
        hooks += _telemetry_hooks(hooks)
        hooks += _check_hooks(hooks)
        schedule = self.schedule
        if schedule is None:
            schedule = derive_arrivals(
                platform.stream,
                window_seconds=self.window_seconds,
                profile=self.profile,
                seed=self.arrival_seed,
                burst_amplitude=self.burst_amplitude,
            )
        if (
            schedule.num_days != platform.num_days
            or schedule.batches_per_day != platform.batches_per_day
        ):
            raise ValueError(
                f"arrival schedule geometry ({schedule.num_days} days x "
                f"{schedule.batches_per_day} windows) does not match the "
                f"platform ({platform.num_days} x {platform.batches_per_day})"
            )
        platform.reset()
        context = RunContext(
            platform=platform,
            matcher=matcher,
            num_days=platform.num_days,
            num_brokers=platform.num_brokers,
            batches_per_day=platform.batches_per_day,
        )
        for hook in hooks:
            hook.on_run_start(context)

        clock = self.clock
        cpu_clock = time.process_time
        queue = LoadLevelingQueue()
        waits: list[np.ndarray] = []
        latencies: list[np.ndarray] = []
        sizes: list[int] = []
        services: list[float] = []
        reasons = dict.fromkeys(FLUSH_REASONS, 0)

        for day in range(context.num_days):
            _set_observed_day(day)
            contexts = platform.start_day(day)
            cpu_tick = cpu_clock()
            tick = clock()
            matcher.begin_day(day, contexts)
            begin_seconds = clock() - tick
            begin_cpu = cpu_clock() - cpu_tick
            day_event = DayStartEvent(
                day=day,
                contexts=contexts,
                matcher_seconds=begin_seconds,
                matcher_cpu_seconds=begin_cpu,
            )
            for hook in hooks:
                hook.on_day_start(day_event)

            for batch in range(context.batches_per_day):
                request_ids = platform.batch_requests(day, batch)
                if request_ids.size == 0:
                    continue
                times = schedule.arrivals_for(day, batch, request_ids)
                # Stable sort: appealed re-queues (arriving at window open)
                # move to the front; without appeals this is the identity,
                # which is what boundary-flush bit-identity rests on.
                order = np.argsort(times, kind="stable")
                ids = request_ids[order]
                times = times[order]
                window_end = schedule.window_end(day, batch)
                for micro in self.policy.split(times, window_end):
                    micro_ids = ids[micro.start : micro.stop]
                    # Environment work stays off the matcher clock, exactly
                    # as in the day loop's timing seam.
                    utilities = platform.predicted_utilities(micro_ids)
                    cpu_tick = cpu_clock()
                    tick = clock()
                    assignment = matcher.assign_batch(day, batch, micro_ids, utilities)
                    assign_seconds = clock() - tick
                    assign_cpu = cpu_clock() - cpu_tick
                    platform.submit_assignment(assignment)

                    _service_start, completion = queue.admit(
                        micro.close_time, assign_seconds
                    )
                    micro_times = times[micro.start : micro.stop]
                    micro_waits = micro.close_time - micro_times
                    micro_latency = completion - micro_times
                    waits.append(micro_waits)
                    latencies.append(micro_latency)
                    sizes.append(micro.size)
                    services.append(assign_seconds)
                    reasons[micro.reason] += 1
                    self._record_telemetry(micro, micro_waits, micro_latency)

                    batch_event = BatchAssignedEvent(
                        day=day,
                        batch=batch,
                        request_ids=micro_ids,
                        utilities=utilities,
                        assignment=assignment,
                        matcher_seconds=assign_seconds,
                        matcher_cpu_seconds=assign_cpu,
                    )
                    for hook in hooks:
                        hook.on_batch_assigned(batch_event)

            outcome = platform.finish_day()
            cpu_tick = cpu_clock()
            tick = clock()
            matcher.end_day(day, outcome, contexts)
            end_seconds = clock() - tick
            end_cpu = cpu_clock() - cpu_tick
            end_event = DayEndEvent(
                day=day,
                outcome=outcome,
                contexts=contexts,
                matcher_seconds=end_seconds,
                matcher_cpu_seconds=end_cpu,
            )
            for hook in hooks:
                hook.on_day_end(end_event)

        _set_observed_day(-1)
        for hook in hooks:
            hook.on_run_end(context)

        all_waits = np.concatenate(waits) if waits else np.zeros(0)
        all_latencies = np.concatenate(latencies) if latencies else np.zeros(0)
        report = ServingReport(
            context=context,
            profile=schedule.profile,
            window_seconds=schedule.window_seconds,
            policy=self.policy,
            requests=int(all_waits.size),
            micro_batches=len(sizes),
            flush_reasons=reasons,
            queue_waits=all_waits,
            latencies=all_latencies,
            batch_sizes=np.asarray(sizes, dtype=int),
            service_seconds=np.asarray(services),
            makespan=queue.last_completion,
        )
        obs.set_gauge("serving.makespan", report.makespan)
        obs.set_gauge("serving.throughput_rps", report.throughput_rps)
        self.last_report = report
        return report

    @staticmethod
    def _record_telemetry(
        micro, micro_waits: np.ndarray, micro_latency: np.ndarray
    ) -> None:
        """Book one micro-batch into the active telemetry (no-op when off)."""
        if not obs.enabled():
            return
        for wait, latency in zip(micro_waits, micro_latency):
            obs.observe("serving.queue_wait", float(wait), boundaries=WAIT_BOUNDARIES)
            obs.observe("serving.latency", float(latency), boundaries=WAIT_BOUNDARIES)
        obs.observe("serving.microbatch_size", float(micro.size))
        obs.add("serving.flushes", reason=micro.reason)
        obs.add("serving.requests", micro.size)


__all__ = ["REPORT_QUANTILES", "WAIT_BOUNDARIES", "ServingEngine", "ServingReport"]
