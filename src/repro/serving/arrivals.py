"""Deterministic arrival process over a pre-generated request stream.

The paper buckets requests into preset time windows (Sec. III); the
serving mode needs the finer truth those buckets discard — *when inside
its window* each request arrived.  This module derives per-request
arrival timestamps from the existing :class:`~repro.simulation.requests.
RequestStream`: every window of the stream gets a seeded draw of
intra-window offsets, so all algorithms face the identical continuous
demand sequence, exactly as they already face the identical bucketed one.

Two rate profiles:

- ``"uniform"`` — arrivals spread evenly through each window (a Poisson
  process conditioned on the window's count);
- ``"bursty"`` — the intra-day ramp machinery of
  :func:`~repro.simulation.requests.generate_stream` (the
  ``value_multiplier`` formula ``1 + amplitude * (position - 0.5)``)
  reused as a *density shape*: the ramp position of a window sets the
  exponent that skews its arrival offsets, so morning windows cluster
  arrivals near the window close and evening windows near the window
  open — sustained quiet stretches punctuated by clumps, the regime
  where adaptive micro-batching pays.

Determinism discipline: offsets are drawn once per stream from a single
seeded generator, windows in flat order, and **sorted within each
window** — so arrival order equals stream-id order and a micro-batcher
flushing at window boundaries reproduces the batch day loop's row order
bit for bit.  Burstiness shapes the arrival *density*, never the order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.requests import RequestStream

#: Supported arrival rate profiles.
PROFILES = ("uniform", "bursty")

#: Default virtual length of one platform window, in seconds.
DEFAULT_WINDOW_SECONDS = 60.0

#: Default burst amplitude; must stay in [0, 2) like the value ramp's.
DEFAULT_BURST_AMPLITUDE = 1.2


@dataclass(frozen=True)
class ArrivalSchedule:
    """Per-request arrival timestamps on a virtual serving timeline.

    Time zero is the opening of day 0's first window; day ``d`` spans
    ``[d * batches_per_day * window_seconds, (d+1) * ...)``.

    Attributes:
        window_seconds: virtual length of one platform window.
        num_days / batches_per_day: window geometry (copied from the stream).
        profile: the rate profile the offsets were drawn from.
        seed: the draw's seed.
        offsets: ``(|R|,)`` arrival offset of each request *within its own
            window*, sorted within every window (arrival order = id order).
        batch_offsets: the stream's flat-window index delimiters.
    """

    window_seconds: float
    num_days: int
    batches_per_day: int
    profile: str
    seed: int
    offsets: np.ndarray
    batch_offsets: np.ndarray

    def window_start(self, day: int, batch: int) -> float:
        """Opening time of window ``(day, batch)``."""
        return (day * self.batches_per_day + batch) * self.window_seconds

    def window_end(self, day: int, batch: int) -> float:
        """Closing time of window ``(day, batch)``."""
        return self.window_start(day, batch) + self.window_seconds

    def arrival_times(self, day: int, batch: int) -> np.ndarray:
        """Timestamps of the window's *scheduled* requests, in id order."""
        flat = day * self.batches_per_day + batch
        rows = slice(int(self.batch_offsets[flat]), int(self.batch_offsets[flat + 1]))
        return self.window_start(day, batch) + self.offsets[rows]

    def arrivals_for(self, day: int, batch: int, request_ids: np.ndarray) -> np.ndarray:
        """Timestamps aligned with a platform ``batch_requests`` id array.

        The platform appends appealed re-queues *after* the window's
        scheduled ids; those extras were already waiting when the window
        opened, so they arrive at the window start.  Scheduled ids keep
        their drawn offsets.
        """
        scheduled = self.arrival_times(day, batch)
        extras = len(request_ids) - scheduled.size
        if extras <= 0:
            return scheduled[: len(request_ids)]
        return np.concatenate(
            [scheduled, np.full(extras, self.window_start(day, batch))]
        )


def derive_arrivals(
    stream: RequestStream,
    window_seconds: float = DEFAULT_WINDOW_SECONDS,
    profile: str = "uniform",
    seed: int = 0,
    burst_amplitude: float = DEFAULT_BURST_AMPLITUDE,
) -> ArrivalSchedule:
    """Derive a deterministic arrival schedule from a request stream.

    Args:
        stream: the pre-generated demand sequence.
        window_seconds: virtual length of one platform window.
        profile: ``"uniform"`` or ``"bursty"``.
        seed: seed of the intra-window offset draw.
        burst_amplitude: ramp amplitude of the bursty profile, in
            ``[0, 2)`` — the same constraint as the value ramp it reuses
            (amplitude 0 degenerates to uniform).

    Returns:
        The schedule; offsets are sorted within every window.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown arrival profile {profile!r} (known: {PROFILES})")
    if window_seconds <= 0.0:
        raise ValueError(f"window_seconds must be positive, got {window_seconds}")
    if not 0.0 <= burst_amplitude < 2.0:
        raise ValueError(
            f"burst_amplitude must be in [0, 2), got {burst_amplitude}"
        )
    rng = np.random.default_rng(seed)
    offsets = np.empty(stream.num_requests)
    batch_offsets = np.asarray(stream.offsets, dtype=int)
    num_windows = stream.num_days * stream.batches_per_day
    for flat in range(num_windows):
        start, stop = int(batch_offsets[flat]), int(batch_offsets[flat + 1])
        count = stop - start
        if count == 0:
            continue
        draw = rng.random(count)
        if profile == "bursty":
            # The value ramp's position/multiplier machinery, reused as a
            # density exponent: draw**shape with shape < 1 piles mass near
            # the window end, shape > 1 near the window open.
            batch = flat % stream.batches_per_day
            if stream.batches_per_day > 1:
                position = batch / (stream.batches_per_day - 1)
            else:
                position = 0.5
            shape = 1.0 + burst_amplitude * (position - 0.5)
            draw = draw**shape
        offsets[start:stop] = np.sort(draw) * window_seconds
    return ArrivalSchedule(
        window_seconds=float(window_seconds),
        num_days=stream.num_days,
        batches_per_day=stream.batches_per_day,
        profile=profile,
        seed=int(seed),
        offsets=offsets,
        batch_offsets=batch_offsets,
    )


__all__ = [
    "ArrivalSchedule",
    "DEFAULT_BURST_AMPLITUDE",
    "DEFAULT_WINDOW_SECONDS",
    "PROFILES",
    "derive_arrivals",
]
