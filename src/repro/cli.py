"""Command-line entry points (``repro-lacb`` / ``python -m repro``).

Subcommands:

- ``compare``  — run the full algorithm roster on one synthetic city;
- ``sweep``    — one Fig. 8 column (vary a Table III factor);
- ``city``     — the Fig. 9-11 evaluation on a real-like city;
- ``motivate`` — the Sec. II measurement study (Figs. 2-4);
- ``serve``    — event-driven serving mode: micro-batched matching over a
  deterministic arrival process, with queue-wait/latency quantiles
  (``--equivalence`` proves boundary-flush serving ≡ the batch day loop);
- ``timing``   — the per-batch matching-cost profile (the CBS speedup);
- ``report``   — render the telemetry a ``--telemetry DIR`` run exported
  (falls back to streamed partials when the run crashed before export);
- ``watch``    — live view of an in-flight ``--telemetry`` run from its
  streamed segments;
- ``baseline`` — benchmark trajectory tracking: append ``BENCH_*.json``
  artifacts to ``BENCH_trajectory.json`` and/or check them against the
  baseline with a noise band (``--check`` exits non-zero on regression);
- ``check``    — the correctness self-diagnostic: runtime invariants on a
  small simulated city plus the differential property suites
  (see ``docs/correctness.md``).

``compare``, ``sweep`` and ``city`` additionally accept ``--check``, which
runs them with runtime invariant enforcement on (aborting on the first
violation); checks observe only and never change results.

Output discipline: result tables go to **stdout**; everything diagnostic
(progress, destinations, warnings) goes through :mod:`repro.obs.logging`
to **stderr**, so ``repro compare | tee results.txt`` captures exactly the
tables.  ``-v`` raises verbosity to DEBUG, ``-q`` lowers it to WARNING.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.algorithms import ALGORITHM_NAMES, make_matcher
from repro.engine import MatcherSpec, PlatformSpec, RunSpec, run_many
from repro.experiments import (
    ascii_chart,
    ascii_histogram,
    evaluate_city,
    format_series,
    format_table,
    matching_time_profile,
    run_algorithm,
    save_sweep_result,
    signup_vs_workload,
    sweep,
    top_broker_load_ratio,
    workload_concentration,
)
from repro.obs import telemetry as obs
from repro.obs.logging import get_logger, setup_cli_logging
from repro.obs.manifest import build_manifest, repro_version
from repro.simulation import SyntheticConfig, generate_city

log = get_logger("cli")


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--brokers", type=int, default=200, help="number of brokers |B|")
    parser.add_argument("--requests", type=int, default=8000, help="number of requests |R|")
    parser.add_argument("--days", type=int, default=14, help="covering days")
    parser.add_argument("--imbalance", type=float, default=0.015, help="sigma = |R|/|B| per batch")
    parser.add_argument("--seed", type=int, default=7, help="matcher seed")
    parser.add_argument("--instance-seed", type=int, default=1, help="city generation seed")
    _add_jobs_argument(parser)


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the runs (1 = serial, 0 = one per CPU)",
    )


def _add_telemetry_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="collect metrics/spans during the run and export them to DIR "
        "(view with `repro report DIR`)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="record per-assignment decision provenance under DIR/audit/ "
        "(requires --telemetry; inspect with `repro-lacb explain DIR`)",
    )
    parser.add_argument(
        "--audit-sample",
        type=int,
        default=1,
        metavar="N",
        help="audit every Nth batch by global index (default 1 = every batch)",
    )


def _add_check_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--check",
        action="store_true",
        help="enforce runtime invariants during the run (abort on the first "
        "violation); observation only — results are unchanged",
    )


def _add_checkpoint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="write durable day-boundary checkpoints of every run under "
        "DIR/<run_id> (see docs/state.md)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue each run from its latest checkpoint under the "
        "--checkpoint directory; results are bit-identical to an "
        "uninterrupted run",
    )


def _config_from(args: argparse.Namespace) -> SyntheticConfig:
    return SyntheticConfig(
        num_brokers=args.brokers,
        num_requests=args.requests,
        num_days=args.days,
        imbalance=args.imbalance,
        seed=args.instance_seed,
    )


def _cmd_compare(args: argparse.Namespace) -> None:
    platform_spec = PlatformSpec.synthetic(_config_from(args))
    specs = [
        RunSpec(
            platform=platform_spec,
            matcher=MatcherSpec(name, seed=args.seed),
            checkpoint_dir=args.checkpoint,
            resume_from=args.checkpoint if args.resume else None,
        )
        for name in args.algorithms
    ]
    rows = []
    for name, run in zip(args.algorithms, run_many(specs, jobs=args.jobs)):
        rows.append(
            (
                name,
                run.total_realized_utility,
                run.decision_time,
                top_broker_load_ratio(run),
            )
        )
    print(
        format_table(
            ["algorithm", "total utility", "decision s", "top-1 load ratio"],
            rows,
            title=f"Synthetic city |B|={args.brokers} |R|={args.requests} days={args.days}",
        )
    )


def _cmd_sweep(args: argparse.Namespace) -> None:
    result = sweep(
        args.factor,
        args.values,
        _config_from(args),
        algorithms=tuple(args.algorithms),
        seed=args.seed,
        jobs=args.jobs,
        checkpoint_dir=args.checkpoint,
        resume=args.resume,
    )
    print(format_series(args.factor, result.values, result.utilities, title="Total utility"))
    print()
    print(format_series(args.factor, result.values, result.times, title="Decision time (s)"))
    if args.chart and len(result.values) >= 2:
        print()
        print(
            ascii_chart(
                result.values,
                result.utilities,
                title=f"Total utility vs {args.factor}",
            )
        )
    if args.output:
        save_sweep_result(result, args.output)
        log.info("sweep saved to %s", args.output)


def _cmd_city(args: argparse.Namespace) -> None:
    evaluation = evaluate_city(
        args.city,
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs,
        checkpoint_dir=args.checkpoint,
        resume=args.resume,
    )
    print(
        format_table(
            ["algorithm", "total utility", "decision s"],
            evaluation.utility_table(),
            title=f"Real-like City {args.city} (scale {args.scale})",
        )
    )
    if args.chart:
        print()
        names = list(evaluation.results)
        utilities = [evaluation.results[name].total_realized_utility for name in names]
        print(ascii_histogram(names, utilities, title="Total realized utility"))
    if evaluation.improved_vs_top3:
        print()
        print(
            format_table(
                ["algorithm", "brokers improved vs Top-3"],
                sorted(evaluation.improved_vs_top3.items()),
            )
        )
        print(f"RR degrades {evaluation.rr_degraded_vs_top3:.1%} of brokers vs Top-3")


def _cmd_motivate(args: argparse.Namespace) -> None:
    platform = generate_city(_config_from(args))
    study = signup_vs_workload(platform, seed=args.seed)
    rows = zip(study.bin_centers, study.mean_signup, study.count)
    print(
        format_table(
            ["workload bin", "mean sign-up rate", "broker-days"],
            rows,
            title="Fig. 2: sign-up rate vs daily workload (under Top-3)",
        )
    )
    print(f"below-threshold band: {study.low_band[0]:.1%} ~ {study.low_band[1]:.1%}")
    print(f"above-threshold band: {study.high_band[0]:.1%} ~ {study.high_band[1]:.1%}")
    print(f"Welch's t-test p-value: {study.welch_p_value:.2e}")
    concentration = workload_concentration(platform, seed=args.seed)
    print(
        f"\nFig. 4: top-1 broker load = {concentration.top1_ratio:.2f}x the city average; "
        f"{concentration.above_sweet_spot} top brokers above the typical sweet spot"
    )


def _cmd_develop(args: argparse.Namespace) -> None:
    config = _config_from(args)
    config = type(config)(**{**config.__dict__, "skill_growth": args.growth})
    from repro.experiments.metrics import gini
    from repro.simulation import generate_city

    platform = generate_city(config)
    population = platform.population
    initial = population.potential_quality * (0.55 + 0.45 * population.experience)
    rows = []
    for name in args.algorithms:
        result = run_algorithm(platform, make_matcher(name, platform, seed=args.seed))
        closed = population.base_quality - initial
        potential = np.maximum(population.potential_quality - initial, 1e-12)
        rows.append(
            (
                name,
                result.total_realized_utility,
                float(closed.sum() / potential.sum()),
                int(np.sum(closed > 0.1 * potential)),
                gini(result.broker_workload),
            )
        )
    print(
        format_table(
            ["policy", "total utility", "potential realized", "brokers developed", "workload gini"],
            rows,
            title=f"Matthew effect under learning-by-doing (growth={args.growth})",
        )
    )


def _serve_matcher(name: str, platform, args: argparse.Namespace):
    """Build one serving matcher, optionally with the incremental fast path."""
    from repro.core.config import AssignmentConfig, BanditConfig, LACBConfig

    lacb_config = None
    if args.incremental and name in ("LACB", "LACB-Opt"):
        lacb_config = LACBConfig(
            bandit=BanditConfig(),
            assignment=AssignmentConfig(
                use_cbs=(name == "LACB-Opt"),
                incremental=True,
                utility_cache=True,
            ),
        )
    return MatcherSpec(name, seed=args.seed, lacb_config=lacb_config).build(platform)


def _cmd_serve(args: argparse.Namespace) -> None:
    from repro.engine.hooks import MetricsCollector
    from repro.serving import MicroBatchPolicy, ServingEngine

    if args.equivalence:
        from repro.check.serving import run_serving_suite

        cases, violations = run_serving_suite(num_days=min(args.days, 4))
        print(f"serving equivalence: {cases} case(s) checked")
        if violations:
            print(f"FAILED: {len(violations)} violation(s)")
            for violation in violations:
                print(f"  - {violation}")
            raise SystemExit(1)
        print("OK: boundary-flush serving is bit-identical to the batch day loop")
        return

    platform_spec = PlatformSpec.synthetic(_config_from(args))
    max_wait = args.max_wait if args.max_wait is not None else args.window_seconds
    policy = MicroBatchPolicy(max_wait=max_wait, max_size=args.max_size)
    rows = []
    for name in args.algorithms:
        platform = platform_spec.build()
        matcher = _serve_matcher(name, platform, args)
        collector = MetricsCollector()
        engine = ServingEngine(
            policy=policy,
            window_seconds=args.window_seconds,
            profile=args.profile,
            arrival_seed=args.arrival_seed,
            burst_amplitude=args.burst_amplitude,
        )
        report = engine.run(platform, matcher, hooks=[collector])
        result = collector.result
        wait_p50, _, wait_p99 = report.wait_quantiles()
        _, _, latency_p99 = report.latency_quantiles()
        rows.append(
            (
                name,
                result.total_realized_utility,
                report.requests,
                report.micro_batches,
                wait_p50,
                wait_p99,
                latency_p99,
                report.throughput_rps,
            )
        )
    print(
        format_table(
            [
                "algorithm",
                "total utility",
                "requests",
                "micro-batches",
                "wait p50 s",
                "wait p99 s",
                "latency p99 s",
                "req/s",
            ],
            rows,
            title=(
                f"Serving mode ({args.profile} arrivals, window {args.window_seconds:g}s, "
                f"max-wait {max_wait:g}s"
                + (f", max-size {args.max_size}" if args.max_size else "")
                + ")"
            ),
        )
    )


def _cmd_timing(args: argparse.Namespace) -> None:
    rows = []
    for num_brokers in args.values:
        profile = matching_time_profile(int(num_brokers), args.batch, seed=args.seed)
        rows.append(
            (
                int(num_brokers),
                profile.km_square_seconds,
                profile.cbs_km_seconds,
                profile.speedup,
            )
        )
    print(
        format_table(
            ["|B|", "KM (square) s", "CBS+KM s", "speedup"],
            rows,
            title=f"Per-batch matching cost, |R|={args.batch}",
        )
    )


def _cmd_report(args: argparse.Namespace) -> None:
    from repro.obs.report import load_spans, render_report

    print(render_report(args.dir))
    if args.flamegraph:
        from repro.obs.profile import write_collapsed

        spans = load_spans(args.dir)
        write_collapsed(args.flamegraph, spans)
        log.info(
            "collapsed stacks (%d spans) written to %s — render with "
            "flamegraph.pl or https://speedscope.app",
            len(spans),
            args.flamegraph,
        )


def _cmd_explain(args: argparse.Namespace) -> None:
    from repro.obs.audit import audit_dir_for, read_audit
    from repro.obs.report import render_explain

    view = read_audit(audit_dir_for(args.dir))
    print(
        render_explain(
            view,
            day=args.day,
            request=args.request,
            broker=args.broker,
            limit=args.limit,
        )
    )


def _cmd_watch(args: argparse.Namespace) -> None:
    import time as _time

    from repro.obs.report import render_watch

    while True:
        text, complete = render_watch(args.dir)
        print(text, flush=True)
        if complete or args.once:
            return
        _time.sleep(args.interval)
        print()


def _cmd_baseline(args: argparse.Namespace) -> None:
    from repro.obs.baseline import default_artifacts, run_baseline

    artifacts = args.artifacts or default_artifacts()
    if not artifacts:
        raise SystemExit("no BENCH_*.json artifacts found (run the benchmark suite first)")
    comparisons, appended = run_baseline(
        artifacts,
        args.trajectory,
        append=args.append,
        window=args.window,
    )
    rows = []
    for comparison in comparisons:
        baseline = (
            f"{comparison.baseline:.4f}" if comparison.baseline is not None else "-"
        )
        band = f"±{comparison.band:.4f}" if comparison.baseline is not None else "-"
        rows.append(
            (
                comparison.bench,
                comparison.metric,
                f"{comparison.current:.4f}",
                baseline,
                band,
                comparison.samples,
                comparison.status.upper() if comparison.is_regression else comparison.status,
            )
        )
    print(
        format_table(
            ["bench", "metric", "current", "baseline", "noise band", "n", "status"],
            rows,
            title=f"Benchmark baseline ({args.trajectory})",
        )
    )
    if appended:
        log.info("appended %d entr%s to %s", len(appended),
                 "y" if len(appended) == 1 else "ies", args.trajectory)
    regressions = [c for c in comparisons if c.is_regression]
    if args.strict_baseline and any(c.status == "no-baseline" for c in comparisons):
        raise SystemExit("no baseline available for some metrics (--strict-baseline)")
    if args.check and regressions:
        for comparison in regressions:
            print(
                f"REGRESSION: {comparison.bench}.{comparison.metric} = "
                f"{comparison.current:.4f} vs baseline {comparison.baseline:.4f} "
                f"(noise band ±{comparison.band:.4f}, n={comparison.samples})"
            )
        raise SystemExit(1)


def _cmd_check(args: argparse.Namespace) -> None:
    import os

    from repro.check import run_self_check
    from repro.state.io import atomic_write_json

    report = run_self_check(
        num_brokers=args.brokers,
        num_requests=args.requests,
        num_days=args.days,
        seed=args.seed,
        instance_seed=args.instance_seed,
        algorithms=tuple(args.algorithms),
        property_cases=args.cases,
        property_seed=args.property_seed,
    )
    # The resume phase runs under try/finally: whatever it finds — or if it
    # crashes outright — the --report artifact must still land on disk with
    # everything discovered so far, and only then may the failure propagate
    # (--telemetry flushes in _run_with_telemetry's own finally).
    try:
        if args.resume_cases > 0:
            from repro.check.resume import run_resume_suite

            cases_run, violations = run_resume_suite(
                num_cases=args.resume_cases,
                seed=args.property_seed,
                directory=args.resume_dir,
            )
            report.resume_cases = cases_run
            report.violations.extend(violations)
    finally:
        if args.report:
            os.makedirs(args.report, exist_ok=True)
            path = os.path.join(args.report, "check_report.json")
            atomic_write_json(path, report.to_dict())
            log.info("check report written to %s", path)
    print(
        format_table(
            ["phase", "checks"],
            [
                ("invariants", report.invariants_checked),
                ("solver oracle", report.solver_checks),
                ("property cases", report.property_cases),
                ("resume cases", report.resume_cases),
            ],
            title=f"Self-check on |B|={args.brokers} |R|={args.requests} "
            f"days={args.days} ({', '.join(report.algorithms)})",
        )
    )
    if report.ok:
        print("OK: all invariants and properties hold")
    else:
        print(f"FAILED: {len(report.violations)} violation(s)")
        for violation in report.violations:
            print(f"  - {violation}")
        raise SystemExit(1)


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lacb",
        description="Capacity-aware broker matching (ICDE 2023) reproduction CLI",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {repro_version()}"
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more diagnostics on stderr (DEBUG level)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="only warnings and errors on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="run the algorithm roster on a synthetic city")
    _add_config_arguments(compare)
    compare.add_argument(
        "--algorithms", nargs="+", default=list(ALGORITHM_NAMES), choices=ALGORITHM_NAMES
    )
    _add_telemetry_argument(compare)
    _add_check_argument(compare)
    _add_checkpoint_arguments(compare)
    compare.set_defaults(func=_cmd_compare)

    sweep_cmd = sub.add_parser("sweep", help="one Fig. 8 column")
    _add_config_arguments(sweep_cmd)
    sweep_cmd.add_argument("factor", choices=("num_brokers", "num_requests", "num_days", "imbalance"))
    sweep_cmd.add_argument("values", nargs="+", type=float)
    sweep_cmd.add_argument(
        "--algorithms", nargs="+", default=["Top-3", "CTop-3", "AN", "LACB", "LACB-Opt"],
        choices=ALGORITHM_NAMES,
    )
    sweep_cmd.add_argument("--chart", action="store_true", help="render an ASCII chart")
    sweep_cmd.add_argument("--output", help="save the sweep as JSON")
    _add_telemetry_argument(sweep_cmd)
    _add_check_argument(sweep_cmd)
    _add_checkpoint_arguments(sweep_cmd)
    sweep_cmd.set_defaults(func=_cmd_sweep)

    city = sub.add_parser("city", help="Fig. 9-11 evaluation on a real-like city")
    city.add_argument("city", choices=("A", "B", "C"))
    city.add_argument("--scale", type=float, default=0.05)
    city.add_argument("--seed", type=int, default=7)
    _add_jobs_argument(city)
    city.add_argument("--chart", action="store_true", help="render an ASCII histogram")
    _add_telemetry_argument(city)
    _add_check_argument(city)
    _add_checkpoint_arguments(city)
    city.set_defaults(func=_cmd_city)

    motivate = sub.add_parser("motivate", help="the Sec. II measurement study")
    _add_config_arguments(motivate)
    motivate.set_defaults(func=_cmd_motivate)

    develop = sub.add_parser(
        "develop", help="the Matthew-effect study under learning-by-doing"
    )
    _add_config_arguments(develop)
    develop.add_argument("--growth", type=float, default=0.02, help="learning-by-doing rate")
    develop.add_argument(
        "--algorithms", nargs="+", default=["Top-3", "RR", "LACB-Opt"], choices=ALGORITHM_NAMES
    )
    develop.set_defaults(func=_cmd_develop)

    serve = sub.add_parser(
        "serve", help="event-driven serving mode (micro-batched matching)"
    )
    serve.add_argument("--brokers", type=int, default=50, help="number of brokers |B|")
    serve.add_argument("--requests", type=int, default=2000, help="number of requests |R|")
    serve.add_argument("--days", type=int, default=7, help="covering days")
    serve.add_argument("--imbalance", type=float, default=0.015, help="sigma = |R|/|B| per batch")
    serve.add_argument("--seed", type=int, default=7, help="matcher seed")
    serve.add_argument("--instance-seed", type=int, default=1, help="city generation seed")
    serve.add_argument(
        "--algorithms", nargs="+", default=["Top-3", "AN", "LACB", "LACB-Opt"],
        choices=ALGORITHM_NAMES,
    )
    serve.add_argument(
        "--window-seconds",
        type=float,
        default=60.0,
        help="virtual length of one platform window on the serving timeline",
    )
    serve.add_argument(
        "--max-wait",
        type=float,
        default=None,
        help="micro-batch max wait in virtual seconds (default: the window "
        "length, i.e. the paper's fixed windows)",
    )
    serve.add_argument(
        "--max-size",
        type=int,
        default=None,
        help="close a micro-batch as soon as it holds this many requests",
    )
    serve.add_argument(
        "--profile",
        choices=("uniform", "bursty"),
        default="uniform",
        help="intra-window arrival rate profile",
    )
    serve.add_argument("--arrival-seed", type=int, default=0, help="arrival draw seed")
    serve.add_argument(
        "--burst-amplitude",
        type=float,
        default=1.2,
        help="bursty profile amplitude in [0, 2); 0 degenerates to uniform",
    )
    serve.add_argument(
        "--incremental",
        action="store_true",
        help="enable warm-started incremental KM + utility cache for the "
        "LACB-family matchers (bit-identical results, faster micro-batches)",
    )
    serve.add_argument(
        "--equivalence",
        action="store_true",
        help="run the serving-vs-batch equivalence suite instead of serving "
        "(exits non-zero on any divergence)",
    )
    _add_telemetry_argument(serve)
    _add_check_argument(serve)
    serve.set_defaults(func=_cmd_serve)

    timing = sub.add_parser("timing", help="per-batch matching cost profile")
    timing.add_argument("values", nargs="+", type=int, help="|B| values")
    timing.add_argument("--batch", type=int, default=10, help="batch size |R|")
    timing.add_argument("--seed", type=int, default=0)
    timing.set_defaults(func=_cmd_timing)

    report = sub.add_parser(
        "report", help="render the telemetry exported by a --telemetry run"
    )
    report.add_argument("dir", help="telemetry directory written by --telemetry")
    report.add_argument(
        "--flamegraph",
        metavar="OUT",
        default=None,
        help="additionally write collapsed stacks (flamegraph.pl/speedscope "
        "format) built from the span tree to OUT",
    )
    report.set_defaults(func=_cmd_report)

    watch = sub.add_parser(
        "watch", help="live view of an in-flight --telemetry run (streamed segments)"
    )
    watch.add_argument("dir", help="telemetry directory of the running command")
    watch.add_argument(
        "--interval", type=float, default=2.0, help="seconds between refreshes"
    )
    watch.add_argument(
        "--once", action="store_true", help="render the current state once and exit"
    )
    watch.set_defaults(func=_cmd_watch)

    explain = sub.add_parser(
        "explain",
        help="reconstruct decision paths from a --telemetry --audit run",
    )
    explain.add_argument("dir", help="telemetry directory of the audited run")
    explain.add_argument("--day", type=int, default=None, help="only this day")
    explain.add_argument(
        "--request", type=int, default=None, help="only this request id"
    )
    explain.add_argument(
        "--broker", type=int, default=None, help="only matches to this broker"
    )
    explain.add_argument(
        "--limit",
        type=int,
        default=10,
        help="maximum decisions rendered (default 10; 0 = no limit)",
    )
    explain.set_defaults(func=_cmd_explain)

    baseline = sub.add_parser(
        "baseline",
        help="benchmark trajectory: append BENCH_*.json artifacts and/or "
        "check them against the baseline",
    )
    baseline.add_argument(
        "artifacts",
        nargs="*",
        help="benchmark artifacts (default: ./BENCH_*.json except the trajectory)",
    )
    baseline.add_argument(
        "--trajectory",
        default="BENCH_trajectory.json",
        help="trajectory file (committed; default ./BENCH_trajectory.json)",
    )
    baseline.add_argument(
        "--append", action="store_true", help="append the artifacts to the trajectory"
    )
    baseline.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if any metric regresses beyond its noise band",
    )
    baseline.add_argument(
        "--strict-baseline",
        action="store_true",
        help="also fail when a metric has no baseline to compare against",
    )
    baseline.add_argument(
        "--window",
        type=int,
        default=5,
        help="baseline = median of the last N matching trajectory entries",
    )
    baseline.set_defaults(func=_cmd_baseline)

    check = sub.add_parser(
        "check", help="correctness self-diagnostic (invariants + property suites)"
    )
    check.add_argument("--brokers", type=int, default=25, help="number of brokers |B|")
    check.add_argument("--requests", type=int, default=250, help="number of requests |R|")
    check.add_argument("--days", type=int, default=3, help="covering days")
    check.add_argument("--seed", type=int, default=7, help="matcher seed")
    check.add_argument("--instance-seed", type=int, default=1, help="city generation seed")
    check.add_argument(
        "--algorithms",
        nargs="+",
        default=["KM", "LACB", "LACB-Opt"],
        choices=ALGORITHM_NAMES,
        help="algorithms driven through the invariant phase",
    )
    check.add_argument(
        "--cases", type=int, default=200, help="randomized cases per property suite"
    )
    check.add_argument(
        "--property-seed", type=int, default=0, help="base seed of the property harness"
    )
    check.add_argument(
        "--report",
        metavar="DIR",
        default=None,
        help="write a JSON violation report to DIR/check_report.json",
    )
    check.add_argument(
        "--resume-cases",
        type=int,
        default=2,
        help="checkpoint/resume equivalence cases with random kill days "
        "(0 disables the resume phase)",
    )
    check.add_argument(
        "--resume-dir",
        metavar="DIR",
        default=None,
        help="keep the resume phase's checkpoint stores under DIR "
        "(throwaway temp directories when omitted)",
    )
    _add_telemetry_argument(check)
    check.set_defaults(func=_cmd_check)

    return parser


def _run_with_telemetry(args: argparse.Namespace, directory: str) -> None:
    """Run one command under live telemetry and export the artifacts.

    The export happens in ``finally``: a failing command (e.g. ``check``
    exiting non-zero on violations) must still ship its telemetry — that
    run's trace is exactly the one worth inspecting — and the failure
    (exit code included) must still propagate.

    Streaming is on throughout: every run writes live segments under
    ``DIR/stream/`` (watch with ``repro-lacb watch DIR``), so even a
    hard kill leaves a partial view that ``report`` can render.
    """
    import os

    from repro.obs.manifest import describe_telemetry
    from repro.obs.stream import TelemetryStreamWriter, stream_dir_for

    telemetry = obs.enable()
    # Spec fan-outs (run_many) derive per-spec segments from stream_dir;
    # runs executed directly under this telemetry flush to "main".
    telemetry.stream_dir = stream_dir_for(directory)
    telemetry.stream = TelemetryStreamWriter(telemetry.stream_dir, segment="main")
    if getattr(args, "audit", False):
        from repro.obs.audit import AuditConfig, audit_dir_for

        telemetry.audit = AuditConfig(sample_every=args.audit_sample)
        telemetry.audit_dir = audit_dir_for(directory)
    start = time.perf_counter()
    try:
        args.func(args)
    finally:
        wall = time.perf_counter() - start
        obs.disable()
        manifest = build_manifest(
            command=args.command,
            args={
                key: value
                for key, value in sorted(vars(args).items())
                if key != "func" and not callable(value)
            },
            wall_seconds=wall,
            extra={"telemetry": describe_telemetry(telemetry)},
        )
        paths = telemetry.export(directory, manifest=manifest)
        log.info("telemetry exported to %s (%d files)", directory, len(paths))
        log.info("render it with: repro-lacb report %s", directory)


def main(argv: list[str] | None = None) -> None:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    setup_cli_logging(-1 if args.quiet else args.verbose)
    # The sweep factor values arrive as floats; integer factors need casting.
    if getattr(args, "command", None) == "sweep" and args.factor != "imbalance":
        args.values = [int(v) for v in args.values]
    if getattr(args, "resume", False) and not getattr(args, "checkpoint", None):
        parser.error("--resume requires --checkpoint DIR")
    if getattr(args, "audit", False) and not getattr(args, "telemetry", None):
        parser.error("--audit requires --telemetry DIR")
    if getattr(args, "audit_sample", 1) < 1:
        parser.error("--audit-sample must be >= 1")
    if getattr(args, "check", False):
        _run_with_checks(args)
    else:
        _dispatch(args)


def _dispatch(args: argparse.Namespace) -> None:
    telemetry_dir = getattr(args, "telemetry", None)
    if telemetry_dir:
        _run_with_telemetry(args, telemetry_dir)
    else:
        args.func(args)


def _run_with_checks(args: argparse.Namespace) -> None:
    """Run one command with runtime invariant enforcement on.

    The environment flag — not just the in-process switchboard — is set so
    ``--jobs N`` worker processes come up with checks enabled too.
    """
    import os

    from repro.check import runtime as check_runtime

    previous = os.environ.get(check_runtime.ENV_FLAG)
    os.environ[check_runtime.ENV_FLAG] = "1"
    check_runtime.enable()
    try:
        _dispatch(args)
    finally:
        check_runtime.disable()
        if previous is None:
            os.environ.pop(check_runtime.ENV_FLAG, None)
        else:
            os.environ[check_runtime.ENV_FLAG] = previous


if __name__ == "__main__":
    main()
