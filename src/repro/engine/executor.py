"""Parallel sweep executor: fan run specs out over a process pool.

:func:`run_many` executes a list of :class:`~repro.engine.spec.RunSpec`
either serially (``jobs=1``) or on a ``concurrent.futures`` process pool
(``jobs>1``).  Results always come back in spec order, and — because every
spec reconstructs its instance from seeds — a parallel run is bit-identical
to the serial one, so ``jobs`` is purely a wall-clock knob.

Telemetry crosses the process boundary the same way: when the parent has
:mod:`repro.obs` telemetry active (or passes one explicitly), every spec —
serial or pooled — runs against its *own* fresh
:class:`~repro.obs.telemetry.Telemetry`, and the serialized payloads
(registry dump + span records) are merged into the parent's telemetry in
spec order.  Counter and histogram merges are exact, so the merged metrics
of a ``jobs=2`` run equal the ``jobs=1`` run bit-for-bit; worker spans land
in their own Chrome-trace lane.

Each process keeps a one-slot platform cache keyed by the platform spec:
sweep grids group many matchers onto the same instance, and rebuilding a
city per run would otherwise dominate small sweeps.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Iterable, Sequence

from repro.engine.hooks import RunResult
from repro.engine.spec import PlatformSpec, RunSpec
from repro.obs.stream import segment_name
from repro.obs.telemetry import Telemetry, current as current_telemetry, use as use_telemetry

#: Process-local platform cache: (cache key, platform) of the most recent
#: instance.  One slot keeps memory bounded while serving the common
#: grid pattern of consecutive specs sharing a platform.
_PLATFORM_CACHE: list[tuple[tuple, object]] = []


def warm_platform_cache(spec: PlatformSpec, platform) -> None:
    """Seed this process's platform cache with an already-built instance.

    Callers that hold a live platform matching ``spec`` (e.g. the real-city
    evaluation, which needs the platform for metrics anyway) can donate it
    so a serial :func:`run_many` does not rebuild the same city.
    """
    _PLATFORM_CACHE[:] = [(spec.cache_key(), platform)]


def _cached_platform(spec: RunSpec):
    key = spec.platform.cache_key()
    if _PLATFORM_CACHE and _PLATFORM_CACHE[0][0] == key:
        return _PLATFORM_CACHE[0][1]
    platform = spec.platform.build()
    _PLATFORM_CACHE[:] = [(key, platform)]
    return platform


def execute_spec(spec: RunSpec) -> RunResult:
    """Execute one run spec, reusing the process-local platform cache."""
    return spec.run(platform=_cached_platform(spec))


def execute_spec_observed(
    spec: RunSpec,
    stream_dir: str | None = None,
    segment: str | None = None,
    audit_dir: str | None = None,
    audit=None,
) -> tuple[RunResult, dict]:
    """Execute one spec under a fresh telemetry; return (result, payload).

    The payload (:meth:`~repro.obs.telemetry.Telemetry.payload`) is plain
    data, safe to ship from a pool worker back to the parent for merging.
    Running each spec against its own registry — even serially — is what
    makes the parent's merge order identical under any ``jobs`` value.

    Args:
        stream_dir: when set, the run streams live telemetry into its own
            segment file under this directory (see :mod:`repro.obs.stream`),
            so progress is observable — and recoverable — even if this
            worker dies mid-run.
        segment: segment stem; defaults to the spec's run id.
        audit_dir: when set (with ``audit``), the run writes decision
            provenance into its own segment of this directory
            (:mod:`repro.obs.audit`) — same naming as stream segments, so
            segment order is spec order under any ``jobs`` value.
        audit: the :class:`~repro.obs.audit.AuditConfig`, or ``None`` (off).
    """
    telemetry = Telemetry()
    if stream_dir is not None:
        from repro.obs.stream import TelemetryStreamWriter

        telemetry.stream = TelemetryStreamWriter(
            stream_dir, segment=segment or spec.run_id()
        )
    if audit is not None and audit_dir is not None:
        telemetry.audit = audit
        telemetry.audit_dir = audit_dir
        telemetry.audit_segment = segment or spec.run_id()
    with use_telemetry(telemetry):
        result = spec.run(platform=_cached_platform(spec))
    return result, telemetry.payload()


def _execute_observed_task(task: tuple) -> tuple[RunResult, dict]:
    """Pool-picklable wrapper: one (spec, …) task → observed run."""
    spec, stream_dir, segment, audit_dir, audit = task
    return execute_spec_observed(
        spec, stream_dir=stream_dir, segment=segment, audit_dir=audit_dir, audit=audit
    )


def run_many(
    specs: Sequence[RunSpec] | Iterable[RunSpec],
    jobs: int = 1,
    telemetry: Telemetry | None = None,
) -> list[RunResult]:
    """Execute run specs, serially or over a process pool.

    Args:
        specs: the runs to execute.
        jobs: worker processes; ``1`` (the default) runs serially in this
            process, ``0`` or negative means one worker per CPU.
        telemetry: merge every run's metrics and spans into this telemetry
            object.  Defaults to the process's active telemetry (so a CLI
            ``--telemetry`` run observes sweeps with no extra plumbing);
            pass nothing and keep telemetry disabled to skip collection.

    Returns:
        One :class:`~repro.engine.hooks.RunResult` per spec, in spec order
        regardless of which worker finished first.
    """
    specs = list(specs)
    if telemetry is None:
        telemetry = current_telemetry()
    if jobs <= 0:
        jobs = os.cpu_count() or 1

    # Per-spec stream/audit segments: the zero-padded index prefix makes
    # segment name order equal spec order, which is the merge order readers
    # use.
    stream_dir = telemetry.stream_dir if telemetry is not None else None
    audit_dir = telemetry.audit_dir if telemetry is not None else None
    audit = telemetry.audit if telemetry is not None else None
    tasks = [
        (spec, stream_dir, segment_name(index, spec.run_id(), total=len(specs)), audit_dir, audit)
        for index, spec in enumerate(specs)
    ]

    if jobs == 1 or len(specs) <= 1:
        if telemetry is None:
            return [execute_spec(spec) for spec in specs]
        observed = [_execute_observed_task(task) for task in tasks]
    else:
        workers = min(jobs, len(specs))
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            # Executor.map preserves input order, giving deterministic results.
            if telemetry is None:
                return list(pool.map(execute_spec, specs))
            observed = list(pool.map(_execute_observed_task, tasks))

    # Merge in spec order: counter/histogram folds are exact, so the merged
    # registry is bit-identical for any jobs value.
    for _result, payload in observed:
        telemetry.merge_payload(payload)
    return [result for result, _payload in observed]
