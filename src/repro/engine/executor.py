"""Parallel sweep executor: fan run specs out over a process pool.

:func:`run_many` executes a list of :class:`~repro.engine.spec.RunSpec`
either serially (``jobs=1``) or on a ``concurrent.futures`` process pool
(``jobs>1``).  Results always come back in spec order, and — because every
spec reconstructs its instance from seeds — a parallel run is bit-identical
to the serial one, so ``jobs`` is purely a wall-clock knob.

Each process keeps a one-slot platform cache keyed by the platform spec:
sweep grids group many matchers onto the same instance, and rebuilding a
city per run would otherwise dominate small sweeps.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Iterable, Sequence

from repro.engine.hooks import RunResult
from repro.engine.spec import PlatformSpec, RunSpec

#: Process-local platform cache: (cache key, platform) of the most recent
#: instance.  One slot keeps memory bounded while serving the common
#: grid pattern of consecutive specs sharing a platform.
_PLATFORM_CACHE: list[tuple[tuple, object]] = []


def warm_platform_cache(spec: PlatformSpec, platform) -> None:
    """Seed this process's platform cache with an already-built instance.

    Callers that hold a live platform matching ``spec`` (e.g. the real-city
    evaluation, which needs the platform for metrics anyway) can donate it
    so a serial :func:`run_many` does not rebuild the same city.
    """
    _PLATFORM_CACHE[:] = [(spec.cache_key(), platform)]


def execute_spec(spec: RunSpec) -> RunResult:
    """Execute one run spec, reusing the process-local platform cache."""
    key = spec.platform.cache_key()
    if _PLATFORM_CACHE and _PLATFORM_CACHE[0][0] == key:
        platform = _PLATFORM_CACHE[0][1]
    else:
        platform = spec.platform.build()
        _PLATFORM_CACHE[:] = [(key, platform)]
    return spec.run(platform=platform)


def run_many(
    specs: Sequence[RunSpec] | Iterable[RunSpec],
    jobs: int = 1,
) -> list[RunResult]:
    """Execute run specs, serially or over a process pool.

    Args:
        specs: the runs to execute.
        jobs: worker processes; ``1`` (the default) runs serially in this
            process, ``0`` or negative means one worker per CPU.

    Returns:
        One :class:`~repro.engine.hooks.RunResult` per spec, in spec order
        regardless of which worker finished first.
    """
    specs = list(specs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    if jobs == 1 or len(specs) <= 1:
        return [execute_spec(spec) for spec in specs]
    workers = min(jobs, len(specs))
    with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
        # Executor.map preserves input order, giving deterministic results.
        return list(pool.map(execute_spec, specs))
