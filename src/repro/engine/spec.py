"""Declarative, picklable run specifications.

A :class:`RunSpec` is plain data — a platform recipe plus a matcher recipe
— from which a worker process can reconstruct the exact environment and
algorithm and execute one run.  Because instances are fully determined by
their configuration seeds (see ``docs/architecture.md``), a spec executed
anywhere yields bit-identical results, which is what lets the
:mod:`~repro.engine.executor` fan sweeps out over a process pool without
shipping live platform objects around.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, fields

from repro.core.config import BanditConfig, LACBConfig
from repro.simulation.datasets import (
    REAL_CITY_SPECS,
    SyntheticConfig,
    generate_city,
    real_like_city,
)


@dataclass(frozen=True)
class PlatformSpec:
    """Recipe for reconstructing a platform environment from plain data.

    Use the :meth:`synthetic` / :meth:`real_city` constructors rather than
    filling fields by hand.

    Attributes:
        kind: ``"synthetic"`` (Table III grid) or ``"real_city"`` (Table IV).
        config: the synthetic city configuration (``kind="synthetic"``).
        city: city name ``"A"`` / ``"B"`` / ``"C"`` (``kind="real_city"``).
        scale: proportional shrink factor on Table IV sizes.
        seed: master seed of the real-like city.
        appeal_rate: client-appeal probability scale of the real-like city.
    """

    kind: str = "synthetic"
    config: SyntheticConfig | None = None
    city: str | None = None
    scale: float = 0.05
    seed: int = 0
    appeal_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("synthetic", "real_city"):
            raise ValueError(f"unknown platform kind {self.kind!r}")
        if self.kind == "synthetic" and self.config is None:
            raise ValueError("synthetic platform specs require a SyntheticConfig")
        if self.kind == "real_city" and self.city not in REAL_CITY_SPECS:
            raise ValueError(
                f"real_city platform specs require a city in {sorted(REAL_CITY_SPECS)}"
            )

    @classmethod
    def synthetic(cls, config: SyntheticConfig) -> PlatformSpec:
        """Spec for a Table III synthetic city."""
        return cls(kind="synthetic", config=config)

    @classmethod
    def real_city(
        cls, city: str, scale: float = 0.05, seed: int = 7, appeal_rate: float = 0.0
    ) -> PlatformSpec:
        """Spec for a Table IV-like city (``"A"`` / ``"B"`` / ``"C"``)."""
        return cls(kind="real_city", city=city, scale=scale, seed=seed, appeal_rate=appeal_rate)

    def build(self):
        """Materialize the platform this spec describes."""
        if self.kind == "synthetic":
            return generate_city(self.config)
        platform, _spec, _config = real_like_city(
            self.city, scale=self.scale, seed=self.seed, appeal_rate=self.appeal_rate
        )
        return platform

    def cache_key(self) -> tuple:
        """Hashable identity, used by the executor's platform cache."""
        config_key = None
        if self.config is not None:
            config_key = tuple(getattr(self.config, f.name) for f in fields(self.config))
        return (self.kind, config_key, self.city, self.scale, self.seed, self.appeal_rate)


@dataclass(frozen=True)
class MatcherSpec:
    """Recipe for reconstructing a matcher via the algorithm registry.

    Attributes:
        name: one of :data:`repro.algorithms.ALGORITHM_NAMES`.
        seed: matcher-private randomness seed.
        empirical_capacity: CTop-K's city-level capacity (Table IV values).
        backend: matching backend for the KM-based algorithms.
        bandit_config: override the AN / LACB bandit settings.
        lacb_config: override the full LACB configuration.
    """

    name: str
    seed: int = 0
    empirical_capacity: float | None = None
    backend: str = "repro"
    bandit_config: BanditConfig | None = None
    lacb_config: LACBConfig | None = None

    def build(self, platform):
        """Materialize the matcher against a concrete platform."""
        from repro.algorithms import make_matcher

        return make_matcher(
            self.name,
            platform,
            seed=self.seed,
            empirical_capacity=self.empirical_capacity,
            bandit_config=self.bandit_config,
            lacb_config=self.lacb_config,
            backend=self.backend,
        )


@dataclass(frozen=True)
class RunSpec:
    """One (platform × matcher) run as plain, picklable data.

    Attributes:
        platform: the environment recipe.
        matcher: the algorithm recipe.
        store_outcomes: keep raw day outcomes on the result.
        store_assignments: keep the per-batch assignment log on the result.
        tag: free-form label threaded through to grid bookkeeping (e.g. the
            swept factor value); ignored by execution.
        checkpoint_dir: when set, a :class:`repro.state.CheckpointHook`
            writes a durable snapshot of platform, matcher and metrics
            state into ``checkpoint_dir/<run_id>`` at day boundaries.
        checkpoint_every: write every N-th day boundary (the final day is
            always written).
        resume_from: when set, the run restores the latest checkpoint
            found under ``resume_from/<run_id>`` and continues from the
            following day; an empty or missing store silently starts from
            day 0, so ``--resume`` is safe on a first run.
    """

    platform: PlatformSpec
    matcher: MatcherSpec
    store_outcomes: bool = False
    store_assignments: bool = False
    tag: str | None = None
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    resume_from: str | None = None

    def run_id(self) -> str:
        """Stable per-spec identity naming this run's checkpoint store.

        Combines a readable matcher slug with a digest over everything that
        determines the trajectory (platform recipe, matcher recipe incl.
        config overrides, and the sweep tag), so two specs share a store
        directory iff they would produce bit-identical runs.
        """
        identity = (
            self.platform.cache_key(),
            tuple(repr(getattr(self.matcher, f.name)) for f in fields(self.matcher)),
            self.tag,
        )
        digest = hashlib.sha256(repr(identity).encode("utf-8")).hexdigest()[:10]
        slug = self.matcher.name.lower().replace(" ", "-").replace("/", "-")
        return f"{slug}-s{self.matcher.seed}-{digest}"

    def run_directory(self, root: str) -> str:
        """This spec's store directory under a checkpoint root."""
        return os.path.join(root, self.run_id())

    def _restore_latest(self, platform, matcher, collector):
        """Restore the newest checkpoint under ``resume_from``, if any.

        Returns:
            ``(start_day, parent)`` where ``start_day`` is the first day
            still to execute (0 when the store is empty) and ``parent`` is
            the :class:`~repro.state.CheckpointRecord` resumed from, or
            ``None`` on a fresh start.
        """
        from repro.state import CheckpointStore

        store = CheckpointStore(self.run_directory(self.resume_from))
        record = store.latest(run_id=self.run_id())
        if record is None:
            return 0, None
        state = store.load(record)
        platform.restore(state["platform"])
        matcher.restore(state["matcher"])
        collector.restore(state["hooks"]["collector"])
        return record.day + 1, record

    def run(self, platform=None):
        """Execute this spec and return its :class:`~repro.engine.hooks.RunResult`.

        Args:
            platform: an already-built platform matching ``self.platform``
                (the engine resets it on a fresh start); built from the
                spec when omitted.
        """
        from repro.engine.hooks import MetricsCollector
        from repro.engine.loop import DayLoopEngine

        if platform is None:
            platform = self.platform.build()
        matcher = self.matcher.build(platform)
        collector = MetricsCollector(
            store_outcomes=self.store_outcomes, store_assignments=self.store_assignments
        )
        start_day = 0
        parent = None
        if self.resume_from is not None:
            start_day, parent = self._restore_latest(platform, matcher, collector)
        hooks: tuple = (collector,)
        if self.checkpoint_dir is not None:
            from repro.state import CheckpointHook, CheckpointStore

            store = CheckpointStore(self.run_directory(self.checkpoint_dir))
            hooks += (
                CheckpointHook(
                    store,
                    run_id=self.run_id(),
                    every=self.checkpoint_every,
                    components={"collector": collector},
                    parent_run_id=None if parent is None else parent.run_id,
                    resumed_from_day=None if parent is None else parent.day,
                ),
            )
        DayLoopEngine().run(platform, matcher, hooks=hooks, start_day=start_day)
        return collector.result
