"""Lifecycle hooks: composable observers of the day-loop engine.

A :class:`RunHook` receives the engine's lifecycle events.  The built-ins
cover everything the old monolithic runner hard-coded — result
accumulation (:class:`MetricsCollector`), decision-time accounting
(:class:`DecisionTimer`), assignment logging (:class:`AssignmentLogger`)
— plus a :class:`ProgressReporter` for long runs.  Custom hooks subclass
:class:`RunHook` and override only the events they care about.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import TextIO

import numpy as np

from repro.core.types import Assignment, DayOutcome
from repro.engine.loop import BatchAssignedEvent, DayEndEvent, DayStartEvent, RunContext
from repro.state.protocol import StateError, expect, versioned


@dataclass
class RunResult:
    """Everything measured over one algorithm's run on one instance.

    Attributes:
        algorithm: the matcher's display name.
        total_realized_utility: sum of workload-degraded realized utility
            over all brokers and days — the paper's "total utility" axis.
        total_predicted_utility: sum of input utilities over matched pairs
            (the objective of Eq. 1; useful to contrast with realized).
        daily_utility: ``(days,)`` realized utility per day.
        broker_utility: ``(|B|,)`` realized utility per broker over the run.
        broker_workload: ``(|B|,)`` mean daily workload per broker.
        broker_peak_workload: ``(|B|,)`` max daily workload per broker.
        broker_signup: ``(|B|,)`` mean daily sign-up rate over served days.
        decision_time: seconds spent inside the matcher (the paper's
            running-time axis measures algorithm time, not environment time).
        daily_decision_time: ``(days,)`` per-day matcher seconds.
        num_assigned: total matched request count.
        outcomes: the raw day outcomes (kept only when requested).
        assignments: the per-pair assignment log (kept only when requested;
            the raw material for trace export and utility-model training).
    """

    algorithm: str
    total_realized_utility: float
    total_predicted_utility: float
    daily_utility: np.ndarray
    broker_utility: np.ndarray
    broker_workload: np.ndarray
    broker_peak_workload: np.ndarray
    broker_signup: np.ndarray
    decision_time: float
    daily_decision_time: np.ndarray
    num_assigned: int
    outcomes: list[DayOutcome] = field(default_factory=list)
    assignments: list[Assignment] = field(default_factory=list)


class RunHook:
    """Base observer of the day-loop lifecycle; every method is a no-op.

    Subclasses override the events they need.  Hooks are notified in
    registration order; they must treat event payloads as read-only and
    must not re-time matcher work (the engine's ``matcher_seconds`` is the
    single source of truth for decision time).
    """

    def on_run_start(self, context: RunContext) -> None:
        """The platform was reset and the horizon is about to start."""

    def on_day_start(self, event: DayStartEvent) -> None:
        """``matcher.begin_day`` returned for ``event.day``."""

    def on_batch_assigned(self, event: BatchAssignedEvent) -> None:
        """One batch assignment was produced and submitted."""

    def on_day_end(self, event: DayEndEvent) -> None:
        """``matcher.end_day`` consumed the day's realized feedback."""

    def on_run_end(self, context: RunContext) -> None:
        """The whole horizon finished."""


class DecisionTimer(RunHook):
    """Accumulates the engine-measured matcher seconds, per day and total.

    This is the canonical decision-time accountant: it only ever sums the
    ``matcher_seconds`` the engine measured around ``begin_day`` /
    ``assign_batch`` / ``end_day``, so environment time (request sampling,
    ``predicted_utilities``, outcome realization) is excluded by
    construction.
    """

    def __init__(self) -> None:
        self.daily_seconds: np.ndarray = np.zeros(0)
        self._pending_restore: np.ndarray | None = None

    def on_run_start(self, context: RunContext) -> None:
        self.daily_seconds = np.zeros(context.num_days)
        if self._pending_restore is not None:
            if self._pending_restore.shape != self.daily_seconds.shape:
                raise StateError(
                    f"timer snapshot covers {self._pending_restore.size} days, "
                    f"this run has {context.num_days}"
                )
            self.daily_seconds = self._pending_restore.copy()
            self._pending_restore = None

    def on_day_start(self, event: DayStartEvent) -> None:
        self.daily_seconds[event.day] += event.matcher_seconds

    def on_batch_assigned(self, event: BatchAssignedEvent) -> None:
        self.daily_seconds[event.day] += event.matcher_seconds

    def on_day_end(self, event: DayEndEvent) -> None:
        self.daily_seconds[event.day] += event.matcher_seconds

    @property
    def total_seconds(self) -> float:
        """Matcher seconds summed over the horizon."""
        return float(self.daily_seconds.sum())

    # ------------------------------------------------------------------
    # Durable state (repro.state contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deep snapshot of the per-day accumulators."""
        return versioned(
            "engine.decision_timer", {"daily_seconds": self.daily_seconds.copy()}
        )

    def restore(self, state) -> None:
        """Stash the snapshot; it is applied inside the next ``on_run_start``.

        The engine zeroes every hook's accumulators at run start, so a
        restore applied eagerly would be wiped.  Stash-then-apply lets a
        resumed run initialize on the run's real shape and *then* reload
        the completed days' totals.
        """
        payload = expect(state, "engine.decision_timer")
        self._pending_restore = np.array(payload["daily_seconds"], dtype=float)


class MetricsCollector(RunHook):
    """Reproduces the classic :class:`RunResult` as a composable observer.

    Owns a :class:`DecisionTimer` internally (exposed as ``timer``) so the
    result's decision-time fields come from the canonical accountant.

    Args:
        store_outcomes: keep the raw :class:`~repro.core.types.DayOutcome`
            objects on the result.
        store_assignments: keep the per-batch assignment log on the result.
    """

    def __init__(self, store_outcomes: bool = False, store_assignments: bool = False) -> None:
        self.store_outcomes = store_outcomes
        self.store_assignments = store_assignments
        self.timer = DecisionTimer()
        self._result: RunResult | None = None
        self._pending_restore: dict | None = None

    def on_run_start(self, context: RunContext) -> None:
        self.timer.on_run_start(context)
        self._result = None
        self._num_days = context.num_days
        self._daily_utility = np.zeros(context.num_days)
        self._broker_utility = np.zeros(context.num_brokers)
        self._workload_sum = np.zeros(context.num_brokers)
        self._workload_peak = np.zeros(context.num_brokers)
        self._signup_sum = np.zeros(context.num_brokers)
        self._signup_days = np.zeros(context.num_brokers)
        self._predicted_total = 0.0
        self._num_assigned = 0
        self._outcomes: list[DayOutcome] = []
        self._assignments: list[Assignment] = []
        if self._pending_restore is not None:
            self._apply_restore(self._pending_restore, context)
            self._pending_restore = None

    def _apply_restore(self, payload: dict, context: RunContext) -> None:
        daily_utility = np.array(payload["daily_utility"], dtype=float)
        broker_utility = np.array(payload["broker_utility"], dtype=float)
        if daily_utility.shape != (context.num_days,) or broker_utility.shape != (
            context.num_brokers,
        ):
            raise StateError(
                f"collector snapshot shape ({daily_utility.size} days, "
                f"{broker_utility.size} brokers) does not match the run "
                f"({context.num_days} days, {context.num_brokers} brokers)"
            )
        self._daily_utility = daily_utility
        self._broker_utility = broker_utility
        self._workload_sum = np.array(payload["workload_sum"], dtype=float)
        self._workload_peak = np.array(payload["workload_peak"], dtype=float)
        self._signup_sum = np.array(payload["signup_sum"], dtype=float)
        self._signup_days = np.array(payload["signup_days"], dtype=float)
        self._predicted_total = float(payload["predicted_total"])
        self._num_assigned = int(payload["num_assigned"])
        self._outcomes = [DayOutcome.from_state(s) for s in payload["outcomes"]]
        self._assignments = [Assignment.from_state(s) for s in payload["assignments"]]

    def on_day_start(self, event: DayStartEvent) -> None:
        self.timer.on_day_start(event)

    def on_batch_assigned(self, event: BatchAssignedEvent) -> None:
        self.timer.on_batch_assigned(event)
        self._predicted_total += event.assignment.predicted_utility
        self._num_assigned += len(event.assignment)
        if self.store_assignments:
            self._assignments.append(event.assignment)

    def on_day_end(self, event: DayEndEvent) -> None:
        self.timer.on_day_end(event)
        outcome = event.outcome
        self._daily_utility[event.day] = outcome.total_realized_utility
        self._broker_utility += outcome.realized_utility
        self._workload_sum += outcome.workloads
        self._workload_peak = np.maximum(self._workload_peak, outcome.workloads)
        served = outcome.workloads > 0
        self._signup_sum[served] += outcome.signup_rates[served]
        self._signup_days += served
        if self.store_outcomes:
            self._outcomes.append(outcome)

    def on_run_end(self, context: RunContext) -> None:
        with np.errstate(invalid="ignore"):
            broker_signup = np.where(
                self._signup_days > 0, self._signup_sum / np.maximum(self._signup_days, 1), 0.0
            )
        self._result = RunResult(
            algorithm=context.matcher.name,
            total_realized_utility=float(self._daily_utility.sum()),
            total_predicted_utility=float(self._predicted_total),
            daily_utility=self._daily_utility,
            broker_utility=self._broker_utility,
            broker_workload=self._workload_sum / self._num_days,
            broker_peak_workload=self._workload_peak,
            broker_signup=broker_signup,
            decision_time=self.timer.total_seconds,
            daily_decision_time=self.timer.daily_seconds,
            num_assigned=self._num_assigned,
            outcomes=self._outcomes,
            assignments=self._assignments,
        )

    @property
    def result(self) -> RunResult:
        """The finished run's result; raises if the run has not completed."""
        if self._result is None:
            raise RuntimeError("MetricsCollector has no result: the run has not completed")
        return self._result

    # ------------------------------------------------------------------
    # Durable state (repro.state contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deep snapshot of every accumulator (timer included)."""
        return versioned(
            "engine.metrics_collector",
            {
                "timer": self.timer.snapshot(),
                "daily_utility": self._daily_utility.copy(),
                "broker_utility": self._broker_utility.copy(),
                "workload_sum": self._workload_sum.copy(),
                "workload_peak": self._workload_peak.copy(),
                "signup_sum": self._signup_sum.copy(),
                "signup_days": self._signup_days.copy(),
                "predicted_total": float(self._predicted_total),
                "num_assigned": int(self._num_assigned),
                "outcomes": [outcome.to_state() for outcome in self._outcomes],
                "assignments": [a.to_state() for a in self._assignments],
            },
        )

    def restore(self, state) -> None:
        """Stash the snapshot; applied inside the next ``on_run_start``.

        Same rationale as :meth:`DecisionTimer.restore`: the engine zeroes
        accumulators at run start, so the completed days' totals are
        reloaded right after that initialization.
        """
        payload = expect(state, "engine.metrics_collector")
        self.timer.restore(payload["timer"])
        self._pending_restore = payload


class AssignmentLogger(RunHook):
    """Streams every assignment (and optionally every outcome) into lists.

    Unlike ``MetricsCollector(store_assignments=True)`` this keeps nothing
    else, which makes it the light-weight choice for trace export and
    utility-model training pipelines.
    """

    def __init__(self, store_outcomes: bool = False) -> None:
        self.store_outcomes = store_outcomes
        self.assignments: list[Assignment] = []
        self.outcomes: list[DayOutcome] = []
        self._pending_restore: dict | None = None

    def on_run_start(self, context: RunContext) -> None:
        self.assignments = []
        self.outcomes = []
        if self._pending_restore is not None:
            payload = self._pending_restore
            self._pending_restore = None
            self.assignments = [Assignment.from_state(s) for s in payload["assignments"]]
            self.outcomes = [DayOutcome.from_state(s) for s in payload["outcomes"]]

    def on_batch_assigned(self, event: BatchAssignedEvent) -> None:
        self.assignments.append(event.assignment)

    def on_day_end(self, event: DayEndEvent) -> None:
        if self.store_outcomes:
            self.outcomes.append(event.outcome)

    def snapshot(self) -> dict:
        """Deep snapshot of the streamed logs."""
        return versioned(
            "engine.assignment_logger",
            {
                "assignments": [a.to_state() for a in self.assignments],
                "outcomes": [outcome.to_state() for outcome in self.outcomes],
            },
        )

    def restore(self, state) -> None:
        """Stash the snapshot; applied inside the next ``on_run_start``."""
        self._pending_restore = expect(state, "engine.assignment_logger")


class ProgressReporter(RunHook):
    """Prints one status line per ``every`` finished days.

    Args:
        every: report every N-th day (plus the final day).
        stream: the text stream written to (defaults to stderr).
    """

    def __init__(self, every: int = 1, stream: TextIO | None = None) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = every
        self.stream = stream if stream is not None else sys.stderr
        self._name = ""
        self._num_days = 0
        self._matcher_seconds = 0.0

    def on_run_start(self, context: RunContext) -> None:
        self._name = context.matcher.name
        self._num_days = context.num_days
        self._matcher_seconds = 0.0

    def on_day_start(self, event: DayStartEvent) -> None:
        self._matcher_seconds += event.matcher_seconds

    def on_batch_assigned(self, event: BatchAssignedEvent) -> None:
        self._matcher_seconds += event.matcher_seconds

    def on_day_end(self, event: DayEndEvent) -> None:
        self._matcher_seconds += event.matcher_seconds
        day = event.day + 1
        if day % self.every == 0 or day == self._num_days:
            print(
                f"[{self._name}] day {day}/{self._num_days} "
                f"utility={event.outcome.total_realized_utility:.2f} "
                f"matcher={self._matcher_seconds:.3f}s",
                file=self.stream,
            )
