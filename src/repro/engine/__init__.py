"""Run-orchestration engine: the day loop as a composable subsystem.

Four layers, each usable on its own:

- :mod:`~repro.engine.loop` — :class:`DayLoopEngine`, the single
  authoritative driver of the platform↔matcher protocol, emitting
  lifecycle events (run/day/batch start and end) with engine-measured
  matcher seconds;
- :mod:`~repro.engine.hooks` — the :class:`RunHook` observer protocol and
  built-ins (:class:`MetricsCollector`, :class:`DecisionTimer`,
  :class:`AssignmentLogger`, :class:`ProgressReporter`);
- :mod:`~repro.engine.spec` — picklable :class:`PlatformSpec` /
  :class:`MatcherSpec` / :class:`RunSpec` dataclasses reconstructing
  environments and algorithms from plain data, seed-for-seed;
- :mod:`~repro.engine.executor` — :func:`run_many`, fanning specs over a
  process pool with deterministic result ordering.

The classic entry points (``run_algorithm``, ``compare_algorithms``,
``sweep``, ``evaluate_city``) are thin shims over these layers.
"""

from repro.engine.executor import execute_spec, run_many, warm_platform_cache
from repro.engine.hooks import (
    AssignmentLogger,
    DecisionTimer,
    MetricsCollector,
    ProgressReporter,
    RunHook,
    RunResult,
)
from repro.engine.loop import (
    BatchAssignedEvent,
    DayEndEvent,
    DayLoopEngine,
    DayStartEvent,
    RunContext,
)
from repro.engine.spec import MatcherSpec, PlatformSpec, RunSpec

__all__ = [
    "AssignmentLogger",
    "BatchAssignedEvent",
    "DayEndEvent",
    "DayLoopEngine",
    "DayStartEvent",
    "DecisionTimer",
    "MatcherSpec",
    "MetricsCollector",
    "PlatformSpec",
    "ProgressReporter",
    "RunContext",
    "RunHook",
    "RunResult",
    "RunSpec",
    "execute_spec",
    "run_many",
    "warm_platform_cache",
]
