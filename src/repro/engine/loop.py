"""The day-loop engine: one authoritative driver of the platform↔matcher protocol.

Every consumer of the reproduction — the experiment runner, the Fig. 8
sweeps, the real-like-city evaluation, the CLI and the benchmark suite —
ultimately drives the same loop::

    platform.reset()
    for each day:
        contexts = platform.start_day(day)
        matcher.begin_day(day, contexts)                       [timed]
        for each batch:
            request_ids = platform.batch_requests(day, batch)
            utilities = platform.predicted_utilities(ids)      [environment]
            assignment = matcher.assign_batch(...)             [timed]
            platform.submit_assignment(assignment)
        outcome = platform.finish_day()
        matcher.end_day(day, outcome, contexts)                [timed]

:class:`DayLoopEngine` owns this protocol and emits lifecycle events to
:class:`~repro.engine.hooks.RunHook` observers, so result accumulation,
timing, logging and progress reporting compose instead of being hard-coded
into one runner function.  While :mod:`repro.obs` telemetry is active
(:func:`repro.obs.telemetry.enable`), the engine additionally attaches a
:class:`~repro.obs.hook.TelemetryHook` so metrics and spans ride along with
every run without caller wiring; likewise, while runtime invariant checks
are active (:func:`repro.check.runtime.enable` / ``REPRO_CHECK=1``) it
attaches a :class:`~repro.check.hook.CheckHook` enforcing per-batch
feasibility and end-of-day accounting invariants.

Timing seam
-----------

The engine is the single place where matcher time is measured.  The clock
runs only around the three matcher calls (``begin_day``, ``assign_batch``,
``end_day``); environment work — request sampling, the deployed utility
model (``predicted_utilities``), outcome realization — is never charged to
decision time.  This reproduces the paper's running-time axis, which
measures algorithm time, not simulator time.  Hooks receive the measured
``matcher_seconds`` on each event and must not re-time anything themselves;
:class:`~repro.engine.hooks.DecisionTimer` is the canonical accumulator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # imported lazily to keep the engine import-light
    from repro.algorithms.base import Matcher
    from repro.core.types import Assignment, DayOutcome
    from repro.engine.hooks import RunHook
    from repro.simulation.platform import RealEstatePlatform


@dataclass(frozen=True)
class RunContext:
    """Immutable facts about one run, handed to hooks at start and end.

    Attributes:
        platform: the environment being driven.
        matcher: the algorithm under test.
        num_days: horizon length.
        num_brokers: broker-pool size ``|B|``.
        batches_per_day: time intervals per day.
    """

    platform: RealEstatePlatform
    matcher: Matcher
    num_days: int
    num_brokers: int
    batches_per_day: int


@dataclass(frozen=True)
class DayStartEvent:
    """Emitted after ``matcher.begin_day`` returns.

    Attributes:
        day: day index.
        contexts: the day's broker working-status contexts ``x_b``.
        matcher_seconds: wall-clock seconds spent inside ``begin_day``.
        matcher_cpu_seconds: CPU seconds (``process_time``) of the same call.
    """

    day: int
    contexts: np.ndarray
    matcher_seconds: float
    matcher_cpu_seconds: float = 0.0


@dataclass(frozen=True)
class BatchAssignedEvent:
    """Emitted after one batch assignment has been submitted.

    Attributes:
        day / batch: interval coordinates.
        request_ids: global ids of the batch's requests.
        utilities: the ``(|R_batch|, |B|)`` predicted utilities the matcher saw.
        assignment: the matching ``M^(i)`` the matcher produced.
        matcher_seconds: wall-clock seconds spent inside ``assign_batch``
            (excludes ``predicted_utilities`` and ``submit_assignment``).
        matcher_cpu_seconds: CPU seconds (``process_time``) of the same call.
    """

    day: int
    batch: int
    request_ids: np.ndarray
    utilities: np.ndarray
    assignment: Assignment
    matcher_seconds: float
    matcher_cpu_seconds: float = 0.0


@dataclass(frozen=True)
class DayEndEvent:
    """Emitted after ``matcher.end_day`` consumed the realized feedback.

    Attributes:
        day: day index.
        outcome: the platform's realized end-of-day feedback.
        contexts: the contexts the day started with.
        matcher_seconds: wall-clock seconds spent inside ``end_day``.
        matcher_cpu_seconds: CPU seconds (``process_time``) of the same call.
    """

    day: int
    outcome: DayOutcome
    contexts: np.ndarray
    matcher_seconds: float
    matcher_cpu_seconds: float = 0.0


@dataclass
class DayLoopEngine:
    """Drives one matcher over a platform's whole horizon, emitting events.

    The platform is reset first, so repeated runs on the same instance are
    independent and face identical request streams and utility inputs
    (bit-for-bit, given the repo's seeding discipline).

    Attributes:
        clock: the monotonic timer charged for matcher calls; injectable
            for deterministic timing tests.
    """

    clock: Callable[[], float] = time.perf_counter

    def run(
        self,
        platform: RealEstatePlatform,
        matcher: Matcher,
        hooks: Sequence[RunHook] | Iterable[RunHook] = (),
        start_day: int = 0,
    ) -> RunContext:
        """Run the day loop from ``start_day``, notifying ``hooks`` throughout.

        Args:
            platform: the environment.  Reset before the first day when the
                run starts from day 0; a resumed run (``start_day > 0``)
                must arrive with platform, matcher and hooks already
                restored to their day-``start_day - 1`` checkpoint state,
                and the engine deliberately leaves them untouched.
            matcher: the algorithm under test.
            hooks: observers notified in the given order at every event.
            start_day: first day to execute (0 for a fresh run).  May equal
                ``num_days``, in which case the loop body is empty and only
                the run-start/run-end events fire — how a run resumed from
                its final checkpoint rebuilds its result.

        Returns:
            The run's :class:`RunContext` (also handed to every hook).
        """
        hooks = tuple(hooks)
        hooks += _telemetry_hooks(hooks)
        hooks += _check_hooks(hooks)
        if not 0 <= start_day <= platform.num_days:
            raise ValueError(
                f"start_day must be in [0, {platform.num_days}], got {start_day}"
            )
        if start_day == 0:
            platform.reset()
        context = RunContext(
            platform=platform,
            matcher=matcher,
            num_days=platform.num_days,
            num_brokers=platform.num_brokers,
            batches_per_day=platform.batches_per_day,
        )
        for hook in hooks:
            hook.on_run_start(context)

        clock = self.clock
        cpu_clock = time.process_time
        for day in range(start_day, context.num_days):
            _set_observed_day(day)
            contexts = platform.start_day(day)
            cpu_tick = cpu_clock()
            tick = clock()
            matcher.begin_day(day, contexts)
            begin_seconds = clock() - tick
            begin_cpu = cpu_clock() - cpu_tick
            day_event = DayStartEvent(
                day=day,
                contexts=contexts,
                matcher_seconds=begin_seconds,
                matcher_cpu_seconds=begin_cpu,
            )
            for hook in hooks:
                hook.on_day_start(day_event)

            for batch in range(context.batches_per_day):
                request_ids = platform.batch_requests(day, batch)
                if request_ids.size == 0:
                    continue
                # Environment work: the deployed model's predictions are
                # computed outside the matcher clock by construction.
                utilities = platform.predicted_utilities(request_ids)
                cpu_tick = cpu_clock()
                tick = clock()
                assignment = matcher.assign_batch(day, batch, request_ids, utilities)
                assign_seconds = clock() - tick
                assign_cpu = cpu_clock() - cpu_tick
                platform.submit_assignment(assignment)
                batch_event = BatchAssignedEvent(
                    day=day,
                    batch=batch,
                    request_ids=request_ids,
                    utilities=utilities,
                    assignment=assignment,
                    matcher_seconds=assign_seconds,
                    matcher_cpu_seconds=assign_cpu,
                )
                for hook in hooks:
                    hook.on_batch_assigned(batch_event)

            outcome = platform.finish_day()
            cpu_tick = cpu_clock()
            tick = clock()
            matcher.end_day(day, outcome, contexts)
            end_seconds = clock() - tick
            end_cpu = cpu_clock() - cpu_tick
            end_event = DayEndEvent(
                day=day,
                outcome=outcome,
                contexts=contexts,
                matcher_seconds=end_seconds,
                matcher_cpu_seconds=end_cpu,
            )
            for hook in hooks:
                hook.on_day_end(end_event)

        _set_observed_day(-1)
        for hook in hooks:
            hook.on_run_end(context)
        return context


def _set_observed_day(day: int) -> None:
    """Stamp the executing day onto the active tracer (no-op when off).

    Interior spans (KM solve, CBS pruning, bandit predict/update) open
    during matcher calls, before any lifecycle event fires — so per-day
    attribution cannot come from hooks.  The loop marks the day on the
    tracer instead, and every span finished while it is set carries it
    (see :attr:`repro.obs.tracing.SpanRecord.day`).
    """
    from repro.obs.telemetry import current

    telemetry = current()
    if telemetry is not None:
        telemetry.tracer.day = day


def _telemetry_hooks(hooks: tuple) -> tuple:
    """The auto-attached telemetry hook, if telemetry is on for this process.

    Imported lazily: :mod:`repro.obs.hook` depends on this module's event
    types, so a top-level import would be circular.  With telemetry off
    (the default) the cost is one ``sys.modules`` lookup per run.
    """
    from repro.obs.hook import TelemetryHook
    from repro.obs.telemetry import current

    telemetry = current()
    if telemetry is None:
        return ()
    if any(isinstance(hook, TelemetryHook) for hook in hooks):
        return ()
    return (TelemetryHook(telemetry),)


def _check_hooks(hooks: tuple) -> tuple:
    """The auto-attached invariant hook, if runtime checks are on.

    Same lazy-import pattern as :func:`_telemetry_hooks`:
    :mod:`repro.check.hook` depends on this module's event types.  With
    checks off (the default) the cost is one ``sys.modules`` lookup per run.
    """
    from repro.check.hook import CheckHook
    from repro.check.runtime import current

    state = current()
    if state is None:
        return ()
    if any(isinstance(hook, CheckHook) for hook in hooks):
        return ()
    return (CheckHook(state),)
