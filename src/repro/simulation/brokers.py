"""Broker population generation.

Builds a city's broker pool: per-broker Table II profiles, a latent skill
level driving both service quality and workload capacity, and the hidden
capacity-response curve the contextual bandit must discover online.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulation.attributes import HOUSE_TYPES, BrokerProfile, generate_profile
from repro.simulation.response import ResponseCurve, sample_response_curve


@dataclass
class BrokerPopulation:
    """A generated pool of brokers with their latent ground truth.

    Attributes:
        profiles: per-broker static profiles (Table II).
        curves: per-broker latent capacity-response curves.
        skill: ``(B,)`` latent skill in [0, 1] (long-tailed; few stars).
        base_quality: ``(B,)`` current peak sign-up probability per broker;
            the population mean sits near 20%, matching Fig. 2's 14.3-27.5%
            plateau band.  Mutable when learning-by-doing dynamics are on.
        potential_quality: ``(B,)`` the quality ceiling a broker can reach
            with enough practice (the Matthew-effect study measures how
            matching policy decides who gets to close the gap).
        experience: ``(B,)`` seniority in [0, 1]; inexperienced brokers
            start below their potential.
        static_context: ``(B, d)`` vectorized static profiles.
        district_pref: ``(B, D)`` district preference rows.
        type_pref: ``(B, 3)`` house-type preference rows.
        price_pref / area_pref: ``(B,)`` preferred normalized price / area.
        response_rate: ``(B,)`` one-minute response rates.
        noise_embedding: ``(B, k)`` fixed embedding generating deterministic
            model noise in the deployed utility predictor.
    """

    profiles: list[BrokerProfile]
    curves: list[ResponseCurve]
    skill: np.ndarray
    base_quality: np.ndarray
    potential_quality: np.ndarray
    experience: np.ndarray
    static_context: np.ndarray
    district_pref: np.ndarray
    type_pref: np.ndarray
    price_pref: np.ndarray
    area_pref: np.ndarray
    response_rate: np.ndarray
    noise_embedding: np.ndarray
    latent_capacity: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.latent_capacity = np.array([curve.capacity for curve in self.curves])

    def __len__(self) -> int:
        return len(self.profiles)

    @property
    def num_brokers(self) -> int:
        """Size of the broker pool ``|B|``."""
        return len(self.profiles)

    @property
    def context_dim(self) -> int:
        """Dimension of the static part of the working-status context."""
        return self.static_context.shape[1]


def generate_population(
    num_brokers: int,
    num_districts: int,
    rng: np.random.Generator,
    capacity_scale: float = 1.0,
    noise_dim: int = 8,
) -> BrokerPopulation:
    """Generate a broker population for one city.

    Skill is Beta(2, 5)-distributed — most brokers are average and a thin
    top tail produces the "top brokers" whose overloading the paper studies.

    Args:
        num_brokers: pool size ``|B|``.
        num_districts: number of city districts (request/broker preference
            dimension).
        rng: source of randomness.
        capacity_scale: global multiplier on latent capacities (city norm).
        noise_dim: embedding width for deterministic utility-model noise.
    """
    if num_brokers <= 0:
        raise ValueError(f"num_brokers must be positive, got {num_brokers}")
    skill = rng.beta(2.0, 5.0, size=num_brokers)
    profiles = [generate_profile(rng, float(s), num_districts) for s in skill]
    curves = [sample_response_curve(rng, float(s), capacity_scale) for s in skill]
    potential_quality = np.clip(
        0.08 + 0.35 * skill + rng.normal(0.0, 0.03, size=num_brokers), 0.02, 0.5
    )
    # Seniority: how much of the potential is already realized.  Rookies
    # (low working years) start below their ceiling; practice closes the
    # gap when learning-by-doing dynamics are enabled on the platform.
    experience = np.clip(
        np.array([profile.working_years for profile in profiles]) / 8.0, 0.0, 1.0
    )
    base_quality = potential_quality * (0.55 + 0.45 * experience)
    static_context = np.stack([profile.to_vector() for profile in profiles])
    return BrokerPopulation(
        profiles=profiles,
        curves=curves,
        skill=skill,
        base_quality=base_quality,
        potential_quality=potential_quality,
        experience=experience,
        static_context=static_context,
        district_pref=np.array([profile.district_preference for profile in profiles]),
        type_pref=np.array([profile.type_preference for profile in profiles]),
        price_pref=np.array([profile.price_preference for profile in profiles]),
        area_pref=np.array([profile.area_preference for profile in profiles]),
        response_rate=np.array([profile.response_rate for profile in profiles]),
        noise_embedding=rng.normal(0.0, 1.0 / np.sqrt(noise_dim), size=(num_brokers, noise_dim)),
    )


__all__ = ["BrokerPopulation", "generate_population", "HOUSE_TYPES"]
