"""Ground-truth sign-up-rate response to workload.

Sec. II of the paper measures that (i) brokers' sign-up rates drop sharply
once daily workload exceeds their capacity (Fig. 2: city-level average falls
from 14.3-27.5% below 40 requests/day to 2.5-17.8% above), and (ii) the
curves are non-linear and broker-specific, with each top broker performing
best inside an "accustomed workload area" around a personal sweet spot
(Fig. 3).  :class:`ResponseCurve` encodes exactly that shape:

- a mild quadratic ramp below the latent capacity ``c*`` (serving far fewer
  requests than accustomed converts slightly worse),
- a steep, broker-specific rational decay beyond ``c*`` (overload),
- a peak value of 1 at ``w = c*``.

A broker's realized sign-up rate is ``base_quality * curve(w)`` plus noise,
so the argmax over candidate capacities recovers ``c*`` — the quantity the
contextual bandit must learn online.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ResponseCurve:
    """Unimodal workload-quality multiplier, peaking at the latent capacity.

    Attributes:
        capacity: the latent sweet-spot workload ``c*`` (requests/day).
        ramp: penalty strength below capacity (0 = flat plateau; 0.4 = 40%
            quality loss at zero workload).
        decay: overload penalty scale; larger decays faster past capacity.
        sharpness: overload penalty exponent (>= 1); larger makes the drop
            cliff-like, producing the diverse per-broker shapes of Fig. 3.
    """

    capacity: float
    ramp: float
    decay: float
    sharpness: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        if not 0.0 <= self.ramp < 1.0:
            raise ValueError(f"ramp must be in [0, 1), got {self.ramp}")
        if self.decay < 0 or self.sharpness < 1.0:
            raise ValueError("decay must be >= 0 and sharpness >= 1")

    def quality(self, workload: np.ndarray | float, capacity: float | None = None) -> np.ndarray:
        """Quality multiplier in (0, 1] for a given daily workload.

        Args:
            workload: requests served in the day (scalar or array).
            capacity: optionally override the latent capacity — the platform
                passes the *effective* (fatigue/season-modulated) capacity of
                the day here.

        Returns:
            Array (or scalar) of multipliers; 1 exactly at the capacity.
        """
        cap = self.capacity if capacity is None else float(capacity)
        w = np.asarray(workload, dtype=float)
        below = 1.0 - self.ramp * np.square(1.0 - np.minimum(w, cap) / cap)
        overshoot = np.maximum(w - cap, 0.0) / cap
        above = 1.0 / (1.0 + self.decay * overshoot**self.sharpness)
        result = below * above
        return result if result.ndim else float(result)


def sample_response_curve(
    rng: np.random.Generator,
    skill: float,
    capacity_scale: float = 1.0,
) -> ResponseCurve:
    """Sample a broker-specific response curve.

    Latent capacity grows super-linearly with skill so that the top of the
    population sustains ~35-45 requests/day while the median broker peaks
    near 10-20 — the "accustomed workload" band Fig. 3 shows for top
    brokers, with the city-level decline of Fig. 2 becoming obvious past
    ~40 requests/day.

    Args:
        rng: source of randomness.
        skill: latent skill level in [0, 1].
        capacity_scale: global multiplier on latent capacities (used by the
            dataset factories to emulate cities with different workload
            norms, e.g. the CTop-K empirical capacities 45/55/40).
    """
    capacity = capacity_scale * (6.0 + 36.0 * skill**1.3) * rng.uniform(0.85, 1.15)
    return ResponseCurve(
        capacity=float(max(capacity, 2.0)),
        ramp=float(rng.uniform(0.4, 0.65)),
        decay=float(rng.uniform(2.0, 5.0)),
        sharpness=float(rng.uniform(1.5, 3.0)),
    )
