"""Client request streams.

Requests arrive in fixed-time-window batches (Sec. III): the platform
presets the interval length and assigns brokers to all requests that
appeared in it.  A stream pre-generates every request of the horizon so
that all algorithms face the *identical* demand sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.attributes import HOUSE_TYPES


@dataclass
class RequestStream:
    """All requests of one experiment horizon.

    Request features are ``[district one-hot | type one-hot | price | area |
    urgency]``.  District popularity is Zipf-like, which concentrates demand
    on the brokers covering hot districts — the precondition for the
    overloaded-top-brokers phenomenon.

    Attributes:
        district: ``(|R|,)`` district index per request.
        house_type: ``(|R|,)`` house-type index per request.
        price: ``(|R|,)`` normalized price point.
        area: ``(|R|,)`` normalized house area.
        urgency: ``(|R|,)`` client urgency in [0, 1].
        day_of: ``(|R|,)`` day index per request.
        batch_of: ``(|R|,)`` batch index (within the day) per request.
        num_days: horizon length in days.
        batches_per_day: number of fixed time windows per day.
        num_districts: city district count.
        noise_embedding: ``(|R|, k)`` fixed embedding generating the
            deterministic prediction noise of the deployed utility model.
    """

    district: np.ndarray
    house_type: np.ndarray
    price: np.ndarray
    area: np.ndarray
    urgency: np.ndarray
    day_of: np.ndarray
    batch_of: np.ndarray
    num_days: int
    batches_per_day: int
    num_districts: int
    noise_embedding: np.ndarray
    offsets: np.ndarray
    value_multiplier: np.ndarray

    def __len__(self) -> int:
        return self.district.shape[0]

    @property
    def num_requests(self) -> int:
        """Total number of requests ``|R|``."""
        return len(self)

    def batch_indices(self, day: int, batch: int) -> np.ndarray:
        """Indices of the requests arriving in ``(day, batch)``.

        Requests are stored in interval order, so each batch is a contiguous
        index range delimited by ``offsets``.
        """
        if not (0 <= day < self.num_days and 0 <= batch < self.batches_per_day):
            raise IndexError(f"no batch ({day}, {batch}) in this stream")
        flat = day * self.batches_per_day + batch
        return np.arange(self.offsets[flat], self.offsets[flat + 1])

    def day_indices(self, day: int) -> np.ndarray:
        """Indices of all requests arriving on ``day``."""
        if not 0 <= day < self.num_days:
            raise IndexError(f"no day {day} in this stream")
        start = self.offsets[day * self.batches_per_day]
        stop = self.offsets[(day + 1) * self.batches_per_day]
        return np.arange(start, stop)

    def feature_matrix(self, indices: np.ndarray) -> np.ndarray:
        """Dense feature rows for the given request indices."""
        indices = np.asarray(indices, dtype=int)
        district_onehot = np.zeros((indices.size, self.num_districts))
        district_onehot[np.arange(indices.size), self.district[indices]] = 1.0
        type_onehot = np.zeros((indices.size, len(HOUSE_TYPES)))
        type_onehot[np.arange(indices.size), self.house_type[indices]] = 1.0
        scalars = np.column_stack(
            [self.price[indices], self.area[indices], self.urgency[indices]]
        )
        return np.hstack([district_onehot, type_onehot, scalars])


def generate_stream(
    num_requests: int,
    num_days: int,
    batches_per_day: int,
    num_districts: int,
    rng: np.random.Generator,
    noise_dim: int = 8,
    intraday_value_amplitude: float = 0.6,
) -> RequestStream:
    """Generate a request stream with Zipf-like district popularity.

    Requests are spread (almost) evenly over ``num_days * batches_per_day``
    intervals; the remainder goes to the earliest batches, so batch sizes
    differ by at most one.

    ``intraday_value_amplitude`` shapes the within-day *value profile*:
    requests arriving later in the day carry proportionally higher
    conversion value (evening clients are the serious ones — a common
    pattern in consumer real-estate demand).  With amplitude ``a`` the
    multiplier ramps linearly from ``1 - a/2`` in the first batch to
    ``1 + a/2`` in the last.  This temporal structure is what makes
    capacity *reservation* (the MDP view of Sec. VI-A) matter: spending a
    top broker on a cheap morning request forfeits a valuable evening one.
    """
    if not 0.0 <= intraday_value_amplitude < 2.0:
        raise ValueError(
            f"intraday_value_amplitude must be in [0, 2), got {intraday_value_amplitude}"
        )
    if min(num_requests, num_days, batches_per_day) <= 0:
        raise ValueError("num_requests, num_days and batches_per_day must be positive")
    ranks = np.arange(1, num_districts + 1, dtype=float)
    district_popularity = (1.0 / ranks) / np.sum(1.0 / ranks)

    num_batches = num_days * batches_per_day
    base, remainder = divmod(num_requests, num_batches)
    sizes = np.full(num_batches, base, dtype=int)
    sizes[:remainder] += 1
    day_of = np.repeat(np.arange(num_batches) // batches_per_day, sizes)
    batch_of = np.repeat(np.arange(num_batches) % batches_per_day, sizes)
    if batches_per_day > 1:
        position = batch_of / (batches_per_day - 1)
    else:
        position = np.full(num_requests, 0.5)
    value_multiplier = 1.0 + intraday_value_amplitude * (position - 0.5)

    return RequestStream(
        district=rng.choice(num_districts, size=num_requests, p=district_popularity),
        house_type=rng.choice(len(HOUSE_TYPES), size=num_requests),
        price=rng.beta(2.0, 2.0, size=num_requests),
        area=rng.beta(2.0, 2.0, size=num_requests),
        urgency=rng.uniform(0.0, 1.0, size=num_requests),
        day_of=day_of,
        batch_of=batch_of,
        num_days=num_days,
        batches_per_day=batches_per_day,
        num_districts=num_districts,
        noise_embedding=rng.normal(0.0, 1.0 / np.sqrt(noise_dim), size=(num_requests, noise_dim)),
        offsets=np.concatenate([[0], np.cumsum(sizes)]),
        value_multiplier=value_multiplier,
    )


__all__ = ["RequestStream", "generate_stream"]
