"""Request-broker matching utility.

The paper treats the matching utility ``u_{r,b}`` as an input "learned from
historical assignments using models such as XGBoost" (Def. 2), and its
simulator "takes the same utility function deployed" to score
request-broker pairs.  This module provides both halves:

- :func:`ground_truth_affinity` — the latent conversion propensity of a
  pair, combining the broker's base quality with district / house-type /
  price / area preference fit and responsiveness.  Realized outcomes are
  this affinity degraded by the broker's workload-response curve.
- :func:`predicted_utility` — the *deployed model's* estimate: the affinity
  disturbed by deterministic low-rank model noise.  Algorithms only ever
  see this prediction.  (``repro.boosting.UtilityModel`` offers the
  alternative of actually learning the predictor from historical outcomes
  with gradient-boosted trees.)
"""

from __future__ import annotations

import numpy as np

from repro.simulation.brokers import BrokerPopulation
from repro.simulation.requests import RequestStream

#: Relative weights of the preference-fit components.
MATCH_WEIGHTS = {
    "district": 0.35,
    "type": 0.15,
    "price": 0.25,
    "area": 0.15,
    "response": 0.10,
}

#: Floor of the quality multiplier: even a poorly fitting pair converts at
#: a fraction of the broker's base quality.  A high floor means broker
#: quality dominates preference fit in the rankings — which is what makes
#: the same few stars appear in almost every request's top-k and produces
#: the demand concentration of Sec. II-B.
MATCH_FLOOR = 0.45

#: Scale of the deployed model's deterministic prediction noise.
PREDICTION_NOISE_SCALE = 0.08


def match_score(
    population: BrokerPopulation,
    stream: RequestStream,
    request_indices: np.ndarray,
) -> np.ndarray:
    """Preference-fit score in [0, 1] for every (request, broker) pair.

    Returns:
        ``(n_requests, |B|)`` matrix.
    """
    request_indices = np.asarray(request_indices, dtype=int)
    n = request_indices.size
    district = stream.district[request_indices]
    house_type = stream.house_type[request_indices]
    price = stream.price[request_indices]
    area = stream.area[request_indices]

    # District preference columns indexed by each request's district; the
    # Dirichlet rows are normalized by their max so a broker's favourite
    # district scores 1.
    district_fit = population.district_pref[:, district].T
    district_fit = district_fit / np.maximum(
        population.district_pref.max(axis=1)[None, :], 1e-12
    )
    type_fit = population.type_pref[:, house_type].T
    type_fit = type_fit / np.maximum(population.type_pref.max(axis=1)[None, :], 1e-12)
    price_fit = 1.0 - np.abs(price[:, None] - population.price_pref[None, :])
    area_fit = 1.0 - np.abs(area[:, None] - population.area_pref[None, :])
    response_fit = np.broadcast_to(population.response_rate[None, :], (n, len(population)))

    return (
        MATCH_WEIGHTS["district"] * district_fit
        + MATCH_WEIGHTS["type"] * type_fit
        + MATCH_WEIGHTS["price"] * price_fit
        + MATCH_WEIGHTS["area"] * area_fit
        + MATCH_WEIGHTS["response"] * response_fit
    )


def ground_truth_affinity(
    population: BrokerPopulation,
    stream: RequestStream,
    request_indices: np.ndarray,
) -> np.ndarray:
    """Latent conversion propensity of every (request, broker) pair.

    ``affinity = value_mult_r * base_quality_b * (floor + (1 - floor) *
    match_score)`` — a broker's best-case sign-up probability on that
    request (scaled by the request's intra-day value multiplier), before
    any workload degradation.
    """
    request_indices = np.asarray(request_indices, dtype=int)
    fit = match_score(population, stream, request_indices)
    affinity = population.base_quality[None, :] * (
        MATCH_FLOOR + (1.0 - MATCH_FLOOR) * fit
    )
    return affinity * stream.value_multiplier[request_indices][:, None]


def predicted_utility(
    population: BrokerPopulation,
    stream: RequestStream,
    request_indices: np.ndarray,
) -> np.ndarray:
    """The deployed utility model's estimate ``u_{r,b}``.

    Deterministic given the generated city: the noise is the inner product
    of fixed per-request and per-broker embeddings, so every algorithm sees
    the exact same utility inputs (a fairness requirement when comparing
    matchers on identical instances).
    """
    request_indices = np.asarray(request_indices, dtype=int)
    affinity = ground_truth_affinity(population, stream, request_indices)
    noise = stream.noise_embedding[request_indices] @ population.noise_embedding.T
    return np.clip(affinity * (1.0 + PREDICTION_NOISE_SCALE * noise), 1e-6, 1.0)
