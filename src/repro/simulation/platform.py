"""The real-estate platform environment.

This is the counterpart of the paper's "simulator of Beike" (Sec. VII-A):
it reveals broker working-status contexts and the deployed utility model's
predictions, executes whatever assignment an algorithm submits, and then
realizes the day's outcomes — workload-degraded utilities and per-broker
sign-up rates — which feed the bandit as rewards.

The environment is deliberately *reactive*: daily contexts include fatigue
and recent-workload features that depend on past assignments, so different
matchers steer the same city into different states, while the underlying
population, request stream and utility predictions stay identical across
algorithms (fair comparison on the same instance).
"""

from __future__ import annotations

import numpy as np

from repro.core.types import Assignment, DayOutcome
from repro.simulation.brokers import BrokerPopulation
from repro.simulation.requests import RequestStream
from repro.simulation.utility import ground_truth_affinity, predicted_utility
from repro.state.protocol import (
    StateError,
    expect,
    rng_state,
    set_rng_state,
    versioned,
)

#: Number of dynamic working-status features appended to the static profile.
DYNAMIC_CONTEXT_DIM = 7

#: Maximum fraction of capacity lost to accumulated fatigue.
FATIGUE_CAPACITY_LOSS = 0.35

#: Amplitude of the weekly seasonality on effective capacity.
SEASONAL_AMPLITUDE = 0.08

#: Workload normalizer used inside dynamic context features.
WORKLOAD_NORM = 60.0


class RealEstatePlatform:
    """Environment for one city over a fixed horizon of days.

    The protocol per day is::

        contexts = platform.start_day(day)
        for batch in range(platform.batches_per_day):
            requests = platform.batch_requests(day, batch)
            utilities = platform.predicted_utilities(requests)
            platform.submit_assignment(assignment)
        outcome = platform.finish_day()

    Args:
        population: the city's broker pool.
        stream: the city's request stream.
        seed: seed of the outcome-realization noise.
        appeal_rate: probability scale for client appeals (Sec. VI-B note):
            an appealed request restores the broker's workload, zeroes that
            pair's utility and is re-queued in the next interval.
        signup_noise: observation-noise std on daily sign-up rates.
        skill_growth: learning-by-doing rate (0 disables the dynamics).
            When positive, serving requests moves a broker's quality toward
            its potential — the mechanism behind the paper's Matthew-effect
            argument ("neglected brokers have few opportunities to improve
            their skills"): a matching policy that starves rookies freezes
            them below their ceiling.
    """

    def __init__(
        self,
        population: BrokerPopulation,
        stream: RequestStream,
        seed: int = 0,
        appeal_rate: float = 0.0,
        signup_noise: float = 0.02,
        skill_growth: float = 0.0,
    ) -> None:
        if not 0.0 <= appeal_rate < 1.0:
            raise ValueError(f"appeal_rate must be in [0, 1), got {appeal_rate}")
        if skill_growth < 0.0:
            raise ValueError(f"skill_growth must be non-negative, got {skill_growth}")
        self.population = population
        self.stream = stream
        self.appeal_rate = appeal_rate
        self.signup_noise = signup_noise
        self.skill_growth = skill_growth
        self._initial_quality = population.base_quality.copy()
        self._seed = seed
        # Per-broker response-curve parameter arrays for vectorized realization.
        self._curve_ramp = np.array([c.ramp for c in population.curves])
        self._curve_decay = np.array([c.decay for c in population.curves])
        self._curve_sharpness = np.array([c.sharpness for c in population.curves])
        self.reset()

    # ------------------------------------------------------------------
    # Static shape accessors
    # ------------------------------------------------------------------
    @property
    def num_brokers(self) -> int:
        """Pool size ``|B|``."""
        return self.population.num_brokers

    @property
    def num_days(self) -> int:
        """Horizon length in days."""
        return self.stream.num_days

    @property
    def batches_per_day(self) -> int:
        """Fixed time windows per day."""
        return self.stream.batches_per_day

    @property
    def context_dim(self) -> int:
        """Dimension of the working-status context ``x_b``."""
        return self.population.context_dim + DYNAMIC_CONTEXT_DIM

    @property
    def latent_capacities(self) -> np.ndarray:
        """Ground-truth latent capacities (for evaluation only)."""
        return self.population.latent_capacity

    @property
    def today_capacity(self) -> np.ndarray:
        """The current day's *effective* capacities (for evaluation only).

        Unlike :meth:`effective_capacity`, which recomputes from the
        *current* fatigue state, this is the vector the open (or most
        recently closed) day actually used — after ``finish_day()`` has
        already evolved fatigue, recomputing would disagree with the
        day's realized outcome.  Quality telemetry reads this at day
        boundaries; algorithms never see it.
        """
        return self._today_capacity

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore pristine dynamic state (same instance, fresh history)."""
        n = self.num_brokers
        self.population.base_quality[:] = self._initial_quality
        self._rng = np.random.default_rng(self._seed)
        self._fatigue = np.zeros(n)
        self._yesterday_workload = np.zeros(n)
        self._recent_workloads = np.zeros((n, 7))
        self._last_signup = np.zeros(n)
        self._total_served = np.zeros(n)
        self._today_workload = np.zeros(n, dtype=int)
        self._today_affinity = np.zeros(n)
        self._today_capacity = self.population.latent_capacity.copy()
        self._current_day = -1
        self._day_open = False
        self._requeued: dict[int, list[int]] = {}
        self._blocked_pairs: dict[int, set[int]] = {}

    def start_day(self, day: int) -> np.ndarray:
        """Open a day and return the ``(|B|, d)`` working-status contexts.

        Days must be visited in order starting from 0.
        """
        if self._day_open:
            raise RuntimeError("finish_day() must be called before starting a new day")
        if day != self._current_day + 1:
            raise RuntimeError(f"days must be visited in order; expected {self._current_day + 1}, got {day}")
        if day >= self.num_days:
            raise IndexError(f"day {day} beyond horizon of {self.num_days}")
        self._current_day = day
        self._day_open = True
        self._today_workload = np.zeros(self.num_brokers, dtype=int)
        self._today_affinity = np.zeros(self.num_brokers)
        self._today_capacity = self.effective_capacity(day)
        return self._contexts(day)

    def effective_capacity(self, day: int) -> np.ndarray:
        """Today's effective capacities: latent, shrunk by fatigue, seasonal.

        Ground truth — revealed to algorithms only through realized rewards.
        """
        season = np.sin(2.0 * np.pi * day / 7.0)
        modifier = (1.0 - FATIGUE_CAPACITY_LOSS * self._fatigue) * (
            1.0 + SEASONAL_AMPLITUDE * season
        )
        return np.maximum(self.population.latent_capacity * modifier, 1.0)

    def _contexts(self, day: int) -> np.ndarray:
        """Assemble static-plus-dynamic working-status contexts."""
        dynamic = np.column_stack(
            [
                self._fatigue,
                np.full(self.num_brokers, np.sin(2.0 * np.pi * day / 7.0)),
                np.full(self.num_brokers, np.cos(2.0 * np.pi * day / 7.0)),
                self._yesterday_workload / WORKLOAD_NORM,
                self._recent_workloads.mean(axis=1) / WORKLOAD_NORM,
                self._last_signup,
                self._total_served / (WORKLOAD_NORM * max(self.num_days, 1)),
            ]
        )
        return np.hstack([self.population.static_context, dynamic])

    # ------------------------------------------------------------------
    # Within-day protocol
    # ------------------------------------------------------------------
    def batch_requests(self, day: int, batch: int) -> np.ndarray:
        """Request indices of a batch, including any appealed re-queues."""
        self._require_open(day)
        indices = self.stream.batch_indices(day, batch)
        requeued = self._requeued.pop(batch, None)
        if requeued:
            indices = np.concatenate([indices, np.asarray(requeued, dtype=int)])
        return indices

    def predicted_utilities(self, request_indices: np.ndarray) -> np.ndarray:
        """Deployed-model utilities ``u_{r,b}`` for a batch of requests."""
        request_indices = np.asarray(request_indices, dtype=int)
        utilities = predicted_utility(self.population, self.stream, request_indices)
        if self._blocked_pairs:
            for row, request_id in enumerate(request_indices):
                blocked = self._blocked_pairs.get(int(request_id))
                if blocked:
                    utilities[row, list(blocked)] = 0.0
        return utilities

    def submit_assignment(self, assignment: Assignment) -> None:
        """Execute a batch assignment: serve requests, sample appeals."""
        self._require_open(assignment.day)
        if not 0 <= assignment.batch < self.batches_per_day:
            raise IndexError(f"batch {assignment.batch} out of range")
        if not assignment.pairs:
            return
        request_ids = np.array([pair.request_id for pair in assignment.pairs], dtype=int)
        broker_ids = np.array([pair.broker_id for pair in assignment.pairs], dtype=int)
        affinity = ground_truth_affinity(self.population, self.stream, request_ids)
        pair_affinity = affinity[np.arange(len(request_ids)), broker_ids]

        if self.appeal_rate > 0.0:
            # A client's appeal propensity scales with how much worse the
            # assigned broker fits than the best broker available for that
            # request (Sec. VI-B's dissatisfaction mechanism).
            row_best = affinity.max(axis=1)
            appeal_prob = self.appeal_rate * (1.0 - pair_affinity / row_best)
            appealed = self._rng.random(len(request_ids)) < appeal_prob
        else:
            appealed = np.zeros(len(request_ids), dtype=bool)

        served = ~appealed
        np.add.at(self._today_workload, broker_ids[served], 1)
        np.add.at(self._today_affinity, broker_ids[served], pair_affinity[served])

        next_batch = assignment.batch + 1
        for request_id, broker_id in zip(request_ids[appealed], broker_ids[appealed]):
            self._blocked_pairs.setdefault(int(request_id), set()).add(int(broker_id))
            if next_batch < self.batches_per_day:
                self._requeued.setdefault(next_batch, []).append(int(request_id))

    def finish_day(self) -> DayOutcome:
        """Close the day: realize degraded utilities and sign-up rates."""
        if not self._day_open:
            raise RuntimeError("no day is open")
        day = self._current_day
        workload = self._today_workload.astype(float)
        multiplier = self._quality(workload, self._today_capacity)
        realized = self._today_affinity * multiplier
        signup = np.zeros(self.num_brokers)
        served = workload > 0
        signup[served] = realized[served] / workload[served]
        signup += self._rng.normal(0.0, self.signup_noise, size=self.num_brokers)
        signup = np.clip(signup, 0.0, 1.0)
        signup[~served] = 0.0

        # Learning by doing: practice closes the gap to potential quality
        # (sub-linear in daily volume — the tenth request of the day
        # teaches less than the first).
        if self.skill_growth > 0.0:
            practice = np.sqrt(np.minimum(workload, 25.0))
            gap = self.population.potential_quality - self.population.base_quality
            self.population.base_quality += self.skill_growth * practice * np.maximum(gap, 0.0)

        # Dynamic-state evolution feeding tomorrow's contexts.
        overshoot = np.maximum(workload - self._today_capacity, 0.0) / self._today_capacity
        self._fatigue = np.clip(0.65 * self._fatigue + 0.5 * np.minimum(overshoot, 1.0), 0.0, 1.0)
        self._yesterday_workload = workload
        self._recent_workloads = np.roll(self._recent_workloads, -1, axis=1)
        self._recent_workloads[:, -1] = workload
        self._last_signup = signup
        self._total_served += workload
        self._day_open = False
        self._requeued.clear()

        return DayOutcome(
            day=day,
            workloads=workload.astype(int),
            signup_rates=signup,
            realized_utility=realized,
        )

    # ------------------------------------------------------------------
    # Durable state (repro.state contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deep snapshot of every dynamic environment variable.

        Covers the evolving population quality (skill growth mutates it),
        the outcome-realization RNG, all fatigue/workload/sign-up history,
        the open-day scratch state, the appeal re-queues and the
        *cross-day* blocked pairs — everything :meth:`reset` re-creates.
        Static instance data (curves, stream, static contexts) is identity,
        not state: it is rebuilt from the spec on resume.
        """
        return versioned(
            "simulation.platform",
            {
                "base_quality": self.population.base_quality.copy(),
                "rng": rng_state(self._rng),
                "fatigue": self._fatigue.copy(),
                "yesterday_workload": self._yesterday_workload.copy(),
                "recent_workloads": self._recent_workloads.copy(),
                "last_signup": self._last_signup.copy(),
                "total_served": self._total_served.copy(),
                "today_workload": self._today_workload.copy(),
                "today_affinity": self._today_affinity.copy(),
                "today_capacity": self._today_capacity.copy(),
                "current_day": int(self._current_day),
                "day_open": bool(self._day_open),
                "requeued": {
                    batch: list(ids) for batch, ids in self._requeued.items()
                },
                "blocked_pairs": {
                    request: set(brokers)
                    for request, brokers in self._blocked_pairs.items()
                },
            },
        )

    def restore(self, state) -> None:
        """Reinstall a :meth:`snapshot`; the RNG is restored in place."""
        payload = expect(state, "simulation.platform")
        fatigue = np.asarray(payload["fatigue"], dtype=float)
        if fatigue.shape != (self.num_brokers,):
            raise StateError(
                f"platform snapshot is for {fatigue.size} brokers, "
                f"this instance has {self.num_brokers}"
            )
        self.population.base_quality[:] = np.asarray(
            payload["base_quality"], dtype=float
        )
        set_rng_state(self._rng, payload["rng"])
        self._fatigue = fatigue.copy()
        self._yesterday_workload = np.array(payload["yesterday_workload"], dtype=float)
        self._recent_workloads = np.array(payload["recent_workloads"], dtype=float)
        self._last_signup = np.array(payload["last_signup"], dtype=float)
        self._total_served = np.array(payload["total_served"], dtype=float)
        self._today_workload = np.array(payload["today_workload"], dtype=int)
        self._today_affinity = np.array(payload["today_affinity"], dtype=float)
        self._today_capacity = np.array(payload["today_capacity"], dtype=float)
        self._current_day = int(payload["current_day"])
        self._day_open = bool(payload["day_open"])
        self._requeued = {
            int(batch): [int(i) for i in ids]
            for batch, ids in payload["requeued"].items()
        }
        self._blocked_pairs = {
            int(request): {int(b) for b in brokers}
            for request, brokers in payload["blocked_pairs"].items()
        }

    # ------------------------------------------------------------------
    # Ground-truth probes (evaluation and the motivation study)
    # ------------------------------------------------------------------
    def signup_rate_curve(self, broker_id: int, workloads: np.ndarray) -> np.ndarray:
        """Expected sign-up rate of one broker as a function of workload."""
        curve = self.population.curves[broker_id]
        return self.population.base_quality[broker_id] * np.asarray(
            curve.quality(np.asarray(workloads, dtype=float))
        )

    def _quality(self, workload: np.ndarray, capacity: np.ndarray) -> np.ndarray:
        """Vectorized response-curve multiplier across the whole pool."""
        below = 1.0 - self._curve_ramp * np.square(
            1.0 - np.minimum(workload, capacity) / capacity
        )
        overshoot = np.maximum(workload - capacity, 0.0) / capacity
        above = 1.0 / (1.0 + self._curve_decay * overshoot**self._curve_sharpness)
        return below * above

    def _require_open(self, day: int) -> None:
        if not self._day_open or day != self._current_day:
            raise RuntimeError(f"day {day} is not the open day ({self._current_day}, open={self._day_open})")
