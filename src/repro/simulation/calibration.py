"""Calibrating the synthetic environment against published statistics.

The paper reports a handful of city-level measurements (Sec. II):
an average sign-up plateau of 14.3-27.5%, an overload knee, a top-1
broker at ~12x the average workload.  The generators in this package have
a few free parameters (capacity scale, imbalance, seed); this module
measures a generated city against those targets and searches the
parameter neighbourhood for the best match — making the "synthetic data
for proprietary traces" substitution reproducible instead of hand-tuned.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.experiments.motivation import signup_vs_workload, workload_concentration
from repro.simulation.datasets import SyntheticConfig, generate_city


@dataclass(frozen=True)
class CalibrationTargets:
    """City-level statistics to match (defaults = the paper's Sec. II).

    Attributes:
        plateau_low / plateau_high: sign-up-rate band below the knee.
        top1_ratio: top-1 broker workload over the city average.
        overload_knee: workload where the city-level rate visibly drops.
    """

    plateau_low: float = 0.143
    plateau_high: float = 0.275
    top1_ratio: float = 12.03
    overload_knee: float = 40.0


@dataclass(frozen=True)
class CityStatistics:
    """Measured statistics of one generated city under Top-3."""

    plateau_low: float
    plateau_high: float
    top1_ratio: float
    knee: float


def measure_city(config: SyntheticConfig, seed: int = 5) -> CityStatistics:
    """Generate a city and measure the Sec. II statistics under Top-3."""
    platform = generate_city(config)
    study = signup_vs_workload(platform, seed=seed, overload_threshold=1e9)
    # The knee: the first bin after the curve's peak where the rate falls
    # below half the peak.
    rates = study.mean_signup
    centers = study.bin_centers
    peak_index = int(np.argmax(rates))
    knee = float(centers[-1])
    for index in range(peak_index, rates.size):
        if rates[index] < 0.5 * rates[peak_index]:
            knee = float(centers[index])
            break
    concentration = workload_concentration(platform, seed=seed)
    below_peak = rates[: peak_index + 1]
    return CityStatistics(
        plateau_low=float(below_peak.min()),
        plateau_high=float(below_peak.max()),
        top1_ratio=concentration.top1_ratio,
        knee=knee,
    )


def calibration_error(
    statistics: CityStatistics, targets: CalibrationTargets
) -> float:
    """Relative mismatch between measured statistics and the targets.

    Each component is a symmetric relative error; the total is their mean,
    so 0 is a perfect match and 1 means ~100% average deviation.
    """

    def relative(measured: float, target: float) -> float:
        """Relative error of one component (absolute when the target is 0)."""
        if target == 0:
            return abs(measured)
        return abs(measured - target) / abs(target)

    components = [
        relative(statistics.plateau_low, targets.plateau_low),
        relative(statistics.plateau_high, targets.plateau_high),
        relative(statistics.top1_ratio, targets.top1_ratio),
        relative(statistics.knee, targets.overload_knee),
    ]
    return float(np.mean(components))


def calibrate_capacity_scale(
    base_config: SyntheticConfig,
    targets: CalibrationTargets | None = None,
    candidates: tuple[float, ...] = (0.7, 0.85, 1.0, 1.2, 1.5),
    seed: int = 5,
) -> tuple[float, dict[float, float]]:
    """Grid-search the capacity scale against the Sec. II targets.

    Args:
        base_config: city configuration whose ``capacity_scale`` is swept.
        targets: statistics to match (paper defaults when omitted).
        candidates: capacity-scale values to evaluate.
        seed: matcher seed for the measurement runs.

    Returns:
        ``(best_scale, errors)`` where ``errors`` maps each candidate to
        its calibration error.
    """
    if not candidates:
        raise ValueError("at least one candidate scale is required")
    targets = targets or CalibrationTargets()
    errors = {}
    for scale in candidates:
        config = replace(base_config, capacity_scale=scale)
        statistics = measure_city(config, seed=seed)
        errors[scale] = calibration_error(statistics, targets)
    best = min(errors, key=errors.get)
    return best, errors
