"""Real-estate platform simulator (the paper's evaluation substrate).

The paper evaluates on "a simulator of Beike" fed with proprietary traces
from three Chinese cities (Table IV).  We do not have those traces, so this
package synthesizes the whole environment:

- :mod:`~repro.simulation.attributes` — broker profiles carrying every
  Table II attribute, vectorized into the working-status context ``x_b``;
- :mod:`~repro.simulation.response` — latent broker-specific
  sign-up-rate-vs-workload curves calibrated to the Sec. II measurements
  (non-linear, unimodal around an "accustomed workload", steep decay when
  overloaded);
- :mod:`~repro.simulation.brokers` / :mod:`~repro.simulation.requests` —
  population and request-stream generators;
- :mod:`~repro.simulation.utility` — the ground-truth request-broker
  affinity and the platform's deployed utility model (the "XGBoost" role);
- :mod:`~repro.simulation.platform` — the environment loop: reveals
  contexts and predicted utilities, executes assignments, realizes
  workload-degraded outcomes and daily sign-up rates;
- :mod:`~repro.simulation.datasets` — factories for the Table III synthetic
  grid and Table IV real-like cities.
"""

from repro.simulation.attributes import BrokerProfile, generate_profile
from repro.simulation.brokers import BrokerPopulation
from repro.simulation.datasets import (
    REAL_CITY_SPECS,
    SyntheticConfig,
    generate_city,
    real_like_city,
)
from repro.simulation.platform import RealEstatePlatform
from repro.simulation.requests import RequestStream
from repro.simulation.response import ResponseCurve

__all__ = [
    "BrokerProfile",
    "BrokerPopulation",
    "REAL_CITY_SPECS",
    "RealEstatePlatform",
    "RequestStream",
    "ResponseCurve",
    "SyntheticConfig",
    "generate_city",
    "generate_profile",
    "real_like_city",
]
