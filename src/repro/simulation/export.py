"""CSV trace export — turn a simulated city and a run into flat files.

A downstream user adopting this library against real data needs the
interchange format an operating platform would produce: broker rosters,
request logs and assignment traces.  This module writes exactly those
three tables and reads the assignment trace back, so the learned utility
model (``repro.boosting.UtilityModel``) can be trained from files the same
way it would be trained from a production export.

Files written by :func:`export_city` / :func:`export_assignments`:

- ``brokers.csv``   — one row per broker: id, seniority, preferences and
  the observable profile scalars (latent ground truth is *not* exported);
- ``requests.csv``  — one row per request: id, day, batch, features;
- ``assignments.csv`` — one row per served pair: day, batch, request,
  broker, the predicted utility at decision time.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.core.types import Assignment
from repro.simulation.platform import RealEstatePlatform

BROKER_COLUMNS = (
    "broker_id",
    "age",
    "working_years",
    "education",
    "title",
    "response_rate",
    "maintained_houses",
    "price_preference",
    "area_preference",
)

REQUEST_COLUMNS = ("request_id", "day", "batch", "district", "house_type", "price", "area", "urgency")

ASSIGNMENT_COLUMNS = ("day", "batch", "request_id", "broker_id", "predicted_utility")


def export_city(platform: RealEstatePlatform, directory: str | Path) -> dict[str, Path]:
    """Write ``brokers.csv`` and ``requests.csv`` for a generated city.

    Returns:
        Mapping from table name to the written path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "brokers": directory / "brokers.csv",
        "requests": directory / "requests.csv",
    }

    with paths["brokers"].open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(BROKER_COLUMNS)
        for broker_id, profile in enumerate(platform.population.profiles):
            writer.writerow(
                [
                    broker_id,
                    f"{profile.age:.1f}",
                    f"{profile.working_years:.2f}",
                    profile.education,
                    profile.title,
                    f"{profile.response_rate:.4f}",
                    f"{profile.maintained_houses:.0f}",
                    f"{profile.price_preference:.4f}",
                    f"{profile.area_preference:.4f}",
                ]
            )

    stream = platform.stream
    with paths["requests"].open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(REQUEST_COLUMNS)
        for request_id in range(len(stream)):
            writer.writerow(
                [
                    request_id,
                    int(stream.day_of[request_id]),
                    int(stream.batch_of[request_id]),
                    int(stream.district[request_id]),
                    int(stream.house_type[request_id]),
                    f"{stream.price[request_id]:.4f}",
                    f"{stream.area[request_id]:.4f}",
                    f"{stream.urgency[request_id]:.4f}",
                ]
            )
    return paths


def export_assignments(assignments: list[Assignment], path: str | Path) -> Path:
    """Write an assignment trace (``assignments.csv``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(ASSIGNMENT_COLUMNS)
        for assignment in assignments:
            for pair in assignment.pairs:
                writer.writerow(
                    [
                        assignment.day,
                        assignment.batch,
                        pair.request_id,
                        pair.broker_id,
                        f"{pair.utility:.6f}",
                    ]
                )
    return path


def load_assignments(path: str | Path) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Read an assignment trace back as index/utility arrays.

    Returns:
        ``(request_ids, broker_ids, predicted_utilities)`` — the inputs the
        utility learner consumes.
    """
    requests, brokers, utilities = [], [], []
    with Path(path).open(newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(ASSIGNMENT_COLUMNS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"assignment trace is missing columns: {sorted(missing)}")
        for row in reader:
            requests.append(int(row["request_id"]))
            brokers.append(int(row["broker_id"]))
            utilities.append(float(row["predicted_utility"]))
    return (
        np.asarray(requests, dtype=int),
        np.asarray(brokers, dtype=int),
        np.asarray(utilities, dtype=float),
    )
