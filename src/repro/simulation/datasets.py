"""Dataset factories: the Table III synthetic grid and Table IV-like cities.

Synthetic datasets follow the paper's factor grid (number of brokers,
number of requests, covering days, degree of imbalance ``sigma = |R|/|B|``
per batch; defaults in bold in Table III).  Real-like cities reproduce the
scale and relative statistics of the three proprietary Beike cities; a
``scale`` knob shrinks instances proportionally so the full evaluation runs
on a laptop while paper-scale instances stay expressible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.simulation.brokers import generate_population
from repro.simulation.platform import RealEstatePlatform
from repro.simulation.requests import generate_stream


@dataclass
class SyntheticConfig:
    """Configuration of one synthetic city (Table III factors).

    Attributes:
        num_brokers: ``|B|`` (paper grid: 500-10000, default 2000).
        num_requests: ``|R|`` (paper grid: 10K-200K, default 50K).
        num_days: covering days (paper grid: 7-21, default 14).
        imbalance: ``sigma``, the per-batch requests-to-brokers ratio
            (paper grid: 0.005-0.05, default 0.015); determines the batch
            size ``round(sigma * |B|)``.
        num_districts: city districts (request/broker preference dimension).
        capacity_scale: global multiplier on latent broker capacities.
        appeal_rate: client-appeal probability scale (0 disables appeals).
        intraday_value_amplitude: within-day request-value ramp (see
            :func:`repro.simulation.requests.generate_stream`).
        skill_growth: learning-by-doing rate (0 disables the Matthew-effect
            dynamics; see :class:`repro.simulation.platform.RealEstatePlatform`).
        seed: master seed; the instance is fully determined by this config.
    """

    num_brokers: int = 2000
    num_requests: int = 50_000
    num_days: int = 14
    imbalance: float = 0.015
    num_districts: int = 8
    capacity_scale: float = 1.0
    appeal_rate: float = 0.0
    intraday_value_amplitude: float = 0.6
    skill_growth: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_brokers <= 0 or self.num_requests <= 0 or self.num_days <= 0:
            raise ValueError("num_brokers, num_requests and num_days must be positive")
        if self.imbalance <= 0:
            raise ValueError(f"imbalance must be positive, got {self.imbalance}")

    @property
    def batch_size(self) -> int:
        """Requests per batch, ``round(sigma * |B|)`` (at least 1)."""
        return max(1, round(self.imbalance * self.num_brokers))

    @property
    def batches_per_day(self) -> int:
        """Time windows per day implied by ``|R|``, days and batch size."""
        return max(1, math.ceil(self.num_requests / (self.num_days * self.batch_size)))


def generate_city(config: SyntheticConfig) -> RealEstatePlatform:
    """Materialize a synthetic city as a ready-to-run platform environment."""
    rng = np.random.default_rng(config.seed)
    population = generate_population(
        config.num_brokers,
        config.num_districts,
        rng,
        capacity_scale=config.capacity_scale,
    )
    stream = generate_stream(
        config.num_requests,
        config.num_days,
        config.batches_per_day,
        config.num_districts,
        rng,
        intraday_value_amplitude=config.intraday_value_amplitude,
    )
    return RealEstatePlatform(
        population,
        stream,
        seed=config.seed + 1,
        appeal_rate=config.appeal_rate,
        skill_growth=config.skill_growth,
    )


@dataclass(frozen=True)
class RealCitySpec:
    """Scale statistics of one proprietary city (Table IV).

    ``empirical_capacity`` is the city-level capacity CTop-K uses
    (45 / 55 / 40 for Cities A / B / C, Sec. VII-A); ``capacity_scale``
    shifts the latent capacity distribution so the city's workload norms
    match that observation.
    """

    name: str
    brokers: int
    requests: int
    days: int
    empirical_capacity: int
    capacity_scale: float


#: Table IV statistics for the three Beike cities.
REAL_CITY_SPECS: dict[str, RealCitySpec] = {
    "A": RealCitySpec("A", 5515, 103_106, 21, 45, 1.05),
    "B": RealCitySpec("B", 8155, 387_339, 21, 55, 1.25),
    "C": RealCitySpec("C", 3689, 74_831, 21, 40, 0.85),
}


def real_like_city(
    name: str,
    scale: float = 0.1,
    seed: int = 0,
    appeal_rate: float = 0.0,
) -> tuple[RealEstatePlatform, RealCitySpec, SyntheticConfig]:
    """Generate a real-like city matching Table IV's relative statistics.

    Args:
        name: ``"A"``, ``"B"`` or ``"C"``.
        scale: proportional shrink factor on brokers and requests (1.0
            reproduces the full Table IV sizes).
        seed: master seed.
        appeal_rate: client-appeal probability scale.

    Returns:
        ``(platform, spec, config)`` — the environment, the city's Table IV
        spec (including CTop-K's empirical capacity) and the generated
        configuration.
    """
    if name not in REAL_CITY_SPECS:
        raise KeyError(f"unknown city {name!r}; choose from {sorted(REAL_CITY_SPECS)}")
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    spec = REAL_CITY_SPECS[name]
    num_brokers = max(20, round(spec.brokers * scale))
    num_requests = max(num_brokers, round(spec.requests * scale))
    config = SyntheticConfig(
        num_brokers=num_brokers,
        num_requests=num_requests,
        num_days=spec.days,
        imbalance=0.008,
        capacity_scale=spec.capacity_scale,
        appeal_rate=appeal_rate,
        seed=seed + sum(ord(char) for char in name),
    )
    return generate_city(config), spec, config
