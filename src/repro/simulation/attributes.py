"""Broker attribute profiles (Table II of the paper).

Each broker carries three attribute groups: basic info (age, working years,
education, title), a work profile (response rate, dialogue rounds,
presentations, consultations over 7/14/30/90-day windows, maintained houses,
served clients, transactions) and preferences (districts, housing).  The
profile vectorizes into the static part of the working-status context
``x_b``; dynamic work-profile statistics are maintained by the platform as
days unfold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

EDUCATION_LEVELS = ("high_school", "undergraduate", "master")
JOB_TITLES = ("assistant", "clerk", "manager")
HOUSE_TYPES = ("apartment", "duplex", "villa")

#: Recency windows (days) used by Table II work-profile statistics.
RECENCY_WINDOWS = (7, 14, 30, 90)


@dataclass(frozen=True)
class BrokerProfile:
    """Static per-broker attributes (Table II).

    Attributes:
        age: broker's age in years.
        working_years: years of experience as a broker.
        education: one of :data:`EDUCATION_LEVELS`.
        title: one of :data:`JOB_TITLES`.
        response_rate: probability of answering a request within a minute.
        dialogue_rounds: average App dialogue rounds per recency window.
        housing_presentations: offline presentations per recency window.
        vr_presentations: VR presentations per recency window.
        vr_presentation_time: VR presentation hours per recency window.
        phone_consultations: phone consultations per recency window.
        phone_consultation_time: phone consultation hours per window.
        app_consultations: App consultations per recency window.
        app_consultation_time: App consultation hours per window.
        maintained_houses: houses currently maintained by the broker.
        served_clients: clients served per recency window.
        transactions: closed transactions per recency window.
        district_preference: soft membership over city districts.
        price_preference: preferred normalized price point in [0, 1].
        area_preference: preferred normalized house area in [0, 1].
        type_preference: soft membership over :data:`HOUSE_TYPES`.
    """

    age: float
    working_years: float
    education: str
    title: str
    response_rate: float
    dialogue_rounds: tuple[float, ...]
    housing_presentations: tuple[float, ...]
    vr_presentations: tuple[float, ...]
    vr_presentation_time: tuple[float, ...]
    phone_consultations: tuple[float, ...]
    phone_consultation_time: tuple[float, ...]
    app_consultations: tuple[float, ...]
    app_consultation_time: tuple[float, ...]
    maintained_houses: float
    served_clients: tuple[float, ...]
    transactions: tuple[float, ...]
    district_preference: tuple[float, ...]
    price_preference: float
    area_preference: float
    type_preference: tuple[float, ...]

    def to_vector(self) -> np.ndarray:
        """Vectorize the static profile (normalized to unit-ish scales)."""
        education_onehot = [float(self.education == level) for level in EDUCATION_LEVELS]
        title_onehot = [float(self.title == title) for title in JOB_TITLES]
        parts = [
            [self.age / 60.0, self.working_years / 20.0],
            education_onehot,
            title_onehot,
            [self.response_rate],
            [value / 50.0 for value in self.dialogue_rounds],
            [value / 30.0 for value in self.housing_presentations],
            [value / 30.0 for value in self.vr_presentations],
            [value / 20.0 for value in self.vr_presentation_time],
            [value / 40.0 for value in self.phone_consultations],
            [value / 20.0 for value in self.phone_consultation_time],
            [value / 60.0 for value in self.app_consultations],
            [value / 20.0 for value in self.app_consultation_time],
            [self.maintained_houses / 40.0],
            [value / 200.0 for value in self.served_clients],
            [value / 20.0 for value in self.transactions],
            list(self.district_preference),
            [self.price_preference, self.area_preference],
            list(self.type_preference),
        ]
        return np.concatenate([np.asarray(part, dtype=float) for part in parts])


def _windowed(rng: np.random.Generator, daily_rate: float) -> tuple[float, ...]:
    """Per-window totals consistent with a noisy daily rate."""
    noise = rng.uniform(0.85, 1.15, size=len(RECENCY_WINDOWS))
    return tuple(float(daily_rate * window * n) for window, n in zip(RECENCY_WINDOWS, noise))


def generate_profile(
    rng: np.random.Generator,
    skill: float,
    num_districts: int = 8,
) -> BrokerProfile:
    """Sample a broker profile whose intensity scales with latent skill.

    Args:
        rng: source of randomness.
        skill: latent skill level in [0, 1]; senior, busier brokers carry
            larger work-profile statistics.
        num_districts: number of city districts for the preference vector.

    Returns:
        A fully populated :class:`BrokerProfile`.
    """
    if not 0.0 <= skill <= 1.0:
        raise ValueError(f"skill must be in [0, 1], got {skill}")
    working_years = float(np.clip(rng.gamma(2.0, 2.0) + 8.0 * skill, 0.5, 25.0))
    age = float(np.clip(22.0 + working_years + rng.normal(0.0, 4.0), 20.0, 60.0))
    education = EDUCATION_LEVELS[
        int(rng.choice(len(EDUCATION_LEVELS), p=[0.3, 0.55, 0.15]))
    ]
    title_probs = np.array([0.6 - 0.4 * skill, 0.3, 0.1 + 0.4 * skill])
    title = JOB_TITLES[int(rng.choice(len(JOB_TITLES), p=title_probs / title_probs.sum()))]
    activity = 0.3 + 0.7 * skill

    district_pref = rng.dirichlet(np.full(num_districts, 0.5))
    type_pref = rng.dirichlet(np.ones(len(HOUSE_TYPES)))

    return BrokerProfile(
        age=age,
        working_years=working_years,
        education=education,
        title=title,
        response_rate=float(np.clip(0.4 + 0.5 * skill + rng.normal(0.0, 0.08), 0.05, 1.0)),
        dialogue_rounds=_windowed(rng, 20.0 * activity),
        housing_presentations=_windowed(rng, 6.0 * activity),
        vr_presentations=_windowed(rng, 4.0 * activity),
        vr_presentation_time=_windowed(rng, 2.0 * activity),
        phone_consultations=_windowed(rng, 10.0 * activity),
        phone_consultation_time=_windowed(rng, 3.0 * activity),
        app_consultations=_windowed(rng, 15.0 * activity),
        app_consultation_time=_windowed(rng, 4.0 * activity),
        maintained_houses=float(np.clip(rng.poisson(5 + 25 * skill), 1, 60)),
        served_clients=_windowed(rng, 3.0 + 15.0 * skill),
        transactions=_windowed(rng, 0.1 + 0.6 * skill),
        district_preference=tuple(float(p) for p in district_pref),
        price_preference=float(rng.beta(2.0, 2.0)),
        area_preference=float(rng.beta(2.0, 2.0)),
        type_preference=tuple(float(p) for p in type_pref),
    )
