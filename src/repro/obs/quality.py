"""Online assignment-quality telemetry: is the run matching *well*?

PR 7's telemetry answers "how fast"; this module answers "how good", live,
at every day boundary:

- **capacity-estimation error** — MAE and signed bias of the matcher's
  installed capacities against the simulator's effective (ground-truth)
  capacities of the same day;
- **overload rate** — fraction of brokers whose realized workload exceeds
  their true effective capacity (the failure mode LACB exists to prevent);
- **workload Gini** — concentration of the day's workload distribution
  (the Matthew-effect axis of Figs. 3/10);
- **regret proxy** — realized matched utility vs a sampled unconstrained
  Kuhn-Munkres oracle on the same predicted-utility matrices, reusing the
  SciPy oracle of :mod:`repro.check.invariants`.  The oracle ignores
  capacity constraints, so the gap prices what capacity-awareness costs in
  raw match utility per batch.

All computations run inside :class:`~repro.obs.hook.TelemetryHook` —
outside the engine's decision-time seam, so they never distort latency
metrics — consume no randomness, and sample deterministically by global
batch index, keeping checked/unchecked/audited runs bit-identical.
Regret accumulates in *counters* (exact cross-process merge) so a
``jobs=N`` sweep reports the same regret as the serial run, bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import COUNT_BOUNDARIES, RATIO_BOUNDARIES

#: Every Nth batch (by global index) gets an oracle solve.  Dense enough
#: to track drift at paper scale, sparse enough to stay inside the 5%
#: telemetry overhead budget (each solve is one small SciPy LSA).
REGRET_SAMPLE_EVERY = 8


# ----------------------------------------------------------------------
# Pure quality measures
# ----------------------------------------------------------------------
def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative distribution.

    Same estimator as :func:`repro.experiments.metrics.gini`, restated
    here because :mod:`repro.obs` sits *below* :mod:`repro.experiments`
    in the layering (the experiments layer imports obs, not vice versa).
    Empty input returns 0 — a day with no brokers has no concentration.
    """
    values = np.sort(np.asarray(values, dtype=float))
    if values.size == 0:
        return 0.0
    total = values.sum()
    if total <= 0:
        return 0.0
    ranks = np.arange(1, values.size + 1)
    return float(
        (2.0 * np.sum(ranks * values) / (values.size * total))
        - (values.size + 1) / values.size
    )


def capacity_mae(estimated: np.ndarray, true: np.ndarray) -> float:
    """Mean absolute error of estimated vs true per-broker capacities."""
    estimated = np.asarray(estimated, dtype=float)
    true = np.asarray(true, dtype=float)
    if estimated.size == 0:
        return 0.0
    return float(np.abs(estimated - true).mean())


def capacity_bias(estimated: np.ndarray, true: np.ndarray) -> float:
    """Signed mean error (positive = systematic over-estimation)."""
    estimated = np.asarray(estimated, dtype=float)
    true = np.asarray(true, dtype=float)
    if estimated.size == 0:
        return 0.0
    return float((estimated - true).mean())


def overload_rate(workloads: np.ndarray, capacities: np.ndarray) -> float:
    """Fraction of brokers whose workload exceeds their true capacity."""
    workloads = np.asarray(workloads, dtype=float)
    capacities = np.asarray(capacities, dtype=float)
    if workloads.size == 0:
        return 0.0
    return float((workloads > capacities).mean())


def batch_regret(utilities: np.ndarray, assignment) -> tuple[float, float]:
    """(matched, oracle) utility of one batch.

    ``matched`` sums the realized pairs' raw predicted utilities;
    ``oracle`` is the optimal *unconstrained* partial matching on the full
    ``(|R_batch|, |B|)`` matrix via the SciPy oracle — no availability
    filtering, no Eq. 15 refinement — so ``oracle - matched >= 0`` is the
    batch's capacity-awareness price in predicted-utility units.
    """
    from repro.check.invariants import oracle_optimum

    matched = float(sum(pair.utility for pair in assignment.pairs))
    oracle = oracle_optimum(np.asarray(utilities, dtype=float))
    return matched, oracle


def estimated_capacities_of(matcher) -> np.ndarray | None:
    """The capacities a matcher installed for the current day, if any.

    Duck-typed: LACB-family matchers expose ``estimated_capacities``;
    anything driving a :class:`~repro.core.vfga.ValueFunctionGuidedAssigner`
    exposes ``assigner.capacities``; pure rankers (Top-K, RR) have no
    capacity model and report nothing.
    """
    estimated = getattr(matcher, "estimated_capacities", None)
    if estimated is not None:
        return np.asarray(estimated, dtype=float)
    assigner = getattr(matcher, "assigner", None)
    if assigner is not None:
        return np.asarray(assigner.capacities, dtype=float)
    return None


# ----------------------------------------------------------------------
# The per-run monitor driven by TelemetryHook
# ----------------------------------------------------------------------
class QualityMonitor:
    """Accumulate quality gauges/histograms for one engine run.

    Metrics are resolved once at construction (the same reasoning as
    :class:`~repro.obs.hook.TelemetryHook`'s per-event metrics).  Day-level
    distributions observe into mergeable histograms — one observation per
    day, so a killed-and-resumed run's merged sketches equal the
    straight-through run's exactly.
    """

    def __init__(self, telemetry, context) -> None:
        self._telemetry = telemetry
        self._platform = context.platform
        self._matcher = context.matcher
        self._batches_per_day = max(int(context.batches_per_day), 1)
        self._oracle_available = True
        registry, labels = telemetry.registry, telemetry.labels()
        self._matched = registry.counter("quality.regret_matched_utility", **labels)
        self._oracle = registry.counter("quality.regret_oracle_utility", **labels)
        self._regret_batches = registry.counter("quality.regret_batches", **labels)
        self._gini_days = registry.histogram(
            "quality.workload_gini_days", boundaries=RATIO_BOUNDARIES, **labels
        )
        self._overload_days = registry.histogram(
            "quality.overload_rate_days", boundaries=RATIO_BOUNDARIES, **labels
        )
        self._mae_days = registry.histogram(
            "quality.capacity_mae_days", boundaries=COUNT_BOUNDARIES, **labels
        )

    def on_batch(self, event) -> None:
        """Sampled regret accounting for one assigned batch."""
        if not self._oracle_available or event.request_ids.size == 0:
            return
        index = event.day * self._batches_per_day + event.batch
        if index % REGRET_SAMPLE_EVERY:
            return
        try:
            matched, oracle = batch_regret(event.utilities, event.assignment)
        except ImportError:
            # No SciPy in this environment: regret is the one quality
            # signal that needs it, so it degrades to absent — the other
            # gauges keep flowing.
            self._oracle_available = False
            return
        self._matched.inc(matched)
        self._oracle.inc(oracle)
        self._regret_batches.inc()

    def on_day_end(self, event) -> dict:
        """Book the day's quality gauges; returns the progress fields.

        Fields are *omitted* — never zero-filled — when their inputs are
        unavailable (a matcher without a capacity model, no oracle), so
        downstream renderers can distinguish "absent" from a real 0.0.
        """
        telemetry = self._telemetry
        workloads = np.asarray(event.outcome.workloads, dtype=float)
        fields: dict = {}

        value = gini(workloads)
        telemetry.set_gauge("quality.workload_gini", value)
        self._gini_days.observe(value)
        fields["workload_gini"] = value

        true_capacity = getattr(self._platform, "today_capacity", None)
        if true_capacity is not None:
            rate = overload_rate(workloads, true_capacity)
            telemetry.set_gauge("quality.overload_rate", rate)
            self._overload_days.observe(rate)
            fields["overload_rate"] = rate

            estimated = estimated_capacities_of(self._matcher)
            if estimated is not None and estimated.shape == np.shape(true_capacity):
                mae = capacity_mae(estimated, true_capacity)
                bias = capacity_bias(estimated, true_capacity)
                telemetry.set_gauge("quality.capacity_mae", mae)
                telemetry.set_gauge("quality.capacity_bias", bias)
                self._mae_days.observe(mae)
                fields["capacity_mae"] = mae
                fields["capacity_bias"] = bias

        if self._oracle.value > 0:
            ratio = max(1.0 - self._matched.value / self._oracle.value, 0.0)
            telemetry.set_gauge("quality.regret_ratio", ratio)
            fields["regret_ratio"] = ratio
        return fields
