"""Render a telemetry directory as a human-readable run report.

``repro report DIR`` loads the artifacts written by
:meth:`repro.obs.telemetry.Telemetry.export` and prints

- the manifest header (version, git SHA, platform, wall-clock), and
- a per-phase time breakdown: for every algorithm, the engine-measured
  decision-time phases (``engine.begin_day`` / ``assign_batch`` /
  ``end_day``) and the instrumented interior spans (KM solve, CBS pruning,
  bandit predict/update, value-function updates), each with call counts,
  totals and its share of the algorithm's decision time.
"""

from __future__ import annotations

import json
import os
from typing import Mapping

from repro.obs.metrics import MetricsRegistry, Timer
from repro.obs.telemetry import MANIFEST_JSON, METRICS_JSON

#: The engine-measured phases whose totals sum to ``RunResult.decision_time``.
ENGINE_PHASES = ("engine.begin_day", "engine.assign_batch", "engine.end_day")


def load_telemetry_dir(directory) -> tuple[dict | None, MetricsRegistry]:
    """Load ``manifest.json`` (if present) and ``metrics.json`` from a dir."""
    metrics_path = os.path.join(directory, METRICS_JSON)
    if not os.path.exists(metrics_path):
        raise FileNotFoundError(
            f"{metrics_path} not found — is {directory!r} a telemetry directory "
            f"(produced by --telemetry)?"
        )
    with open(metrics_path, encoding="utf-8") as handle:
        registry = MetricsRegistry.from_dict(json.load(handle))
    manifest = None
    manifest_path = os.path.join(directory, MANIFEST_JSON)
    if os.path.exists(manifest_path):
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    return manifest, registry


def decision_time_by_algorithm(registry: MetricsRegistry) -> dict[str, float]:
    """Per algorithm, the summed engine phase totals (= decision seconds)."""
    totals: dict[str, float] = {}
    for phase in ENGINE_PHASES:
        for labels, metric in registry.find(phase):
            if isinstance(metric, Timer):
                algorithm = labels.get("algorithm", "")
                totals[algorithm] = totals.get(algorithm, 0.0) + metric.total
    return totals


def phase_rows(registry: MetricsRegistry) -> list[tuple[str, str, int, float, float, str]]:
    """Breakdown rows: (algorithm, phase, calls, total s, mean ms, share).

    Engine phases come first (they partition decision time); interior spans
    (``span.*`` timers) follow, ordered by total descending.  Shares are
    relative to the algorithm's decision time; interior spans nest inside
    engine phases, so their shares are a drill-down, not a second sum.
    """
    decision = decision_time_by_algorithm(registry)
    engine_rows = []
    span_rows = []
    for name, labels, metric in registry.items():
        if not isinstance(metric, Timer):
            continue
        algorithm = labels.get("algorithm", "")
        if name in ENGINE_PHASES:
            bucket, phase = engine_rows, name
        elif name.startswith("span."):
            phase = name[len("span."):]
            if phase in ENGINE_PHASES:
                continue  # the synthesized engine spans; already listed above
            bucket = span_rows
        else:
            continue
        total = decision.get(algorithm, 0.0)
        share = f"{metric.total / total:7.1%}" if total > 0 else "      -"
        bucket.append(
            (algorithm, phase, metric.count, metric.total, metric.mean * 1e3, share)
        )
    engine_rows.sort(key=lambda row: (row[0], -row[3]))
    span_rows.sort(key=lambda row: (row[0], -row[3]))
    return engine_rows + span_rows


def render_report(directory) -> str:
    """The full plain-text report for one telemetry directory."""
    from repro.experiments.reporting import format_table

    manifest, registry = load_telemetry_dir(directory)
    lines: list[str] = []
    if manifest:
        lines.append(f"manifest: {manifest.get('command', 'run')} "
                     f"(repro {manifest.get('repro_version', '?')}, "
                     f"git {str(manifest.get('git_sha'))[:12]}, "
                     f"python {manifest.get('python', '?')}, "
                     f"numpy {manifest.get('numpy', '?')})")
        if "wall_seconds" in manifest:
            lines.append(f"wall-clock: {manifest['wall_seconds']:.2f}s "
                         f"(created {manifest.get('created_utc', '?')})")
        lines.append("")

    decision = decision_time_by_algorithm(registry)
    if decision:
        lines.append(
            format_table(
                ["algorithm", "decision s"],
                sorted(decision.items()),
                title="Decision time (engine-measured)",
            )
        )
        lines.append("")

    rows = phase_rows(registry)
    if rows:
        lines.append(
            format_table(
                ["algorithm", "phase", "calls", "total s", "mean ms", "% of decision"],
                rows,
                title="Per-phase time breakdown",
            )
        )
    else:
        lines.append("no phase timers recorded (was the run executed with telemetry on?)")

    counters = [
        (name, labels.get("algorithm", ""), int(metric.value))
        for name, labels, metric in registry.items()
        if metric.kind == "counter" and name.startswith("engine.")
    ]
    if counters:
        lines.append("")
        lines.append(
            format_table(
                ["counter", "algorithm", "value"], counters, title="Engine counters"
            )
        )
    return "\n".join(lines)
