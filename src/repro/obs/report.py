"""Render a telemetry directory as a human-readable run report.

``repro report DIR`` loads the artifacts written by
:meth:`repro.obs.telemetry.Telemetry.export` and prints

- the manifest header (version, git SHA, platform, wall-clock),
- a per-phase time breakdown: for every algorithm, the engine-measured
  decision-time phases (``engine.begin_day`` / ``assign_batch`` /
  ``end_day``) and the instrumented interior spans (KM solve, CBS pruning,
  bandit predict/update, value-function updates), each with call counts,
  totals, share of decision time and p50/p95/p99 latencies from the
  mergeable quantile sketches, and
- profiler sections built from the span stream: top self-time hotspots
  and wall/CPU attribution (see :mod:`repro.obs.profile`).

Crashed runs still report: when ``metrics.json`` is missing (the process
died before export), the loader falls back to the live stream segments
under ``DIR/stream/`` (see :mod:`repro.obs.stream`) and reconstructs the
registry from the last flushed snapshots — clearly marked as partial.
A directory with neither artifacts, stream, nor manifest raises
``FileNotFoundError``; anything that was ever a telemetry directory
renders without raising.
"""

from __future__ import annotations

import json
import os

from repro.obs.metrics import MetricsRegistry, Timer
from repro.obs.quantiles import REPORT_QUANTILES
from repro.obs.telemetry import MANIFEST_JSON, METRICS_JSON, SPANS_JSONL
from repro.obs.tracing import SpanRecord

#: The engine-measured phases whose totals sum to ``RunResult.decision_time``.
ENGINE_PHASES = ("engine.begin_day", "engine.assign_batch", "engine.end_day")


def _load_with_fallback(directory) -> tuple[dict | None, MetricsRegistry, str]:
    """Load (manifest, registry, source note); stream fallback when partial.

    Source notes: ``""`` for a clean export; otherwise a human-readable
    explanation of what was reconstructed (rendered as a report warning).
    """
    manifest = None
    manifest_path = os.path.join(directory, MANIFEST_JSON)
    if os.path.exists(manifest_path):
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)

    metrics_path = os.path.join(directory, METRICS_JSON)
    if os.path.exists(metrics_path):
        with open(metrics_path, encoding="utf-8") as handle:
            registry = MetricsRegistry.from_dict(json.load(handle))
        return manifest, registry, ""

    from repro.obs.stream import read_stream, stream_dir_for

    view = read_stream(stream_dir_for(directory))
    if view.segments:
        done = sum(1 for segment in view.segments if segment.final)
        status = "complete" if view.complete else "run did not finish"
        return manifest, view.merged_registry(), (
            f"metrics.json missing — reconstructed from {len(view.segments)} "
            f"streamed segment(s), {done} final ({status})"
        )
    if manifest is not None:
        return manifest, MetricsRegistry(), (
            "metrics.json missing and nothing streamed — the run died before "
            "its first day boundary"
        )
    raise FileNotFoundError(
        f"{metrics_path} not found — is {directory!r} a telemetry directory "
        f"(produced by --telemetry)?"
    )


def load_telemetry_dir(directory) -> tuple[dict | None, MetricsRegistry]:
    """Load ``manifest.json`` (if present) and the metrics of a dir.

    Prefers the exported ``metrics.json``; falls back to reconstructing
    from streamed segments when the run crashed before export.
    """
    manifest, registry, _source = _load_with_fallback(directory)
    return manifest, registry


def load_spans(directory) -> list[SpanRecord]:
    """Load span records: exported ``spans.jsonl``, else streamed deltas."""
    spans_path = os.path.join(directory, SPANS_JSONL)
    if os.path.exists(spans_path):
        from repro.state.io import read_jsonl

        return [SpanRecord.from_dict(entry) for entry in read_jsonl(spans_path)]
    from repro.obs.stream import read_stream, stream_dir_for

    return read_stream(stream_dir_for(directory)).spans()


def decision_time_by_algorithm(registry: MetricsRegistry) -> dict[str, float]:
    """Per algorithm, the summed engine phase totals (= decision seconds)."""
    totals: dict[str, float] = {}
    for phase in ENGINE_PHASES:
        for labels, metric in registry.find(phase):
            if isinstance(metric, Timer):
                algorithm = labels.get("algorithm", "")
                totals[algorithm] = totals.get(algorithm, 0.0) + metric.total
    return totals


def phase_rows(registry: MetricsRegistry) -> list[tuple]:
    """Breakdown rows: (algorithm, phase, calls, total s, mean ms, share,
    p50 ms, p95 ms, p99 ms).

    Engine phases come first (they partition decision time); interior spans
    (``span.*`` timers) follow, ordered by total descending.  Shares are
    relative to the algorithm's decision time; interior spans nest inside
    engine phases, so their shares are a drill-down, not a second sum.
    Percentiles come from each timer's quantile sketch — exact across
    process merges, so a ``jobs=8`` sweep reports the same tail latencies
    as the serial run.
    """
    decision = decision_time_by_algorithm(registry)
    engine_rows = []
    span_rows = []
    for name, labels, metric in registry.items():
        if not isinstance(metric, Timer):
            continue
        algorithm = labels.get("algorithm", "")
        if name in ENGINE_PHASES:
            bucket, phase = engine_rows, name
        elif name.startswith("span."):
            phase = name[len("span."):]
            if phase in ENGINE_PHASES:
                continue  # the synthesized engine spans; already listed above
            bucket = span_rows
        else:
            continue
        total = decision.get(algorithm, 0.0)
        share = f"{metric.total / total:7.1%}" if total > 0 else "      -"
        p50, p95, p99 = (
            (metric.quantile(q) * 1e3 for q in REPORT_QUANTILES)
            if metric.count
            else (0.0, 0.0, 0.0)
        )
        bucket.append(
            (algorithm, phase, metric.count, metric.total, metric.mean * 1e3,
             share, p50, p95, p99)
        )
    engine_rows.sort(key=lambda row: (row[0], -row[3]))
    span_rows.sort(key=lambda row: (row[0], -row[3]))
    return engine_rows + span_rows


PHASE_HEADERS = [
    "algorithm", "phase", "calls", "total s", "mean ms", "% of decision",
    "p50 ms", "p95 ms", "p99 ms",
]


def _format_cpu(cpu: float) -> str:
    """CPU seconds column; ``-1`` (unmeasured) renders as a dash."""
    return f"{cpu:.3f}" if cpu >= 0 else "-"


def hotspot_rows(spans: list[SpanRecord], top: int = 10) -> list[tuple]:
    """Self-time hotspot rows: (phase, calls, wall s, self s, cpu)."""
    from repro.obs.profile import hotspots

    return [
        (name, calls, wall, self_s, _format_cpu(cpu))
        for name, calls, wall, self_s, cpu in hotspots(spans, top=top)
    ]


def day_profile_rows(spans: list[SpanRecord], top_days: int = 10) -> list[tuple]:
    """Per-day engine-phase attribution, worst ``top_days`` days by wall.

    Columns: (day, phase, calls, wall s, cpu).  Day ``-1`` (outside the
    loop) is excluded — it holds run-end bookkeeping, not day work.
    """
    from repro.obs.profile import day_rows

    rows = [row for row in day_rows(spans, phases=ENGINE_PHASES) if row[0] >= 0]
    day_wall: dict[int, float] = {}
    for day, _name, _calls, wall, _cpu in rows:
        day_wall[day] = day_wall.get(day, 0.0) + wall
    worst = set(sorted(day_wall, key=lambda d: -day_wall[d])[:top_days])
    return [
        (day, name, calls, wall, _format_cpu(cpu))
        for day, name, calls, wall, cpu in rows
        if day in worst
    ]


def progress_rows(directory) -> list[tuple]:
    """Last streamed progress per segment (for partial-run reports)."""
    from repro.obs.stream import read_stream, stream_dir_for

    rows = []
    for segment in read_stream(stream_dir_for(directory)).segments:
        progress = segment.progress
        rows.append(
            (
                segment.segment,
                progress.get("algorithm", "?"),
                f"{segment.day + 1}/{progress.get('num_days', '?')}",
                "done" if segment.final else "partial",
                progress.get("assignments", 0),
                f"{progress.get('requests_per_second', 0.0):.0f}",
                f"{progress.get('total_utility', 0.0):.1f}",
            )
        )
    return rows


def _fmt_opt(progress: dict, key: str, fmt: str) -> str:
    """Format an optional progress field; absent renders as ``-``.

    Older stream files (and matchers without the relevant model) simply
    lack some fields — rendering ``-`` keeps "not measured" distinguishable
    from a measured 0.00.
    """
    value = progress.get(key)
    return fmt.format(value) if value is not None else "-"


#: Quality gauges rendered per algorithm: (metric name, header, format).
QUALITY_GAUGES = (
    ("quality.capacity_mae", "cap MAE", "{:.2f}"),
    ("quality.capacity_bias", "cap bias", "{:+.2f}"),
    ("quality.overload_rate", "overload", "{:.1%}"),
    ("quality.workload_gini", "gini", "{:.3f}"),
    ("quality.regret_ratio", "regret", "{:.2%}"),
)

QUALITY_HEADERS = ["algorithm"] + [h for _n, h, _f in QUALITY_GAUGES] + ["regret batches"]


def quality_rows(registry: MetricsRegistry) -> list[tuple]:
    """Per-algorithm assignment-quality rows from the quality gauges.

    Gauges hold each run's *last-day* value (capacity MAE, overload rate,
    Gini); the regret ratio accumulates over every sampled batch of the
    run.  Metrics a matcher cannot produce (no capacity model, no SciPy
    oracle) render as ``-``, never as a fake zero.
    """
    algorithms: dict[str, dict[str, float]] = {}
    for name, _header, _fmt in QUALITY_GAUGES:
        for labels, metric in registry.find(name):
            algorithms.setdefault(labels.get("algorithm", ""), {})[name] = metric.value
    if not algorithms:
        return []
    batches = {
        labels.get("algorithm", ""): int(metric.value)
        for labels, metric in registry.find("quality.regret_batches")
    }
    rows = []
    for algorithm in sorted(algorithms):
        values = algorithms[algorithm]
        row: list = [algorithm]
        for name, _header, fmt in QUALITY_GAUGES:
            value = values.get(name)
            row.append(fmt.format(value) if value is not None else "-")
        row.append(batches.get(algorithm, 0))
        rows.append(tuple(row))
    return rows


ALERT_HEADERS = ["day", "algorithm", "metric", "detector", "value", "baseline", "trip"]


def alert_rows(alerts: list[dict]) -> list[tuple]:
    """Render streamed alert dicts as table rows (see repro.obs.alerts)."""
    return [
        (
            entry.get("day", "?"),
            entry.get("algorithm") or "-",
            entry.get("metric", "?"),
            entry.get("detector", "?"),
            f"{entry.get('value', 0.0):.4f}",
            f"{entry.get('baseline', 0.0):.4f}",
            f"{entry.get('score', 0.0):.2f} >= {entry.get('threshold', 0.0):.2f}",
        )
        for entry in alerts
    ]


def render_watch(directory) -> tuple[str, bool]:
    """One frame of the live view over a telemetry directory's stream.

    Returns ``(text, complete)`` — ``complete`` is True once every
    streamed segment's run has finished, which is the watch loop's exit
    condition.  A directory with nothing streamed yet renders a waiting
    message (watch is typically started before — or seconds after — the
    run, so "no data yet" is a normal frame, not an error).
    """
    from repro.experiments.reporting import format_table
    from repro.obs.stream import read_stream, stream_dir_for

    view = read_stream(stream_dir_for(directory))
    if not view.segments:
        return (f"waiting for stream segments under {stream_dir_for(directory)} ...", False)
    lines = [
        format_table(
            ["segment", "algorithm", "day", "state", "assignments", "req/s", "utility"],
            progress_rows(directory),
            title=f"Live telemetry ({directory})",
        )
    ]
    latency = []
    for segment in view.segments:
        progress = segment.progress
        if "assign_p50" in progress:
            latency.append(
                (
                    progress.get("algorithm", segment.segment),
                    f"{progress['assign_p50'] * 1e3:.2f}",
                    f"{progress['assign_p95'] * 1e3:.2f}",
                    f"{progress['assign_p99'] * 1e3:.2f}",
                    _fmt_opt(progress, "utilization", "{:.1%}"),
                    _fmt_opt(progress, "workload_dispersion", "{:.2f}"),
                    _fmt_opt(progress, "overload_rate", "{:.1%}"),
                    _fmt_opt(progress, "capacity_mae", "{:.2f}"),
                    _fmt_opt(progress, "regret_ratio", "{:.2%}"),
                )
            )
    if latency:
        lines.append("")
        lines.append(
            format_table(
                ["algorithm", "p50 ms", "p95 ms", "p99 ms", "utilization",
                 "dispersion", "overload", "cap MAE", "regret"],
                latency,
                title="assign_batch latency (sketch percentiles) and day quality",
            )
        )
    streamed_alerts = view.alerts()
    if streamed_alerts:
        lines.append("")
        lines.append(
            format_table(
                ALERT_HEADERS,
                alert_rows(streamed_alerts),
                title="Drift alerts",
            )
        )
    if view.complete:
        lines.append("")
        lines.append("all segments final — run complete")
    return "\n".join(lines), view.complete


def render_report(directory) -> str:
    """The full plain-text report for one telemetry directory."""
    from repro.experiments.reporting import format_table

    manifest, registry, source = _load_with_fallback(directory)
    lines: list[str] = []
    if manifest:
        lines.append(f"manifest: {manifest.get('command', 'run')} "
                     f"(repro {manifest.get('repro_version', '?')}, "
                     f"git {str(manifest.get('git_sha'))[:12]}, "
                     f"python {manifest.get('python', '?')}, "
                     f"numpy {manifest.get('numpy', '?')})")
        if "wall_seconds" in manifest:
            lines.append(f"wall-clock: {manifest['wall_seconds']:.2f}s "
                         f"(created {manifest.get('created_utc', '?')})")
        lines.append("")
    if source:
        lines.append(f"WARNING: {source}")
        rows = progress_rows(directory)
        if rows:
            lines.append("")
            lines.append(
                format_table(
                    ["segment", "algorithm", "day", "state", "assignments",
                     "req/s", "utility"],
                    rows,
                    title="Streamed progress (last flush per segment)",
                )
            )
        lines.append("")

    decision = decision_time_by_algorithm(registry)
    if decision:
        lines.append(
            format_table(
                ["algorithm", "decision s"],
                sorted(decision.items()),
                title="Decision time (engine-measured)",
            )
        )
        lines.append("")

    quality = quality_rows(registry)
    if quality:
        lines.append(
            format_table(
                QUALITY_HEADERS,
                quality,
                title="Assignment quality (last-day gauges; regret over sampled batches)",
            )
        )
        lines.append("")

    rows = phase_rows(registry)
    if rows:
        lines.append(
            format_table(PHASE_HEADERS, rows, title="Per-phase time breakdown")
        )
    else:
        lines.append("no phase timers recorded (was the run executed with telemetry on?)")

    spans = load_spans(directory)
    if spans:
        lines.append("")
        lines.append(
            format_table(
                ["phase", "calls", "wall s", "self s", "cpu s"],
                hotspot_rows(spans),
                title="Hotspots (by self time, span-tree reconstruction)",
            )
        )
        day_table = day_profile_rows(spans)
        if day_table:
            lines.append("")
            lines.append(
                format_table(
                    ["day", "phase", "calls", "wall s", "cpu s"],
                    day_table,
                    title="Per-day engine phases (worst 10 days by wall time)",
                )
            )

    counters = [
        (name, labels.get("algorithm", ""), int(metric.value))
        for name, labels, metric in registry.items()
        if metric.kind == "counter" and name.startswith("engine.")
    ]
    if counters:
        lines.append("")
        lines.append(
            format_table(
                ["counter", "algorithm", "value"], counters, title="Engine counters"
            )
        )

    from repro.obs.stream import read_stream, stream_dir_for

    streamed_alerts = read_stream(stream_dir_for(directory)).alerts()
    if streamed_alerts:
        lines.append("")
        lines.append(
            format_table(ALERT_HEADERS, alert_rows(streamed_alerts), title="Drift alerts")
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Decision-path reconstruction (`repro-lacb explain`)
# ----------------------------------------------------------------------
def _capacity_notes(record: dict) -> dict[int, tuple]:
    """Per-broker (capacity, rule, mean, bonus) of one audit day record."""
    section = record.get("capacity")
    if not section:
        return {}
    return {
        broker: (capacity, rule, mean, bonus)
        for broker, capacity, rule, mean, bonus in zip(
            section["broker"],
            section["capacity"],
            section["rule"],
            section["mean"],
            section["bonus"],
        )
    }


def render_explain(
    view,
    day: int | None = None,
    request: int | None = None,
    broker: int | None = None,
    limit: int = 10,
) -> str:
    """Reconstruct decision paths from an :class:`~repro.obs.audit.AuditView`.

    For every matching audited decision, shows the full chain the paper's
    pipeline walked: the bandit's capacity arm and selection rule (Alg. 1),
    the CBS candidate set and prune ratio (Alg. 3), the raw vs Eq. 15
    value-refined utility of the realized KM edge, the broker's residual
    quota at match time, and the runner-up candidates by refined score.
    """
    records = view.records()
    if not records:
        return (
            f"no audit records under {view.directory} — was the run executed "
            "with --telemetry DIR --audit?"
        )
    total = sum(
        len(batch.get("decisions", ()))
        for record in records
        for batch in record.get("batches", ())
    )
    decisions = list(view.decisions(day=day, request=request, broker=broker))
    lines = [
        f"decision audit: {len(records)} day record(s), {total} decision(s), "
        f"{len(decisions)} matching the filters"
    ]
    shown = decisions if limit <= 0 else decisions[:limit]
    for record, batch, decision in shown:
        notes = _capacity_notes(record)
        lines.append("")
        lines.append(
            f"day {record['day']} batch {batch['batch']} "
            f"[{record.get('algorithm', '?')}]: request {decision['request']} "
            f"-> broker {decision['broker']}"
        )
        lines.append(
            f"  utility: raw {decision['raw']:.4f} -> refined "
            f"{decision['refined']:.4f} (Eq. 15 delta {decision['delta']:+.4f})"
        )
        lines.append(
            f"  quota: residual {decision['residual']:g} of capacity "
            f"{decision['capacity']:g} (workload {decision['workload']} "
            "before the match)"
        )
        note = notes.get(decision["broker"])
        if note is not None:
            capacity, rule, mean, bonus = note
            parts = f"capacity arm {capacity:g} via {rule}"
            if mean is not None and bonus is not None:
                parts += f" (mean {mean:.4f}, bonus {bonus:.4f})"
            lines.append(f"  bandit: {parts}")
        available = batch.get("available")
        kept = batch.get("kept")
        if kept is not None and batch.get("pruned_ratio") is not None:
            lines.append(
                f"  batch: {batch['requests']} requests, |B+| {available} -> "
                f"CBS kept {kept} (pruned {batch['pruned_ratio']:.1%})"
            )
        else:
            lines.append(
                f"  batch: {batch['requests']} requests, |B+| {available} "
                "(no CBS pruning)"
            )
        alternatives = decision.get("alternatives") or []
        if alternatives:
            runners = "; ".join(
                f"broker {b} refined {r:.4f} (raw {u:.4f})"
                for b, r, u in alternatives
            )
            lines.append(f"  runners-up: {runners}")
    if len(decisions) > len(shown):
        lines.append("")
        lines.append(f"... {len(decisions) - len(shown)} more (raise --limit)")
    return "\n".join(lines)
