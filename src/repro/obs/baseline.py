"""Benchmark baseline tracking: detect real perf regressions, not noise.

The benchmark suite writes machine-readable artifacts (``BENCH_hotpath.json``,
``BENCH_obs_overhead.json``, ``BENCH_checkpoint.json``) with hard budget
assertions baked in.  Budgets catch catastrophic regressions but are loose
by necessity — a 4.5× speedup eroding to 3.1× passes a 3.0× floor forever.
This module adds the trend line: ``repro-lacb baseline`` appends each
artifact's *comparable* metrics to a small committed trajectory file
(``BENCH_trajectory.json``), and ``--check`` compares fresh artifacts
against the trajectory baseline, failing only beyond a per-metric noise
band.

Only dimensionless ratios are tracked — speedups and on/off overhead
ratios.  Absolute seconds are machine-dependent, so a trajectory committed
from one machine would misfire everywhere else; ratios of measurements
taken on the *same* machine in the *same* run transfer.  Smoke-mode
artifacts (tiny CI instances) only ever compare against smoke-mode
baseline entries, and vice versa.

The baseline is the median of the last ``window`` matching entries: robust
to one noisy append, while still tracking genuine drift.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Mapping, Sequence

#: Committed trajectory file name (repo root by convention).
TRAJECTORY_NAME = "BENCH_trajectory.json"

TRAJECTORY_SCHEMA = "repro.bench.trajectory/v1"

#: Baseline window: median of this many most-recent matching entries.
DEFAULT_WINDOW = 5


@dataclass(frozen=True)
class MetricSpec:
    """One tracked metric of one benchmark artifact.

    Attributes:
        path: dotted path into the artifact JSON (``"scoring.speedup"``).
        higher_is_better: regression direction.
        rel_tol: noise band as a fraction of the baseline value.
        abs_tol: noise band floor in absolute units; the effective band is
            ``max(rel_tol * |baseline|, abs_tol)``.
    """

    path: str
    higher_is_better: bool
    rel_tol: float
    abs_tol: float = 0.0

    def band(self, baseline: float) -> float:
        return max(self.rel_tol * abs(baseline), self.abs_tol)


#: Comparable metrics per ``bench`` tag.  Speedup repeats scatter ~25% on
#: shared CI runners; overhead ratios sit near 1.0 with ~5% pair noise.
METRIC_SPECS: dict[str, tuple[MetricSpec, ...]] = {
    "hotpath": (
        MetricSpec("scoring.speedup", higher_is_better=True, rel_tol=0.30),
        MetricSpec("cbs.speedup", higher_is_better=True, rel_tol=0.30),
    ),
    "incremental": (
        MetricSpec("warm.speedup", higher_is_better=True, rel_tol=0.30),
        MetricSpec("cache.speedup", higher_is_better=True, rel_tol=0.30),
    ),
    "obs_overhead": (
        MetricSpec("overhead_ratio", higher_is_better=False, rel_tol=0.0, abs_tol=0.05),
    ),
    "checkpoint_overhead": (
        MetricSpec("overhead_ratio", higher_is_better=False, rel_tol=0.0, abs_tol=0.05),
    ),
    "decision_audit": (
        MetricSpec("overhead_ratio", higher_is_better=False, rel_tol=0.0, abs_tol=0.05),
    ),
    "serving": (
        MetricSpec("adaptive.p99_ratio", higher_is_better=True, rel_tol=0.30),
        MetricSpec("adaptive.utility_ratio", higher_is_better=True, rel_tol=0.0, abs_tol=0.02),
    ),
}


@dataclass
class Comparison:
    """One metric's verdict against the trajectory baseline."""

    bench: str
    metric: str
    current: float
    baseline: float | None
    band: float
    status: str  # "ok" | "regression" | "no-baseline"
    samples: int

    @property
    def is_regression(self) -> bool:
        return self.status == "regression"


def _dig(payload: Mapping, path: str) -> float | None:
    node = payload
    for part in path.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def extract_entry(payload: Mapping, recorded: str | None = None) -> dict:
    """Distill one benchmark artifact into a trajectory entry.

    Raises:
        ValueError: artifact has no ``bench`` tag or no tracked metrics.
    """
    bench = payload.get("bench")
    if not bench:
        raise ValueError("benchmark artifact has no 'bench' tag")
    specs = METRIC_SPECS.get(bench)
    if not specs:
        raise ValueError(
            f"no tracked metrics for bench {bench!r} "
            f"(known: {sorted(METRIC_SPECS)})"
        )
    metrics = {}
    for spec in specs:
        value = _dig(payload, spec.path)
        if value is not None:
            metrics[spec.path] = value
    if not metrics:
        raise ValueError(f"artifact for bench {bench!r} has none of the tracked metrics")
    if recorded is None:
        recorded = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    return {
        "bench": bench,
        "smoke": bool(payload.get("smoke", False)),
        "recorded_utc": recorded,
        "repeats": payload.get("repeats"),
        "metrics": metrics,
    }


def load_trajectory(path) -> dict:
    """Load (or initialize) the trajectory file."""
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            trajectory = json.load(handle)
        if trajectory.get("schema") != TRAJECTORY_SCHEMA:
            raise ValueError(f"{path}: unknown trajectory schema {trajectory.get('schema')!r}")
        return trajectory
    return {"schema": TRAJECTORY_SCHEMA, "entries": []}


def append_entry(path, payload: Mapping, recorded: str | None = None) -> dict:
    """Append one artifact's entry to the trajectory (atomic write)."""
    from repro.state.io import atomic_write_json

    trajectory = load_trajectory(path)
    entry = extract_entry(payload, recorded=recorded)
    trajectory["entries"].append(entry)
    atomic_write_json(path, trajectory)
    return entry


def baseline_value(
    trajectory: Mapping, bench: str, smoke: bool, metric: str, window: int = DEFAULT_WINDOW
) -> tuple[float | None, int]:
    """Median of the last ``window`` matching entries; (None, 0) if none."""
    values = [
        entry["metrics"][metric]
        for entry in trajectory.get("entries", ())
        if entry.get("bench") == bench
        and bool(entry.get("smoke", False)) == smoke
        and metric in entry.get("metrics", {})
    ]
    if not values:
        return None, 0
    tail = values[-window:]
    ordered = sorted(tail)
    mid = len(ordered) // 2
    median = (
        ordered[mid]
        if len(ordered) % 2
        else (ordered[mid - 1] + ordered[mid]) / 2.0
    )
    return median, len(tail)


def compare_artifact(
    payload: Mapping, trajectory: Mapping, window: int = DEFAULT_WINDOW
) -> list[Comparison]:
    """Compare one artifact against the trajectory, metric by metric.

    A metric with no matching baseline entries reports ``no-baseline`` —
    informational, never a failure (first runs and fresh smoke configs
    must not brick CI).
    """
    bench = str(payload.get("bench", ""))
    smoke = bool(payload.get("smoke", False))
    comparisons: list[Comparison] = []
    for spec in METRIC_SPECS.get(bench, ()):
        current = _dig(payload, spec.path)
        if current is None:
            continue
        baseline, samples = baseline_value(trajectory, bench, smoke, spec.path, window)
        if baseline is None:
            comparisons.append(
                Comparison(bench, spec.path, current, None, 0.0, "no-baseline", 0)
            )
            continue
        band = spec.band(baseline)
        if spec.higher_is_better:
            regressed = current < baseline - band
        else:
            regressed = current > baseline + band
        comparisons.append(
            Comparison(
                bench,
                spec.path,
                current,
                baseline,
                band,
                "regression" if regressed else "ok",
                samples,
            )
        )
    return comparisons


def run_baseline(
    artifact_paths: Sequence[str],
    trajectory_path: str,
    append: bool = False,
    window: int = DEFAULT_WINDOW,
) -> tuple[list[Comparison], list[dict]]:
    """Load artifacts, compare against the trajectory, optionally append.

    Comparison happens against the trajectory *before* appending, so a
    combined append+check run judges the fresh numbers against history,
    not against themselves.

    Returns:
        ``(comparisons, appended entries)``.
    """
    payloads = []
    for path in artifact_paths:
        with open(path, encoding="utf-8") as handle:
            payloads.append(json.load(handle))
    trajectory = load_trajectory(trajectory_path)
    comparisons: list[Comparison] = []
    for payload in payloads:
        comparisons.extend(compare_artifact(payload, trajectory, window=window))
    appended = []
    if append:
        for payload in payloads:
            appended.append(append_entry(trajectory_path, payload))
    return comparisons, appended


def default_artifacts(directory=".") -> list[str]:
    """The ``BENCH_*.json`` artifacts in a directory (trajectory excluded)."""
    names = sorted(
        name
        for name in os.listdir(directory)
        if name.startswith("BENCH_")
        and name.endswith(".json")
        and name != TRAJECTORY_NAME
    )
    return [os.path.join(directory, name) for name in names]
