"""Phase profiler: deterministic wall/CPU attribution over the span stream.

The tracer (:mod:`repro.obs.tracing`) records two kinds of spans.  *Live*
spans close via context manager, so the single-threaded tracer appends
them in strict post-order — a record at depth ``d`` is the parent of the
immediately preceding unclaimed records at depth ``d + 1``.  *Synthesized*
engine-phase spans (``engine.begin_day`` / ``assign_batch`` / ``end_day``)
are booked by the telemetry hook *after* the timed matcher call returned,
so they appear after their interior spans at the same depth.  The profiler
reconstructs one tree from both: an engine-phase record adopts, besides
its depth children, every same-depth record still unclaimed — exactly the
live roots that finished since the previous engine phase.

Append order, not timestamps, drives the reconstruction: synthesized spans
are time-shifted (their window starts at ``now - duration`` after event
dispatch), so temporal containment is unreliable, but the single-threaded
append order is exact.  One consequence is documented rather than fought:
spans recorded by *other hooks* between the matcher call and the telemetry
event (checkpoint writes, invariant checks) are adopted by the enclosing
engine phase frame — visually "work done at that point of the day", with
self time clamped at zero.

Per-day attribution comes from :attr:`SpanRecord.day`, stamped by the day
loop — so every table here is a pure function of the recorded spans:
byte-identical spans give byte-identical profiles.

Outputs:

- :func:`phase_stats` — per-phase calls / wall / CPU (day-filterable);
- :func:`day_rows` — per-day × per-phase attribution;
- :func:`hotspots` — top-N phases by *self* wall time (tree-based);
- :func:`collapsed_stacks` / :func:`write_collapsed` — the
  ``flamegraph.pl`` / speedscope collapsed-stack format, one
  ``root;child;leaf <microseconds>`` line per stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.obs.tracing import SpanRecord

#: Synthesized engine phases (the decision-time partition); these adopt
#: unclaimed same-depth spans during tree reconstruction.
ENGINE_PHASES = ("engine.begin_day", "engine.assign_batch", "engine.end_day")


@dataclass
class ProfileNode:
    """One span with its reconstructed children."""

    record: SpanRecord
    children: list[ProfileNode] = field(default_factory=list)

    @property
    def self_seconds(self) -> float:
        """Wall time not covered by children (clamped at zero: adopted
        hook spans may exceed the engine-measured matcher window)."""
        return max(0.0, self.record.duration - sum(c.record.duration for c in self.children))


def build_forest(records: Iterable[SpanRecord]) -> list[ProfileNode]:
    """Reconstruct span trees from append-ordered records, per pid lane."""
    by_pid: dict[int, list[SpanRecord]] = {}
    for record in records:
        by_pid.setdefault(record.pid, []).append(record)
    forest: list[ProfileNode] = []
    for pid in sorted(by_pid):
        forest.extend(_build_lane(by_pid[pid]))
    return forest


def _build_lane(records: Sequence[SpanRecord]) -> list[ProfileNode]:
    # pending[d]: completed, not-yet-claimed nodes at depth d, in order.
    pending: dict[int, list[ProfileNode]] = {}
    for record in records:
        depth = record.depth
        children = pending.pop(depth + 1, [])
        if record.name in ENGINE_PHASES:
            # The engine phase closed after its interior spans: adopt the
            # unclaimed same-depth nodes (the live roots since the previous
            # engine phase) in addition to ordinary depth children.  Earlier
            # engine phases stay siblings — they partition decision time and
            # must never nest under each other.
            same_depth = pending.get(depth, [])
            adopted = [n for n in same_depth if n.record.name not in ENGINE_PHASES]
            if adopted:
                pending[depth] = [n for n in same_depth if n.record.name in ENGINE_PHASES]
            children = adopted + children
        pending.setdefault(depth, []).append(ProfileNode(record, children))
    roots: list[ProfileNode] = []
    for depth in sorted(pending):
        roots.extend(pending[depth])
    roots.sort(key=lambda node: node.record.start)
    return roots


def _walk(forest: Iterable[ProfileNode]):
    stack = list(forest)
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children)


# ----------------------------------------------------------------------
# Flat attribution (by name, by day) — no tree needed.
# ----------------------------------------------------------------------
def phase_stats(
    records: Iterable[SpanRecord], day: int | None = None
) -> list[tuple[str, int, float, float]]:
    """Per-phase ``(name, calls, wall s, cpu s)``, wall-descending.

    CPU sums only measured spans (``cpu >= 0``); a phase with no measured
    span reports ``-1.0`` (unknown) rather than a misleading zero.
    """
    stats: dict[str, list[float]] = {}
    for record in records:
        if day is not None and record.day != day:
            continue
        entry = stats.setdefault(record.name, [0, 0.0, 0.0, 0])
        entry[0] += 1
        entry[1] += record.duration
        if record.cpu >= 0:
            entry[2] += record.cpu
            entry[3] += 1
    rows = [
        (name, int(calls), wall, cpu if measured else -1.0)
        for name, (calls, wall, cpu, measured) in stats.items()
    ]
    rows.sort(key=lambda row: (-row[2], row[0]))
    return rows


def day_rows(
    records: Iterable[SpanRecord], phases: Sequence[str] | None = None
) -> list[tuple[int, str, int, float, float]]:
    """Per-day × per-phase ``(day, name, calls, wall s, cpu s)`` rows.

    Days sort ascending (day ``-1`` — outside any day — last); phases
    wall-descending within a day.  ``phases`` restricts to the named
    phases (default: all).
    """
    wanted = set(phases) if phases is not None else None
    by_day: dict[int, list[SpanRecord]] = {}
    for record in records:
        if wanted is not None and record.name not in wanted:
            continue
        by_day.setdefault(record.day, []).append(record)
    rows: list[tuple[int, str, int, float, float]] = []
    for day in sorted(by_day, key=lambda d: (d < 0, d)):
        for name, calls, wall, cpu in phase_stats(by_day[day]):
            rows.append((day, name, calls, wall, cpu))
    return rows


# ----------------------------------------------------------------------
# Tree-based attribution: self time and collapsed stacks.
# ----------------------------------------------------------------------
def hotspots(
    records: Iterable[SpanRecord], top: int = 10
) -> list[tuple[str, int, float, float, float]]:
    """Top phases by self time: ``(name, calls, wall, self, cpu)``.

    Self time is wall time minus reconstructed children — the honest
    "where is time actually spent" number: a phase that merely wraps an
    expensive callee ranks below the callee itself.
    """
    stats: dict[str, list[float]] = {}
    for node in _walk(build_forest(records)):
        record = node.record
        entry = stats.setdefault(record.name, [0, 0.0, 0.0, 0.0, 0])
        entry[0] += 1
        entry[1] += record.duration
        entry[2] += node.self_seconds
        if record.cpu >= 0:
            entry[3] += record.cpu
            entry[4] += 1
    rows = [
        (name, int(calls), wall, self_s, cpu if measured else -1.0)
        for name, (calls, wall, self_s, cpu, measured) in stats.items()
    ]
    rows.sort(key=lambda row: (-row[3], row[0]))
    return rows[:top] if top else rows


def collapsed_stacks(records: Iterable[SpanRecord]) -> dict[str, int]:
    """Aggregate self time per stack path, in integer microseconds.

    Keys are ``;``-joined span names from root to leaf — the
    ``flamegraph.pl`` collapsed format.  Values are self-time
    microseconds (the weight of the frame itself, with children drawn
    on top by the renderer).  Zero-weight frames are kept when they have
    children (pure wrappers still shape the graph) and dropped when
    childless.
    """
    weights: dict[str, int] = {}

    def visit(node: ProfileNode, prefix: str) -> None:
        stack = f"{prefix};{node.record.name}" if prefix else node.record.name
        micros = int(round(node.self_seconds * 1e6))
        if micros > 0 or node.children:
            weights[stack] = weights.get(stack, 0) + micros
        for child in node.children:
            visit(child, stack)

    for root in build_forest(records):
        visit(root, "")
    return weights


def write_collapsed(path, records: Iterable[SpanRecord]) -> str:
    """Write collapsed stacks (sorted, atomic); returns the path.

    The output loads directly in ``flamegraph.pl``, speedscope
    (https://speedscope.app) or ``inferno-flamegraph``.
    """
    import os

    from repro.state.io import atomic_open

    weights = collapsed_stacks(records)
    with atomic_open(path, "w") as handle:
        for stack in sorted(weights):
            handle.write(f"{stack} {weights[stack]}\n")
    return os.fspath(path)
