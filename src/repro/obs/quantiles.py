"""Mergeable quantile sketches: log-bucketed, bounded relative error.

:class:`QuantileSketch` is a zero-dependency DDSketch/HDR-style sketch:
values land in geometrically spaced buckets ``(gamma^(i-1), gamma^i]``
with ``gamma = (1 + alpha) / (1 - alpha)``, so any reported quantile is
within relative error ``alpha`` of an exact order statistic (for values
inside the trackable range).  Memory is ``O(log(max/min) / alpha)`` —
a few hundred buckets even for nanoseconds-to-hours data.

The sketch is the percentile half of the registry's cross-process merge
guarantee: bucket counts are integers (merge is exact and
order-independent) and the float ``sum`` folds in caller-controlled
order, so a ``jobs=N`` run's merged sketch — and therefore its
p50/p95/p99 — is bit-for-bit equal to the ``jobs=1`` run's.  Quantile
*queries* are pure functions of the bucket counts: two sketches with
equal state return equal quantiles, always.

Edge values:

- ``0`` and magnitudes below :data:`MIN_TRACKABLE` share an exact zero
  bucket (durations and counts hit 0 routinely);
- negative values are tracked in mirrored buckets with the same bound;
- magnitudes above :data:`MAX_TRACKABLE` (including infinities) clamp to
  the outermost bucket — ``min``/``max`` keep the true extremes;
- ``NaN`` observations are counted separately and excluded from
  quantiles (one NaN must not poison every percentile of a series).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

#: Default relative accuracy: reported quantiles are within 1%.
DEFAULT_ALPHA = 0.01

#: Magnitudes at or below this are exactly zero for bucketing purposes.
MIN_TRACKABLE = 1e-12

#: Magnitudes above this clamp to the outermost bucket (keeps bucket
#: indices bounded even for ``inf`` observations).
MAX_TRACKABLE = 1e15

#: The percentiles surfaced by reports and exporters.
REPORT_QUANTILES = (0.5, 0.95, 0.99)


class QuantileSketch:
    """Log-bucketed quantile sketch with exact, order-independent merge.

    Args:
        alpha: relative accuracy bound of reported quantiles; two sketches
            merge only when their ``alpha`` matches exactly.
    """

    __slots__ = ("alpha", "_gamma", "_inv_log_gamma", "count", "sum",
                 "min", "max", "zero", "nan", "pos", "neg")

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = float(alpha)
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._inv_log_gamma = 1.0 / math.log(self._gamma)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.zero = 0
        self.nan = 0
        #: Sparse bucket counts, keyed by index ``i`` covering
        #: ``(gamma^(i-1), gamma^i]`` (``neg`` indexes the magnitude).
        self.pos: dict[int, int] = {}
        self.neg: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _index(self, magnitude: float) -> int:
        if magnitude > MAX_TRACKABLE:
            magnitude = MAX_TRACKABLE
        return math.ceil(math.log(magnitude) * self._inv_log_gamma)

    def observe(self, value: float) -> None:
        """Fold one observation in (``NaN`` counted but never bucketed)."""
        value = float(value)
        if value != value:  # NaN
            self.nan += 1
            self.count += 1
            return
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if -MIN_TRACKABLE <= value <= MIN_TRACKABLE:
            self.zero += 1
        elif value > 0:
            index = self._index(value)
            self.pos[index] = self.pos.get(index, 0) + 1
        else:
            index = self._index(-value)
            self.neg[index] = self.neg.get(index, 0) + 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _bucket_value(self, index: int) -> float:
        # Midpoint (harmonic) representative: guarantees the alpha bound
        # on both edges of the bucket.
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimate (relative error <= ``alpha``).

        Deterministic: a pure function of the bucket counts, clamped to
        the observed ``[min, max]``.  Returns ``nan`` when the sketch has
        no non-NaN observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self.count - self.nan
        if total <= 0:
            return math.nan
        # The extremes are tracked exactly; report them exactly (also what
        # clamps every interior estimate into the observed range).
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * (total - 1)
        cumulative = 0
        # Ascending value order: most negative first (descending magnitude
        # index), then zero, then positive ascending.
        for index in sorted(self.neg, reverse=True):
            cumulative += self.neg[index]
            if cumulative > rank:
                return self._clamp(-self._bucket_value(index))
        cumulative += self.zero
        if cumulative > rank:
            return self._clamp(0.0)
        for index in sorted(self.pos):
            cumulative += self.pos[index]
            if cumulative > rank:
                return self._clamp(self._bucket_value(index))
        return self.max

    def quantiles(self, qs: Iterable[float] = REPORT_QUANTILES) -> tuple[float, ...]:
        """Several quantiles at once (defaults to the reporting trio)."""
        return tuple(self.quantile(q) for q in qs)

    def _clamp(self, value: float) -> float:
        return min(max(value, self.min), self.max)

    # ------------------------------------------------------------------
    # Merge and codec
    # ------------------------------------------------------------------
    def merge(self, other: QuantileSketch) -> None:
        """Fold another sketch in; bucket-count merge is exact."""
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with different alpha: "
                f"{self.alpha} vs {other.alpha}"
            )
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.zero += other.zero
        self.nan += other.nan
        for index, bucket_count in other.pos.items():
            self.pos[index] = self.pos.get(index, 0) + bucket_count
        for index, bucket_count in other.neg.items():
            self.neg[index] = self.neg.get(index, 0) + bucket_count

    def state(self) -> dict:
        """Plain-data dump (sorted bucket lists, JSON-safe)."""
        return {
            "alpha": self.alpha,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "zero": self.zero,
            "nan": self.nan,
            "pos": [[index, self.pos[index]] for index in sorted(self.pos)],
            "neg": [[index, self.neg[index]] for index in sorted(self.neg)],
        }

    def load(self, state: Mapping) -> None:
        self.alpha = float(state["alpha"])
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._inv_log_gamma = 1.0 / math.log(self._gamma)
        self.count = int(state["count"])
        self.sum = float(state["sum"])
        self.min = float(state["min"])
        self.max = float(state["max"])
        self.zero = int(state["zero"])
        self.nan = int(state["nan"])
        self.pos = {int(index): int(count) for index, count in state["pos"]}
        self.neg = {int(index): int(count) for index, count in state["neg"]}

    @classmethod
    def from_state(cls, state: Mapping) -> QuantileSketch:
        sketch = cls(alpha=float(state["alpha"]))
        sketch.load(state)
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(alpha={self.alpha}, count={self.count}, "
            f"buckets={len(self.pos) + len(self.neg)})"
        )
