"""Zero-dependency metrics primitives: counters, gauges, histograms, timers.

The registry is the process-local half of the observability story: every
worker process accumulates into its own :class:`MetricsRegistry`, the
registry serializes to plain data (:meth:`MetricsRegistry.to_dict`), and
the parent folds worker payloads back in with :meth:`MetricsRegistry.merge`.
Merging is exact for counters and histograms (integer bucket counts, float
sums folded in spec order), which is what makes a ``jobs=2`` sweep's merged
metrics bit-for-bit equal to the ``jobs=1`` run's.

Histogram bucket semantics follow the Prometheus convention: boundaries are
*inclusive upper bounds* (``le``), so a value landing exactly on a boundary
is counted in that boundary's bucket; values above the last boundary go to
the overflow bucket.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Mapping

from repro.obs.quantiles import REPORT_QUANTILES, QuantileSketch

#: Default histogram boundaries for second-scale durations.
DURATION_BOUNDARIES = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default histogram boundaries for non-negative counts (workloads, sizes).
COUNT_BOUNDARIES = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)

#: Default histogram boundaries for ratios in ``[0, 1]``.
RATIO_BOUNDARIES = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: Labels are stored canonically as a sorted tuple of (key, value) pairs.
LabelItems = tuple[tuple[str, str], ...]


class Counter:
    """Monotonically increasing sum."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters only go up)."""
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += amount

    def merge(self, other: Counter) -> None:
        self.value += other.value

    def state(self) -> dict:
        return {"value": self.value}

    def load(self, state: Mapping) -> None:
        self.value = float(state["value"])


class Gauge:
    """Last-written value (plus an update count so merges know freshness)."""

    kind = "gauge"
    __slots__ = ("value", "updates")

    def __init__(self) -> None:
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def merge(self, other: Gauge) -> None:
        # Last-write-wins in merge order; an untouched gauge never clobbers.
        if other.updates > 0:
            self.value = other.value
        self.updates += other.updates

    def state(self) -> dict:
        return {"value": self.value, "updates": self.updates}

    def load(self, state: Mapping) -> None:
        self.value = float(state["value"])
        self.updates = int(state["updates"])


class Histogram:
    """Fixed-boundary histogram with inclusive (``le``) upper bounds.

    Alongside the fixed buckets every histogram feeds a
    :class:`~repro.obs.quantiles.QuantileSketch`, so p50/p95/p99 are
    available with bounded relative error regardless of how coarse the
    configured boundaries are; the sketch merges exactly, like the
    bucket counts.

    Args:
        boundaries: strictly increasing bucket upper bounds.  Observations
            land in the first bucket whose boundary is ``>= value``; values
            above the last boundary land in the overflow bucket.
    """

    kind = "histogram"
    __slots__ = ("boundaries", "counts", "sum", "sketch")

    def __init__(self, boundaries: Iterable[float] = DURATION_BOUNDARIES) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("histograms need at least one bucket boundary")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(f"boundaries must be strictly increasing, got {bounds}")
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)  # final slot = overflow
        self.sum = 0.0
        self.sketch = QuantileSketch()

    @property
    def count(self) -> int:
        """Total number of observations."""
        return sum(self.counts)

    def observe(self, value: float) -> None:
        """Count ``value``; a value exactly on a boundary joins that bucket."""
        value = float(value)
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.sketch.observe(value)

    def quantile(self, q: float) -> float:
        """Sketch-backed quantile estimate (see :class:`QuantileSketch`)."""
        return self.sketch.quantile(q)

    def merge(self, other: Histogram) -> None:
        if other.boundaries != self.boundaries:
            raise ValueError(
                f"cannot merge histograms with different boundaries: "
                f"{self.boundaries} vs {other.boundaries}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.sum += other.sum
        self.sketch.merge(other.sketch)

    def state(self) -> dict:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "sum": self.sum,
            "sketch": self.sketch.state(),
        }

    def load(self, state: Mapping) -> None:
        self.boundaries = tuple(float(b) for b in state["boundaries"])
        self.counts = [int(c) for c in state["counts"]]
        self.sum = float(state["sum"])
        # Payloads from pre-sketch versions carry no sketch; start empty.
        if "sketch" in state:
            self.sketch = QuantileSketch.from_state(state["sketch"])
        else:
            self.sketch = QuantileSketch()


class Timer:
    """Duration accumulator: call count, total seconds, min/max, quantiles.

    Every observation also feeds a
    :class:`~repro.obs.quantiles.QuantileSketch`, so per-phase p50/p95/p99
    survive the cross-process registry merge exactly.
    """

    kind = "timer"
    __slots__ = ("count", "total", "min", "max", "sketch")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.sketch = QuantileSketch()

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        self.sketch.observe(seconds)

    @property
    def mean(self) -> float:
        """Mean seconds per call (0 when never observed)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Sketch-backed quantile estimate (see :class:`QuantileSketch`)."""
        return self.sketch.quantile(q)

    def merge(self, other: Timer) -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.sketch.merge(other.sketch)

    def state(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "sketch": self.sketch.state(),
        }

    def load(self, state: Mapping) -> None:
        self.count = int(state["count"])
        self.total = float(state["total"])
        self.min = float(state["min"])
        self.max = float(state["max"])
        # Payloads from pre-sketch versions carry no sketch; start empty.
        if "sketch" in state:
            self.sketch = QuantileSketch.from_state(state["sketch"])
        else:
            self.sketch = QuantileSketch()


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram, Timer)}

Metric = Counter | Gauge | Histogram | Timer


def _canonical_labels(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create store of labeled metrics with exact merge semantics.

    Metric identity is ``(name, labels)``; requesting an existing metric
    with a conflicting kind (or, for histograms, different boundaries)
    raises rather than silently forking the series.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelItems], Metric] = {}

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------
    def _get(self, kind: type, name: str, labels: Mapping[str, object], **kwargs) -> Metric:
        key = (name, _canonical_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = kind(**kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r}{dict(key[1])} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, boundaries: Iterable[float] = DURATION_BOUNDARIES, **labels
    ) -> Histogram:
        histogram = self._get(Histogram, name, labels, boundaries=boundaries)
        wanted = tuple(float(b) for b in boundaries)
        if histogram.boundaries != wanted:
            raise ValueError(
                f"histogram {name!r} already registered with boundaries "
                f"{histogram.boundaries}, requested {wanted}"
            )
        return histogram

    def timer(self, name: str, **labels) -> Timer:
        return self._get(Timer, name, labels)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def items(self) -> list[tuple[str, dict[str, str], Metric]]:
        """``(name, labels, metric)`` triples in deterministic order."""
        return [
            (name, dict(labels), metric)
            for (name, labels), metric in sorted(self._metrics.items())
        ]

    def find(self, name: str) -> list[tuple[dict[str, str], Metric]]:
        """Every labeled series of one metric name."""
        return [(dict(labels), m) for (n, labels), m in sorted(self._metrics.items()) if n == name]

    # ------------------------------------------------------------------
    # Serialization and merge
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data dump, safe to pickle/JSON across process boundaries."""
        return {
            "metrics": [
                {"name": name, "labels": dict(labels), "kind": metric.kind,
                 "state": metric.state()}
                for (name, labels), metric in sorted(self._metrics.items())
            ]
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> MetricsRegistry:
        registry = cls()
        for entry in payload["metrics"]:
            kind = _KINDS[entry["kind"]]
            metric = kind.__new__(kind)
            if kind is Histogram:
                metric.boundaries = ()
                metric.counts = []
                metric.sum = 0.0
            else:
                kind.__init__(metric)
            metric.load(entry["state"])
            registry._metrics[(entry["name"], _canonical_labels(entry["labels"]))] = metric
        return registry

    def merge(self, other: MetricsRegistry | Mapping) -> None:
        """Fold another registry (or its :meth:`to_dict` payload) into this one.

        Counter and histogram merges are exact (sums of integers plus float
        additions applied in caller-controlled order), so merging worker
        payloads in spec order reproduces the serial run bit-for-bit.
        """
        if not isinstance(other, MetricsRegistry):
            other = MetricsRegistry.from_dict(other)
        for (name, labels), metric in sorted(other._metrics.items()):
            existing = self._metrics.get((name, labels))
            if existing is None:
                # Adopt a fresh instance so the source registry stays intact.
                if isinstance(metric, Histogram):
                    clone = Histogram(boundaries=metric.boundaries)
                else:
                    clone = type(metric)()
                clone.merge(metric)
                self._metrics[(name, labels)] = clone
            elif existing.kind != metric.kind:
                raise ValueError(
                    f"cannot merge {metric.kind} into {existing.kind} for metric {name!r}"
                )
            else:
                existing.merge(metric)

    # ------------------------------------------------------------------
    # Prometheus exposition
    # ------------------------------------------------------------------
    def prometheus_text(self, prefix: str = "repro") -> str:
        """Render every metric in the Prometheus text exposition format."""
        lines: list[str] = []
        seen_types: set[str] = set()
        for (name, labels), metric in sorted(self._metrics.items()):
            base = _prom_name(prefix, name)
            if isinstance(metric, Counter):
                _prom_type(lines, seen_types, base, "counter")
                lines.append(f"{base}{_prom_labels(labels)} {_prom_value(metric.value)}")
            elif isinstance(metric, Gauge):
                _prom_type(lines, seen_types, base, "gauge")
                lines.append(f"{base}{_prom_labels(labels)} {_prom_value(metric.value)}")
            elif isinstance(metric, Histogram):
                _prom_type(lines, seen_types, base, "histogram")
                cumulative = 0
                for boundary, count in zip(metric.boundaries, metric.counts):
                    cumulative += count
                    lines.append(
                        f"{base}_bucket{_prom_labels(labels, le=_prom_value(boundary))} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{base}_bucket{_prom_labels(labels, le='+Inf')} {metric.count}"
                )
                lines.append(f"{base}_sum{_prom_labels(labels)} {_prom_value(metric.sum)}")
                lines.append(f"{base}_count{_prom_labels(labels)} {metric.count}")
            elif isinstance(metric, Timer):
                _prom_type(lines, seen_types, f"{base}_seconds", "summary")
                if metric.count:
                    for q in REPORT_QUANTILES:
                        lines.append(
                            f"{base}_seconds"
                            f"{_prom_labels(labels, quantile=_prom_value(q))} "
                            f"{_prom_value(metric.quantile(q))}"
                        )
                lines.append(
                    f"{base}_seconds_sum{_prom_labels(labels)} {_prom_value(metric.total)}"
                )
                lines.append(f"{base}_seconds_count{_prom_labels(labels)} {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(prefix: str, name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{prefix}_{cleaned}"


def _prom_type(lines: list[str], seen: set[str], base: str, kind: str) -> None:
    if base not in seen:
        lines.append(f"# TYPE {base} {kind}")
        seen.add(base)


def _prom_escape(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``, ``\\n``."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(labels: LabelItems, **extra: str) -> str:
    parts = [f'{k}="{_prom_escape(v)}"' for k, v in labels] + [
        f'{k}="{_prom_escape(v)}"' for k, v in extra.items()
    ]
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_value(value: float) -> str:
    value = float(value)
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    rendered = repr(value)
    return rendered[:-2] if rendered.endswith(".0") else rendered
