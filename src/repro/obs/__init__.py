"""Observability subsystem: metrics, quantiles, spans, streams, baselines.

Layers, each usable on its own:

- :mod:`~repro.obs.metrics` — zero-dependency counters / gauges /
  histograms / timers in a :class:`MetricsRegistry` with exact cross-process
  merge and a Prometheus text exporter;
- :mod:`~repro.obs.quantiles` — the mergeable log-bucketed
  :class:`QuantileSketch` behind every histogram/timer's p50/p95/p99
  (bounded relative error, bit-identical under any merge order the repo
  uses);
- :mod:`~repro.obs.tracing` — :class:`Tracer` span records (wall + CPU,
  day-stamped) with JSONL and Chrome ``trace_event`` (Perfetto-loadable)
  export;
- :mod:`~repro.obs.telemetry` — the process-wide switchboard (off by
  default): :func:`enable` / :func:`disable` / :func:`use`, plus the no-op
  fast-path helpers (:func:`span`, :func:`add`, ...) the hot paths call;
- :mod:`~repro.obs.stream` — live streaming telemetry: crash-safe JSONL
  segments flushed at day boundaries, readable mid-run (``watch``) and
  after a crash (``report`` fallback);
- :mod:`~repro.obs.profile` — the phase profiler: deterministic per-day ×
  per-phase wall/CPU attribution, self-time hotspots and collapsed-stack
  flamegraph export over the span stream;
- :mod:`~repro.obs.quality` — online assignment-quality telemetry:
  capacity-estimation error vs the simulator's ground truth, overload
  rate, workload Gini, and a sampled unconstrained-KM regret proxy;
- :mod:`~repro.obs.alerts` — deterministic drift detection (rolling
  z-score + CUSUM) over the day-boundary quality series, emitting
  structured :class:`Alert` records into the stream;
- :mod:`~repro.obs.audit` — decision provenance: per-assignment records
  (bandit arm + rule, CBS candidate set, Eq. 15 refinement, residual
  quota, runners-up) reconstructable with ``repro-lacb explain``;
- :mod:`~repro.obs.hook` — :class:`TelemetryHook`, bridging
  :mod:`repro.engine` lifecycle events into metrics, spans, quality
  gauges, alerts, audit records and stream flushes (attached
  automatically by the engine while telemetry is active);
- :mod:`~repro.obs.manifest` — run manifests (spec, seeds, git SHA,
  platform, versions, wall-clock, telemetry lineage) written next to
  exported results;
- :mod:`~repro.obs.baseline` — benchmark trajectory tracking with
  noise-banded regression checks (``repro-lacb baseline``);
- :mod:`~repro.obs.logging` — stderr diagnostics via stdlib ``logging``.

``repro.obs.report`` (the ``repro report`` / ``watch`` renderer) is
imported on demand by the CLI rather than here: it reads
result-formatting helpers from :mod:`repro.experiments`, which sits above
this layer.
"""

from repro.obs.alerts import Alert, AlertMonitor, DriftDetector
from repro.obs.audit import AuditConfig, AuditView, DecisionAudit, read_audit
from repro.obs.hook import TelemetryHook
from repro.obs.logging import get_logger, setup_cli_logging
from repro.obs.manifest import build_manifest, git_sha, repro_version, write_manifest
from repro.obs.metrics import (
    COUNT_BOUNDARIES,
    DURATION_BOUNDARIES,
    RATIO_BOUNDARIES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.quality import QualityMonitor
from repro.obs.quantiles import REPORT_QUANTILES, QuantileSketch
from repro.obs.stream import TelemetryStreamWriter, read_stream
from repro.obs.telemetry import Telemetry, current, disable, enable, enabled, use
from repro.obs.tracing import SpanRecord, Tracer

__all__ = [
    "Alert",
    "AlertMonitor",
    "AuditConfig",
    "AuditView",
    "COUNT_BOUNDARIES",
    "Counter",
    "DURATION_BOUNDARIES",
    "DecisionAudit",
    "DriftDetector",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QualityMonitor",
    "QuantileSketch",
    "RATIO_BOUNDARIES",
    "REPORT_QUANTILES",
    "SpanRecord",
    "Telemetry",
    "TelemetryHook",
    "TelemetryStreamWriter",
    "Timer",
    "Tracer",
    "build_manifest",
    "current",
    "disable",
    "enable",
    "enabled",
    "get_logger",
    "git_sha",
    "read_audit",
    "read_stream",
    "repro_version",
    "setup_cli_logging",
    "use",
    "write_manifest",
]
