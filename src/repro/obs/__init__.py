"""Observability subsystem: metrics, spans, manifests, exporters.

Five layers, each usable on its own:

- :mod:`~repro.obs.metrics` — zero-dependency counters / gauges /
  histograms / timers in a :class:`MetricsRegistry` with exact cross-process
  merge and a Prometheus text exporter;
- :mod:`~repro.obs.tracing` — :class:`Tracer` span records with JSONL and
  Chrome ``trace_event`` (Perfetto-loadable) export;
- :mod:`~repro.obs.telemetry` — the process-wide switchboard (off by
  default): :func:`enable` / :func:`disable` / :func:`use`, plus the no-op
  fast-path helpers (:func:`span`, :func:`add`, ...) the hot paths call;
- :mod:`~repro.obs.hook` — :class:`TelemetryHook`, bridging
  :mod:`repro.engine` lifecycle events into metrics and spans (attached
  automatically by the engine while telemetry is active);
- :mod:`~repro.obs.manifest` — run manifests (spec, seeds, git SHA,
  platform, versions, wall-clock) written next to exported results;
- :mod:`~repro.obs.logging` — stderr diagnostics via stdlib ``logging``.

``repro.obs.report`` (the ``repro report`` renderer) is imported on demand
by the CLI rather than here: it reads result-formatting helpers from
:mod:`repro.experiments`, which sits above this layer.
"""

from repro.obs.hook import TelemetryHook
from repro.obs.logging import get_logger, setup_cli_logging
from repro.obs.manifest import build_manifest, git_sha, repro_version, write_manifest
from repro.obs.metrics import (
    COUNT_BOUNDARIES,
    DURATION_BOUNDARIES,
    RATIO_BOUNDARIES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.telemetry import Telemetry, current, disable, enable, enabled, use
from repro.obs.tracing import SpanRecord, Tracer

__all__ = [
    "COUNT_BOUNDARIES",
    "Counter",
    "DURATION_BOUNDARIES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RATIO_BOUNDARIES",
    "SpanRecord",
    "Telemetry",
    "TelemetryHook",
    "Timer",
    "Tracer",
    "build_manifest",
    "current",
    "disable",
    "enable",
    "enabled",
    "get_logger",
    "git_sha",
    "repro_version",
    "setup_cli_logging",
    "use",
    "write_manifest",
]
