"""Live streaming telemetry: crash-safe JSONL feeds of an in-flight run.

The exporter in :mod:`repro.obs.telemetry` writes artifacts once, at the
end of a run — useless for watching a multi-hour city-scale sweep, and
lost entirely if the process dies.  This module adds the durable live
path: a :class:`TelemetryStreamWriter` appends sequence-numbered *stream
records* — a cumulative registry snapshot, the span delta since the last
flush, and a small progress summary — to a per-run segment file under
``<telemetry dir>/stream/``.  Appends go through
:func:`repro.state.io.append_jsonl` (fsync'd), and readers go through
:func:`repro.state.io.read_jsonl` (torn-tail tolerant), so a kill at any
instant loses at most the record being written.

Segments, not one file: ``run_many`` workers each write their own segment
(``<spec index>-<run id>.jsonl``), named so that lexicographic order *is*
spec order.  :func:`read_stream` merges segment registries in that order —
the same order the parent folds worker payloads — so quantile sketches and
every other metric in a stream-reconstructed registry are bit-identical to
the registry a surviving run would have exported.

Consumers:

- ``repro-lacb watch DIR`` renders the latest progress per segment live;
- ``repro-lacb report DIR`` falls back to the stream when a crashed run
  left no (or partial) ``metrics.json``.

Registry snapshots are cumulative (last one wins); span lists are deltas
(concatenated across records).  A record with ``final: true`` marks its
segment's run as complete.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanRecord
from repro.state.io import append_jsonl, read_jsonl

#: Subdirectory of a telemetry dir holding stream segments.
STREAM_DIRNAME = "stream"

#: Schema tag stamped on every stream record.
STREAM_SCHEMA = "repro.obs.stream/v1"


def stream_dir_for(directory) -> str:
    """The conventional stream subdirectory of a telemetry directory."""
    return os.path.join(os.fspath(directory), STREAM_DIRNAME)


def segment_name(index: int, run_id: str, total: int | None = None) -> str:
    """Per-spec segment stem; zero-padded index makes name order = spec order.

    The pad width grows with ``total`` (the spec count) so the
    "lexicographic order = spec order" invariant that bit-identical
    ``jobs=N`` registry merges depend on survives past 10000 specs —
    a fixed 4-digit pad would sort ``10000-…`` before ``2-…``.
    """
    width = 4 if total is None else max(4, len(str(max(total - 1, 0))))
    if index >= 10**width:
        raise ValueError(
            f"segment index {index} does not fit a {width}-digit pad; "
            "pass total= so the pad width covers the spec count"
        )
    return f"{index:0{width}d}-{run_id}"


class TelemetryStreamWriter:
    """Appends stream records for one run to one segment file.

    Args:
        directory: the stream directory (created on first flush).
        segment: segment stem; the file is ``<segment>.jsonl``.
        interval: minimum seconds between :meth:`maybe_flush` flushes.
            The default ``0.0`` flushes at every day boundary — right for
            simulated runs, where days complete in milliseconds yet are
            the natural progress unit; long-running serving loops pass a
            real period to bound I/O.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        directory,
        segment: str = "run",
        interval: float = 0.0,
        clock=time.monotonic,
    ) -> None:
        self.directory = os.fspath(directory)
        self.segment = segment
        self.path = os.path.join(self.directory, f"{segment}.jsonl")
        self.interval = float(interval)
        self._clock = clock
        self.seq = 0
        self._spans_sent = 0
        self._last_flush: float | None = None

    def maybe_flush(
        self,
        telemetry,
        day: int = -1,
        progress: Mapping | None = None,
        alerts: Sequence[Mapping] | None = None,
    ) -> bool:
        """Flush if at least ``interval`` elapsed since the last flush.

        Returns whether a record was written — callers carrying delta
        payloads (alerts) must re-offer a skipped delta at the next flush.
        """
        if self._last_flush is not None and self._clock() - self._last_flush < self.interval:
            return False
        self.flush(telemetry, day=day, progress=progress, alerts=alerts)
        return True

    def flush(
        self,
        telemetry,
        day: int = -1,
        progress: Mapping | None = None,
        final: bool = False,
        alerts: Sequence[Mapping] | None = None,
    ) -> None:
        """Append one stream record: full registry, span delta, progress.

        The registry snapshot is cumulative so readers only need the last
        complete record to reconstruct metrics — a torn tail costs one
        day of lag, never the whole segment.  ``alerts`` are a delta like
        spans: each record carries only the alerts raised since the last
        flush, and readers concatenate across records.
        """
        if self.seq == 0 and os.path.exists(self.path):
            # A fresh writer owns its segment: re-running into the same
            # telemetry directory replaces the stale segment instead of
            # appending a second seq-0 record after it (which a reader
            # would — correctly — reject as corruption).
            os.remove(self.path)
        records = telemetry.tracer.records
        record = {
            "schema": STREAM_SCHEMA,
            "seq": self.seq,
            "segment": self.segment,
            "day": int(day),
            "final": bool(final),
            "progress": dict(progress) if progress else {},
            "registry": telemetry.registry.to_dict(),
            "spans": [span.to_dict() for span in records[self._spans_sent :]],
            "alerts": [dict(alert) for alert in alerts] if alerts else [],
        }
        append_jsonl(self.path, record)
        self._spans_sent = len(records)
        self.seq += 1
        self._last_flush = self._clock()


@dataclass
class SegmentView:
    """Everything recoverable from one segment file.

    Attributes:
        segment: segment stem (filename without ``.jsonl``).
        path: the segment file.
        seq: sequence number of the last complete record.
        day: last flushed day.
        final: whether the run completed (a ``final: true`` record landed).
        flushes: number of complete records read.
        progress: the last progress summary (empty dict if none).
        registry_state: the last cumulative registry snapshot.
        spans: all span deltas, concatenated in flush order.
        alerts: all alert deltas (plain dicts), concatenated in flush order.
    """

    segment: str
    path: str
    seq: int
    day: int
    final: bool
    flushes: int
    progress: dict = field(default_factory=dict)
    registry_state: dict = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    alerts: list[dict] = field(default_factory=list)


@dataclass
class StreamView:
    """The merged view over every segment of a stream directory."""

    directory: str
    segments: list[SegmentView] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Whether every segment's run finished (and at least one exists)."""
        return bool(self.segments) and all(s.final for s in self.segments)

    def merged_registry(self) -> MetricsRegistry:
        """Fold segment registries in segment-name (= spec) order.

        This is the same fold order the parent process uses when merging
        worker payloads, so the result — including quantile sketches — is
        bit-identical to a surviving run's exported registry.
        """
        registry = MetricsRegistry()
        for segment in self.segments:
            if segment.registry_state:
                registry.merge(segment.registry_state)
        return registry

    def spans(self) -> list[SpanRecord]:
        """All segments' spans, each segment in its own process lane.

        Returns *copies*: re-laning must never rewrite the shared
        ``SegmentView.spans`` records, or per-segment consumers reading
        after a merged view would see the merged pids.
        """
        merged: list[SpanRecord] = []
        for lane, segment in enumerate(self.segments):
            merged.extend(replace(span, pid=lane) for span in segment.spans)
        return merged

    def alerts(self) -> list[dict]:
        """All segments' alerts, in segment (= spec) then raise order."""
        merged: list[dict] = []
        for segment in self.segments:
            merged.extend(segment.alerts)
        return merged


def read_segment(path) -> SegmentView | None:
    """Read one segment file; ``None`` if it holds no complete record yet.

    Raises:
        ValueError: on real corruption — a malformed non-final line or a
            sequence-number gap (both impossible under the single-writer
            append discipline, so they indicate external damage).
    """
    path = os.fspath(path)
    records = [r for r in read_jsonl(path) if r.get("schema") == STREAM_SCHEMA]
    if not records:
        return None
    last_seq = -1
    for record in records:
        seq = int(record.get("seq", -1))
        if seq <= last_seq:
            raise ValueError(f"stream segment {path}: non-increasing seq {seq}")
        last_seq = seq
    spans: list[SpanRecord] = []
    alerts: list[dict] = []
    for record in records:
        spans.extend(SpanRecord.from_dict(entry) for entry in record.get("spans", ()))
        alerts.extend(dict(entry) for entry in record.get("alerts", ()))
    last = records[-1]
    return SegmentView(
        segment=os.path.splitext(os.path.basename(path))[0],
        path=path,
        seq=last_seq,
        day=int(last.get("day", -1)),
        # Last record wins: a segment hosting several sequential runs (the
        # CLI's direct-run "main" segment) is complete only if its *latest*
        # run finished.
        final=bool(last.get("final")),
        flushes=len(records),
        progress=dict(last.get("progress", {})),
        registry_state=dict(last.get("registry", {})),
        spans=spans,
        alerts=alerts,
    )


def read_stream(directory) -> StreamView:
    """Read every segment of a stream directory, in segment-name order.

    Missing directory or empty segments yield an empty view — callers
    (watch, report fallback) treat "nothing streamed yet" as a state to
    render, not an error.
    """
    directory = os.fspath(directory)
    view = StreamView(directory=directory)
    if not os.path.isdir(directory):
        return view
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".jsonl"):
            continue
        segment = read_segment(os.path.join(directory, name))
        if segment is not None:
            view.segments.append(segment)
    return view
