"""Drift detection over day-boundary quality series, with structured alerts.

Broker churn, drifting capacity-response curves and demand shocks
(ROADMAP scenario (d)) show up as *changes in the quality gauges* long
before they show up in anyone's eyeballed tables.  This module watches the
per-day quality fields the :class:`~repro.obs.hook.TelemetryHook` computes
(day utility, overload rate, workload Gini, capacity MAE) with two
complementary deterministic detectors per metric:

- **rolling z-score** — the newest value against the mean/std of the
  trailing window; catches *step changes* (a demand shock, a broker-pool
  cut) the day they happen;
- **CUSUM** — one-sided cumulative sums of standardized deviations from a
  *frozen* reference estimated over the first days of the regime; catches
  *slow drift* that never trips a single-day z-score because the rolling
  window drifts along with it.

Both consume only the day series — no RNG, no wall clock — so alert days
are a pure function of the run's results: a seeded run alerts on the same
days every time, and ``jobs=N`` changes nothing.  After any alert the
detector re-baselines on the new regime (one alert per shift, not one per
day).  Raised alerts are appended to the live stream records (delta
semantics, like spans) and surfaced by ``report`` and ``watch``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

#: Metrics monitored by default, with per-metric noise floors: rates and
#: Gini live in [0, 1] where tiny absolute wiggles are noise, while
#: utility and MAE scale with the instance so they rely on the relative
#: floor instead.
DEFAULT_MONITORS: tuple[tuple[str, dict], ...] = (
    ("day_utility", {}),
    ("overload_rate", {"min_std": 0.02}),
    ("workload_gini", {"min_std": 0.02}),
    ("capacity_mae", {"min_std": 0.5}),
)


@dataclass(frozen=True)
class Alert:
    """One structured drift alert, as streamed and rendered.

    Attributes:
        day: the day whose value tripped the detector.
        metric: the monitored quality field.
        detector: ``"zscore"`` (step change) or ``"cusum"`` (slow drift).
        value: the day's observed value.
        score: the detector statistic that crossed (z, or the CUSUM sum).
        threshold: the configured trip level for that statistic.
        baseline: the baseline mean the value was judged against.
        algorithm: run label, when known.
    """

    day: int
    metric: str
    detector: str
    value: float
    score: float
    threshold: float
    baseline: float
    algorithm: str | None = None

    def to_dict(self) -> dict:
        return {
            "day": int(self.day),
            "metric": self.metric,
            "detector": self.detector,
            "value": float(self.value),
            "score": float(self.score),
            "threshold": float(self.threshold),
            "baseline": float(self.baseline),
            "algorithm": self.algorithm,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Alert":
        return cls(
            day=int(payload["day"]),
            metric=str(payload["metric"]),
            detector=str(payload["detector"]),
            value=float(payload["value"]),
            score=float(payload["score"]),
            threshold=float(payload["threshold"]),
            baseline=float(payload["baseline"]),
            algorithm=payload.get("algorithm"),
        )

    def describe(self) -> str:
        """One human line, e.g. for the watch/report alert tables."""
        kind = "step change" if self.detector == "zscore" else "drift"
        return (
            f"day {self.day}: {self.metric} {kind} — value {self.value:.4f} "
            f"vs baseline {self.baseline:.4f} "
            f"({self.detector} {self.score:.2f} >= {self.threshold:.2f})"
        )


class DriftDetector:
    """Rolling z-score + frozen-reference CUSUM over one metric's day series.

    Args:
        metric: name stamped onto raised alerts.
        window: trailing days feeding the rolling z-score baseline.
        min_history: days of history required before either detector arms
            (and the length of the frozen CUSUM reference).  The default
            covers one full week: the synthetic demand curve carries
            ``sin(2*pi*d/7)`` seasonality, and a reference frozen on a
            partial cycle reads the seasonal swing itself as drift.
        z_threshold: |z| trip level for the step-change detector.
        cusum_k: CUSUM slack per day, in reference-std units (drift smaller
            than ``k`` sigma/day accumulates nothing).
        cusum_h: CUSUM trip level, in reference-std units.
        min_std: absolute noise floor on every std estimate.
        rel_floor: relative noise floor — std is never taken below
            ``rel_floor * |baseline mean|``, so metrics with large scales
            do not alert on proportionally tiny wiggles.
    """

    def __init__(
        self,
        metric: str,
        window: int = 7,
        min_history: int = 7,
        z_threshold: float = 4.0,
        cusum_k: float = 0.5,
        cusum_h: float = 6.0,
        min_std: float = 1e-6,
        rel_floor: float = 0.02,
    ) -> None:
        if window < 2 or min_history < 2:
            raise ValueError("window and min_history must be >= 2")
        self.metric = metric
        self.window = window
        self.min_history = min_history
        self.z_threshold = z_threshold
        self.cusum_k = cusum_k
        self.cusum_h = cusum_h
        self.min_std = min_std
        self.rel_floor = rel_floor
        self._history: list[float] = []
        self._reference: tuple[float, float] | None = None
        self._pos = 0.0
        self._neg = 0.0

    def _floor(self, mean: float, std: float) -> float:
        return max(std, self.min_std, self.rel_floor * abs(mean))

    def _reset(self) -> None:
        """Re-baseline after an alert: the new regime is the new normal."""
        self._history.clear()
        self._reference = None
        self._pos = 0.0
        self._neg = 0.0

    def observe(self, day: int, value: float, algorithm: str | None = None) -> list[Alert]:
        """Feed one day's value; returns the alerts it raised (usually none)."""
        value = float(value)
        alerts: list[Alert] = []
        history = self._history
        if len(history) >= self.min_history:
            if self._reference is None:
                # Freeze the CUSUM reference on the first armed day; the
                # rolling z-baseline keeps moving, the reference does not.
                mean = float(np.mean(history))
                std = self._floor(mean, float(np.std(history)))
                self._reference = (mean, std)

            recent = history[-self.window :]
            mean = float(np.mean(recent))
            std = self._floor(mean, float(np.std(recent)))
            z = (value - mean) / std
            if abs(z) >= self.z_threshold:
                alerts.append(
                    Alert(
                        day=day,
                        metric=self.metric,
                        detector="zscore",
                        value=value,
                        score=z,
                        threshold=self.z_threshold,
                        baseline=mean,
                        algorithm=algorithm,
                    )
                )
                self._reset()
                self._history.append(value)
                return alerts

            ref_mean, ref_std = self._reference
            residual = (value - ref_mean) / ref_std
            self._pos = max(0.0, self._pos + residual - self.cusum_k)
            self._neg = max(0.0, self._neg - residual - self.cusum_k)
            score = max(self._pos, self._neg)
            if score >= self.cusum_h:
                alerts.append(
                    Alert(
                        day=day,
                        metric=self.metric,
                        detector="cusum",
                        value=value,
                        score=score,
                        threshold=self.cusum_h,
                        baseline=ref_mean,
                        algorithm=algorithm,
                    )
                )
                self._reset()
                self._history.append(value)
                return alerts

        history.append(value)
        # The rolling window only ever looks back `window` days, but the
        # arming check needs `min_history` days — trimming below that
        # (when min_history > window) would keep the detector disarmed
        # forever, so keep whichever is larger.
        keep = max(self.window, self.min_history)
        if len(history) > keep:
            del history[: len(history) - keep]
        return alerts


class AlertMonitor:
    """One run's detectors over the day-boundary quality fields.

    Detector windows live in process memory: a resumed run re-learns its
    baseline over its first ``min_history`` days instead of inheriting the
    killed run's window (documented in docs/observability.md).  Alerts
    raised *before* a kill are already durable in the stream.
    """

    def __init__(
        self,
        monitors: tuple[tuple[str, dict], ...] = DEFAULT_MONITORS,
        **common,
    ) -> None:
        self._detectors = {
            metric: DriftDetector(metric, **{**common, **overrides})
            for metric, overrides in monitors
        }
        #: Every alert raised over the run, in raise order.
        self.alerts: list[Alert] = []

    def observe_day(
        self, day: int, fields: Mapping, algorithm: str | None = None
    ) -> list[Alert]:
        """Feed one day's quality fields; returns the newly raised alerts."""
        raised: list[Alert] = []
        for metric, detector in self._detectors.items():
            value = fields.get(metric)
            if value is None:
                continue
            raised.extend(detector.observe(day, float(value), algorithm=algorithm))
        self.alerts.extend(raised)
        return raised
